"""Unit tests for the baseline acquisition strategies."""

import numpy as np
import pytest

from repro.baselines import NaivePerQueryEngine, UniformSamplingAcquirer
from repro.config import BudgetConfig, EngineConfig
from repro.core import AcquisitionalQuery
from repro.errors import CraqrError, QueryError
from repro.geometry import Rectangle
from repro.pointprocess import GaussianHotspotIntensity, InhomogeneousMDPP
from repro.streams import SensorTuple
from tests.conftest import make_world

REGION = Rectangle(0, 0, 4, 4)


def make_config(seed=1):
    return EngineConfig(
        grid_cells=16,
        batch_duration=1.0,
        budget=BudgetConfig(initial=40, delta=10, limit=400),
        seed=seed,
    )


class TestNaivePerQueryEngine:
    def test_register_and_run(self):
        world = make_world(REGION, seed=2)
        engine = NaivePerQueryEngine(make_config(), world)
        result = engine.register_query(AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 10.0))
        engine.run(5)
        assert engine.batches_run == 5
        assert len(result.per_batch_counts) == 5
        assert result.achieved_rate(1.0) == pytest.approx(10.0, rel=0.4)

    def test_duplicate_registration_rejected(self):
        world = make_world(REGION, seed=3)
        engine = NaivePerQueryEngine(make_config(), world)
        query = AcquisitionalQuery("temp", Rectangle(0, 0, 1, 1), 5.0)
        engine.register_query(query)
        with pytest.raises(QueryError):
            engine.register_query(query)

    def test_invalid_query_rejected(self):
        world = make_world(REGION, seed=4)
        engine = NaivePerQueryEngine(make_config(), world)
        with pytest.raises(QueryError):
            engine.register_query(AcquisitionalQuery("temp", Rectangle(0, 0, 0.5, 0.5), 5.0))

    def test_run_requires_positive_batches(self):
        world = make_world(REGION, seed=5)
        engine = NaivePerQueryEngine(make_config(), world)
        with pytest.raises(QueryError):
            engine.run(0)

    def test_requests_scale_with_query_count(self):
        # The defining property of the naive strategy: acquisition cost grows
        # linearly with the number of identical queries, because nothing is
        # shared.
        region = Rectangle(0, 0, 2, 2)

        def run_with(n_queries):
            world = make_world(REGION, seed=6)
            engine = NaivePerQueryEngine(make_config(seed=6), world)
            for i in range(n_queries):
                engine.register_query(AcquisitionalQuery("temp", region, 10.0 + i))
            engine.run(2)
            return engine.total_requests_sent()

        assert run_with(4) == pytest.approx(4 * run_with(1), rel=0.01)

    def test_delivered_tuples_counted(self):
        world = make_world(REGION, seed=7)
        engine = NaivePerQueryEngine(make_config(), world)
        result = engine.register_query(AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 8.0))
        engine.run(3)
        assert engine.total_tuples_delivered() == len(result.delivered)
        assert engine.total_responses_received() >= len(result.delivered)


class TestUniformSamplingAcquirer:
    def make_items(self, seed=0):
        rng = np.random.default_rng(seed)
        intensity = GaussianHotspotIntensity(2.0, ((0.25, 0.25, 600.0, 0.1),))
        batch = InhomogeneousMDPP(intensity, Rectangle(0, 0, 1, 1)).sample(5.0, rng=rng)
        return [
            SensorTuple(tuple_id=i, attribute="rain", t=float(t), x=float(x), y=float(y))
            for i, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y))
        ]

    def test_sample_counts(self):
        acquirer = UniformSamplingAcquirer(np.random.default_rng(1))
        items = self.make_items()
        kept = acquirer.sample(items, 50)
        assert len(kept) == 50
        assert acquirer.kept_total == 50
        assert acquirer.seen_total == len(items)

    def test_sample_more_than_available_keeps_all(self):
        acquirer = UniformSamplingAcquirer(np.random.default_rng(2))
        items = self.make_items()
        assert len(acquirer.sample(items, 10 * len(items))) == len(items)

    def test_sample_negative_target_rejected(self):
        with pytest.raises(CraqrError):
            UniformSamplingAcquirer().sample([], -1)

    def test_sample_to_rate(self):
        acquirer = UniformSamplingAcquirer(np.random.default_rng(3))
        items = self.make_items()
        kept = acquirer.sample_to_rate(items, rate=30.0, area=1.0, duration=1.0)
        assert len(kept) == 30
        with pytest.raises(CraqrError):
            acquirer.sample_to_rate(items, rate=0.0, area=1.0, duration=1.0)

    def test_uniform_sampling_preserves_skew(self):
        # The skew of the raw arrivals survives uniform sampling: the hotspot
        # quadrant keeps the majority of the kept tuples.
        acquirer = UniformSamplingAcquirer(np.random.default_rng(4))
        items = self.make_items(seed=5)
        kept = acquirer.sample(items, len(items) // 3)
        hotspot = [item for item in kept if item.x < 0.5 and item.y < 0.5]
        assert len(hotspot) > 0.5 * len(kept)
