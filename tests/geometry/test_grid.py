"""Unit tests for the logical grid (Section IV)."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import Grid, Rectangle, RectRegion


@pytest.fixture
def grid():
    return Grid(Rectangle(0, 0, 4, 4), side=4)


class TestConstruction:
    def test_cell_count(self, grid):
        assert grid.cell_count == 16
        assert len(grid) == 16
        assert len(grid.cells()) == 16

    def test_invalid_side(self):
        with pytest.raises(GeometryError):
            Grid(Rectangle(0, 0, 1, 1), side=0)

    def test_cell_area(self, grid):
        assert grid.cell_area == pytest.approx(1.0)

    def test_total_cell_area_equals_region_area(self, grid):
        # Eq. (2): area(R) = sum over cells of area(R(q,r)).
        assert grid.total_cell_area() == pytest.approx(grid.region.area)

    def test_non_square_region_cells(self):
        grid = Grid(Rectangle(0, 0, 6, 3), side=3)
        assert grid.cell_area == pytest.approx(2.0)
        assert grid.total_cell_area() == pytest.approx(18.0)

    def test_cells_are_disjoint(self, grid):
        cells = grid.cells()
        for i, a in enumerate(cells):
            for b in cells[i + 1:]:
                assert not a.rect.intersects(b.rect)


class TestAddressing:
    def test_cell_lookup_by_coordinates(self, grid):
        cell = grid.cell(2, 3)
        assert cell.key == (2, 3)
        assert cell.rect == Rectangle(2, 3, 3, 4)

    def test_cell_outside_grid_raises(self, grid):
        with pytest.raises(GeometryError):
            grid.cell(4, 0)
        with pytest.raises(GeometryError):
            grid.cell(-1, 0)

    def test_cell_region_property(self, grid):
        cell = grid.cell(0, 0)
        assert cell.region.area == pytest.approx(1.0)
        assert cell.area == pytest.approx(1.0)


class TestLocate:
    def test_interior_point(self, grid):
        assert grid.locate(0.5, 0.5).key == (0, 0)
        assert grid.locate(3.9, 0.1).key == (3, 0)

    def test_point_on_internal_boundary_goes_to_upper_cell(self, grid):
        assert grid.locate(1.0, 0.5).key == (1, 0)

    def test_point_on_outer_boundary_is_clamped(self, grid):
        assert grid.locate(4.0, 4.0).key == (3, 3)

    def test_point_outside_region_raises(self, grid):
        with pytest.raises(GeometryError):
            grid.locate(5.0, 1.0)

    def test_every_cell_center_locates_to_itself(self, grid):
        for cell in grid:
            center = cell.rect.center
            assert grid.locate(center.x, center.y).key == cell.key


class TestOverlap:
    def test_query_covering_one_cell(self, grid):
        region = RectRegion(Rectangle(1, 1, 2, 2))
        cells = grid.overlapping_cells(region)
        assert [c.key for c in cells] == [(1, 1)]

    def test_query_covering_block(self, grid):
        region = RectRegion(Rectangle(0, 0, 2, 2))
        keys = {c.key for c in grid.overlapping_cells(region)}
        assert keys == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_query_partially_overlapping(self, grid):
        region = RectRegion(Rectangle(0.5, 0.5, 1.5, 1.5))
        keys = {c.key for c in grid.overlapping_cells(region)}
        assert keys == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_overlap_fraction_full(self, grid):
        region = RectRegion(Rectangle(0, 0, 2, 2))
        cell = grid.cell(0, 0)
        assert grid.overlap_fraction(region, cell) == pytest.approx(1.0)

    def test_overlap_fraction_partial(self, grid):
        region = RectRegion(Rectangle(0.5, 0.0, 1.0, 1.0))
        cell = grid.cell(0, 0)
        assert grid.overlap_fraction(region, cell) == pytest.approx(0.5)

    def test_query_touching_cell_boundary_has_no_overlap(self, grid):
        region = RectRegion(Rectangle(1.0, 0.0, 2.0, 1.0))
        cell = grid.cell(0, 0)
        assert grid.overlap_fraction(region, cell) == pytest.approx(0.0)


class TestBoundaryBucketing:
    """Boundary points must always map to a valid cell (no tuple is lost)."""

    def test_interior_cell_edges_map_to_upper_cell(self, grid):
        # A point exactly on an interior edge belongs to the cell whose
        # half-open rectangle starts there.
        assert grid.locate(1.0, 0.5).key == (1, 0)
        assert grid.locate(0.5, 2.0).key == (0, 2)
        assert grid.locate(3.0, 3.0).key == (3, 3)

    def test_region_max_edges_clamp_into_last_cell(self, grid):
        assert grid.locate(4.0, 0.5).key == (3, 0)
        assert grid.locate(0.5, 4.0).key == (0, 3)
        assert grid.locate(4.0, 4.0).key == (3, 3)

    def test_region_min_corner(self, grid):
        assert grid.locate(0.0, 0.0).key == (0, 0)

    def test_cells_for_points_on_boundaries(self, grid):
        xs = np.array([1.0, 0.5, 3.0, 4.0, 0.5, 4.0, 0.0])
        ys = np.array([0.5, 2.0, 3.0, 0.5, 4.0, 4.0, 0.0])
        q, r = grid.cells_for_points(xs, ys)
        assert list(zip(q.tolist(), r.tolist())) == [
            (1, 0), (0, 2), (3, 3), (3, 0), (0, 3), (3, 3), (0, 0)
        ]

    def test_cells_for_points_rejects_outside_points(self, grid):
        with pytest.raises(GeometryError):
            grid.cells_for_points(np.array([0.5, 5.0]), np.array([0.5, 0.5]))
        with pytest.raises(GeometryError):
            grid.cells_for_points(np.array([0.5]), np.array([-0.1]))

    def test_cells_for_points_agrees_with_scalar_lookup(self, grid):
        rng = np.random.default_rng(2024)
        xs = rng.uniform(0.0, 4.0, 1000)
        ys = rng.uniform(0.0, 4.0, 1000)
        # Sprinkle exact edge coordinates into the random sample.
        xs[:8] = [0.0, 1.0, 2.0, 3.0, 4.0, 4.0, 0.0, 2.0]
        ys[:8] = [0.0, 1.0, 2.0, 3.0, 4.0, 0.0, 4.0, 2.0]
        q, r = grid.cells_for_points(xs, ys)
        for x, y, qi, ri in zip(xs, ys, q, r):
            assert grid.locate(float(x), float(y)).key == (int(qi), int(ri))

    def test_cells_for_points_on_non_square_region(self):
        grid = Grid(Rectangle(-1.0, 2.0, 5.0, 5.0), side=3)
        rng = np.random.default_rng(7)
        xs = rng.uniform(-1.0, 5.0, 500)
        ys = rng.uniform(2.0, 5.0, 500)
        q, r = grid.cells_for_points(xs, ys)
        for x, y, qi, ri in zip(xs, ys, q, r):
            assert grid.locate(float(x), float(y)).key == (int(qi), int(ri))
