"""Unit tests for SpacePoint and SpaceTimePoint."""

import math

import pytest

from repro.geometry import SpacePoint, SpaceTimePoint


class TestSpacePoint:
    def test_distance_to_self_is_zero(self):
        p = SpacePoint(1.5, -2.0)
        assert p.distance_to(p) == 0.0

    def test_distance_is_euclidean(self):
        a = SpacePoint(0.0, 0.0)
        b = SpacePoint(3.0, 4.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a = SpacePoint(1.0, 2.0)
        b = SpacePoint(-3.0, 0.5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_translated_moves_point(self):
        p = SpacePoint(1.0, 1.0).translated(0.5, -0.25)
        assert p == SpacePoint(1.5, 0.75)

    def test_translated_returns_new_instance(self):
        p = SpacePoint(0.0, 0.0)
        q = p.translated(1.0, 1.0)
        assert p == SpacePoint(0.0, 0.0)
        assert q != p

    def test_as_tuple_and_iteration(self):
        p = SpacePoint(2.0, 3.0)
        assert p.as_tuple() == (2.0, 3.0)
        assert list(p) == [2.0, 3.0]

    def test_ordering_is_lexicographic(self):
        assert SpacePoint(1.0, 5.0) < SpacePoint(2.0, 0.0)
        assert SpacePoint(1.0, 1.0) < SpacePoint(1.0, 2.0)

    def test_points_are_hashable(self):
        assert len({SpacePoint(1, 2), SpacePoint(1, 2), SpacePoint(2, 1)}) == 2


class TestSpaceTimePoint:
    def test_space_property(self):
        p = SpaceTimePoint(10.0, 1.0, 2.0)
        assert p.space == SpacePoint(1.0, 2.0)

    def test_shifted_moves_all_coordinates(self):
        p = SpaceTimePoint(1.0, 2.0, 3.0).shifted(dt=0.5, dx=-1.0, dy=2.0)
        assert p == SpaceTimePoint(1.5, 1.0, 5.0)

    def test_shifted_defaults_are_zero(self):
        p = SpaceTimePoint(1.0, 2.0, 3.0)
        assert p.shifted() == p

    def test_as_tuple_order_is_txy(self):
        assert SpaceTimePoint(1.0, 2.0, 3.0).as_tuple() == (1.0, 2.0, 3.0)

    def test_iteration_order_is_txy(self):
        assert list(SpaceTimePoint(1.0, 2.0, 3.0)) == [1.0, 2.0, 3.0]

    def test_ordering_puts_time_first(self):
        early = SpaceTimePoint(1.0, 99.0, 99.0)
        late = SpaceTimePoint(2.0, 0.0, 0.0)
        assert early < late

    def test_sorting_a_list_orders_by_time(self):
        points = [SpaceTimePoint(t, 0.0, 0.0) for t in (3.0, 1.0, 2.0)]
        assert [p.t for p in sorted(points)] == [1.0, 2.0, 3.0]
