"""Unit tests for Rectangle."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Rectangle, SpacePoint


class TestConstruction:
    def test_valid_rectangle(self):
        r = Rectangle(0.0, 0.0, 2.0, 3.0)
        assert r.width == 2.0
        assert r.height == 3.0
        assert r.area == 6.0

    @pytest.mark.parametrize(
        "bounds",
        [
            (0.0, 0.0, 0.0, 1.0),   # zero width
            (0.0, 0.0, 1.0, 0.0),   # zero height
            (1.0, 0.0, 0.0, 1.0),   # inverted x
            (0.0, 1.0, 1.0, 0.0),   # inverted y
        ],
    )
    def test_degenerate_rectangle_rejected(self, bounds):
        with pytest.raises(GeometryError):
            Rectangle(*bounds)

    def test_from_origin(self):
        r = Rectangle.from_origin(3.0, 4.0)
        assert (r.x_min, r.y_min, r.x_max, r.y_max) == (0.0, 0.0, 3.0, 4.0)

    def test_unit_square(self):
        assert Rectangle.unit_square().area == pytest.approx(1.0)

    def test_center(self):
        assert Rectangle(0, 0, 2, 4).center == SpacePoint(1.0, 2.0)

    def test_corners_count(self):
        assert len(Rectangle(0, 0, 1, 1).corners()) == 4

    def test_bounding_of_multiple(self):
        r = Rectangle.bounding([Rectangle(0, 0, 1, 1), Rectangle(2, 2, 3, 4)])
        assert (r.x_min, r.y_min, r.x_max, r.y_max) == (0.0, 0.0, 3.0, 4.0)

    def test_bounding_of_empty_raises(self):
        with pytest.raises(GeometryError):
            Rectangle.bounding([])


class TestContainment:
    def test_contains_interior_point(self):
        assert Rectangle(0, 0, 1, 1).contains(0.5, 0.5)

    def test_half_open_upper_edges(self):
        r = Rectangle(0, 0, 1, 1)
        assert not r.contains(1.0, 0.5)
        assert not r.contains(0.5, 1.0)
        assert r.contains(0.0, 0.0)

    def test_closed_flag_includes_upper_edges(self):
        r = Rectangle(0, 0, 1, 1)
        assert r.contains(1.0, 1.0, closed=True)

    def test_contains_point_object(self):
        assert Rectangle(0, 0, 1, 1).contains_point(SpacePoint(0.25, 0.75))

    def test_contains_rectangle(self):
        outer = Rectangle(0, 0, 4, 4)
        inner = Rectangle(1, 1, 2, 2)
        assert outer.contains_rectangle(inner)
        assert not inner.contains_rectangle(outer)


class TestIntersection:
    def test_overlapping_rectangles_intersect(self):
        a = Rectangle(0, 0, 2, 2)
        b = Rectangle(1, 1, 3, 3)
        assert a.intersects(b)
        overlap = a.intersection(b)
        assert overlap == Rectangle(1, 1, 2, 2)
        assert a.overlap_area(b) == pytest.approx(1.0)

    def test_touching_rectangles_do_not_intersect(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(1, 0, 2, 1)
        assert not a.intersects(b)
        assert a.intersection(b) is None
        assert a.is_disjoint(b)

    def test_disjoint_rectangles(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(5, 5, 6, 6)
        assert a.overlap_area(b) == 0.0

    def test_intersection_is_commutative(self):
        a = Rectangle(0, 0, 3, 3)
        b = Rectangle(2, 1, 5, 2)
        assert a.intersection(b) == b.intersection(a)


class TestAdjacencyAndUnion:
    def test_side_by_side_share_full_side(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(1, 0, 2, 1)
        assert a.shares_full_side_with(b)
        assert b.shares_full_side_with(a)

    def test_stacked_share_full_side(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(0, 1, 1, 2)
        assert a.shares_full_side_with(b)

    def test_partial_side_not_full(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(1, 0, 2, 2)
        assert not a.shares_full_side_with(b)

    def test_union_of_adjacent(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(1, 0, 2, 1)
        assert a.union_with(b) == Rectangle(0, 0, 2, 1)

    def test_union_of_non_adjacent_raises(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(2, 0, 3, 1)
        with pytest.raises(GeometryError):
            a.union_with(b)

    def test_union_area_adds_up(self):
        a = Rectangle(0, 0, 1, 2)
        b = Rectangle(1, 0, 3, 2)
        assert a.union_with(b).area == pytest.approx(a.area + b.area)

    def test_bounding_union_allows_gaps(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(2, 2, 3, 3)
        assert a.bounding_union(b) == Rectangle(0, 0, 3, 3)


class TestSplitting:
    def test_split_horizontally(self):
        bottom, top = Rectangle(0, 0, 1, 2).split_horizontally(0.5)
        assert bottom == Rectangle(0, 0, 1, 0.5)
        assert top == Rectangle(0, 0.5, 1, 2)

    def test_split_vertically(self):
        left, right = Rectangle(0, 0, 2, 1).split_vertically(1.5)
        assert left == Rectangle(0, 0, 1.5, 1)
        assert right == Rectangle(1.5, 0, 2, 1)

    def test_split_outside_bounds_raises(self):
        with pytest.raises(GeometryError):
            Rectangle(0, 0, 1, 1).split_horizontally(2.0)
        with pytest.raises(GeometryError):
            Rectangle(0, 0, 1, 1).split_vertically(-1.0)

    def test_subdivide_counts_and_area(self):
        cells = Rectangle(0, 0, 2, 2).subdivide(2, 4)
        assert len(cells) == 8
        assert sum(c.area for c in cells) == pytest.approx(4.0)

    def test_subdivide_invalid_counts(self):
        with pytest.raises(GeometryError):
            Rectangle(0, 0, 1, 1).subdivide(0, 2)

    def test_subdivide_cells_tile_without_overlap(self):
        cells = Rectangle(0, 0, 3, 3).subdivide(3, 3)
        for i, a in enumerate(cells):
            for b in cells[i + 1:]:
                assert not a.intersects(b)
