"""Unit tests for the region algebra."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    CompositeRegion,
    Rectangle,
    RectRegion,
    rectangles_are_adjacent,
    union_regions,
)


class TestRectRegion:
    def test_area_matches_rectangle(self):
        region = RectRegion(Rectangle(0, 0, 2, 3))
        assert region.area == pytest.approx(6.0)

    def test_from_bounds(self):
        region = RectRegion.from_bounds(0, 0, 1, 1)
        assert region.area == pytest.approx(1.0)

    def test_contains(self):
        region = RectRegion(Rectangle(0, 0, 1, 1))
        assert region.contains(0.5, 0.5)
        assert not region.contains(1.5, 0.5)

    def test_bounding_box(self):
        region = RectRegion(Rectangle(1, 2, 3, 4))
        assert region.bounding_box == Rectangle(1, 2, 3, 4)


class TestCompositeRegion:
    def test_needs_at_least_one_rectangle(self):
        with pytest.raises(GeometryError):
            CompositeRegion(())

    def test_rejects_overlapping_parts(self):
        with pytest.raises(GeometryError):
            CompositeRegion((Rectangle(0, 0, 2, 2), Rectangle(1, 1, 3, 3)))

    def test_area_is_sum_of_parts(self):
        region = CompositeRegion((Rectangle(0, 0, 1, 1), Rectangle(2, 0, 3, 1)))
        assert region.area == pytest.approx(2.0)

    def test_contains_checks_every_part(self):
        region = CompositeRegion((Rectangle(0, 0, 1, 1), Rectangle(2, 0, 3, 1)))
        assert region.contains(0.5, 0.5)
        assert region.contains(2.5, 0.5)
        assert not region.contains(1.5, 0.5)

    def test_bounding_box_spans_parts(self):
        region = CompositeRegion((Rectangle(0, 0, 1, 1), Rectangle(2, 2, 3, 3)))
        assert region.bounding_box == Rectangle(0, 0, 3, 3)


class TestRegionRelations:
    def test_overlap_area(self):
        a = RectRegion(Rectangle(0, 0, 2, 2))
        b = RectRegion(Rectangle(1, 1, 3, 3))
        assert a.overlap_area(b) == pytest.approx(1.0)

    def test_covers(self):
        big = RectRegion(Rectangle(0, 0, 4, 4))
        small = RectRegion(Rectangle(1, 1, 2, 2))
        assert big.covers(small)
        assert not small.covers(big)

    def test_equals_by_area_coverage(self):
        whole = RectRegion(Rectangle(0, 0, 2, 1))
        halves = CompositeRegion((Rectangle(0, 0, 1, 1), Rectangle(1, 0, 2, 1)))
        assert whole.equals(halves)
        assert halves.equals(whole)

    def test_disjointness(self):
        a = RectRegion(Rectangle(0, 0, 1, 1))
        b = RectRegion(Rectangle(2, 2, 3, 3))
        assert a.is_disjoint(b)

    def test_intersection_region(self):
        a = RectRegion(Rectangle(0, 0, 2, 2))
        b = RectRegion(Rectangle(1, 0, 3, 2))
        overlap = a.intersection(b)
        assert overlap is not None
        assert overlap.area == pytest.approx(2.0)

    def test_intersection_of_disjoint_is_none(self):
        a = RectRegion(Rectangle(0, 0, 1, 1))
        b = RectRegion(Rectangle(2, 2, 3, 3))
        assert a.intersection(b) is None

    def test_union_of_overlapping_raises(self):
        a = RectRegion(Rectangle(0, 0, 2, 2))
        b = RectRegion(Rectangle(1, 1, 3, 3))
        with pytest.raises(GeometryError):
            a.union(b)


class TestUnionRegions:
    def test_adjacent_rectangles_merge_into_one(self):
        a = RectRegion(Rectangle(0, 0, 1, 1))
        b = RectRegion(Rectangle(1, 0, 2, 1))
        merged = union_regions([a, b])
        assert isinstance(merged, RectRegion)
        assert merged.area == pytest.approx(2.0)

    def test_four_cells_merge_into_square(self):
        cells = [
            RectRegion(Rectangle(0, 0, 1, 1)),
            RectRegion(Rectangle(1, 0, 2, 1)),
            RectRegion(Rectangle(0, 1, 1, 2)),
            RectRegion(Rectangle(1, 1, 2, 2)),
        ]
        merged = union_regions(cells)
        assert isinstance(merged, RectRegion)
        assert merged.bounding_box == Rectangle(0, 0, 2, 2)

    def test_non_adjacent_stay_composite(self):
        a = RectRegion(Rectangle(0, 0, 1, 1))
        b = RectRegion(Rectangle(3, 3, 4, 4))
        merged = union_regions([a, b])
        assert isinstance(merged, CompositeRegion)
        assert merged.area == pytest.approx(2.0)

    def test_union_preserves_total_area(self):
        rects = [RectRegion(Rectangle(i, 0, i + 1, 1)) for i in range(5)]
        merged = union_regions(rects)
        assert merged.area == pytest.approx(5.0)

    def test_union_of_empty_raises(self):
        with pytest.raises(GeometryError):
            union_regions([])

    def test_union_of_overlapping_raises(self):
        a = RectRegion(Rectangle(0, 0, 2, 2))
        b = RectRegion(Rectangle(1, 1, 3, 3))
        with pytest.raises(GeometryError):
            union_regions([a, b])


class TestAdjacency:
    def test_side_touching(self):
        assert rectangles_are_adjacent(Rectangle(0, 0, 1, 1), Rectangle(1, 0, 2, 1))

    def test_partial_side_touching(self):
        assert rectangles_are_adjacent(Rectangle(0, 0, 1, 1), Rectangle(1, 0.5, 2, 2))

    def test_corner_only_not_adjacent(self):
        assert not rectangles_are_adjacent(Rectangle(0, 0, 1, 1), Rectangle(1, 1, 2, 2))

    def test_overlapping_not_adjacent(self):
        assert not rectangles_are_adjacent(Rectangle(0, 0, 2, 2), Rectangle(1, 1, 3, 3))

    def test_separated_not_adjacent(self):
        assert not rectangles_are_adjacent(Rectangle(0, 0, 1, 1), Rectangle(5, 0, 6, 1))
