"""Unit tests for configuration objects and the exception hierarchy."""

import pytest

import repro
from repro.config import BudgetConfig, EngineConfig
from repro.errors import (
    AcquisitionError,
    BudgetError,
    CraqrError,
    EstimationError,
    GeometryError,
    PlanningError,
    PointProcessError,
    QueryError,
    QueryParseError,
    StorageError,
    StreamError,
    WorkloadError,
)


class TestBudgetConfig:
    def test_defaults_are_valid(self):
        config = BudgetConfig()
        assert config.initial > 0
        assert config.limit >= config.initial

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial": 0},
            {"delta": 0},
            {"limit": 1, "initial": 10},
            {"floor": 0},
            {"floor": 100, "initial": 50},
            {"violation_threshold": -1.0},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(CraqrError):
            BudgetConfig(**kwargs)


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.grid_side ** 2 == config.grid_cells

    def test_grid_must_be_perfect_square(self):
        with pytest.raises(CraqrError):
            EngineConfig(grid_cells=15)

    def test_grid_must_be_positive(self):
        with pytest.raises(CraqrError):
            EngineConfig(grid_cells=0)

    def test_batch_duration_positive(self):
        with pytest.raises(CraqrError):
            EngineConfig(batch_duration=0.0)

    def test_with_seed_returns_copy(self):
        config = EngineConfig(seed=1)
        other = config.with_seed(2)
        assert other.seed == 2
        assert config.seed == 1
        assert other.grid_cells == config.grid_cells


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            GeometryError,
            PointProcessError,
            EstimationError,
            StreamError,
            QueryError,
            QueryParseError,
            PlanningError,
            BudgetError,
            AcquisitionError,
            StorageError,
            WorkloadError,
        ],
    )
    def test_all_errors_derive_from_craqr_error(self, error_type):
        assert issubclass(error_type, CraqrError)

    def test_estimation_error_is_point_process_error(self):
        assert issubclass(EstimationError, PointProcessError)

    def test_query_parse_error_is_query_error(self):
        assert issubclass(QueryParseError, QueryError)


class TestPackageSurface:
    def test_version_exposed(self):
        assert repro.__version__

    def test_public_api_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing public symbol {name}"
