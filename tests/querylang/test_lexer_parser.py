"""Unit tests for the declarative query language (lexer, parser, AST)."""

import pytest

from repro.core import AcquisitionalQuery
from repro.errors import QueryParseError
from repro.query import TokenType, parse_queries, parse_query, tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("acquire RAIN from rect")
        assert tokens[0].is_keyword("ACQUIRE")
        assert tokens[1].type is TokenType.IDENTIFIER  # RAIN is not a keyword
        assert tokens[2].is_keyword("FROM")
        assert tokens[3].is_keyword("RECT")

    def test_numbers(self):
        tokens = tokenize("10 3.5 -2 1e3")
        values = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert values == ["10", "3.5", "-2", "1e3"]

    def test_punctuation(self):
        kinds = [t.type for t in tokenize("( , ) ;")][:-1]
        assert kinds == [TokenType.LPAREN, TokenType.COMMA, TokenType.RPAREN, TokenType.SEMICOLON]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.END

    def test_unknown_character_raises(self):
        with pytest.raises(QueryParseError):
            tokenize("ACQUIRE rain @ RECT")

    def test_positions_recorded(self):
        tokens = tokenize("ACQUIRE rain")
        assert tokens[0].position == 0
        assert tokens[1].position == 8


class TestParser:
    def test_paper_example_q1(self):
        parsed = parse_query(
            "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 10 PER KM2 PER MIN"
        )
        assert parsed.attribute == "rain"
        assert parsed.rate_value == 10.0
        assert parsed.area_unit == "km2"
        assert parsed.time_unit == "min"
        query = parsed.to_query()
        assert isinstance(query, AcquisitionalQuery)
        assert query.rate == pytest.approx(10.0)
        assert query.region.area == pytest.approx(4.0)

    def test_at_keyword_is_optional(self):
        parsed = parse_query("ACQUIRE temp FROM RECT(0, 0, 1, 1) RATE 5")
        assert parsed.rate_value == 5.0
        assert parsed.area_unit == "unit2"

    def test_named_query(self):
        parsed = parse_query("ACQUIRE temp FROM RECT(0,0,1,1) RATE 5 AS Downtown")
        assert parsed.name == "Downtown"
        assert parsed.to_query().label == "Downtown"

    def test_rate_unit_conversion(self):
        parsed = parse_query("ACQUIRE temp FROM RECT(0,0,1,1) RATE 120 PER KM2 PER HOUR")
        assert parsed.to_query().rate == pytest.approx(2.0)

    def test_multiple_statements(self):
        queries = parse_queries(
            "ACQUIRE rain FROM RECT(0,0,2,2) RATE 10;"
            "ACQUIRE temp FROM RECT(1,1,3,3) RATE 5"
        )
        assert len(queries) == 2
        assert queries[0].attribute == "rain"
        assert queries[1].attribute == "temp"

    def test_trailing_semicolon_allowed(self):
        assert len(parse_queries("ACQUIRE rain FROM RECT(0,0,1,1) RATE 1;")) == 1

    def test_parse_query_rejects_multiple(self):
        with pytest.raises(QueryParseError):
            parse_query(
                "ACQUIRE rain FROM RECT(0,0,1,1) RATE 1; ACQUIRE temp FROM RECT(0,0,1,1) RATE 1"
            )

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "ACQUIRE FROM RECT(0,0,1,1) RATE 1",           # missing attribute
            "ACQUIRE rain RECT(0,0,1,1) RATE 1",            # missing FROM
            "ACQUIRE rain FROM RECT(0,0,1) RATE 1",         # too few coordinates
            "ACQUIRE rain FROM RECT(0,0,1,1)",              # missing rate
            "ACQUIRE rain FROM RECT(0,0,1,1) RATE fast",    # non-numeric rate
            "ACQUIRE rain FROM RECT(0,0,1,1) RATE 1 PER FURLONG2",
            "ACQUIRE rain FROM RECT(0,0,1,1) RATE 1 PER KM2 PER FORTNIGHT",
            "ACQUIRE rain FROM RECT(1,1,0,0) RATE 1",       # degenerate rectangle
        ],
    )
    def test_malformed_queries_raise(self, text):
        with pytest.raises(QueryParseError):
            parse_queries(text)

    def test_rate_must_be_positive_via_query_model(self):
        parsed = parse_queries("ACQUIRE rain FROM RECT(0,0,1,1) RATE 0")[0]
        with pytest.raises(Exception):
            parsed.to_query()
