"""Unit tests for the attribute catalog."""

import pytest

from repro.errors import QueryError
from repro.query import AttributeCatalog, AttributeInfo, AttributeKind


class TestAttributeCatalog:
    def test_default_catalog_has_paper_attributes(self):
        catalog = AttributeCatalog.default()
        assert "rain" in catalog
        assert "temp" in catalog
        assert catalog.get("rain").kind is AttributeKind.HUMAN_SENSED
        assert catalog.get("temp").kind is AttributeKind.SENSOR_SENSED

    def test_register_and_lookup(self):
        catalog = AttributeCatalog()
        catalog.register_sensor_sensed("noise", float, "Ambient noise level (dB)")
        info = catalog.get("noise")
        assert info.value_type is float
        assert len(catalog) == 1

    def test_duplicate_registration_rejected(self):
        catalog = AttributeCatalog()
        catalog.register_human_sensed("rain")
        with pytest.raises(QueryError):
            catalog.register_human_sensed("rain")

    def test_unknown_attribute_raises(self):
        with pytest.raises(QueryError):
            AttributeCatalog().get("humidity")

    def test_kind_partitions(self):
        catalog = AttributeCatalog.default()
        assert catalog.human_sensed() == ["rain"]
        assert catalog.sensor_sensed() == ["temp"]
        assert catalog.names() == ["rain", "temp"]

    def test_validate_attribute(self):
        catalog = AttributeCatalog.default()
        assert catalog.validate_attribute("rain").name == "rain"
        with pytest.raises(QueryError):
            catalog.validate_attribute("wind")

    def test_attribute_info_requires_name(self):
        with pytest.raises(QueryError):
            AttributeInfo("", AttributeKind.HUMAN_SENSED, bool)
