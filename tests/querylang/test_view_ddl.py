"""Lexer/parser tests for the view DDL (CREATE VIEW / DROP VIEW / SHOW VIEWS)."""

import pytest

from repro.errors import QueryParseError
from repro.query import (
    CreateViewStatement,
    DropViewStatement,
    ShowViewsStatement,
    parse_statements,
    tokenize,
)
from repro.query.lexer import TokenType


class TestLexer:
    @pytest.mark.parametrize(
        "word",
        ["CREATE", "VIEW", "VIEWS", "ON", "GROUP", "BY", "CELL", "ATTRIBUTE", "WINDOW", "SLIDE", "DROP"],
    )
    def test_view_keywords_tokenise_case_insensitively(self, word):
        for spelling in (word, word.lower(), word.capitalize()):
            token = tokenize(spelling)[0]
            assert token.type is TokenType.KEYWORD
            # Keyword tokens keep their original spelling (so keywords can
            # double as names); matching is case-insensitive.
            assert token.value == spelling
            assert token.is_keyword(word)

    def test_keywords_stay_usable_as_names(self):
        # Regression: adding the view-DDL keywords must not break ACQUIRE
        # statements that use those words as attribute or query names.
        (statement,) = parse_statements(
            "ACQUIRE window FROM RECT(0,0,1,1) AT RATE 1 AS Cell"
        )
        assert statement.attribute == "window"
        assert statement.name == "Cell"
        (view,) = parse_statements("CREATE VIEW Group ON Cell AS COUNT(*) WINDOW 2")
        assert view.name == "Group" and view.query_name == "Cell"
        (stop,) = parse_statements("STOP Cell")
        assert stop.name == "Cell"

    def test_star_tokenises(self):
        tokens = tokenize("COUNT(*)")
        assert [t.type for t in tokens[:4]] == [
            TokenType.IDENTIFIER,
            TokenType.LPAREN,
            TokenType.STAR,
            TokenType.RPAREN,
        ]


class TestCreateView:
    def test_full_clause(self):
        (statement,) = parse_statements(
            "CREATE VIEW Wetness ON Storm AS AVG(value) GROUP BY CELL "
            "WINDOW 5 SLIDE 1"
        )
        assert statement == CreateViewStatement(
            name="Wetness",
            query_name="Storm",
            aggregate="AVG",
            window=5.0,
            slide=1.0,
            group_by="cell",
        )

    def test_minimal_clause_defaults(self):
        (statement,) = parse_statements("create view W on Q as count(*) window 2")
        assert statement.aggregate == "COUNT"
        assert statement.slide is None
        assert statement.group_by == "region"

    def test_empty_argument_list_allowed(self):
        (statement,) = parse_statements("CREATE VIEW W ON Q AS COUNT() WINDOW 2")
        assert statement.aggregate == "COUNT"

    def test_group_by_attribute(self):
        (statement,) = parse_statements(
            "CREATE VIEW W ON Q AS P95(value) GROUP BY ATTRIBUTE WINDOW 4"
        )
        assert statement.aggregate == "P95"
        assert statement.group_by == "attribute"

    def test_to_spec_round_trips(self):
        (statement,) = parse_statements(
            "CREATE VIEW W ON Q AS MAX(value) GROUP BY CELL WINDOW 6 SLIDE 2"
        )
        spec = statement.to_spec()
        assert spec.aggregate == "MAX"
        assert spec.window == 6.0 and spec.slide == 2.0
        assert spec.panes_per_window == 3
        assert spec.name == "W"

    def test_unknown_aggregate_surfaces_at_spec_time(self):
        from repro.errors import ViewError

        (statement,) = parse_statements("CREATE VIEW W ON Q AS MEDIAN(value) WINDOW 2")
        with pytest.raises(ViewError, match="unknown aggregate"):
            statement.to_spec()

    @pytest.mark.parametrize(
        "text, message",
        [
            ("CREATE VIEW W ON Q AS AVG(pressure) WINDOW 2", "value"),
            ("CREATE VIEW W ON Q AS AVG(value WINDOW 2", r"\)"),
            ("CREATE VIEW W ON Q AS WINDOW(value) WINDOW 2", "aggregate name"),
            ("CREATE VIEW W ON Q AS AVG(value)", "WINDOW"),
            ("CREATE VIEW W ON Q AS AVG(value) WINDOW 0", "positive"),
            ("CREATE VIEW W ON Q AS AVG(value) WINDOW 2 SLIDE -1", "positive"),
            ("CREATE VIEW W ON Q AS AVG(value) GROUP BY SENSOR WINDOW 2", "CELL or ATTRIBUTE"),
            ("CREATE VIEW W Q AS AVG(value) WINDOW 2", "ON"),
        ],
    )
    def test_malformed_statements_raise(self, text, message):
        with pytest.raises(QueryParseError, match=message):
            parse_statements(text)


class TestDropAndShow:
    def test_drop_view(self):
        (statement,) = parse_statements("DROP VIEW Wetness")
        assert statement == DropViewStatement(name="Wetness")

    def test_drop_needs_view_keyword(self):
        with pytest.raises(QueryParseError, match="VIEW"):
            parse_statements("DROP Wetness")

    def test_show_views(self):
        (statement,) = parse_statements("show views")
        assert statement == ShowViewsStatement()

    def test_show_still_needs_a_subject(self):
        with pytest.raises(QueryParseError, match="QUERIES or VIEWS"):
            parse_statements("SHOW TABLES")

    def test_scripts_mix_session_and_view_ddl(self):
        statements = parse_statements(
            "ACQUIRE rain FROM RECT(0,0,2,2) RATE 10 AS Storm; "
            "CREATE VIEW W ON Storm AS COUNT(*) WINDOW 2; "
            "SHOW VIEWS; DROP VIEW W; STOP Storm"
        )
        assert [type(s).__name__ for s in statements] == [
            "ParsedQuery",
            "CreateViewStatement",
            "ShowViewsStatement",
            "DropViewStatement",
            "StopStatement",
        ]
