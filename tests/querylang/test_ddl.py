"""Lexer/parser tests for the session DDL (ALTER / STOP / SHOW QUERIES)."""

import pytest

from repro.errors import QueryParseError
from repro.query import (
    AlterStatement,
    ParsedQuery,
    ShowQueriesStatement,
    StopStatement,
    parse_queries,
    parse_statements,
    tokenize,
)
from repro.query.lexer import TokenType


class TestLexerKeywords:
    @pytest.mark.parametrize("word", ["ALTER", "SET", "STOP", "SHOW", "QUERIES"])
    def test_ddl_keywords_tokenise_case_insensitively(self, word):
        for spelling in (word, word.lower(), word.capitalize()):
            token = tokenize(spelling)[0]
            assert token.type is TokenType.KEYWORD
            # Keyword tokens keep their original spelling (so keywords can
            # double as names); matching is case-insensitive.
            assert token.value == spelling
            assert token.is_keyword(word)

    def test_query_names_stay_identifiers(self):
        tokens = tokenize("ALTER Storm SET RATE 5")
        assert [t.type for t in tokens[:2]] == [TokenType.KEYWORD, TokenType.IDENTIFIER]
        assert tokens[1].value == "Storm"


class TestAlterParsing:
    def test_alter_rate_with_units(self):
        (statement,) = parse_statements("ALTER Storm SET RATE 5 PER KM2 PER MIN")
        assert statement == AlterStatement(
            name="Storm", rate_value=5.0, area_unit="km2", time_unit="min"
        )
        assert statement.rate_spec().per_unit == pytest.approx(5.0)

    def test_alter_rate_unitless(self):
        (statement,) = parse_statements("alter storm set rate 2.5")
        assert statement.name == "storm"
        assert statement.rate_value == 2.5
        assert statement.area_unit == "unit2" and statement.time_unit == "unit"

    def test_alter_region_with_and_without_region_keyword(self):
        for text in (
            "ALTER Storm SET REGION RECT(0, 0, 2, 2)",
            "ALTER Storm SET RECT(0, 0, 2, 2)",
            "ALTER Storm SET REGION(0, 0, 2, 2)",
        ):
            (statement,) = parse_statements(text)
            assert statement.rate_value is None
            assert statement.rate_spec() is None
            assert statement.region.to_region().area == pytest.approx(4.0)

    def test_alter_requires_rate_or_region(self):
        with pytest.raises(QueryParseError, match="RATE or REGION"):
            parse_statements("ALTER Storm SET BUDGET 5")

    def test_alter_requires_name(self):
        with pytest.raises(QueryParseError, match="query name"):
            parse_statements("ALTER")

    def test_alter_accepts_keywords_as_names(self):
        # Contextual keywords: a query may be named after any language
        # keyword (here the view DDL's SET-lookalike "Window").
        (statement,) = parse_statements("ALTER Window SET RATE 5")
        assert statement.name == "Window"

    def test_alter_rejects_bad_region_literal(self):
        with pytest.raises(QueryParseError):
            parse_statements("ALTER Storm SET REGION RECT(2, 2, 1, 1)")


class TestStopAndShowParsing:
    def test_stop(self):
        (statement,) = parse_statements("STOP Heat")
        assert statement == StopStatement(name="Heat")

    def test_stop_requires_name(self):
        with pytest.raises(QueryParseError, match="query name"):
            parse_statements("STOP")

    def test_show_queries(self):
        (statement,) = parse_statements("SHOW QUERIES")
        assert statement == ShowQueriesStatement()

    def test_show_requires_queries_keyword(self):
        with pytest.raises(QueryParseError, match="QUERIES"):
            parse_statements("SHOW TABLES")


class TestScripts:
    def test_mixed_script_parses_in_order(self):
        statements = parse_statements(
            "ACQUIRE rain FROM RECT(0,0,2,2) RATE 10 AS Storm;"
            "ALTER Storm SET RATE 5;"
            "SHOW QUERIES;"
            "STOP Storm"
        )
        assert [type(s) for s in statements] == [
            ParsedQuery,
            AlterStatement,
            ShowQueriesStatement,
            StopStatement,
        ]

    def test_unknown_leading_keyword_is_a_clear_error(self):
        with pytest.raises(QueryParseError, match="ACQUIRE, ALTER, STOP, SHOW, CREATE, DROP or EXPLAIN"):
            parse_statements("SELECT rain FROM somewhere")

    def test_parse_queries_rejects_ddl(self):
        with pytest.raises(QueryParseError, match="only ACQUIRE"):
            parse_queries("ACQUIRE rain FROM RECT(0,0,2,2) RATE 10; STOP Storm")

    def test_parse_queries_still_parses_acquire_scripts(self):
        queries = parse_queries(
            "ACQUIRE rain FROM RECT(0,0,2,2) RATE 10 AS A;"
            "ACQUIRE temp FROM RECT(1,1,3,3) RATE 5 AS B"
        )
        assert [q.name for q in queries] == ["A", "B"]
