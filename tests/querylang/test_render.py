"""Golden renders of the shared session tables (``repro.query.render``).

The repl and the serving layer's text mode both show these tables; the
goldens pin the exact text so neither surface can drift.  Synthetic
session rows keep the goldens fully deterministic (no engine run in the
way of the byte-for-byte comparison); a live-engine test then checks the
repl and the server read from the same functions.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro import cli
from repro.core.engine import QuerySessionInfo
from repro.query import frames_table, health_table, sessions_table, views_table
from repro.query import render
from repro.views.frames import ViewFrame
from repro.views.view import ViewSessionInfo

STORM = QuerySessionInfo(
    label="Storm",
    query_id=1,
    attribute="rain",
    requested_rate=8.0,
    region_area=4.0,
    paused=False,
    total_tuples=117,
    batches_completed=3,
    achieved_rate=9.75,
    views=1,
    degraded_pairs=((0, 1),),
)

RAIN = ViewSessionInfo(
    name="Rain",
    query_label="Storm",
    query_id=1,
    aggregate="AVG",
    group_by="CELL",
    window=2.0,
    slide=2.0,
    frames_emitted=3,
    frames_retained=3,
    tuples_total=117,
    last_window_end=6.0,
    active=True,
    error=None,
)


class TestSessionsGolden:
    def test_empty_table(self):
        assert sessions_table([]).render() == (
            "== query sessions ==\n"
            "query  attribute  area  rate  achieved  tuples  batches  views  health  state\n"
            "-----  ---------  ----  ----  --------  ------  -------  -----  ------  -----"
        )

    def test_one_degraded_session(self):
        assert sessions_table([STORM]).render() == (
            "== query sessions ==\n"
            "query  attribute  area  rate  achieved  tuples  batches  views  health      state\n"
            "-----  ---------  ----  ----  --------  ------  -------  -----  ----------  -----\n"
            "Storm  rain       4     8     9.75      117     3        1      1 degraded  live "
        )

    def test_paused_session_without_rate(self):
        info = QuerySessionInfo(
            label="Heat",
            query_id=2,
            attribute="temp",
            requested_rate=6.0,
            region_area=4.0,
            paused=True,
            total_tuples=0,
            batches_completed=0,
            achieved_rate=None,
            views=0,
            degraded_pairs=(),
        )
        rendered = sessions_table([info]).render()
        row = rendered.splitlines()[-1]
        assert "paused" in row
        assert "ok" in row
        assert "  -  " in f" {row} "  # achieved column shows the dash


class TestViewsGolden:
    def test_empty_table(self):
        assert views_table([]).render() == (
            "== continuous views ==\n"
            "view  on  aggregate  group by  window  slide  frames  tuples  last close  state\n"
            "----  --  ---------  --------  ------  -----  ------  ------  ----------  -----"
        )

    def test_one_live_view(self):
        assert views_table([RAIN]).render() == (
            "== continuous views ==\n"
            "view  on     aggregate  group by  window  slide  frames  tuples  last close  state\n"
            "----  -----  ---------  --------  ------  -----  ------  ------  ----------  -----\n"
            "Rain  Storm  AVG        CELL      2       2      3       117     6           live "
        )

    def test_failed_view_shows_the_error(self):
        from dataclasses import replace

        dead = replace(RAIN, active=False, error="fold exploded")
        assert "failed: fold exploded" in views_table([dead]).render()


class TestFramesGolden:
    def test_frames_with_groups_and_an_empty_window(self):
        spec = SimpleNamespace(
            aggregate="avg",
            describe=lambda: "AVG(value) GROUP BY CELL WINDOW 2",
        )
        view = SimpleNamespace(name="Rain", spec=spec)
        keys = np.empty(2, dtype=object)
        keys[:] = [(0, 0), (1, 1)]
        full = ViewFrame(
            frame_index=0,
            window_start=0.0,
            window_end=2.0,
            keys=keys,
            values=np.array([0.5, -1.25]),
            counts=np.array([4, 2], dtype=np.int64),
        )
        empty = ViewFrame(
            frame_index=1,
            window_start=2.0,
            window_end=4.0,
            keys=np.empty(0, dtype=object),
            values=np.empty(0),
            counts=np.empty(0, dtype=np.int64),
        )
        assert frames_table(view, [full, empty]).render() == (
            "== view Rain: AVG(value) GROUP BY CELL WINDOW 2 ==\n"
            "frame  window  group   AVG    tuples\n"
            "-----  ------  ------  -----  ------\n"
            "0      [0, 2)  (0, 0)  0.5    4     \n"
            "0      [0, 2)  (1, 1)  -1.25  2     \n"
            "1      [2, 4)  -       -      0     "
        )


class TestSharedSurface:
    def test_cli_aliases_are_the_render_functions(self):
        # The repl renders through the exact same callables the server's
        # text mode uses — no drift possible.
        assert cli._sessions_table is render.sessions_table
        assert cli._views_table is render.views_table
        assert cli._health_table is render.health_table
        assert cli._frames_table is render.frames_table

    def test_query_package_reexports(self):
        from repro import query

        assert query.sessions_table is render.sessions_table
        assert query.views_table is render.views_table
        assert query.health_table is render.health_table
        assert query.frames_table is render.frames_table

    def test_health_table_shape_on_a_live_engine(self, small_config, city_world):
        from repro.core import CraqrEngine

        engine = CraqrEngine(small_config, city_world)
        handle = engine.execute(
            "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 8 PER KM2 PER MIN AS Storm"
        )
        engine.run(2)
        table = health_table(engine, handle)
        rendered = table.render()
        assert rendered.startswith("== health of Storm (rain), last batch ==")
        assert table.headers == [
            "cell", "requests", "responses", "timeouts", "drops", "retries",
            "rate ewma", "state",
        ]
        assert len(table.rows) == len(engine.planner.cells_for_query(handle.query_id))
        assert all(row[-1] in ("ok", "degraded") for row in table.rows)
