"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import SCENARIOS, build_parser, main


class _Capture:
    def __init__(self):
        self.lines = []

    def __call__(self, text):
        self.lines.append(str(text))

    @property
    def text(self):
        return "\n".join(self.lines)


class TestParser:
    def test_run_requires_query(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--query", "ACQUIRE rain FROM RECT(0,0,2,2) RATE 10"])
        assert args.scenario == "rain-temperature"
        assert args.batches == 20

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "mars", "--query", "x"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_scenarios_lists_all(self):
        capture = _Capture()
        assert main(["scenarios"], out=capture) == 0
        for name in SCENARIOS:
            assert name in capture.text

    def test_attributes_lists_catalog(self):
        capture = _Capture()
        assert main(["attributes"], out=capture) == 0
        assert "rain" in capture.text
        assert "temp" in capture.text
        assert "human" in capture.text

    def test_run_end_to_end(self):
        capture = _Capture()
        code = main(
            [
                "run",
                "--scenario",
                "uniform",
                "--sensors",
                "120",
                "--batches",
                "4",
                "--seed",
                "3",
                "--show-samples",
                "2",
                "--query",
                "ACQUIRE rain FROM RECT(0,0,2,2) AT RATE 8 PER KM2 PER MIN AS Storm",
                "--query",
                "ACQUIRE temp FROM RECT(1,1,3,3) AT RATE 5 PER KM2 PER MIN AS Heat",
            ],
            out=capture,
        )
        assert code == 0
        assert "Storm" in capture.text
        assert "Heat" in capture.text
        assert "achieved rate" in capture.text
        assert "first tuples of Storm" in capture.text

    def test_run_rejects_unknown_attribute(self):
        capture = _Capture()
        code = main(
            [
                "run",
                "--batches",
                "2",
                "--query",
                "ACQUIRE humidity FROM RECT(0,0,2,2) RATE 5",
            ],
            out=capture,
        )
        assert code == 1
        assert "error" in capture.text

    def test_run_rejects_bad_query_text(self):
        capture = _Capture()
        code = main(["run", "--batches", "2", "--query", "SELECT * FROM rain"], out=capture)
        assert code == 1
        assert "error" in capture.text

    def test_run_rejects_non_positive_batches(self):
        capture = _Capture()
        code = main(
            ["run", "--batches", "0", "--query", "ACQUIRE rain FROM RECT(0,0,2,2) RATE 5"],
            out=capture,
        )
        assert code == 1


def run_repl(script, *args):
    capture = _Capture()
    code = main(
        ["repl", "--scenario", "uniform", "--sensors", "120", "--seed", "3", *args],
        out=capture,
        in_stream=io.StringIO(script),
    )
    return code, capture


class TestRepl:
    def test_full_session_smoke(self):
        script = """
        ACQUIRE rain FROM RECT(0,0,2,2) AT RATE 10 PER KM2 PER MIN AS Storm
        run 4
        SHOW QUERIES
        ALTER Storm SET RATE 5 PER KM2 PER MIN
        run 3
        ALTER Storm SET REGION RECT(1,1,3,3)
        STOP Storm
        SHOW QUERIES
        quit
        """
        code, capture = run_repl(script)
        assert code == 0
        assert "registered Storm" in capture.text
        assert "ran 4 batch(es)" in capture.text
        assert "altered Storm: rate 5" in capture.text
        assert "stopped Storm" in capture.text
        assert "query sessions" in capture.text
        assert "bye: 7 batches run" in capture.text

    def test_errors_do_not_kill_the_session(self):
        script = """
        STOP Nobody
        nonsense statement
        ACQUIRE unknown_attr FROM RECT(0,0,2,2) RATE 5
        run x
        ACQUIRE rain FROM RECT(0,0,2,2) RATE 5 AS Ok
        run 1
        """
        code, capture = run_repl(script)
        assert code == 0
        assert capture.text.count("error:") == 4
        assert "registered Ok" in capture.text
        assert "ran 1 batch(es)" in capture.text

    def test_help_comments_and_eof(self):
        code, capture = run_repl("# a comment\nhelp\n")
        assert code == 0
        assert "ALTER <name> SET RATE" in capture.text
        assert "bye: 0 batches run" in capture.text

    def test_retention_flag_validation(self):
        code, capture = run_repl("quit\n", "--retention-batches", "0")
        assert code == 1
        assert "retention-batches must be positive" in capture.text

    def test_retention_flag_accepted(self):
        script = "ACQUIRE rain FROM RECT(0,0,2,2) RATE 8 AS Bounded\nrun 6\nSHOW QUERIES\n"
        code, capture = run_repl(script, "--retention-batches", "3")
        assert code == 0
        assert "registered Bounded" in capture.text
        assert "ran 6 batch(es)" in capture.text
        # The session row survives retention eviction with exact totals.
        assert "Bounded" in capture.text.split("query sessions")[1]

    def test_repl_continuous_views_round_trip(self):
        script = """
        ACQUIRE rain FROM RECT(0,0,2,2) AT RATE 8 PER KM2 PER MIN AS Storm
        CREATE VIEW Tiles ON Storm AS AVG(value) GROUP BY CELL WINDOW 2
        run 4
        SHOW VIEWS
        SHOW QUERIES
        frames Tiles 2
        DROP VIEW Tiles
        frames Tiles
        """
        code, capture = run_repl(script)
        assert code == 0
        assert "created view Tiles on Storm" in capture.text
        views_table = capture.text.split("continuous views")[1]
        assert "Tiles" in views_table and "live" in views_table
        # The extended session row reflects the attached view count.
        sessions_table = capture.text.split("query sessions")[1]
        assert "views" in sessions_table
        assert "view Tiles: AVG(value) GROUP BY CELL WINDOW 2" in capture.text
        assert "dropped view Tiles after 2 frames" in capture.text
        # After DROP the repl can no longer resolve the name (and says so).
        assert "error: no view is named 'Tiles'" in capture.text

    def test_repl_frames_command_errors(self):
        script = """
        frames
        frames Ghost
        frames Ghost nope
        """
        code, capture = run_repl(script)
        assert code == 0
        assert "'frames' takes a view name" in capture.text
        assert "no view is named 'Ghost'" in capture.text
        assert "'frames' takes a count" in capture.text

    def test_health_command_without_resilience(self):
        script = """
        ACQUIRE rain FROM RECT(0,0,2,2) AT RATE 8 PER KM2 PER MIN AS Storm
        run 2
        health Storm
        health
        health Ghost
        """
        code, capture = run_repl(script)
        assert code == 0
        assert "health of Storm (rain)" in capture.text
        assert "rate ewma" in capture.text
        assert "sensor health monitoring is off" in capture.text
        assert "'health' takes exactly one query name" in capture.text
        assert "no registered query is labelled 'Ghost'" in capture.text

    def test_sessions_table_has_health_column(self):
        script = """
        ACQUIRE rain FROM RECT(0,0,2,2) AT RATE 8 PER KM2 PER MIN AS Storm
        run 2
        SHOW QUERIES
        """
        code, capture = run_repl(script)
        assert code == 0
        sessions_table = capture.text.split("query sessions")[1]
        assert "health" in sessions_table
        assert "ok" in sessions_table


class TestFaultScenarios:
    def test_run_flaky_crowd_scenario(self):
        capture = _Capture()
        code = main(
            [
                "run",
                "--scenario",
                "flaky-crowd",
                "--sensors",
                "200",
                "--batches",
                "4",
                "--query",
                "ACQUIRE temp FROM RECT(0,0,3,3) AT RATE 6 PER KM2 PER MIN AS Heat",
            ],
            out=capture,
        )
        assert code == 0
        assert "unreliable crowd" in capture.text
        assert "Heat" in capture.text

    def test_repl_health_on_cell_outage_scenario(self):
        capture = _Capture()
        script = """
        ACQUIRE temp FROM RECT(0,0,2,2) AT RATE 10 PER KM2 PER MIN AS Quad
        run 6
        health Quad
        SHOW QUERIES
        """
        code = main(
            ["repl", "--scenario", "cell-outage", "--sensors", "240", "--seed", "19"],
            out=capture,
            in_stream=io.StringIO(script),
        )
        assert code == 0
        assert "health of Quad (temp)" in capture.text
        assert "quarantined sensors:" in capture.text
        # Six batches in, the outage window is open and responses are lost.
        assert "degraded" in capture.text or "drops" in capture.text


class TestLint:
    """The ``lint`` sub-command: craqr-lint with the 0/1/2 exit contract."""

    def _write_violation(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n\n"
            "def fresh():\n"
            "    return np.random.default_rng()\n"
        )
        return bad

    def test_lint_clean_tree_exits_zero(self, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("import numpy as np\n\nrng = np.random.default_rng(7)\n")
        capture = _Capture()
        code = main(["lint", str(tmp_path), "--baseline", "none"], out=capture)
        assert code == 0
        assert "0 finding(s)" in capture.text

    def test_lint_findings_exit_one(self, tmp_path):
        self._write_violation(tmp_path)
        capture = _Capture()
        code = main(["lint", str(tmp_path), "--baseline", "none"], out=capture)
        assert code == 1
        assert "CRQ103" in capture.text

    def test_lint_missing_path_exits_two(self, tmp_path):
        capture = _Capture()
        code = main(["lint", str(tmp_path / "nope"), "--baseline", "none"], out=capture)
        assert code == 2
        assert "no such path" in capture.text

    def test_lint_usage_error_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["lint", "--format", "xml"])
        assert excinfo.value.code == 2

    def test_lint_json_format(self, tmp_path):
        import json

        self._write_violation(tmp_path)
        capture = _Capture()
        code = main(
            ["lint", str(tmp_path), "--baseline", "none", "--format", "json"],
            out=capture,
        )
        assert code == 1
        payload = json.loads(capture.text)
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "CRQ103"

    def test_lint_baseline_waives_then_reports_stale(self, tmp_path):
        bad = self._write_violation(tmp_path)
        baseline = tmp_path / "craqr-baseline.json"
        capture = _Capture()
        code = main(
            ["lint", str(tmp_path), "--baseline", str(baseline), "--write-baseline"],
            out=capture,
        )
        assert code == 0

        bad.write_text("import numpy as np\n\nrng = np.random.default_rng(7)\n")
        capture = _Capture()
        code = main(["lint", str(tmp_path), "--baseline", str(baseline)], out=capture)
        assert code == 1
        assert "CRQ002" in capture.text

    def test_lint_explain_lists_rules(self):
        capture = _Capture()
        code = main(["lint", "--explain"], out=capture)
        assert code == 0
        for family_example in ("CRQ101", "CRQ203", "CRQ302", "CRQ404", "CRQ503"):
            assert family_example in capture.text

    def test_lint_default_scan_is_clean(self):
        """Linting the installed package with the repo baseline passes."""
        capture = _Capture()
        assert main(["lint"], out=capture) == 0
