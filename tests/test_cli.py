"""Unit tests for the command-line interface."""

import pytest

from repro.cli import SCENARIOS, build_parser, main


class _Capture:
    def __init__(self):
        self.lines = []

    def __call__(self, text):
        self.lines.append(str(text))

    @property
    def text(self):
        return "\n".join(self.lines)


class TestParser:
    def test_run_requires_query(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--query", "ACQUIRE rain FROM RECT(0,0,2,2) RATE 10"])
        assert args.scenario == "rain-temperature"
        assert args.batches == 20

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "mars", "--query", "x"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_scenarios_lists_all(self):
        capture = _Capture()
        assert main(["scenarios"], out=capture) == 0
        for name in SCENARIOS:
            assert name in capture.text

    def test_attributes_lists_catalog(self):
        capture = _Capture()
        assert main(["attributes"], out=capture) == 0
        assert "rain" in capture.text
        assert "temp" in capture.text
        assert "human" in capture.text

    def test_run_end_to_end(self):
        capture = _Capture()
        code = main(
            [
                "run",
                "--scenario",
                "uniform",
                "--sensors",
                "120",
                "--batches",
                "4",
                "--seed",
                "3",
                "--show-samples",
                "2",
                "--query",
                "ACQUIRE rain FROM RECT(0,0,2,2) AT RATE 8 PER KM2 PER MIN AS Storm",
                "--query",
                "ACQUIRE temp FROM RECT(1,1,3,3) AT RATE 5 PER KM2 PER MIN AS Heat",
            ],
            out=capture,
        )
        assert code == 0
        assert "Storm" in capture.text
        assert "Heat" in capture.text
        assert "achieved rate" in capture.text
        assert "first tuples of Storm" in capture.text

    def test_run_rejects_unknown_attribute(self):
        capture = _Capture()
        code = main(
            [
                "run",
                "--batches",
                "2",
                "--query",
                "ACQUIRE humidity FROM RECT(0,0,2,2) RATE 5",
            ],
            out=capture,
        )
        assert code == 1
        assert "error" in capture.text

    def test_run_rejects_bad_query_text(self):
        capture = _Capture()
        code = main(["run", "--batches", "2", "--query", "SELECT * FROM rain"], out=capture)
        assert code == 1
        assert "error" in capture.text

    def test_run_rejects_non_positive_batches(self):
        capture = _Capture()
        code = main(
            ["run", "--batches", "0", "--query", "ACQUIRE rain FROM RECT(0,0,2,2) RATE 5"],
            out=capture,
        )
        assert code == 1
