"""The checkpoint file format and its crash-consistency guarantees.

Covers the framing (magic/version/length/checksum), atomic writes (temp
file + fsync + rename; a crash mid-write never leaves a torn target),
detection of every corruption class, and the :class:`CheckpointStore`'s
retention and torn-newest fallback behaviour.
"""

import pickle

import pytest

from recovery_harness import make_engine, restore_latest_fresh, run_to
from repro.errors import RecoveryError
from repro.recovery import (
    CheckpointStore,
    EngineSnapshot,
    atomic_write_bytes,
    atomic_write_text,
    list_snapshots,
    load_latest,
    read_snapshot_file,
    write_snapshot_file,
)
from repro.recovery.io import MAGIC, frame_payload, unframe_payload


class TestFraming:
    def test_frame_unframe_round_trip(self):
        payload = pickle.dumps({"hello": "world"})
        assert unframe_payload(frame_payload(payload)) == payload

    def test_frame_starts_with_magic(self):
        assert frame_payload(b"x").startswith(MAGIC)

    def test_short_file_is_rejected(self):
        with pytest.raises(RecoveryError, match="shorter than"):
            unframe_payload(b"CRQR")

    def test_bad_magic_is_rejected(self):
        framed = bytearray(frame_payload(b"payload"))
        framed[:8] = b"NOTMAGIC"
        with pytest.raises(RecoveryError, match="bad magic"):
            unframe_payload(bytes(framed))

    def test_future_format_version_is_rejected(self):
        framed = frame_payload(b"payload", version=2)
        with pytest.raises(RecoveryError, match="version 2"):
            unframe_payload(framed)

    def test_torn_payload_is_rejected(self):
        framed = frame_payload(b"a moderately long payload")
        with pytest.raises(RecoveryError, match="torn"):
            unframe_payload(framed[:-5])

    def test_bit_flip_is_rejected(self):
        framed = bytearray(frame_payload(b"a moderately long payload"))
        framed[-1] ^= 0x01
        with pytest.raises(RecoveryError, match="checksum mismatch"):
            unframe_payload(bytes(framed))

    def test_error_names_the_source(self):
        with pytest.raises(RecoveryError, match="badfile.ckpt"):
            unframe_payload(b"", source="badfile.ckpt")


class TestAtomicWrites:
    def test_write_creates_parents_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "file.bin"
        atomic_write_bytes(target, b"data")
        assert target.read_bytes() == b"data"
        assert not list(target.parent.glob("*.tmp"))

    def test_text_round_trip(self, tmp_path):
        target = tmp_path / "metrics.json"
        atomic_write_text(target, '{"a": 1}\n')
        assert target.read_text() == '{"a": 1}\n'

    def test_crash_before_replace_preserves_the_old_file(self, tmp_path):
        """A process dying between temp-write and rename (modelled by a
        raising hook) must leave the previous contents untouched and no
        temp file behind — the atomicity contract the crash matrix relies
        on."""
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"old contents")

        def crash():
            raise RuntimeError("simulated power loss")

        with pytest.raises(RuntimeError):
            atomic_write_bytes(target, b"new contents", pre_replace_hook=crash)
        assert target.read_bytes() == b"old contents"
        assert not list(tmp_path.glob("*.tmp")) and not list(tmp_path.glob(".*tmp"))

    def test_snapshot_file_round_trip(self, tmp_path):
        target = tmp_path / "snap.ckpt"
        write_snapshot_file(target, b"payload bytes")
        assert read_snapshot_file(target) == b"payload bytes"

    def test_missing_file_raises_recovery_error(self, tmp_path):
        with pytest.raises(RecoveryError, match="cannot read"):
            read_snapshot_file(tmp_path / "nope.ckpt")


class TestDirectoryScanning:
    def test_list_snapshots_sorted_and_filtered(self, tmp_path):
        for name in [
            "checkpoint-00000004.ckpt",
            "checkpoint-00000002.ckpt",
            "checkpoint-00000010.ckpt",
            "notes.txt",
            ".checkpoint-00000006.ckpt.123.tmp",
        ]:
            (tmp_path / name).write_bytes(b"")
        names = [p.name for p in list_snapshots(tmp_path)]
        assert names == [
            "checkpoint-00000002.ckpt",
            "checkpoint-00000004.ckpt",
            "checkpoint-00000010.ckpt",
        ]

    def test_list_snapshots_missing_directory(self, tmp_path):
        assert list_snapshots(tmp_path / "absent") == []

    def test_load_latest_skips_unreadable_newest(self, tmp_path):
        write_snapshot_file(tmp_path / "checkpoint-00000002.ckpt", b"good")
        (tmp_path / "checkpoint-00000004.ckpt").write_bytes(b"torn garbage")
        latest = load_latest(tmp_path)
        assert latest is not None and latest.name == "checkpoint-00000002.ckpt"

    def test_load_latest_empty_or_corrupt_only(self, tmp_path):
        assert load_latest(tmp_path) is None
        (tmp_path / "checkpoint-00000002.ckpt").write_bytes(b"junk")
        assert load_latest(tmp_path) is None


class TestCheckpointStore:
    def test_rejects_nonpositive_retention(self, tmp_path):
        with pytest.raises(RecoveryError, match="positive"):
            CheckpointStore(tmp_path, retain=0)

    def test_path_embeds_zero_padded_batch_index(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.path_for(10).name == "checkpoint-00000010.ckpt"

    def test_retention_prunes_oldest(self, tmp_path):
        """Running with every=2, retain=3 for 10 batches keeps exactly the
        three newest files — the older ones were pruned after each write."""
        engine = make_engine(checkpoint_dir=tmp_path, every=2, retain=3)
        run_to(engine, 10)
        names = [p.name for p in list_snapshots(tmp_path)]
        assert names == [
            "checkpoint-00000006.ckpt",
            "checkpoint-00000008.ckpt",
            "checkpoint-00000010.ckpt",
        ]

    def test_latest_path_falls_back_over_corrupt_newest(self, tmp_path):
        engine = make_engine(checkpoint_dir=tmp_path, every=2, retain=3)
        run_to(engine, 6)
        newest = tmp_path / "checkpoint-00000006.ckpt"
        data = bytearray(newest.read_bytes())
        data[-1] ^= 0xFF
        newest.write_bytes(bytes(data))
        store = CheckpointStore(tmp_path)
        latest = store.latest_path()
        assert latest is not None and latest.name == "checkpoint-00000004.ckpt"
        assert store.load_latest().batch_index == 4

    def test_restore_latest_on_empty_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="no readable checkpoint"):
            restore_latest_fresh(tmp_path)

    def test_restore_latest_on_corrupt_only_directory_raises(self, tmp_path):
        (tmp_path / "checkpoint-00000002.ckpt").write_bytes(b"junk")
        with pytest.raises(RecoveryError, match="no readable checkpoint"):
            restore_latest_fresh(tmp_path)


class TestSnapshotFiles:
    def test_engine_snapshot_file_round_trip(self, tmp_path):
        engine = run_to(make_engine(), 3)
        snapshot = engine.snapshot()
        path = snapshot.write(tmp_path / "manual.ckpt")
        from repro.recovery import load_snapshot

        clone = load_snapshot(path)
        assert clone.batch_index == 3
        assert clone.queries == snapshot.queries
        assert clone.views == snapshot.views
        assert clone.size_bytes == snapshot.size_bytes

    def test_kind_guard_rejects_foreign_pickles(self, tmp_path):
        """A well-framed file whose payload is not an engine snapshot (say
        a BENCH metrics pickle) is rejected by the payload-kind guard."""
        path = tmp_path / "checkpoint-00000002.ckpt"
        write_snapshot_file(path, pickle.dumps([1, 2, 3]))
        from repro.recovery import load_snapshot

        with pytest.raises(RecoveryError, match="not an engine snapshot"):
            load_snapshot(path)

    def test_explicit_checkpoint_api_writes_where_told(self, tmp_path):
        engine = run_to(make_engine(), 2)
        path = engine.checkpoint(tmp_path / "here.ckpt")
        assert path == tmp_path / "here.ckpt"
        assert EngineSnapshot.from_bytes(path.read_bytes()).batch_index == 2

    def test_checkpoint_without_directory_raises(self):
        engine = run_to(make_engine(), 1)
        with pytest.raises(RecoveryError, match="no checkpoint directory"):
            engine.checkpoint()
