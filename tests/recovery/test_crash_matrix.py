"""The crash matrix: kill the engine at every barrier, restore, converge.

Each :class:`~repro.faults.CrashPoint` brackets a different set of state
mutations (handler/world RNGs, delivered buffers, tuner history, the
checkpoint file itself).  For every point the test arms a
:class:`~repro.faults.CrashInjector`, lets the run die, restores from the
newest surviving checkpoint and replays — the replayed run must be
byte-identical to an uninterrupted reference.  One test does it with a
real ``os._exit`` in a subprocess.
"""

import subprocess
import sys
import pathlib

import pytest

from recovery_harness import (
    engine_digest,
    make_engine,
    restore_latest_fresh,
    run_to,
)
from repro.faults import CrashInjector, CrashPoint, SimulatedCrash
from repro.recovery import list_snapshots

IN_PROCESS_POINTS = [
    CrashPoint.POST_ACQUISITION,
    CrashPoint.POST_MERGE,
    CrashPoint.PRE_VIEW_FOLD,
]


class TestCrashMatrix:
    @pytest.mark.parametrize("point", IN_PROCESS_POINTS, ids=lambda p: p.value)
    def test_crash_restore_replay_converges(self, tmp_path, point):
        reference = run_to(make_engine(), 8)

        crashed = make_engine(checkpoint_dir=tmp_path, every=2)
        crashed.arm_crash(CrashInjector(point, at_batch=5))
        with pytest.raises(SimulatedCrash) as exc:
            run_to(crashed, 8)
        assert exc.value.point is point
        assert exc.value.batch_index == 5
        # The crash hit mid-batch: batch 5 never completed.
        assert crashed.batches_run == 5
        del crashed

        restored = restore_latest_fresh(tmp_path)
        assert restored.batches_run == 4  # newest checkpoint preceding the crash
        run_to(restored, 8)
        assert engine_digest(restored) == engine_digest(reference)

    def test_crash_mid_checkpoint_write_leaves_no_torn_file(self, tmp_path):
        """Dying between the temp-file fsync and the rename must leave the
        previous checkpoints intact, the interrupted target absent and no
        temp file behind; recovery falls back to the previous checkpoint
        and still converges."""
        reference = run_to(make_engine(), 8)

        crashed = make_engine(checkpoint_dir=tmp_path, every=2)
        # Batch 5 completes and triggers the checkpoint-6 write; the
        # injector kills the process inside that write.
        crashed.arm_crash(
            CrashInjector(CrashPoint.MID_CHECKPOINT_WRITE, at_batch=5)
        )
        with pytest.raises(SimulatedCrash):
            run_to(crashed, 8)
        del crashed

        names = [p.name for p in list_snapshots(tmp_path)]
        assert "checkpoint-00000006.ckpt" not in names
        assert "checkpoint-00000004.ckpt" in names
        assert not list(tmp_path.glob("*.tmp")) and not list(tmp_path.glob(".*tmp*"))

        restored = restore_latest_fresh(tmp_path)
        assert restored.batches_run == 4
        run_to(restored, 8)
        assert engine_digest(restored) == engine_digest(reference)

    @pytest.mark.parametrize("damage", ["truncate", "bitflip"], ids=str)
    def test_damaged_newest_checkpoint_falls_back(self, tmp_path, damage):
        """A torn or bit-flipped newest file (crash while the data hit the
        platter badly) is detected by the checksum layer; restore silently
        falls back to the previous retained checkpoint and converges."""
        reference = run_to(make_engine(), 8)

        engine = make_engine(checkpoint_dir=tmp_path, every=2)
        run_to(engine, 6)
        del engine

        newest = tmp_path / "checkpoint-00000006.ckpt"
        data = newest.read_bytes()
        if damage == "truncate":
            newest.write_bytes(data[: len(data) // 2])
        else:
            flipped = bytearray(data)
            flipped[-10] ^= 0xFF
            newest.write_bytes(bytes(flipped))

        restored = restore_latest_fresh(tmp_path)
        assert restored.batches_run == 4
        run_to(restored, 8)
        assert engine_digest(restored) == engine_digest(reference)

    def test_injector_fires_exactly_once(self, tmp_path):
        """The armed injector is one-shot and is not captured into
        checkpoints: neither the restored engine nor later batches of the
        crashed one re-fire it."""
        engine = make_engine(checkpoint_dir=tmp_path, every=2)
        engine.arm_crash(CrashInjector(CrashPoint.POST_MERGE, at_batch=3))
        with pytest.raises(SimulatedCrash):
            run_to(engine, 8)
        # The same engine object can keep running (the barrier is spent).
        run_to(engine, 8)
        assert engine.batches_run == 8

        restored = restore_latest_fresh(tmp_path)
        run_to(restored, 10)  # no crash plan inherited from the snapshot
        assert restored.batches_run == 10


CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {harness!r})

from recovery_harness import make_engine, run_to
from repro.faults import CrashInjector, CrashPoint

engine = make_engine(checkpoint_dir={ckpt!r}, every=2)
engine.arm_crash(
    CrashInjector(CrashPoint.POST_MERGE, at_batch=5, process_exit=True, exit_code=17)
)
run_to(engine, 8)
print("survived", engine.batches_run)  # unreachable if the crash fires
"""


class TestProcessLevelCrash:
    def test_os_exit_crash_then_recover_in_parent(self, tmp_path):
        """The real thing: a child process runs the workload, dies via
        ``os._exit`` (no atexit, no flushing, no unwinding) mid-batch; the
        parent restores from the files it left behind and converges with
        an uninterrupted in-process reference."""
        repo = pathlib.Path(__file__).resolve().parents[2]
        script = CHILD_SCRIPT.format(
            src=str(repo / "src"),
            harness=str(repo / "tests" / "recovery"),
            ckpt=str(tmp_path),
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 17, proc.stderr
        assert "survived" not in proc.stdout

        restored = restore_latest_fresh(tmp_path)
        assert restored.batches_run == 4
        run_to(restored, 8)
        reference = run_to(make_engine(), 8)
        assert engine_digest(restored) == engine_digest(reference)
