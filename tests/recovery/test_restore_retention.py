"""Restore × retention: bounded buffers keep exact lifetime accounting.

A checkpoint of an engine whose buffers already evicted history must
round-trip the *running totals* exactly (they are the paper's achieved-
rate denominators), and cursors reconstructed after a restore must behave
exactly like the pre-crash ones: a cursor that fell behind the retained
window still raises :class:`~repro.errors.StorageError`, a caught-up one
resumes losslessly at O(new) cost.
"""

import pytest

from recovery_harness import engine_digest, make_engine, restore_latest_fresh, run_to
from repro.errors import StorageError
from repro.storage import ResultCursor
from repro.views.frames import FrameCursor

RETENTION = 3  # batches; the view's frame retention derives from it


def make_retained_engine(tmp_path, *, every=2):
    return make_engine(
        checkpoint_dir=tmp_path, every=every, retention_batches=RETENTION
    )


class TestLifetimeTotals:
    def test_totals_exact_after_evict_and_restore(self, tmp_path):
        engine = run_to(make_retained_engine(tmp_path), 10)
        buffer = engine.query("Storm").buffer
        frames = engine.view("Rain").buffer
        # Eviction really happened — retained history < lifetime history.
        assert len(engine.query("Storm").results()) < buffer.total_tuples
        assert frames.frames_evicted > 0

        restored = restore_latest_fresh(tmp_path)
        rbuffer = restored.query("Storm").buffer
        rframes = restored.view("Rain").buffer
        assert rbuffer.total_tuples == buffer.total_tuples
        assert rbuffer.batches_completed == buffer.batches_completed == 10
        assert rframes.frames_emitted == frames.frames_emitted
        assert rframes.tuples_total == frames.tuples_total
        assert restored.total_tuples_delivered() == engine.total_tuples_delivered()
        assert restored.total_tuples_acquired() == engine.total_tuples_acquired()

    def test_retained_run_converges_after_restore(self, tmp_path):
        reference = run_to(make_retained_engine(tmp_path), 10)
        restored = run_to(restore_latest_fresh(tmp_path), 10)
        assert engine_digest(restored) == engine_digest(reference)


class TestResultCursors:
    def test_lagging_cursor_raises_before_and_after_restore(self, tmp_path):
        engine = make_retained_engine(tmp_path)
        lagging = engine.query("Storm").cursor()  # at the head, never read
        run_to(engine, 10)  # retention=3 evicts the cursor's position
        chunk_seq, row = lagging.position
        consumed = lagging.consumed
        with pytest.raises(StorageError, match="retains"):
            lagging.fetch()

        restored = restore_latest_fresh(tmp_path)
        # A consumer persisting its offsets and rebuilding its cursor after
        # the crash gets the same verdict the pre-crash cursor got.
        rebuilt = ResultCursor(
            restored.query("Storm").buffer, chunk_seq, row, consumed
        )
        with pytest.raises(StorageError, match="retains"):
            rebuilt.fetch()

    def test_caught_up_cursor_resumes_losslessly(self, tmp_path):
        engine = make_retained_engine(tmp_path, every=4)
        run_to(engine, 8)  # checkpoint-8 written at this boundary
        cursor = engine.query("Storm").cursor()
        cursor.fetch()  # drain: the consumer is caught up at the crash
        chunk_seq, row = cursor.position
        consumed = cursor.consumed

        run_to(engine, 10)
        expected_ids = [t.tuple_id for t in cursor.fetch()]
        assert expected_ids  # the tail really delivered something

        restored = run_to(restore_latest_fresh(tmp_path), 10)
        rebuilt = ResultCursor(
            restored.query("Storm").buffer, chunk_seq, row, consumed
        )
        assert rebuilt.pending == len(expected_ids)  # O(new): only the tail
        assert [t.tuple_id for t in rebuilt.fetch()] == expected_ids


class TestFrameCursors:
    def test_lagging_frame_cursor_raises_before_and_after_restore(self, tmp_path):
        engine = make_retained_engine(tmp_path)
        lagging = engine.view("Rain").frame_cursor()  # at frame 0, never read
        run_to(engine, 12)  # window 2 → 6 frames emitted, ~2 retained
        position = lagging.position
        assert engine.view("Rain").buffer.frames_evicted > 0
        with pytest.raises(StorageError, match="retains"):
            lagging.fetch()

        restored = restore_latest_fresh(tmp_path)
        rebuilt = FrameCursor(restored.view("Rain").buffer, position)
        with pytest.raises(StorageError, match="retains"):
            rebuilt.fetch()

    def test_caught_up_frame_cursor_resumes_losslessly(self, tmp_path):
        engine = make_retained_engine(tmp_path, every=4)
        run_to(engine, 8)
        cursor = engine.view("Rain").frame_cursor()
        cursor.fetch()
        position = cursor.position

        run_to(engine, 12)
        expected = [
            (f.frame_index, f.values.tobytes(), f.counts.tobytes())
            for f in cursor.fetch()
        ]
        assert expected

        restored = run_to(restore_latest_fresh(tmp_path), 12)
        rebuilt = FrameCursor(restored.view("Rain").buffer, position)
        got = [
            (f.frame_index, f.values.tobytes(), f.counts.tobytes())
            for f in rebuilt.fetch()
        ]
        assert got == expected


class TestErrorMessages:
    def test_lagging_cursor_error_states_window_and_position(self, tmp_path):
        engine = make_retained_engine(tmp_path)
        lagging = engine.query("Storm").cursor()
        run_to(engine, 10)
        with pytest.raises(StorageError) as exc:
            lagging.fetch()
        message = str(exc.value)
        # The message must state the retained window bounds AND where the
        # cursor was, so the consumer can reason about the gap.
        assert "retains" in message and "behind" in message
        assert "retention" in message
        assert "fresh cursor()" in message

    def test_out_of_window_rate_error_states_window(self, tmp_path):
        engine = run_to(make_retained_engine(tmp_path), 10)
        buffer = engine.query("Storm").buffer
        with pytest.raises(StorageError) as exc:
            buffer.rate_over_batches(5.0, last=8)  # only 3 batches retained
        message = str(exc.value)
        assert "retain" in message
        assert "last=None" in message

    def test_lagging_frame_cursor_error_names_remedy(self, tmp_path):
        engine = make_retained_engine(tmp_path)
        lagging = engine.view("Rain").frame_cursor()
        run_to(engine, 12)
        with pytest.raises(StorageError) as exc:
            lagging.fetch()
        assert "fresh frame_cursor()" in str(exc.value)
