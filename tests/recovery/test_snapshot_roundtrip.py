"""The headline recovery contract: restored == uninterrupted, byte for byte.

Run A executes N batches uninterrupted.  Run B executes the same workload
with periodic checkpoints, "crashes" (the engine object is discarded), is
restored from the newest checkpoint and continues to N.  Across strict /
fast-sim RNG modes and columnar on/off — with the full flaky-crowd
``FaultPlan`` + ``ResilienceConfig`` active — both runs must serve
byte-identical streams, view frames, reports and violation sets, pinned
below by golden digests.
"""

import pickle

import pytest

from recovery_harness import (
    SECOND_QUERY,
    engine_digest,
    make_engine,
    restore_latest_fresh,
    run_to,
)
from repro.errors import RecoveryError
from repro.recovery import EngineSnapshot

#: Golden digest of the strict-mode workload after 8 batches — pinned so a
#: determinism regression (or an unintended behaviour change anywhere in
#: the acquisition/fabrication/serving stack) fails loudly.  Columnar
#: on/off share one digest by the engine's byte-identity contract.
GOLDEN_STRICT = "474280cc6c45c0fb5d389cadce86d5755fd092e00e692ae042dc19997e4a684a"
#: Same workload under shared-stream fast-sim RNG.
GOLDEN_FAST_SIM = "4dba6c6ff15ac51909b7ab234f1ab6b69f5a4d4a1b9d51ea7e9561963202497f"


class TestRestoreContinuesByteIdentical:
    @pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "object"])
    @pytest.mark.parametrize("vectorized", [False, True], ids=["strict", "fast-sim"])
    def test_checkpoint_crash_restore_converges(self, tmp_path, vectorized, columnar):
        reference = run_to(
            make_engine(vectorized=vectorized, columnar=columnar), 8
        )
        crashed = make_engine(
            checkpoint_dir=tmp_path, every=2, vectorized=vectorized, columnar=columnar
        )
        run_to(crashed, 5)  # checkpoints landed at batches 2 and 4
        del crashed  # the "crash": all in-memory state is gone
        restored = restore_latest_fresh(tmp_path)
        assert restored.batches_run == 4
        run_to(restored, 8)
        assert engine_digest(restored) == engine_digest(reference)

    @pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "object"])
    def test_strict_golden_digest_pinned(self, tmp_path, columnar):
        engine = make_engine(checkpoint_dir=tmp_path, every=4, columnar=columnar)
        run_to(engine, 5)
        restored = run_to(restore_latest_fresh(tmp_path), 8)
        assert engine_digest(restored) == GOLDEN_STRICT

    def test_fast_sim_golden_digest_pinned(self, tmp_path):
        engine = make_engine(checkpoint_dir=tmp_path, every=4, vectorized=True)
        run_to(engine, 5)
        restored = run_to(restore_latest_fresh(tmp_path), 8)
        assert engine_digest(restored) == GOLDEN_FAST_SIM

    def test_periodic_checkpointing_is_observationally_free(self, tmp_path):
        """Capturing a snapshot must not advance any RNG or mutate state."""
        with_ckpt = run_to(make_engine(checkpoint_dir=tmp_path, every=1), 6)
        without = run_to(make_engine(), 6)
        assert engine_digest(with_ckpt) == engine_digest(without)


class TestSnapshotSemantics:
    def test_restore_is_a_deep_independent_fork(self, tmp_path):
        engine = run_to(make_engine(), 4)
        snapshot = engine.snapshot()
        fork_a = snapshot.restore()
        fork_b = snapshot.restore()
        run_to(fork_a, 8)
        # Advancing one fork leaves the other (and the original) untouched.
        assert fork_b.batches_run == 4
        assert engine.batches_run == 4
        run_to(fork_b, 8)
        assert engine_digest(fork_a) == engine_digest(fork_b)

    def test_snapshot_captures_call_time_state(self, tmp_path):
        engine = run_to(make_engine(), 4)
        snapshot = engine.snapshot()
        run_to(engine, 8)  # later mutations must not leak into the capture
        assert snapshot.restore().batches_run == 4
        assert snapshot.batch_index == 4
        assert snapshot.queries == 1
        assert snapshot.views == 1
        assert snapshot.size_bytes > 0

    def test_post_restore_registrations_match_the_uninterrupted_run(self, tmp_path):
        """New queries after a restore get run-A-identical ids and streams."""
        reference = run_to(make_engine(), 4)
        reference.execute(SECOND_QUERY)
        run_to(reference, 8)

        engine = make_engine(checkpoint_dir=tmp_path, every=4)
        run_to(engine, 4)
        restored = restore_latest_fresh(tmp_path)
        restored.execute(SECOND_QUERY)
        run_to(restored, 8)
        assert restored.query("Heat").query_id == reference.query("Heat").query_id
        assert engine_digest(restored) == engine_digest(reference)

    def test_wire_format_round_trips_in_memory(self):
        engine = run_to(make_engine(), 3)
        snapshot = engine.snapshot()
        clone = EngineSnapshot.from_bytes(snapshot.to_bytes())
        assert clone.batch_index == snapshot.batch_index
        assert engine_digest(clone.restore()) == engine_digest(engine)

    def test_unpicklable_attached_state_raises_recovery_error(self):
        engine = run_to(make_engine(), 2)
        # A user bolt-on the checkpoint cannot serialize must fail loudly
        # at capture time, not corrupt the file or crash the restore.
        engine.world.debug_probe = lambda: None
        with pytest.raises(RecoveryError, match="not serializable"):
            engine.snapshot()

    def test_push_subscribers_never_block_a_snapshot(self):
        """subscribe() wiring is excluded from capture, so even an
        unpicklable subscriber doesn't prevent checkpointing."""
        engine = run_to(make_engine(), 2)
        engine.query("Storm").subscribe(lambda batch: None)
        assert engine.snapshot().batch_index == 2

    def test_user_subscriptions_do_not_survive_restore(self):
        """Documented limit: push consumers must re-subscribe after restore."""

        class Recorder:
            def __init__(self):
                self.batches = 0

            def __call__(self, batch):
                self.batches += 1

        engine = run_to(make_engine(), 2)
        recorder = Recorder()
        engine.query("Storm").subscribe(recorder)
        restored = engine.snapshot().restore()
        before = recorder.batches
        run_to(restored, 5)
        assert recorder.batches == before  # detached: nothing fired
        # ... while the engine-managed view stayed attached and kept folding.
        assert restored.view("Rain").buffer.frames_emitted > 1

    def test_snapshot_mid_dispatch_is_rejected(self):
        engine = run_to(make_engine(), 2)
        engine._ending_batch = True
        with pytest.raises(RecoveryError, match="batch boundary"):
            engine.snapshot()
        engine._ending_batch = False

    def test_payload_kind_is_validated(self):
        bogus = pickle.dumps({"kind": "something-else"})
        from repro.recovery.io import frame_payload

        with pytest.raises(RecoveryError, match="not an engine snapshot"):
            EngineSnapshot.from_bytes(frame_payload(bogus))
