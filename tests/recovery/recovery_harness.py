"""Shared builders for the recovery suite.

Every test in ``tests/recovery/`` runs the same workload — the flaky
crowd (every fault class firing, full mitigation bundle) serving one
query with one continuous view — so the determinism assertions compare
maximally stateful engines: per-sensor RNG streams, retry/quarantine
bookkeeping, degradation EWMAs, budget-tuner history, buffer chunks and
view pane partials all participate in every digest.

``engine_digest`` is the byte-identity oracle: it folds the delivered
streams (every tuple field), the emitted view frames (keys, values and
counts as raw bytes), the retained engine reports, the last batch's
violation set and the lifetime totals into one SHA-256.  Two engines with
equal digests delivered the same bytes to every consumer.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import repro.core.query as _query_module
from repro.config import CheckpointConfig
from repro.core import CraqrEngine
from repro.core.query import QueryIdAllocator
from repro.geometry import Rectangle
from repro.sensing import (
    BernoulliParticipation,
    RainField,
    RandomWaypointMobility,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)
from repro.workloads import (
    default_engine_config,
    default_resilience_config,
    flaky_crowd_plan,
)

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


def simulate_fresh_process() -> None:
    """Reset the process-wide query-id allocator, as a new process would.

    The recovery contract compares runs that would live in *separate*
    processes (run A uninterrupted, run B crash + restore), but the test
    suite hosts both in one interpreter.  The only process-global the
    engine touches is the query-id allocator; resetting it before each
    simulated run makes query ids — which participate in every digest —
    start from 1 exactly like a fresh ``python -m repro.cli`` would.
    """
    _query_module._query_ids = QueryIdAllocator()

QUERY = "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 8 PER KM2 PER MIN AS Storm"
SECOND_QUERY = "ACQUIRE temp FROM RECT(1, 1, 3, 3) AT RATE 6 PER KM2 PER MIN AS Heat"
VIEW = "CREATE VIEW Rain ON Storm AS AVG(value) GROUP BY CELL WINDOW 2"


def make_world(*, vectorized: bool = False, sensor_count: int = 80, seed: int = 11) -> SensingWorld:
    """A small flaky-crowd world (strict per-sensor RNGs unless ``vectorized``)."""
    world = SensingWorld(
        WorldConfig(
            region=REGION,
            sensor_count=sensor_count,
            seed=seed,
            vectorized_rng=vectorized,
        ),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.25, pause=0.5),
        participation_factory=lambda sensor_id: BernoulliParticipation(
            0.6, mean_latency=0.1
        ),
    )
    world.register_field(RainField(REGION, band_width=1.2, period=60.0))
    world.register_field(TemperatureField(REGION))
    return world


def make_engine(
    *,
    checkpoint_dir=None,
    every: int = 2,
    retain: int = 3,
    vectorized: bool = False,
    columnar: bool = True,
    retention_batches=None,
    faults: bool = True,
    view: bool = True,
) -> CraqrEngine:
    """A fully loaded engine: flaky-crowd faults + mitigation, query + view.

    Each call models a fresh process (see :func:`simulate_fresh_process`),
    so run A and run B of the recovery contract never share a query-id
    sequence.
    """
    simulate_fresh_process()
    config = replace(
        default_engine_config(retention_batches=retention_batches),
        columnar=columnar,
    )
    if faults:
        config = replace(
            config,
            faults=flaky_crowd_plan(),
            resilience=default_resilience_config(),
        )
    if checkpoint_dir is not None:
        config = replace(
            config,
            checkpoints=CheckpointConfig(
                directory=str(checkpoint_dir), every=every, retain=retain
            ),
        )
    engine = CraqrEngine(config, make_world(vectorized=vectorized))
    engine.execute(QUERY)
    if view:
        engine.execute(VIEW)
    return engine


def restore_latest_fresh(directory) -> CraqrEngine:
    """Restore the newest checkpoint the way a recovery process would.

    Resets the query-id allocator first (a real recovery runs in a brand
    new process); the restore itself then advances the allocator to the
    snapshot's high-water mark, so post-restore registrations continue the
    id sequence exactly where the crashed run left it.
    """
    simulate_fresh_process()
    return CraqrEngine.restore_latest(directory)


def engine_digest(engine: CraqrEngine) -> str:
    """SHA-256 over everything the engine has served its consumers."""
    h = hashlib.sha256()
    for handle in sorted(engine.query_handles(), key=lambda hd: hd.query_id):
        h.update(f"query:{handle.query_id}:{handle.query.label}".encode())
        for t in handle.results():
            h.update(
                repr(
                    (
                        t.tuple_id,
                        t.attribute,
                        t.sensor_id,
                        float(t.t),
                        float(t.x),
                        float(t.y),
                        None if t.value is None else float(t.value),
                    )
                ).encode()
            )
        h.update(
            repr((handle.buffer.total_tuples, handle.buffer.batches_completed)).encode()
        )
    for vh in sorted(engine.view_handles(), key=lambda v: v.name):
        h.update(f"view:{vh.name}".encode())
        for frame in vh.frames():
            keys = [tuple(k) if isinstance(k, tuple) else str(k) for k in frame.keys]
            h.update(
                repr(
                    (
                        frame.frame_index,
                        float(frame.window_start),
                        float(frame.window_end),
                        keys,
                    )
                ).encode()
            )
            h.update(frame.values.tobytes())
            h.update(frame.counts.tobytes())
    for report in engine.reports:
        h.update(
            repr(
                (
                    report.batch_index,
                    report.tuples_acquired,
                    report.tuples_delivered,
                    sorted(report.degraded_pairs),
                )
            ).encode()
        )
    for v in sorted(engine.violations(), key=lambda v: (v.attribute, v.cell)):
        h.update(
            repr(
                (v.attribute, v.cell, float(v.violation_percent), v.fault_attributed)
            ).encode()
        )
    h.update(
        repr(
            (
                engine.batches_run,
                engine.total_requests_sent(),
                engine.total_tuples_acquired(),
                engine.total_tuples_delivered(),
            )
        ).encode()
    )
    return h.hexdigest()


def run_to(engine: CraqrEngine, batches: int) -> CraqrEngine:
    """Advance the engine to a total batch count and return it."""
    while engine.batches_run < batches:
        engine.run_batch()
    return engine
