"""The SoA sensing world: strict-mode equivalence and vectorised queries.

Strict mode (the default) must be *byte-identical* to the seed
implementation, which kept a ``MobilityState`` dataclass per sensor and
stepped each one with its private generator.  The reference trajectories
here are produced exactly that way — plain dataclass states, scalar
``step`` calls — and compared against the SoA-backed world with ``==``,
not ``allclose``.
"""

import numpy as np
import pytest

from repro.geometry import Rectangle, RectRegion
from repro.sensing import (
    AlwaysRespond,
    BernoulliParticipation,
    GaussMarkovMobility,
    HotspotMobility,
    MobileSensor,
    RandomWalkMobility,
    RandomWaypointMobility,
    SensingWorld,
    SensorStateArrays,
    StationaryMobility,
    WorldConfig,
)
from repro.sensing.mobility import MobilityState

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)

MOBILITY_FACTORIES = {
    "stationary": lambda r: StationaryMobility(r),
    "walk": lambda r: RandomWalkMobility(r, step_std=0.2),
    "waypoint": lambda r: RandomWaypointMobility(r, speed=0.4, pause=0.3),
    "gauss_markov": lambda r: GaussMarkovMobility(r, mean_speed=0.3),
    "hotspot": lambda r: HotspotMobility(r, [(1.0, 1.0, 1.0), (3.0, 3.0, 2.0)]),
}


def reference_trajectories(factory, sensor_count, seed, duration, movement_step):
    """Re-run the pre-SoA per-object simulation: dataclass states, scalar steps."""
    rng = np.random.default_rng(seed)
    sensors = []
    for _ in range(sensor_count):
        model = factory(REGION)
        sensor_rng = np.random.default_rng(rng.integers(0, 2 ** 63 - 1))
        state = model.initial_state(sensor_rng)
        assert isinstance(state, MobilityState)
        sensors.append((model, state, sensor_rng))
    remaining = duration
    while remaining > 1e-12:
        dt = min(movement_step, remaining)
        for model, state, sensor_rng in sensors:
            model.step(state, dt, sensor_rng)
        remaining -= dt
    return np.array([[state.x, state.y] for _, state, _ in sensors])


class TestStrictModeEquivalence:
    """Strict SoA trajectories == the old per-object path, bit for bit."""

    @pytest.mark.parametrize("name", sorted(MOBILITY_FACTORIES))
    def test_advance_byte_identical_to_per_object_path(self, name):
        factory = MOBILITY_FACTORIES[name]
        config = WorldConfig(region=REGION, sensor_count=40, seed=17)
        world = SensingWorld(config, mobility_factory=factory)
        world.advance(2.5)
        expected = reference_trajectories(
            factory, 40, 17, 2.5, config.movement_step
        )
        assert np.array_equal(world.sensor_positions(), expected)

    def test_initial_positions_byte_identical(self):
        factory = MOBILITY_FACTORIES["waypoint"]
        world = SensingWorld(
            WorldConfig(region=REGION, sensor_count=30, seed=23),
            mobility_factory=factory,
        )
        rng = np.random.default_rng(23)
        for sensor in world.sensors:
            model = factory(REGION)
            sensor_rng = np.random.default_rng(rng.integers(0, 2 ** 63 - 1))
            state = model.initial_state(sensor_rng)
            assert (sensor.position.x, sensor.position.y) == (state.x, state.y)


class TestSensorStateArrays:
    def test_rejects_empty(self):
        from repro.errors import CraqrError

        with pytest.raises(CraqrError):
            SensorStateArrays(0)

    def test_state_view_round_trips_none_targets(self):
        arrays = SensorStateArrays(2)
        view = arrays.state_view(0)
        assert view.target_x is None and view.target_y is None
        view.target_x = 1.5
        view.target_y = 2.5
        assert (view.target_x, view.target_y) == (1.5, 2.5)
        assert arrays.target_x[0] == 1.5
        view.target_x = None
        assert view.target_x is None
        assert np.isnan(arrays.target_x[0])
        # The sibling row is untouched.
        assert np.isnan(arrays.target_x[1])

    def test_view_duck_types_mobility_state(self):
        arrays = SensorStateArrays(1)
        view = arrays.state_view(0)
        model = RandomWaypointMobility(REGION, speed=1.0, pause=0.0)
        rng = np.random.default_rng(0)
        arrays.load_mobility_state(0, model.initial_state(rng))
        for _ in range(50):
            model.step(view, 0.1, rng)
        assert REGION.contains(view.x, view.y, closed=True)

    def test_standalone_sensor_owns_private_row(self):
        sensor = MobileSensor(
            7, StationaryMobility(REGION), rng=np.random.default_rng(1)
        )
        assert sensor.requests_received == 0
        assert REGION.contains_point(sensor.position, closed=True)

    def test_participation_columns_populated(self):
        world = SensingWorld(
            WorldConfig(region=REGION, sensor_count=10, seed=3),
            participation_factory=lambda i: BernoulliParticipation(
                0.4, mean_latency=0.3, max_probability=0.9
            ),
        )
        soa = world.state_arrays
        assert np.all(soa.vector_participation)
        assert np.all(soa.p_base == 0.4)
        assert np.all(soa.p_max == 0.9)
        assert np.all(soa.latency_mean == 0.3)
        assert np.all(soa.incentive_sensitive)

    def test_always_respond_is_incentive_insensitive(self):
        world = SensingWorld(
            WorldConfig(region=REGION, sensor_count=4, seed=3),
            participation_factory=lambda i: AlwaysRespond(),
        )
        soa = world.state_arrays
        assert np.all(soa.vector_participation)
        assert np.all(soa.p_base == 1.0)
        assert not np.any(soa.incentive_sensitive)


class TestVectorisedWorldQueries:
    def make_world(self, sensor_count=200, seed=6):
        return SensingWorld(
            WorldConfig(region=REGION, sensor_count=sensor_count, seed=seed),
            mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.3),
        )

    def test_sensors_in_matches_per_sensor_loop(self):
        world = self.make_world()
        world.advance(3.0)
        sub_region = RectRegion(Rectangle(0.5, 0.5, 2.5, 2.5))
        vectorised = world.sensors_in(sub_region)
        looped = [
            sensor
            for sensor in world.sensors
            if sub_region.contains(sensor.position.x, sensor.position.y, closed=True)
        ]
        assert vectorised == looped
        assert 0 < len(vectorised) < 200

    def test_sensors_in_rectangle_matches_per_sensor_loop(self):
        world = self.make_world(seed=8)
        rect = Rectangle(2.0, 0.0, 4.0, 2.0)
        vectorised = world.sensors_in_rectangle(rect)
        looped = [
            sensor
            for sensor in world.sensors
            if rect.contains(sensor.position.x, sensor.position.y, closed=True)
        ]
        assert vectorised == looped

    def test_sensor_indices_align_with_sensor_ids(self):
        world = self.make_world(seed=9)
        rect = Rectangle(0.0, 0.0, 2.0, 4.0)
        indices = world.sensor_indices_in_rectangle(rect)
        assert [world.sensors[int(i)].sensor_id for i in indices] == list(
            world.state_arrays.sensor_ids[indices]
        )

    def test_density_snapshot_matches_per_sensor_loop(self):
        world = self.make_world(sensor_count=300, seed=11)
        world.advance(2.0)
        counts = world.density_snapshot(5, 3)
        assert counts.sum() == 300
        expected = np.zeros((3, 5), dtype=int)
        for sensor in world.sensors:
            pos = sensor.position
            q = min(int((pos.x - REGION.x_min) / REGION.width * 5), 4)
            r = min(int((pos.y - REGION.y_min) / REGION.height * 3), 2)
            expected[r, q] += 1
        assert np.array_equal(counts, expected)

    def test_density_snapshot_clips_out_of_region_positions(self):
        # Regression: a custom mobility model that escapes the region used
        # to produce negative bucket indices — a bincount ValueError for
        # strongly negative y, or silent miscounts via r*nx+q collisions
        # for slightly negative x.  Escaped sensors now land in the nearest
        # boundary bucket and every sensor stays counted.
        world = self.make_world(sensor_count=12, seed=13)
        soa = world.state_arrays
        soa.x[0] = -3.0   # far left of the region
        soa.y[1] = -9.0   # far below (negative flat index without clipping)
        soa.x[2] = 11.0   # far right
        soa.y[3] = 7.5    # far above
        counts = world.density_snapshot(4, 4)
        assert counts.sum() == 12
        assert counts[:, 0].sum() >= 1   # the left escapee
        assert counts[0, :].sum() >= 1   # the bottom escapee
        assert counts[:, 3].sum() >= 1   # the right escapee
        assert counts[3, :].sum() >= 1   # the top escapee

    def test_sensor_positions_reflect_soa_columns(self):
        world = self.make_world(sensor_count=50, seed=12)
        positions = world.sensor_positions()
        assert positions.shape == (50, 2)
        assert np.array_equal(positions[:, 0], world.state_arrays.x)
        assert np.array_equal(positions[:, 1], world.state_arrays.y)
        # A copy, not an aliased view: advancing must not mutate it.
        before = positions.copy()
        world.advance(1.0)
        assert np.array_equal(positions, before)
