"""Unit tests for mobile sensors, the sensing world and the request/response handler."""

import numpy as np
import pytest

from repro.errors import AcquisitionError, BudgetError, CraqrError
from repro.geometry import Grid, Rectangle, RectRegion
from repro.sensing import (
    AlwaysRespond,
    BernoulliParticipation,
    ConstantField,
    MobileSensor,
    RainField,
    RandomWaypointMobility,
    RequestResponseHandler,
    SensingWorld,
    StationaryMobility,
    TemperatureField,
    WorldConfig,
)

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


def make_world(sensor_count=80, response_probability=1.0, seed=3):
    if response_probability >= 1.0:
        participation = lambda sensor_id: AlwaysRespond()
    else:
        participation = lambda sensor_id: BernoulliParticipation(response_probability)
    world = SensingWorld(
        WorldConfig(region=REGION, sensor_count=sensor_count, seed=seed),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.3),
        participation_factory=participation,
    )
    world.register_field(RainField(REGION))
    world.register_field(TemperatureField(REGION))
    return world


class TestMobileSensor:
    def make_sensor(self, sensor_id=1):
        return MobileSensor(
            sensor_id,
            StationaryMobility(REGION),
            participation=AlwaysRespond(),
            rng=np.random.default_rng(0),
        )

    def test_memory_capacity_enforced(self):
        sensor = MobileSensor(
            1, StationaryMobility(REGION), rng=np.random.default_rng(0), memory_capacity=3
        )
        field = ConstantField(constant=1.0)
        for t in range(6):
            sensor.sense(field, float(t))
        assert len(sensor.memory) == 3

    def test_invalid_memory_capacity(self):
        with pytest.raises(AcquisitionError):
            MobileSensor(1, StationaryMobility(REGION), memory_capacity=0)

    def test_handle_request_returns_row(self):
        sensor = self.make_sensor()
        row = sensor.handle_request(ConstantField(constant=5.0), 2.0)
        assert row is not None
        t, x, y, value = row
        assert t >= 2.0
        assert value == 5.0
        assert sensor.requests_received == 1
        assert sensor.responses_sent == 1

    def test_non_responding_sensor(self):
        sensor = MobileSensor(
            1,
            StationaryMobility(REGION),
            participation=BernoulliParticipation(0.4),
            rng=np.random.default_rng(1),
        )
        rows = [sensor.handle_request(ConstantField(), float(t)) for t in range(200)]
        answered = sum(1 for row in rows if row is not None)
        assert sensor.requests_received == 200
        assert answered == sensor.responses_sent
        assert 0 < answered < 200

    def test_move_changes_position_for_mobile_models(self):
        sensor = MobileSensor(
            1,
            RandomWaypointMobility(REGION, speed=1.0, pause=0.0),
            rng=np.random.default_rng(2),
        )
        start = sensor.position
        for _ in range(20):
            sensor.move(0.5)
        assert sensor.position.distance_to(start) > 0.0

    def test_state_snapshot(self):
        sensor = self.make_sensor()
        state = sensor.state_at(4.0)
        assert state.t == 4.0
        assert state.sensor_id == sensor.sensor_id
        assert REGION.contains_point(state.location, closed=True)


class TestSensingWorld:
    def test_configuration_validation(self):
        with pytest.raises(CraqrError):
            WorldConfig(region=REGION, sensor_count=0)
        with pytest.raises(CraqrError):
            WorldConfig(region=REGION, movement_step=0.0)

    def test_sensor_creation(self):
        world = make_world(sensor_count=25)
        assert len(world.sensors) == 25
        for sensor in world.sensors:
            assert REGION.contains_point(sensor.position, closed=True)

    def test_field_registration_and_lookup(self):
        world = make_world()
        assert world.has_attribute("rain")
        assert world.has_attribute("temp")
        assert set(world.attributes) == {"rain", "temp"}
        with pytest.raises(AcquisitionError):
            world.field_for("humidity")

    def test_advance_moves_clock_and_sensors(self):
        world = make_world(seed=5)
        before = world.sensor_positions().copy()
        world.advance(2.0)
        assert world.now == pytest.approx(2.0)
        after = world.sensor_positions()
        assert not np.allclose(before, after)

    def test_advance_rejects_non_positive(self):
        with pytest.raises(CraqrError):
            make_world().advance(0.0)

    def test_sensors_in_region(self):
        world = make_world(sensor_count=200, seed=6)
        sub_region = RectRegion(Rectangle(0, 0, 2, 2))
        inside = world.sensors_in(sub_region)
        assert 0 < len(inside) < 200
        for sensor in inside:
            assert sub_region.contains(sensor.position.x, sensor.position.y, closed=True)

    def test_density_snapshot_sums_to_sensor_count(self):
        world = make_world(sensor_count=150, seed=7)
        counts = world.density_snapshot(4, 4)
        assert counts.sum() == 150

    def test_density_snapshot_validation(self):
        with pytest.raises(CraqrError):
            make_world().density_snapshot(0, 4)


class TestRequestResponseHandler:
    def make_handler(self, world=None, default_budget=30):
        world = world or make_world()
        grid = Grid(REGION, side=4)
        return RequestResponseHandler(world, grid, default_budget=default_budget), world, grid

    def test_budget_defaults_and_overrides(self):
        handler, _, grid = self.make_handler(default_budget=25)
        cell = grid.cell(0, 0)
        assert handler.budget_for("rain", cell.key) == 25
        handler.set_budget("rain", cell.key, 60)
        assert handler.budget_for("rain", cell.key) == 60
        assert ("rain", cell.key) in handler.budgets()

    def test_budget_validation(self):
        handler, _, grid = self.make_handler()
        with pytest.raises(BudgetError):
            handler.set_budget("rain", grid.cell(0, 0).key, 0)
        with pytest.raises(BudgetError):
            RequestResponseHandler(make_world(), grid, default_budget=0)

    def test_acquire_cell_respects_budget(self):
        handler, world, grid = self.make_handler(default_budget=10)
        cell = grid.cell(1, 1)
        items = handler.acquire_cell("temp", cell, duration=1.0)
        # With AlwaysRespond participation every request yields one tuple.
        assert len(items) == 10
        assert handler.total_requests == 10
        assert handler.total_responses == 10

    def test_acquire_cell_tuples_carry_attribute_and_cell(self):
        handler, _, grid = self.make_handler(default_budget=5)
        cell = grid.cell(2, 2)
        items = handler.acquire_cell("rain", cell, duration=1.0)
        for item in items:
            assert item.attribute == "rain"
            assert item.metadata["cell"] == cell.key
            assert item.sensor_id is not None

    def test_acquire_cell_empty_cell_returns_nothing(self):
        # A world with a single stationary sensor leaves most cells empty.
        world = SensingWorld(
            WorldConfig(region=REGION, sensor_count=1, seed=1),
            mobility_factory=lambda r: StationaryMobility(r),
        )
        world.register_field(RainField(REGION))
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(world, grid, default_budget=5)
        empty_cells = [
            cell for cell in grid.cells() if not world.sensors_in_rectangle(cell.rect)
        ]
        assert empty_cells, "expected at least one empty cell"
        assert handler.acquire_cell("rain", empty_cells[0], duration=1.0) == []

    def test_acquire_cell_duration_validation(self):
        handler, _, grid = self.make_handler()
        with pytest.raises(AcquisitionError):
            handler.acquire_cell("rain", grid.cell(0, 0), duration=0.0)

    def test_acquire_unknown_attribute_raises(self):
        handler, _, grid = self.make_handler()
        with pytest.raises(AcquisitionError):
            handler.acquire_cell("humidity", grid.cell(0, 0), duration=1.0)

    def test_acquire_round_reports(self):
        handler, _, grid = self.make_handler(default_budget=8)
        cells = [grid.cell(0, 0), grid.cell(1, 0)]
        tuples_by_cell, report = handler.acquire({"rain": cells, "temp": cells}, duration=1.0)
        assert report.requests_sent == 8 * 4
        assert report.responses_received == sum(len(v) for v in tuples_by_cell.values())
        assert 0.0 <= report.response_rate <= 1.0
        assert handler.rounds == 1

    def test_acquire_with_lossy_participation(self):
        world = make_world(response_probability=0.5, seed=9)
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(world, grid, default_budget=40)
        _, report = handler.acquire({"rain": [grid.cell(1, 1)]}, duration=1.0)
        assert report.responses_received < report.requests_sent

    def test_tuples_sorted_by_time_within_cell(self):
        handler, _, grid = self.make_handler(default_budget=20)
        tuples_by_cell, _ = handler.acquire({"temp": [grid.cell(1, 1)]}, duration=1.0)
        for items in tuples_by_cell.values():
            times = [item.t for item in items]
            assert times == sorted(times)


class TestColumnarAcquisition:
    """The batched acquisition path must mirror the object path exactly."""

    def make_pair(self, default_budget=20, response_probability=1.0, seed=3):
        object_world = make_world(seed=seed, response_probability=response_probability)
        columnar_world = make_world(seed=seed, response_probability=response_probability)
        grid = Grid(REGION, side=4)
        return (
            RequestResponseHandler(object_world, grid, default_budget=default_budget),
            RequestResponseHandler(columnar_world, grid, default_budget=default_budget),
            grid,
        )

    def test_acquire_cell_batch_matches_object_path(self):
        object_handler, columnar_handler, grid = self.make_pair()
        cell = grid.cell(1, 1)
        items = object_handler.acquire_cell("rain", cell, duration=1.0)
        batch = columnar_handler.acquire_cell_batch("rain", cell, duration=1.0)
        assert batch is not None
        assert batch.to_tuples() == items
        # Metadata (cell key, incentive) is reconstructed faithfully too.
        assert [it.metadata for it in batch.to_tuples()] == [it.metadata for it in items]

    def test_acquire_cell_batch_with_lossy_participation(self):
        object_handler, columnar_handler, grid = self.make_pair(
            response_probability=0.5, seed=9
        )
        cell = grid.cell(1, 1)
        items = object_handler.acquire_cell("temp", cell, duration=1.0)
        batch = columnar_handler.acquire_cell_batch("temp", cell, duration=1.0)
        assert (batch.to_tuples() if batch is not None else []) == items

    def test_acquire_batches_round_report_matches(self):
        object_handler, columnar_handler, grid = self.make_pair(default_budget=8)
        cells = [grid.cell(0, 0), grid.cell(1, 0)]
        request = {"rain": cells, "temp": cells}
        _, object_report = object_handler.acquire(request, duration=1.0)
        batches, columnar_report = columnar_handler.acquire_batches(request, duration=1.0)
        assert columnar_report.requests_sent == object_report.requests_sent
        assert columnar_report.responses_received == object_report.responses_received
        assert columnar_report.per_cell_requests == object_report.per_cell_requests
        assert columnar_report.per_cell_responses == object_report.per_cell_responses
        assert columnar_handler.rounds == 1
        assert set(batches) <= {"rain", "temp"}
        total = sum(len(batch) for batch in batches.values())
        assert total == columnar_report.responses_received

    def test_empty_cell_skips_bookkeeping(self):
        # Satellite: no redundant per-cell entries when the cell holds no
        # sensors — the round sends nothing, so nothing is recorded.
        world = SensingWorld(
            WorldConfig(region=REGION, sensor_count=1, seed=1),
            mobility_factory=lambda r: StationaryMobility(r),
        )
        world.register_field(RainField(REGION))
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(world, grid, default_budget=5)
        empty_cell = next(
            cell for cell in grid.cells() if not world.sensors_in_rectangle(cell.rect)
        )
        _, report = handler.acquire({"rain": [empty_cell]}, duration=1.0)
        assert report.per_cell_requests == {}
        assert report.per_cell_responses == {}
        assert report.requests_sent == 0

    def test_requests_counted_once_per_round(self):
        handler, _, grid = (
            TestRequestResponseHandler().make_handler(default_budget=12)
        )
        cell = grid.cell(1, 1)
        items = handler.acquire_cell("rain", cell, duration=1.0)
        assert handler.total_requests == 12
        assert len(items) == 12
