"""Unit tests for phenomena fields, participation models and incentives."""

import numpy as np
import pytest

from repro.errors import CraqrError
from repro.geometry import Rectangle
from repro.sensing import (
    AlwaysRespond,
    BernoulliParticipation,
    ConstantField,
    DistanceDecayParticipation,
    FatigueParticipation,
    FlatIncentive,
    LinearIncentiveResponse,
    RainField,
    TemperatureField,
    incentive_boost,
)

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


class TestRainField:
    def test_probability_high_inside_band(self):
        field = RainField(REGION, band_width=1.0, period=40.0)
        center = field.band_center(0.0)
        assert field.rain_probability(0.0, center, 1.0) > 0.9

    def test_probability_low_far_from_band(self):
        field = RainField(REGION, band_width=0.5, period=40.0)
        center = field.band_center(0.0)
        far = (center + 2.0) % REGION.width
        assert field.rain_probability(0.0, far, 1.0) < 0.1

    def test_band_moves_over_time(self):
        field = RainField(REGION, band_width=0.5, period=40.0)
        assert field.band_center(0.0) != field.band_center(10.0)

    def test_value_is_boolean(self):
        field = RainField(REGION)
        assert isinstance(field.value(0.0, 1.0, 1.0, rng=np.random.default_rng(0)), bool)

    def test_validation(self):
        with pytest.raises(CraqrError):
            RainField(REGION, band_width=0.0)
        with pytest.raises(CraqrError):
            RainField(REGION, p_rain_inside=0.1, p_rain_outside=0.9)


class TestTemperatureField:
    def test_diurnal_cycle(self):
        field = TemperatureField(REGION, base=20.0, diurnal_amplitude=5.0, period=100.0, noise_std=0.0)
        assert field.mean_value(25.0, 1.0, 1.0) == pytest.approx(25.0)
        assert field.mean_value(75.0, 1.0, 1.0) == pytest.approx(15.0)

    def test_heat_island_raises_temperature(self):
        field = TemperatureField(
            REGION, base=20.0, diurnal_amplitude=0.0, heat_islands=((2.0, 2.0, 3.0, 0.5),), noise_std=0.0
        )
        assert field.mean_value(0.0, 2.0, 2.0) == pytest.approx(23.0)
        assert field.mean_value(0.0, 0.1, 0.1) < 20.5

    def test_noise_applied(self):
        field = TemperatureField(REGION, noise_std=1.0)
        rng = np.random.default_rng(1)
        values = {field.value(0.0, 1.0, 1.0, rng=rng) for _ in range(5)}
        assert len(values) > 1

    def test_validation(self):
        with pytest.raises(CraqrError):
            TemperatureField(REGION, period=0.0)
        with pytest.raises(CraqrError):
            TemperatureField(REGION, noise_std=-1.0)
        with pytest.raises(CraqrError):
            TemperatureField(REGION, heat_islands=((0.0, 0.0, 1.0, 0.0),))

    def test_constant_field(self):
        assert ConstantField(constant=7).value(0.0, 0.0, 0.0) == 7


class TestParticipationModels:
    def test_always_respond(self):
        decision = AlwaysRespond().decide(0, 0.0)
        assert decision.responds and decision.latency == 0.0

    def test_bernoulli_probability_zero_latency(self):
        model = BernoulliParticipation(1.0, mean_latency=0.0, max_probability=1.0)
        decision = model.decide(0, 0.0, rng=np.random.default_rng(0))
        assert decision.responds
        assert decision.latency == 0.0

    def test_bernoulli_respects_probability(self):
        model = BernoulliParticipation(0.3)
        rng = np.random.default_rng(1)
        responses = sum(model.decide(0, 0.0, rng=rng).responds for _ in range(2000))
        assert responses / 2000 == pytest.approx(0.3, abs=0.05)

    def test_bernoulli_incentive_boost(self):
        model = BernoulliParticipation(0.3, max_probability=0.9)
        rng = np.random.default_rng(2)
        boosted = sum(
            model.decide(0, 0.0, incentive_multiplier=2.0, rng=rng).responds
            for _ in range(2000)
        )
        assert boosted / 2000 == pytest.approx(0.6, abs=0.05)

    def test_bernoulli_validation(self):
        with pytest.raises(CraqrError):
            BernoulliParticipation(0.0)
        with pytest.raises(CraqrError):
            BernoulliParticipation(0.5, mean_latency=-1.0)
        with pytest.raises(CraqrError):
            BernoulliParticipation(0.5, max_probability=0.2)

    def test_distance_decay(self):
        model = DistanceDecayParticipation(0.9, decay_scale=0.5)
        rng = np.random.default_rng(3)
        model.set_distance(1, 0.0)
        model.set_distance(2, 5.0)
        near = sum(model.decide(1, 0.0, rng=rng).responds for _ in range(500))
        far = sum(model.decide(2, 0.0, rng=rng).responds for _ in range(500))
        assert near > far * 3

    def test_distance_decay_validation(self):
        model = DistanceDecayParticipation()
        with pytest.raises(CraqrError):
            model.set_distance(1, -1.0)

    def test_fatigue_reduces_probability(self):
        model = FatigueParticipation(0.8, fatigue_per_request=0.1, recovery_per_time=0.0)
        rng = np.random.default_rng(4)
        initial = model.current_probability(1, 0.0)
        for _ in range(5):
            model.decide(1, 0.0, rng=rng)
        assert model.current_probability(1, 0.0) < initial

    def test_fatigue_recovers_over_time(self):
        model = FatigueParticipation(
            0.8, fatigue_per_request=0.2, recovery_per_time=0.1, min_probability=0.1
        )
        rng = np.random.default_rng(5)
        for _ in range(3):
            model.decide(1, 0.0, rng=rng)
        tired = model.current_probability(1, 0.0)
        rested = model.current_probability(1, 100.0)
        assert rested > tired

    def test_fatigue_floor(self):
        model = FatigueParticipation(
            0.5, fatigue_per_request=1.0, recovery_per_time=0.0, min_probability=0.2
        )
        rng = np.random.default_rng(6)
        for _ in range(10):
            model.decide(1, 0.0, rng=rng)
        assert model.current_probability(1, 0.0) == pytest.approx(0.2)


class TestIncentiveCapUnification:
    """All participation models cap boosted probabilities at max_probability."""

    def boosted_rate(self, model, *, multiplier, seed, trials=4000):
        rng = np.random.default_rng(seed)
        responses = sum(
            model.decide(1, 0.0, incentive_multiplier=multiplier, rng=rng).responds
            for _ in range(trials)
        )
        return responses / trials

    def test_distance_decay_caps_boost_at_max_probability(self):
        model = DistanceDecayParticipation(0.6, max_probability=0.7)
        model.set_distance(1, 0.0)
        # A huge boost saturates at 0.7, not at 1.0.
        assert self.boosted_rate(model, multiplier=10.0, seed=7) == pytest.approx(
            0.7, abs=0.03
        )

    def test_fatigue_caps_boost_at_max_probability(self):
        model = FatigueParticipation(
            0.6, fatigue_per_request=0.0, max_probability=0.7
        )
        assert self.boosted_rate(model, multiplier=10.0, seed=8) == pytest.approx(
            0.7, abs=0.03
        )

    def test_max_probability_validation(self):
        with pytest.raises(CraqrError):
            DistanceDecayParticipation(0.8, max_probability=0.5)
        with pytest.raises(CraqrError):
            DistanceDecayParticipation(0.8, max_probability=1.5)
        with pytest.raises(CraqrError):
            FatigueParticipation(0.8, max_probability=0.5)
        with pytest.raises(CraqrError):
            FatigueParticipation(0.8, max_probability=1.5)

    def test_max_probability_exposed(self):
        assert DistanceDecayParticipation(0.5, max_probability=0.9).max_probability == 0.9
        assert FatigueParticipation(0.5, max_probability=0.9).max_probability == 0.9
        # vector_static_params carries the cap into the SoA columns.
        assert DistanceDecayParticipation(0.5, max_probability=0.9).vector_static_params()[0] == 0.9
        assert FatigueParticipation(0.5, max_probability=0.9).vector_static_params()[0] == 0.9


class TestVectorStateProtocol:
    """Unit-level checks of the stateful vector-state implementations."""

    def make_soa(self, count):
        from repro.sensing import SensorStateArrays

        soa = SensorStateArrays(count)
        soa.sensor_ids[:] = np.arange(count)
        return soa

    def test_fatigue_vector_matches_scalar_recurrence(self):
        scalar = FatigueParticipation(
            0.8, fatigue_per_request=0.1, recovery_per_time=0.02, min_probability=0.1
        )
        vector = FatigueParticipation(
            0.8, fatigue_per_request=0.1, recovery_per_time=0.02, min_probability=0.1
        )
        soa = self.make_soa(3)
        for name in vector.vector_state_columns():
            soa.ensure_column(name)
        for index in range(3):
            vector.init_vector_state(soa, index)

        rng = np.random.default_rng(0)
        # Three rounds of one request per sensor at increasing times: the
        # vector recurrence must track the scalar dict state exactly when
        # each sensor is asked once per round.
        for t in (0.0, 1.0, 5.0):
            rows = np.arange(3)
            times = np.full(3, t)
            expected = np.array(
                [scalar.current_probability(i, t) for i in range(3)]
            )
            got = vector.vector_probabilities(soa, rows, times)
            assert np.allclose(got, expected)
            for i in range(3):
                scalar.decide(i, t, rng=rng)
            vector.vector_commit(soa, rows, times)

    def test_fatigue_vector_commit_handles_repeated_rows(self):
        model = FatigueParticipation(
            0.8, fatigue_per_request=0.1, recovery_per_time=0.0
        )
        soa = self.make_soa(2)
        for name in model.vector_state_columns():
            soa.ensure_column(name)
        for index in range(2):
            model.init_vector_state(soa, index)
        # Row 0 requested three times, row 1 once: fatigue accumulates per
        # request even within one round.
        rows = np.array([0, 0, 1, 0])
        times = np.array([0.1, 0.4, 0.2, 0.9])
        model.vector_commit(soa, rows, times)
        levels = soa.column(FatigueParticipation.LEVEL_COLUMN)
        lasts = soa.column(FatigueParticipation.LAST_TIME_COLUMN)
        assert levels[0] == pytest.approx(0.3)
        assert levels[1] == pytest.approx(0.1)
        assert lasts[0] == pytest.approx(0.9)
        assert lasts[1] == pytest.approx(0.2)

    def test_distance_decay_set_distance_writes_through(self):
        model = DistanceDecayParticipation(0.9, decay_scale=1.0)
        soa = self.make_soa(2)
        for name in model.vector_state_columns():
            soa.ensure_column(name)
        model.set_distance(1, 2.0)  # before binding: dict only
        model.init_vector_state(soa, 0)
        model.init_vector_state(soa, 1)
        column = soa.column(DistanceDecayParticipation.DISTANCE_COLUMN)
        assert column[1] == pytest.approx(2.0)  # picked up at init
        model.set_distance(0, 3.0)  # after binding: writes through
        assert column[0] == pytest.approx(3.0)
        probabilities = model.vector_probabilities(
            soa, np.array([0, 1]), np.zeros(2)
        )
        assert np.allclose(probabilities, 0.9 * np.exp([-3.0, -2.0]))

    def test_stationary_models_have_no_vector_state(self):
        assert BernoulliParticipation(0.5).vector_state_columns() is None
        assert AlwaysRespond().vector_state_columns() is None
        assert BernoulliParticipation(0.5).vector_state_key() is None


class TestIncentives:
    def test_boost_is_one_without_payment(self):
        assert incentive_boost(0.0) == pytest.approx(1.0)

    def test_boost_saturates(self):
        assert incentive_boost(100.0, saturation=3.0) == pytest.approx(3.0, abs=1e-3)

    def test_boost_monotone(self):
        assert incentive_boost(1.0) > incentive_boost(0.5) > incentive_boost(0.1)

    def test_boost_validation(self):
        with pytest.raises(CraqrError):
            incentive_boost(-1.0)
        with pytest.raises(CraqrError):
            incentive_boost(1.0, saturation=0.5)

    def test_flat_incentive_tracks_spending(self):
        scheme = FlatIncentive(0.5)
        scheme.payment_for_request()
        scheme.payment_for_request()
        assert scheme.total_spent == pytest.approx(1.0)
        assert scheme.payments == 2

    def test_flat_incentive_multiplier(self):
        assert FlatIncentive(0.0).multiplier() == pytest.approx(1.0)
        assert FlatIncentive(1.0).multiplier() > 1.0

    def test_adaptive_controller_raises_payment_on_violation(self):
        controller = LinearIncentiveResponse(FlatIncentive(0.0), step=0.2, max_payment=1.0)
        new_payment = controller.adjust(violation_percent=50.0, threshold=5.0)
        assert new_payment == pytest.approx(0.2)

    def test_adaptive_controller_lowers_payment_when_ok(self):
        controller = LinearIncentiveResponse(FlatIncentive(0.4), step=0.2, max_payment=1.0)
        assert controller.adjust(violation_percent=0.0, threshold=5.0) == pytest.approx(0.2)

    def test_adaptive_controller_saturates(self):
        controller = LinearIncentiveResponse(FlatIncentive(0.9), step=0.2, max_payment=1.0)
        controller.adjust(violation_percent=50.0, threshold=5.0)
        assert controller.saturated
