"""Fast-sim mode: statistical equivalence with the strict per-sensor path.

``WorldConfig.vectorized_rng=True`` trades byte-identical per-sensor random
streams for one shared stream, so these tests assert *distributional*
agreement — spatial density of the moved crowd, acquisition response rates —
rather than exact trajectories.  All tolerances are comfortably wide for the
seeded populations used, so the tests are deterministic.
"""

import numpy as np
import pytest

from repro.geometry import Grid, Rectangle
from repro.sensing import (
    AlwaysRespond,
    BernoulliParticipation,
    FatigueParticipation,
    HotspotMobility,
    ParticipationModel,
    RainField,
    RandomWaypointMobility,
    RequestResponseHandler,
    ResponseDecision,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


class MoodyParticipation(ParticipationModel):
    """A deliberately non-vectorisable model: no stationary params, no
    vector-state protocol, so fast-sim must take the exact per-sensor round."""

    def decide(self, sensor_id, t, *, incentive_multiplier=1.0, rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        if rng.random() >= 0.7:
            return ResponseDecision.no_response()
        return ResponseDecision(responds=True, latency=float(rng.exponential(0.1)))


def make_world(vectorized, *, sensor_count=2000, seed=29, mobility=None, participation=None):
    world = SensingWorld(
        WorldConfig(
            region=REGION,
            sensor_count=sensor_count,
            seed=seed,
            vectorized_rng=vectorized,
        ),
        mobility_factory=mobility or (lambda r: RandomWaypointMobility(r, speed=0.4)),
        participation_factory=participation,
    )
    world.register_field(RainField(REGION))
    world.register_field(TemperatureField(REGION))
    return world


def density_fractions(world, nx=4, ny=4):
    counts = world.density_snapshot(nx, ny).astype(float)
    return counts / counts.sum()


class TestFastSimMobilityStatistics:
    def test_waypoint_position_density_matches_strict(self):
        strict = make_world(False)
        fast = make_world(True)
        strict.advance(25.0)
        fast.advance(25.0)
        # Random-waypoint produces the classic centre-heavy density; both
        # modes must agree cell by cell within a few percent of the crowd.
        diff = np.abs(density_fractions(strict) - density_fractions(fast))
        assert diff.max() < 0.03
        assert np.allclose(
            strict.sensor_positions().mean(axis=0),
            fast.sensor_positions().mean(axis=0),
            atol=0.15,
        )

    def test_hotspot_skew_matches_strict(self):
        mobility = lambda r: HotspotMobility(
            r, [(0.8, 0.8, 3.0), (3.2, 3.2, 1.0)], speed=0.5
        )
        strict = make_world(False, mobility=mobility, sensor_count=1500)
        fast = make_world(True, mobility=mobility, sensor_count=1500)
        strict.advance(20.0)
        fast.advance(20.0)
        strict_frac = density_fractions(strict)
        fast_frac = density_fractions(fast)
        # Both concentrate on the popular hotspot's cell ...
        assert strict_frac[0, 0] > 0.4
        assert fast_frac[0, 0] > 0.4
        # ... and agree on the whole skew profile.
        assert np.abs(strict_frac - fast_frac).max() < 0.05

    def test_fast_sim_positions_stay_in_region(self):
        fast = make_world(True, sensor_count=500)
        fast.advance(10.0)
        positions = fast.sensor_positions()
        assert positions.min() >= 0.0
        assert positions.max() <= 4.0


class TestFastSimAcquisition:
    def acquire_all_cells(self, world, *, budget=150, rounds=3):
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(world, grid, default_budget=budget)
        cells = list(grid.cells())
        tuples = 0
        requests = responses = 0
        for _ in range(rounds):
            batches, report = handler.acquire_batches({"rain": cells}, duration=1.0)
            world.advance(1.0)
            tuples += sum(len(batch) for batch in batches.values())
            requests += report.requests_sent
            responses += report.responses_received
        return tuples, requests, responses

    def test_bernoulli_response_rate_matches_strict(self):
        participation = lambda i: BernoulliParticipation(0.6, mean_latency=0.1)
        strict = make_world(False, participation=participation, sensor_count=800)
        fast = make_world(True, participation=participation, sensor_count=800)
        s_tuples, s_requests, s_responses = self.acquire_all_cells(strict)
        f_tuples, f_requests, f_responses = self.acquire_all_cells(fast)
        assert s_requests == f_requests
        assert s_tuples == s_responses
        assert f_tuples == f_responses
        strict_rate = s_responses / s_requests
        fast_rate = f_responses / f_requests
        assert strict_rate == pytest.approx(0.6, abs=0.05)
        assert fast_rate == pytest.approx(strict_rate, abs=0.04)

    def test_always_respond_answers_every_request(self):
        fast = make_world(True, participation=None, sensor_count=400)
        tuples, requests, responses = self.acquire_all_cells(fast, rounds=1)
        assert responses == requests == tuples

    def test_fast_batches_are_well_formed(self):
        fast = make_world(True, sensor_count=600)
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(fast, grid, default_budget=60)
        cell = grid.cell(1, 1)
        batch = handler.acquire_cell_batch("temp", cell, duration=1.0)
        assert batch is not None
        n = len(batch)
        assert batch.attribute == "temp"
        # Responses stay in request order; latencies are zero under
        # AlwaysRespond so response times are the sorted request times.
        assert np.all(np.diff(batch.t) >= 0)
        assert batch.value.dtype == np.float64
        assert batch.extra["cell"].shape == (n, 2)
        assert np.all(batch.extra["cell"] == np.array(cell.key))
        # Reported coordinates are the responders' SoA positions, inside the cell.
        assert np.all(cell.rect.contains_many(batch.x, batch.y, closed=True))
        in_cell = fast.sensor_indices_in_rectangle(cell.rect)
        assert set(batch.sensor_id) <= set(fast.state_arrays.sensor_ids[in_cell])

    def test_fast_sim_updates_soa_counters(self):
        fast = make_world(True, sensor_count=300)
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(fast, grid, default_budget=40)
        handler.acquire_batches({"rain": list(grid.cells())}, duration=1.0)
        soa = fast.state_arrays
        assert soa.requests_received.sum() == handler.total_requests
        assert soa.responses_sent.sum() == handler.total_responses
        # Per-sensor views expose the same counters.
        totals = sum(s.requests_received for s in fast.sensors)
        assert totals == handler.total_requests

    def test_non_vectorisable_participation_falls_back_to_exact_path(self):
        # A model with neither stationary vector_params nor the vector-state
        # protocol cannot be vectorised; a fast-sim world must then produce
        # *byte-identical* rounds to a strict world with the same seed,
        # because the fallback is the strict per-sensor path.
        participation = lambda i: MoodyParticipation()
        strict = make_world(False, participation=participation, sensor_count=200)
        fast = make_world(True, participation=participation, sensor_count=200)
        assert not np.any(fast.state_arrays.vector_participation)
        grid = Grid(REGION, side=4)
        strict_handler = RequestResponseHandler(strict, grid, default_budget=30)
        fast_handler = RequestResponseHandler(fast, grid, default_budget=30)
        cell = grid.cell(2, 2)
        strict_batch = strict_handler.acquire_cell_batch("rain", cell, duration=1.0)
        fast_batch = fast_handler.acquire_cell_batch("rain", cell, duration=1.0)
        assert (strict_batch is None) == (fast_batch is None)
        if strict_batch is not None:
            assert strict_batch.to_tuples() == fast_batch.to_tuples()

    def test_stateful_models_are_vector_capable(self):
        # Since the participation vector-state protocol, fatigue sensors no
        # longer force the per-sensor fallback: their rows are flagged
        # vector-capable and belong to a participation group.
        participation = lambda i: FatigueParticipation(0.7)
        fast = make_world(True, participation=participation, sensor_count=200)
        soa = fast.state_arrays
        assert np.all(soa.vector_participation)
        assert np.all(soa.participation_group == 0)
        assert len(fast.participation_groups) == 1
        assert soa.has_column(FatigueParticipation.LEVEL_COLUMN)

    def test_mixed_vectorisable_flags_use_fallback(self):
        # Half the crowd is genuinely non-vectorisable: every cell
        # containing such a sensor must take the exact path, and the round
        # still completes.
        participation = lambda i: (
            BernoulliParticipation(0.8) if i % 2 == 0 else MoodyParticipation()
        )
        fast = make_world(True, participation=participation, sensor_count=100)
        flags = fast.state_arrays.vector_participation
        assert flags.any() and not flags.all()
        grid = Grid(REGION, side=2)
        handler = RequestResponseHandler(fast, grid, default_budget=20)
        batches, report = handler.acquire_batches({"rain": list(grid.cells())}, duration=1.0)
        assert report.requests_sent == 20 * 4
        assert sum(len(b) for b in batches.values()) == report.responses_received
