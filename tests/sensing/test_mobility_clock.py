"""Unit tests for the simulation clock and mobility models."""

import numpy as np
import pytest

from repro.errors import CraqrError
from repro.geometry import Rectangle
from repro.sensing import (
    GaussMarkovMobility,
    HotspotMobility,
    RandomWalkMobility,
    RandomWaypointMobility,
    SimulationClock,
    StationaryMobility,
)

REGION = Rectangle(0.0, 0.0, 2.0, 2.0)


class TestSimulationClock:
    def test_starts_at_given_time(self):
        clock = SimulationClock(5.0)
        assert clock.now == 5.0
        assert clock.start == 5.0
        assert clock.elapsed == 0.0

    def test_advance(self):
        clock = SimulationClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)
        assert clock.ticks == 2

    def test_advance_rejects_non_positive(self):
        clock = SimulationClock()
        with pytest.raises(CraqrError):
            clock.advance(0.0)
        with pytest.raises(CraqrError):
            clock.advance(-1.0)

    def test_reset(self):
        clock = SimulationClock(1.0)
        clock.advance(3.0)
        clock.reset()
        assert clock.now == 1.0
        assert clock.ticks == 0


def run_model(model, steps=200, dt=0.1, seed=0):
    rng = np.random.default_rng(seed)
    state = model.initial_state(rng)
    positions = []
    for _ in range(steps):
        model.step(state, dt, rng)
        positions.append((state.x, state.y))
    return np.array(positions)


class TestMobilityModels:
    def test_initial_state_inside_region(self):
        rng = np.random.default_rng(1)
        for model_cls in (StationaryMobility, RandomWalkMobility, RandomWaypointMobility):
            model = model_cls(REGION)
            state = model.initial_state(rng)
            assert REGION.contains(state.x, state.y, closed=True)

    def test_stationary_never_moves(self):
        model = StationaryMobility(REGION)
        rng = np.random.default_rng(2)
        state = model.initial_state(rng)
        start = (state.x, state.y)
        positions = run_model(model, seed=2)
        assert np.allclose(positions, start)

    def test_random_walk_stays_in_region(self):
        positions = run_model(RandomWalkMobility(REGION, step_std=0.3), seed=3)
        assert positions[:, 0].min() >= 0.0 and positions[:, 0].max() <= 2.0
        assert positions[:, 1].min() >= 0.0 and positions[:, 1].max() <= 2.0

    def test_random_walk_moves(self):
        positions = run_model(RandomWalkMobility(REGION), seed=4)
        assert np.std(positions[:, 0]) > 0.0

    def test_random_walk_rejects_bad_std(self):
        with pytest.raises(CraqrError):
            RandomWalkMobility(REGION, step_std=0.0)

    def test_random_waypoint_reaches_targets(self):
        model = RandomWaypointMobility(REGION, speed=1.0, pause=0.0)
        positions = run_model(model, steps=500, seed=5)
        # The trajectory should cover a substantial part of the region.
        assert positions[:, 0].max() - positions[:, 0].min() > 0.5
        assert positions[:, 1].max() - positions[:, 1].min() > 0.5

    def test_random_waypoint_rejects_bad_params(self):
        with pytest.raises(CraqrError):
            RandomWaypointMobility(REGION, speed=0.0)
        with pytest.raises(CraqrError):
            RandomWaypointMobility(REGION, pause=-1.0)

    def test_random_waypoint_pauses(self):
        model = RandomWaypointMobility(REGION, speed=10.0, pause=5.0)
        rng = np.random.default_rng(6)
        state = model.initial_state(rng)
        # A huge speed reaches the target in one step, then pauses.
        model.step(state, 1.0, rng)
        position_after_arrival = (state.x, state.y)
        model.step(state, 1.0, rng)
        assert (state.x, state.y) == position_after_arrival

    def test_gauss_markov_stays_in_region(self):
        positions = run_model(GaussMarkovMobility(REGION), steps=400, seed=7)
        assert positions[:, 0].min() >= 0.0 and positions[:, 0].max() <= 2.0

    def test_gauss_markov_rejects_bad_alpha(self):
        with pytest.raises(CraqrError):
            GaussMarkovMobility(REGION, alpha=1.5)

    def test_hotspot_mobility_concentrates_near_hotspots(self):
        hotspots = [(0.5, 0.5, 1.0)]
        model = HotspotMobility(REGION, hotspots, speed=0.5, jitter=0.02)
        positions = run_model(model, steps=400, seed=8)
        # After a while, most positions should be near the single hotspot.
        tail = positions[200:]
        distance = np.hypot(tail[:, 0] - 0.5, tail[:, 1] - 0.5)
        assert np.median(distance) < 0.4

    def test_hotspot_mobility_validation(self):
        with pytest.raises(CraqrError):
            HotspotMobility(REGION, [])
        with pytest.raises(CraqrError):
            HotspotMobility(REGION, [(0.5, 0.5, 0.0)])
        with pytest.raises(CraqrError):
            HotspotMobility(REGION, [(0.5, 0.5, 1.0)], switch_probability=2.0)
