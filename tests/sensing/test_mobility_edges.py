"""Mobility edge cases: walls, pauses, mean reversion, batch kernels.

Covers the boundary behaviour of all five models on both entry points (the
scalar ``step`` and the vectorised ``step_batch`` kernel), waypoint pause
accounting across ``advance`` sub-steps, and a regression test for the
Gauss-Markov mean-reversion bug (the velocity used to decay toward zero
instead of reverting to ``mean_speed``).
"""

import math

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.sensing import (
    GaussMarkovMobility,
    HotspotMobility,
    RandomWalkMobility,
    RandomWaypointMobility,
    SensingWorld,
    SensorStateArrays,
    StationaryMobility,
    WorldConfig,
)
from repro.sensing.mobility import MobilityState

REGION = Rectangle(0.0, 0.0, 2.0, 2.0)

MODEL_FACTORIES = {
    # Aggressive parameters so every model hammers the walls.
    "stationary": lambda r: StationaryMobility(r),
    "walk": lambda r: RandomWalkMobility(r, step_std=1.5),
    "waypoint": lambda r: RandomWaypointMobility(r, speed=5.0, pause=0.1),
    "gauss_markov": lambda r: GaussMarkovMobility(r, mean_speed=2.0, speed_std=1.0),
    "hotspot": lambda r: HotspotMobility(
        r, [(0.05, 0.05, 1.0), (1.95, 1.95, 1.0)], speed=4.0, jitter=0.5
    ),
}


def in_region(xs, ys):
    return (
        np.all(xs >= REGION.x_min) and np.all(xs <= REGION.x_max)
        and np.all(ys >= REGION.y_min) and np.all(ys <= REGION.y_max)
    )


class TestWallBehaviourScalar:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_scalar_steps_never_escape_region(self, name):
        model = MODEL_FACTORIES[name](REGION)
        rng = np.random.default_rng(101)
        state = model.initial_state(rng)
        xs, ys = [], []
        for _ in range(300):
            model.step(state, 0.2, rng)
            xs.append(state.x)
            ys.append(state.y)
        assert in_region(np.array(xs), np.array(ys))

    def test_gauss_markov_reflects_velocity_at_walls(self):
        model = GaussMarkovMobility(REGION, mean_speed=1.0, speed_std=0.01)
        state = MobilityState(x=1.95, y=1.0, vx=1.0, vy=0.0)
        rng = np.random.default_rng(5)
        model.step(state, 1.0, rng)
        assert state.x == REGION.x_max  # clamped onto the wall ...
        assert state.vx < 0  # ... with the velocity turned around


class TestWallBehaviourBatch:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_batch_steps_never_escape_region(self, name):
        model = MODEL_FACTORIES[name](REGION)
        rng = np.random.default_rng(103)
        count = 64
        arrays = SensorStateArrays(count)
        for i in range(count):
            arrays.load_mobility_state(i, model.initial_state(rng))
        indices = np.arange(count)
        for _ in range(100):
            model.step_batch(arrays, indices, 0.2, rng)
            assert in_region(arrays.x, arrays.y)

    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_batch_kernel_handles_partial_masks(self, name):
        # Kernels must only touch the rows they are given.
        model = MODEL_FACTORIES[name](REGION)
        rng = np.random.default_rng(104)
        arrays = SensorStateArrays(10)
        for i in range(10):
            arrays.load_mobility_state(i, model.initial_state(rng))
        frozen = arrays.positions()[5:].copy()
        for _ in range(20):
            model.step_batch(arrays, np.arange(5), 0.2, rng)
        assert np.array_equal(arrays.positions()[5:], frozen)

    def test_gauss_markov_batch_reflects_velocity(self):
        model = GaussMarkovMobility(REGION, mean_speed=1.0, speed_std=0.01)
        arrays = SensorStateArrays(1)
        arrays.x[0], arrays.y[0] = 1.95, 1.0
        arrays.vx[0], arrays.vy[0] = 1.0, 0.0
        model.step_batch(arrays, np.array([0]), 1.0, np.random.default_rng(5))
        assert arrays.x[0] == REGION.x_max
        assert arrays.vx[0] < 0


class TestWaypointPauseAccounting:
    def make_paused_state(self, pause):
        state = MobilityState(x=1.0, y=1.0, pause_remaining=pause)
        return state

    def test_pause_runs_down_across_steps_without_moving(self):
        model = RandomWaypointMobility(REGION, speed=1.0, pause=0.35)
        state = self.make_paused_state(0.35)
        rng = np.random.default_rng(7)
        for expected in (0.25, 0.15, 0.05, 0.0):
            model.step(state, 0.1, rng)
            assert state.pause_remaining == pytest.approx(expected)
            assert (state.x, state.y) == (1.0, 1.0)
        # Only the step *after* the timer hit zero starts a new leg.
        model.step(state, 0.1, rng)
        assert (state.x, state.y) != (1.0, 1.0)
        assert state.target_x is not None

    def test_batch_pause_matches_scalar_semantics(self):
        model = RandomWaypointMobility(REGION, speed=1.0, pause=0.35)
        arrays = SensorStateArrays(3)
        arrays.x[:] = arrays.y[:] = 1.0
        arrays.pause_remaining[:] = [0.35, 0.05, 0.0]
        rng = np.random.default_rng(8)
        model.step_batch(arrays, np.arange(3), 0.1, rng)
        # Paused rows ran their timers down in place ...
        assert arrays.pause_remaining[0] == pytest.approx(0.25)
        assert arrays.pause_remaining[1] == pytest.approx(0.0)
        assert np.all(arrays.x[:2] == 1.0) and np.all(arrays.y[:2] == 1.0)
        # ... while the expired row picked a target and moved.
        assert (arrays.x[2], arrays.y[2]) != (1.0, 1.0)
        assert not np.isnan(arrays.target_x[2])

    def test_pause_accounting_across_world_advance_sub_steps(self):
        # speed 50 reaches any target within one 0.1 sub-step, so the
        # sensor alternates arrive -> pause(0.3 = 3 sub-steps) -> walk.
        world = SensingWorld(
            WorldConfig(region=REGION, sensor_count=1, seed=13, movement_step=0.1),
            mobility_factory=lambda r: RandomWaypointMobility(r, speed=50.0, pause=0.3),
        )
        soa = world.state_arrays
        world.advance(0.1)  # arrives at its first target and starts pausing
        resting = (float(soa.x[0]), float(soa.y[0]))
        assert soa.pause_remaining[0] == pytest.approx(0.3)
        world.advance(0.3)  # three sub-steps: 0.2 -> 0.1 -> 0.0, no movement
        assert soa.pause_remaining[0] == pytest.approx(0.0)
        assert (float(soa.x[0]), float(soa.y[0])) == resting
        world.advance(0.1)  # next leg: jumps to a fresh target, pauses again
        assert (float(soa.x[0]), float(soa.y[0])) != resting
        assert soa.pause_remaining[0] == pytest.approx(0.3)


class TestGaussMarkovMeanReversion:
    """Regression: the mean-reversion term used to be multiplied by 0.0."""

    def long_run_mean_speed(self, *, batch, mean_speed=0.3, steps=4000):
        region = Rectangle(0.0, 0.0, 50.0, 50.0)  # huge: walls play no role
        model = GaussMarkovMobility(
            region, mean_speed=mean_speed, alpha=0.75, speed_std=0.05
        )
        rng = np.random.default_rng(42)
        if batch:
            arrays = SensorStateArrays(100)
            for i in range(100):
                state = model.initial_state(rng)
                state.x = state.y = 25.0
                arrays.load_mobility_state(i, state)
            speeds = []
            for _ in range(steps // 100):
                model.step_batch(arrays, np.arange(100), 0.1, rng)
                speeds.append(np.hypot(arrays.vx, arrays.vy).mean())
            return float(np.mean(speeds[len(speeds) // 2:]))
        state = model.initial_state(rng)
        state.x = state.y = 25.0
        speeds = []
        for _ in range(steps):
            model.step(state, 0.1, rng)
            speeds.append(math.hypot(state.vx, state.vy))
        return float(np.mean(speeds[steps // 2:]))

    def test_scalar_long_run_speed_reverts_to_mean(self):
        mean = self.long_run_mean_speed(batch=False)
        # With the old bug the velocity decays to pure noise
        # (~speed_std * sqrt(pi/2) ~ 0.06); fixed, it hovers at mean_speed.
        assert 0.25 < mean < 0.4

    def test_batch_long_run_speed_reverts_to_mean(self):
        mean = self.long_run_mean_speed(batch=True)
        assert 0.25 < mean < 0.4

    def test_zero_velocity_state_recovers(self):
        model = GaussMarkovMobility(REGION, mean_speed=0.5, speed_std=0.1)
        state = MobilityState(x=1.0, y=1.0, vx=0.0, vy=0.0)
        rng = np.random.default_rng(3)
        for _ in range(200):
            model.step(state, 0.1, rng)
        assert math.hypot(state.vx, state.vy) > 0.1


class _BiasedWalk(RandomWalkMobility):
    """Overrides the scalar dynamics but inherits the parent's kernel."""

    def step(self, state, dt, rng):
        super().step(state, dt, rng)
        state.x = min(state.x + 1.0 * dt, self.region.x_max)


class _DriftingModel(StationaryMobility):
    """Stashes custom per-sensor state on its MobilityState (pre-SoA idiom)."""

    def initial_state(self, rng):
        state = super().initial_state(rng)
        state.drift_budget = 0.5  # extra attribute unknown to the SoA
        return state

    def step(self, state, dt, rng):
        consumed = min(state.drift_budget, 0.1 * dt)
        state.drift_budget -= consumed
        state.x = min(state.x + consumed, self.region.x_max)


class TestCustomModelContract:
    """Subclassed models must stay correct in both RNG modes."""

    def test_overridden_step_disables_inherited_kernel(self):
        model = _BiasedWalk(REGION, step_std=0.01)
        assert model.batch_key() is None  # parent kernel no longer matches
        assert RandomWalkMobility(REGION, step_std=0.01).batch_key() is not None

    def test_overridden_helper_hook_disables_inherited_kernel(self):
        # Customising dynamics through a helper hook (not step itself) must
        # also opt the subclass out of the parent's kernel.
        class LeftHalfWaypoint(RandomWaypointMobility):
            def _pick_target(self, state, rng):
                super()._pick_target(state, rng)
                state.target_x = min(state.target_x, self.region.center.x)

        assert LeftHalfWaypoint(REGION).batch_key() is None

    def test_overridden_step_runs_in_fast_sim_world(self):
        def mean_drift(vectorized):
            world = SensingWorld(
                WorldConfig(
                    region=Rectangle(0.0, 0.0, 100.0, 100.0),
                    sensor_count=30,
                    seed=5,
                    vectorized_rng=vectorized,
                ),
                mobility_factory=lambda r: _BiasedWalk(r, step_std=0.01),
            )
            before = world.sensor_positions()[:, 0].mean()
            world.advance(5.0)
            return world.sensor_positions()[:, 0].mean() - before

        # The +1.0/time-unit drift must appear in both modes (fast-sim
        # falls back to per-object stepping for the unmatched subclass).
        assert mean_drift(False) == pytest.approx(5.0, abs=0.5)
        assert mean_drift(True) == pytest.approx(5.0, abs=0.5)

    def test_custom_state_attributes_survive_the_soa(self):
        for vectorized in (False, True):
            world = SensingWorld(
                WorldConfig(
                    region=REGION, sensor_count=3, seed=9, vectorized_rng=vectorized
                ),
                mobility_factory=lambda r: _DriftingModel(r),
            )
            start = world.sensor_positions()[:, 0].copy()
            world.advance(2.0)  # drains 0.1/time-unit from each drift budget
            moved = world.sensor_positions()[:, 0] - start
            assert np.allclose(moved[start + 0.2 <= REGION.x_max], 0.2)
            world.advance(10.0)  # budget (0.5 total) is exhausted by now
            final = world.sensor_positions()[:, 0]
            assert np.allclose(
                final[start + 0.5 <= REGION.x_max], (start + 0.5)[start + 0.5 <= REGION.x_max]
            )
