"""The fused attribute-level fast-sim acquisition round.

``RequestResponseHandler.acquire_attribute_batch`` serves all requested
cells of one attribute with a single participation draw, a single latency
draw and a single ``field.values`` call.  These tests pin down its three
contracts:

* **statistical equivalence** with the per-cell fast-sim round — same
  per-cell response rates, incentive spend and report counters within
  tolerance (twin worlds share a seed but draw in different orders, so
  the comparison is distributional);
* **exact bookkeeping** — per-cell budgets, request counts and incentive
  accounting are per ``(attribute, cell)`` even though the draws are fused;
* a **strict-mode guard** — a non-vectorised world never enters the fused
  path, keeping the seeded byte-identical per-cell contract intact.
"""

import numpy as np
import pytest

from repro.geometry import Grid, Rectangle
from repro.sensing import (
    BernoulliParticipation,
    DistanceDecayParticipation,
    FatigueParticipation,
    FlatIncentive,
    RainField,
    RandomWaypointMobility,
    RequestResponseHandler,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


def make_world(vectorized, *, sensor_count=2000, seed=17, participation=None):
    world = SensingWorld(
        WorldConfig(
            region=REGION,
            sensor_count=sensor_count,
            seed=seed,
            vectorized_rng=vectorized,
        ),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.4),
        participation_factory=participation,
    )
    world.register_field(RainField(REGION))
    world.register_field(TemperatureField(REGION))
    return world


def per_cell_round(handler, attribute, cells, *, duration=1.0):
    """The pre-fusion fast-sim baseline: one acquire_cell_batch per cell."""
    from repro.sensing.handler import HandlerReport
    from repro.streams import TupleBatch

    report = HandlerReport()
    batches = []
    for cell in cells:
        batch = handler.acquire_cell_batch(
            attribute, cell, duration=duration, report=report
        )
        if batch is not None and len(batch):
            batches.append(batch)
    if not batches:
        return None, report
    return TupleBatch.concatenate(batches), report


class TestFusedStatisticalEquivalence:
    def test_matches_per_cell_fast_sim_rates_and_counters(self):
        participation = lambda i: BernoulliParticipation(0.6, mean_latency=0.1)
        fused_world = make_world(True, participation=participation)
        cellwise_world = make_world(True, participation=participation)
        grid = Grid(REGION, side=4)
        cells = list(grid.cells())
        fused_handler = RequestResponseHandler(fused_world, grid, default_budget=100)
        cellwise_handler = RequestResponseHandler(
            cellwise_world, grid, default_budget=100
        )

        fused_requests = fused_responses = 0
        cellwise_requests = cellwise_responses = 0
        fused_cell_rates = {}
        cellwise_cell_rates = {}
        for _ in range(4):
            batches, fused_report = fused_handler.acquire_batches(
                {"rain": cells}, duration=1.0
            )
            fused_world.advance(1.0)
            _, cellwise_report = per_cell_round(cellwise_handler, "rain", cells)
            cellwise_world.advance(1.0)
            fused_requests += fused_report.requests_sent
            fused_responses += fused_report.responses_received
            cellwise_requests += cellwise_report.requests_sent
            cellwise_responses += cellwise_report.responses_received
            for key, sent in fused_report.per_cell_requests.items():
                fused_cell_rates.setdefault(key, [0, 0])
                fused_cell_rates[key][0] += sent
                fused_cell_rates[key][1] += fused_report.per_cell_responses.get(key, 0)
            for key, sent in cellwise_report.per_cell_requests.items():
                cellwise_cell_rates.setdefault(key, [0, 0])
                cellwise_cell_rates[key][0] += sent
                cellwise_cell_rates[key][1] += cellwise_report.per_cell_responses.get(key, 0)
            # Within one round the fused path counts tuples == responses,
            # exactly like the per-cell path.
            assert (
                sum(len(b) for b in batches.values())
                == fused_report.responses_received
            )

        # Budgets are deterministic, so request counters agree exactly.
        assert fused_requests == cellwise_requests
        assert set(fused_cell_rates) == set(cellwise_cell_rates)
        # Aggregate response rate is a Bernoulli(0.6) mean over ~6k draws.
        fused_rate = fused_responses / fused_requests
        cellwise_rate = cellwise_responses / cellwise_requests
        assert fused_rate == pytest.approx(0.6, abs=0.05)
        assert fused_rate == pytest.approx(cellwise_rate, abs=0.04)
        # Per-cell rates agree within a tolerance wide enough for the
        # smaller per-cell populations (budget 100 x 4 rounds per cell).
        for key, (sent, got) in fused_cell_rates.items():
            other_sent, other_got = cellwise_cell_rates[key]
            assert sent == other_sent
            assert got / sent == pytest.approx(other_got / other_sent, abs=0.12)

    def test_incentive_spend_matches_per_cell_fast_sim(self):
        participation = lambda i: BernoulliParticipation(0.4)
        fused_world = make_world(True, participation=participation)
        cellwise_world = make_world(True, participation=participation)
        grid = Grid(REGION, side=4)
        cells = list(grid.cells())
        fused_handler = RequestResponseHandler(
            fused_world, grid, default_budget=50, incentive=FlatIncentive(0.5)
        )
        cellwise_handler = RequestResponseHandler(
            cellwise_world, grid, default_budget=50, incentive=FlatIncentive(0.5)
        )
        _, fused_report = fused_handler.acquire_batches({"rain": cells}, duration=1.0)
        _, cellwise_report = per_cell_round(cellwise_handler, "rain", cells)
        # A flat incentive pays exactly per request, so the fused round's
        # spend is byte-equal, not just statistically equal.
        assert fused_report.requests_sent == cellwise_report.requests_sent
        assert fused_report.incentive_spent == pytest.approx(
            cellwise_report.incentive_spent
        )
        assert fused_report.incentive_spent == pytest.approx(
            0.5 * fused_report.requests_sent
        )

    def test_fused_batch_is_well_formed(self):
        fused_world = make_world(True, sensor_count=800)
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(fused_world, grid, default_budget=40)
        cells = list(grid.cells())
        batch = handler.acquire_attribute_batch("temp", cells, duration=1.0)
        assert batch is not None
        n = len(batch)
        assert batch.attribute == "temp"
        assert batch.value.dtype == np.float64
        assert batch.extra["cell"].shape == (n, 2)
        assert batch.extra["incentive"].shape == (n,)
        # Every tuple's cell key is one of the requested cells, and the
        # reported coordinates lie inside that cell.
        for cell in cells:
            mask = np.all(batch.extra["cell"] == np.array(cell.key), axis=1)
            if not mask.any():
                continue
            assert np.all(
                cell.rect.contains_many(batch.x[mask], batch.y[mask], closed=True)
            )

    def test_fused_round_updates_soa_counters(self):
        fused_world = make_world(True, sensor_count=600)
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(fused_world, grid, default_budget=30)
        handler.acquire_batches({"rain": list(grid.cells())}, duration=1.0)
        soa = fused_world.state_arrays
        assert soa.requests_received.sum() == handler.total_requests
        assert soa.responses_sent.sum() == handler.total_responses

    def test_with_replacement_sampling_in_starved_cells(self):
        # Deterministic coverage of the replacement branch: 6 sensors over
        # 4 cells with budget 10 guarantees every populated cell is smaller
        # than its budget, so chosen rows repeat and the counter accounting
        # must use the unbuffered scatter-add (a fancy-index increment
        # would silently drop repeated-row counts).
        fused_world = make_world(True, sensor_count=6)
        grid = Grid(REGION, side=2)
        handler = RequestResponseHandler(fused_world, grid, default_budget=10)
        cells = list(grid.cells())
        batch = handler.acquire_attribute_batch("rain", cells, duration=1.0)
        populated = sum(
            1 for cell in cells
            if fused_world.sensor_indices_in_rectangle(cell.rect).size
        )
        assert handler.total_requests == 10 * populated
        soa = fused_world.state_arrays
        # Every dispatched request is accounted exactly once, even though
        # each sensor was asked several times in one round.
        assert soa.requests_received.sum() == handler.total_requests
        assert soa.requests_received.max() > 1
        assert soa.responses_sent.sum() == handler.total_responses
        if batch is not None:
            assert len(batch) == handler.total_responses

    def test_off_grid_cells_are_served_by_the_per_cell_path(self):
        fused_world = make_world(True, sensor_count=500)
        grid = Grid(REGION, side=4)
        other_grid = Grid(REGION, side=2)  # different geometry: not in grid
        handler = RequestResponseHandler(fused_world, grid, default_budget=25)
        cells = [grid.cell(0, 0), other_grid.cell(1, 1)]
        batch = handler.acquire_attribute_batch("rain", cells, duration=1.0)
        assert batch is not None
        keys = {tuple(key) for key in batch.extra["cell"]}
        assert keys <= {(0, 0), (1, 1)}


class TestStatefulFastSim:
    def test_fatigue_crowd_avoids_per_sensor_fallback(self):
        # ISSUE 3 acceptance: a FatigueParticipation crowd must run fast-sim
        # acquisition without the per-sensor fallback.  The fallback (and
        # only the fallback) journals observations into each sensor's local
        # memory, so empty journals prove the vector path served every round.
        participation = lambda i: FatigueParticipation(
            0.7, fatigue_per_request=0.1, recovery_per_time=0.01
        )
        world = make_world(True, sensor_count=800, participation=participation)
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(world, grid, default_budget=60)
        cells = list(grid.cells())
        for _ in range(3):
            handler.acquire_batches({"rain": cells}, duration=1.0)
            world.advance(1.0)
        assert handler.total_responses > 0
        assert all(not sensor.memory for sensor in world.sensors)
        # The SoA fatigue columns moved: requests accumulated fatigue.
        assert np.any(world.state_arrays.column(FatigueParticipation.LEVEL_COLUMN) > 0)

    def test_fatigue_response_rate_matches_strict(self):
        participation = lambda i: FatigueParticipation(
            0.7, fatigue_per_request=0.02, recovery_per_time=0.005, min_probability=0.1
        )
        strict = make_world(False, sensor_count=1000, participation=participation)
        fast = make_world(True, sensor_count=1000, participation=participation)
        grid = Grid(REGION, side=4)
        strict_handler = RequestResponseHandler(strict, grid, default_budget=80)
        fast_handler = RequestResponseHandler(fast, grid, default_budget=80)
        cells = list(grid.cells())
        rates = {}
        for name, world, handler in (
            ("strict", strict, strict_handler),
            ("fast", fast, fast_handler),
        ):
            for _ in range(4):
                handler.acquire_batches({"rain": cells}, duration=1.0)
                world.advance(1.0)
            rates[name] = handler.total_responses / handler.total_requests
        assert rates["fast"] == pytest.approx(rates["strict"], abs=0.05)

    def test_fatigue_rate_declines_over_rounds(self):
        # Hammering the same crowd with no recovery must wear it out in
        # fast-sim exactly as the scalar model describes.
        participation = lambda i: FatigueParticipation(
            0.9, fatigue_per_request=0.15, recovery_per_time=0.0, min_probability=0.05
        )
        world = make_world(True, sensor_count=400, participation=participation)
        grid = Grid(REGION, side=2)
        handler = RequestResponseHandler(world, grid, default_budget=150)
        cells = list(grid.cells())
        round_rates = []
        for _ in range(5):
            _, report = handler.acquire_batches({"rain": cells}, duration=1.0)
            world.advance(1.0)
            round_rates.append(report.response_rate)
        assert round_rates[-1] < round_rates[0] - 0.2

    def test_distance_decay_uses_soa_distance_column(self):
        models = {}

        def participation(sensor_id):
            model = DistanceDecayParticipation(0.9, decay_scale=0.5)
            models[sensor_id] = model
            return model

        world = make_world(True, sensor_count=400, participation=participation)
        grid = Grid(REGION, side=2)
        handler = RequestResponseHandler(world, grid, default_budget=100)
        cells = list(grid.cells())

        _, near_report = handler.acquire_batches({"rain": cells}, duration=1.0)
        world.advance(1.0)
        # Push every sensor far from the point of interest; set_distance
        # writes through to the SoA column, so the next fused round sees it.
        for sensor_id, model in models.items():
            model.set_distance(sensor_id, 5.0)
        column = world.state_arrays.column(
            DistanceDecayParticipation.DISTANCE_COLUMN
        )
        assert np.all(column == 5.0)
        _, far_report = handler.acquire_batches({"rain": cells}, duration=1.0)
        assert near_report.response_rate > 0.7
        assert far_report.response_rate < 0.05
        assert all(not sensor.memory for sensor in world.sensors)

    def test_fatigue_state_is_coherent_across_vector_and_fallback_paths(self):
        # A fatigue sensor bound to SoA vector state must keep ONE fatigue
        # store: scalar decide() (the per-sensor fallback round) writes the
        # SoA columns, so fused rounds — and current_probability() — see
        # fatigue accumulated on either path.
        from repro.sensing import SensorStateArrays

        model = FatigueParticipation(
            0.8, fatigue_per_request=0.1, recovery_per_time=0.0
        )
        soa = SensorStateArrays(2)
        soa.sensor_ids[:] = [7, 8]
        for name in model.vector_state_columns():
            soa.ensure_column(name)
        model.init_vector_state(soa, 0)
        model.init_vector_state(soa, 1)
        rng = np.random.default_rng(3)
        # Scalar decisions (the fallback path) must land in the SoA columns...
        for _ in range(3):
            model.decide(7, 1.0, rng=rng)
        levels = soa.column(FatigueParticipation.LEVEL_COLUMN)
        assert levels[0] == pytest.approx(0.3)
        # ... be visible to the public probability API ...
        assert model.current_probability(7, 1.0) == pytest.approx(0.8 - 0.3)
        # ... and to the vector round; a vector commit must likewise be
        # visible to the scalar path.
        assert model.vector_probabilities(
            soa, np.array([0]), np.array([1.0])
        )[0] == pytest.approx(0.5)
        model.vector_commit(soa, np.array([1, 1]), np.array([2.0, 2.5]))
        assert model.current_probability(8, 2.5) == pytest.approx(0.8 - 0.2)

    def test_fused_choices_skew_guard_stays_correct(self):
        # Heavily skewed populations route through the per-cell draw (the
        # dense padded matrix would cost cells x max_population); the
        # sample contract is unchanged: per-cell budgets honoured, every
        # chosen row from its own cell, no replacement when populations
        # suffice.
        rng = np.random.default_rng(11)
        populations = [np.arange(200_000), np.array([200_001, 200_002, 200_003])]
        budgets = np.array([5, 2], dtype=np.int64)
        rows, replacement_used = RequestResponseHandler._fused_sensor_choices(
            populations, budgets, rng
        )
        assert not replacement_used
        assert rows.shape == (7,)
        assert set(rows[:5]) <= set(range(200_000)) and len(set(rows[:5])) == 5
        assert set(rows[5:]) <= {200_001, 200_002, 200_003} and len(set(rows[5:])) == 2

    def test_mixed_stateful_groups_are_dispatched_separately(self):
        # Two fatigue parameterisations form two participation groups; both
        # must be decided vectorially in one fused round.
        participation = lambda i: (
            FatigueParticipation(0.9, fatigue_per_request=0.0)
            if i % 2 == 0
            else FatigueParticipation(0.3, fatigue_per_request=0.0)
        )
        world = make_world(True, sensor_count=1000, participation=participation)
        assert len(world.participation_groups) == 2
        soa = world.state_arrays
        assert set(np.unique(soa.participation_group)) == {0, 1}
        grid = Grid(REGION, side=1)
        handler = RequestResponseHandler(world, grid, default_budget=600)
        _, report = handler.acquire_batches(
            {"rain": list(grid.cells())}, duration=1.0
        )
        assert all(not sensor.memory for sensor in world.sensors)
        # The blended response rate sits between the two groups' bases.
        assert 0.45 < report.response_rate < 0.75


class TestStrictModeGuard:
    def test_strict_acquire_batches_stays_byte_identical_to_object_path(self):
        # The fused round must never engage in strict mode: the columnar
        # acquisition of a strict world remains byte-identical to the
        # object-at-a-time path, per-cell, for the same seed.
        participation = lambda i: BernoulliParticipation(0.5, mean_latency=0.1)
        columnar = make_world(False, sensor_count=300, participation=participation)
        object_world = make_world(False, sensor_count=300, participation=participation)
        grid = Grid(REGION, side=4)
        columnar_handler = RequestResponseHandler(columnar, grid, default_budget=20)
        object_handler = RequestResponseHandler(object_world, grid, default_budget=20)
        cells = list(grid.cells())
        batches, columnar_report = columnar_handler.acquire_batches(
            {"rain": cells}, duration=1.0
        )
        tuples_by_cell, object_report = object_handler.acquire(
            {"rain": cells}, duration=1.0
        )
        columnar_tuples = sorted(
            (item for batch in batches.values() for item in batch.to_tuples()),
            key=lambda item: item.tuple_id,
        )
        object_tuples = sorted(
            (item for items in tuples_by_cell.values() for item in items),
            key=lambda item: item.tuple_id,
        )
        assert columnar_tuples == object_tuples
        assert columnar_report.requests_sent == object_report.requests_sent
        assert columnar_report.responses_received == object_report.responses_received
        assert columnar_report.per_cell_requests == object_report.per_cell_requests
        assert columnar_report.per_cell_responses == object_report.per_cell_responses

    def test_strict_world_never_builds_fused_rounds(self, monkeypatch):
        world = make_world(False, sensor_count=100)
        grid = Grid(REGION, side=2)
        handler = RequestResponseHandler(world, grid, default_budget=10)

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("strict mode must not take the fused path")

        monkeypatch.setattr(handler, "acquire_attribute_batch", boom)
        batches, report = handler.acquire_batches(
            {"rain": list(grid.cells())}, duration=1.0
        )
        assert report.requests_sent == 10 * 4
