"""Serialize-once fan-out, bounded queues and backpressure policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError, StorageError
from repro.serve.fanout import FrameFanout, SubscriberQueue
from repro.serve.tokens import frame_token_at
from repro.streams.codec import (
    codec_call_counts,
    decode_tuple_batch,
    decode_view_frame,
    encode_view_frame,
    reset_codec_call_counts,
)
from repro.views.frames import ViewFrame, ViewFrameBuffer

from serve_harness import make_engine


def make_frame(index: int, groups: int = 2) -> ViewFrame:
    keys = np.empty(groups, dtype=object)
    keys[:] = [(g, index) for g in range(groups)]
    return ViewFrame(
        frame_index=index,
        window_start=float(2 * index),
        window_end=float(2 * index + 2),
        keys=keys,
        values=np.arange(groups, dtype=np.float64) + index,
        counts=np.full(groups, 3, dtype=np.int64),
    )


def fill(buffer: ViewFrameBuffer, upto: int) -> None:
    for i in range(buffer.frames_emitted, upto):
        buffer.append(make_frame(i))


class TestSubscriberQueue:
    def test_fifo_order(self):
        q = SubscriberQueue(capacity=4)
        for i in range(3):
            q.offer({"event": "frame", "i": i}, b"p%d" % i)
        assert [q.pop()[0]["i"] for _ in range(3)] == [0, 1, 2]
        assert q.pop() is None

    def test_skip_drops_oldest_and_reports_count(self):
        q = SubscriberQueue(capacity=2, policy="skip")
        for i in range(5):
            assert q.offer({"i": i}, b"")
        assert len(q) == 2
        header, _ = q.pop()
        assert header["i"] == 3  # 0..2 were dropped to make room
        assert header["skipped"] == 3
        header, _ = q.pop()
        assert header["i"] == 4
        assert "skipped" not in header  # the count was reported and reset

    def test_disconnect_flags_overflow_and_stops_accepting(self):
        q = SubscriberQueue(capacity=2, policy="disconnect")
        assert q.offer({"i": 0}, b"")
        assert q.offer({"i": 1}, b"")
        assert not q.offer({"i": 2}, b"")
        assert q.overflowed
        assert not q.offer({"i": 3}, b"")
        # The two accepted events are still drainable.
        assert q.pop()[0]["i"] == 0
        assert q.pop()[0]["i"] == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServeError, match="positive capacity"):
            SubscriberQueue(capacity=0)
        with pytest.raises(ServeError, match="unknown backpressure"):
            SubscriberQueue(policy="block")


class TestViewFanout:
    def test_publish_encodes_once_and_shares_payload_by_reference(self):
        buffer = ViewFrameBuffer()
        fanout = FrameFanout()
        queues = [SubscriberQueue(capacity=16) for _ in range(50)]
        for q in queues:
            fanout.subscribe_view("Rain", buffer, q)
        assert fanout.subscriber_count == 50

        fill(buffer, 3)
        reset_codec_call_counts()
        assert fanout.publish() == 3
        # Three frames, fifty subscribers: exactly three encodes.
        assert codec_call_counts()["view_frame"] == 3

        first_payloads = [q.pop()[1] for q in queues]
        assert all(p is first_payloads[0] for p in first_payloads)
        assert decode_view_frame(first_payloads[0]).frame_index == 0

    def test_publish_is_incremental(self):
        buffer = ViewFrameBuffer()
        fanout = FrameFanout()
        q = SubscriberQueue(capacity=16)
        fanout.subscribe_view("Rain", buffer, q)
        fill(buffer, 2)
        assert fanout.publish() == 2
        assert fanout.publish() == 0  # nothing new
        fill(buffer, 3)
        assert fanout.publish() == 1
        indexes = []
        while (item := q.pop()) is not None:
            indexes.append(item[0]["frame_index"])
        assert indexes == [0, 1, 2]

    def test_token_resume_drains_backlog_exactly_once(self):
        buffer = ViewFrameBuffer()
        fanout = FrameFanout()
        a = SubscriberQueue(capacity=16)
        fanout.subscribe_view("Rain", buffer, a)
        fill(buffer, 5)
        fanout.publish()
        events = [a.pop() for _ in range(5)]
        token = events[2][0]["token"]  # consumed frames 0..2

        b = SubscriberQueue(capacity=16)
        fanout.subscribe_view("Rain", buffer, b, token=token)
        fill(buffer, 7)
        fanout.publish()
        got = []
        while (item := b.pop()) is not None:
            header, payload = item
            got.append(header["frame_index"])
            assert payload == encode_view_frame(buffer.frame(header["frame_index"]))
        # Exactly once from the token position: no gaps, no duplicates.
        assert got == [3, 4, 5, 6]

    def test_token_past_frontier_rejected_at_subscribe(self):
        buffer = ViewFrameBuffer()
        fanout = FrameFanout()
        fill(buffer, 2)
        with pytest.raises(ServeError, match="only emitted"):
            fanout.subscribe_view(
                "Rain", buffer, SubscriberQueue(), token=frame_token_at(9)
            )

    def test_token_behind_retention_surfaces_storage_error(self):
        buffer = ViewFrameBuffer(retention_frames=2)
        fanout = FrameFanout()
        fill(buffer, 6)  # frames 0..3 evicted
        with pytest.raises(StorageError, match="evicted"):
            fanout.subscribe_view(
                "Rain", buffer, SubscriberQueue(), token=frame_token_at(1)
            )
        # The failed subscribe left no queue behind.
        assert fanout.subscriber_count == 0
        fanout.subscribe_view("Rain", buffer, SubscriberQueue())
        assert fanout.subscriber_count == 1

    def test_unsubscribe_dismantles_empty_topics(self):
        buffer = ViewFrameBuffer()
        fanout = FrameFanout()
        q = SubscriberQueue()
        fanout.subscribe_view("Rain", buffer, q)
        fill(buffer, 1)
        fanout.unsubscribe(q)
        assert fanout.subscriber_count == 0
        assert fanout.publish() == 0  # no topics left to walk

    def test_overflowed_queues_listed(self):
        buffer = ViewFrameBuffer()
        fanout = FrameFanout()
        q = SubscriberQueue(capacity=1, policy="disconnect", tag=("c", 1))
        fanout.subscribe_view("Rain", buffer, q)
        fill(buffer, 3)
        fanout.publish()
        assert fanout.overflowed_queues() == [q]


class TestQueryFanout:
    def test_delivery_batches_fan_out_serialize_once(self):
        engine = make_engine(view=False)
        buffer = engine.query("Storm").buffer
        fanout = FrameFanout()
        queues = [SubscriberQueue(capacity=16) for _ in range(10)]
        tokens = [fanout.subscribe_query("Storm", buffer, q) for q in queues]
        assert len(set(tokens)) == 1  # all joined at the same frontier

        engine.run_batch()
        reset_codec_call_counts()
        assert fanout.publish() == 1
        assert codec_call_counts()["tuple_batch"] == 1

        payloads = [q.pop() for q in queues]
        assert all(p[1] is payloads[0][1] for p in payloads)
        header, payload = payloads[0]
        batch = decode_tuple_batch(payload)
        assert header["count"] == len(batch) > 0

    def test_token_resume_replays_unread_deliveries(self):
        engine = make_engine(view=False)
        buffer = engine.query("Storm").buffer
        fanout = FrameFanout()
        a = SubscriberQueue(capacity=16)
        fanout.subscribe_query("Storm", buffer, a)
        for _ in range(3):
            engine.run_batch()
            fanout.publish()
        a.pop()  # consume batch 1
        header, _ = a.pop()  # consume batch 2; resume after it
        token = header["token"]

        b = SubscriberQueue(capacity=16)
        fanout.subscribe_query("Storm", buffer, b, token=token)
        _, backlog_payload = b.pop()
        # The backlog is byte-identical to the batch-3 event the original
        # subscriber still holds: exactly once, no gaps, no duplicates.
        _, batch3_payload = a.pop()
        assert backlog_payload == batch3_payload
        assert len(decode_tuple_batch(backlog_payload)) > 0
        assert b.pop() is None
