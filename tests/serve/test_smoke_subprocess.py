"""Serve smoke: a real subprocess server driven by a scripted client.

This is the CI serve-smoke job: start ``python -m repro.cli serve`` as a
subprocess, parse the banner for the ephemeral port, run a scripted
session (DDL, batches, a push subscription, a pull fetch), shut the
server down cleanly and assert a zero exit code with no tracebacks on
stderr.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys
import time

import pytest

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"

BANNER = re.compile(r"serving craqr/1 on ([0-9.]+):(\d+)")


@pytest.fixture
def server_process():
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--scenario",
            "rain-temperature",
            "--sensors",
            "60",
            "--seed",
            "3",
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": str(SRC), "PYTHONUNBUFFERED": "1", "PATH": "/usr/bin:/bin"},
    )
    try:
        yield proc
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def read_banner(proc) -> tuple:
    """Lines up to and including the banner; returns (host, port)."""
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before its banner: {proc.stderr.read()}"
            )
        match = BANNER.search(line)
        if match:
            return match.group(1), int(match.group(2))
    raise AssertionError("no banner within 60 seconds")


def test_subprocess_server_scripted_session(server_process):
    sys.path.insert(0, str(SRC))
    from repro.serve import ServeClient
    from repro.streams.codec import decode_tuple_batch, decode_view_frame

    host, port = read_banner(server_process)

    with ServeClient(host, port, timeout=60) as client:
        hello = client.hello()
        assert hello["protocol"] == "craqr/1"
        assert hello["queries"] == []

        rows = client.execute(
            "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 8 PER KM2 PER MIN AS Q1; "
            "CREATE VIEW Tiles ON Q1 AS AVG(value) GROUP BY CELL WINDOW 2; "
            "SHOW QUERIES"
        )
        assert [r["ok"] for r in rows] == [True, True, True]
        assert rows[0]["query"]["label"] == "Q1"
        assert rows[1]["view"]["name"] == "Tiles"

        sub = client.subscribe(view="Tiles")
        run = client.run(4)
        assert run["batches_run"] == 4 and run["tuples_delivered"] > 0

        header, payload = client.next_event(timeout=60)
        assert header["event"] == "frame" and header["sub"] == sub["sub"]
        assert decode_view_frame(payload).frame_index == 0

        reply, payload = client.fetch(query="Q1")
        assert reply["count"] == len(decode_tuple_batch(payload)) > 0

        assert client.shutdown()["stopping"] is True

    stdout, stderr = server_process.communicate(timeout=60)
    assert server_process.returncode == 0
    assert "serve done: 4 batches run" in stdout
    assert "Traceback" not in stderr, stderr
