"""The reconnect contract: disconnect + token resume is exactly-once.

A subscriber that disconnects mid-stream and resumes from its last offset
token sees every frame exactly once — no gaps, no duplicates — with the
stream byte-identical to an uninterrupted reference run.  The contract
holds across a server restart from a checkpoint (PR 7's byte-identity
restore makes the resumed engine emit the same frames the crashed one
would have).
"""

from __future__ import annotations

from repro.core import CraqrEngine
from repro.serve import ServeClient, ServeConfig, serve_in_thread
from repro.streams.codec import encode_view_frame

from serve_harness import make_engine, reference_frames, simulate_fresh_process


def collect_frames(client: ServeClient, count: int):
    """Read exactly ``count`` frame events as (frame_index, payload)."""
    events = []
    while len(events) < count:
        header, payload = client.next_event(timeout=30)
        if header.get("event") == "frame":
            events.append((header, payload))
    return events


def test_resume_after_disconnect_is_exactly_once():
    engine = make_engine()
    server, (host, port), stop = serve_in_thread(engine, ServeConfig())
    try:
        # Phase 1: subscribe, watch three frames close, then vanish
        # abruptly (no unsubscribe — the socket just goes away).
        first = ServeClient(host, port)
        first.subscribe(view="Rain")
        first.run(6)  # window 2 -> frames 0, 1, 2
        events = collect_frames(first, 3)
        assert [h["frame_index"] for h, _ in events] == [0, 1, 2]
        token = events[1][0]["token"]  # consumed up to frame 1
        first.close()

        # Phase 2: a new connection resumes from the token.  Frame 2 is
        # its backlog (emitted while "offline"); frames 3 and 4 arrive
        # live as the engine advances.
        second = ServeClient(host, port)
        sub = second.subscribe(view="Rain", token=token)
        second.run(4)
        resumed = collect_frames(second, 3)
        assert [h["frame_index"] for h, _ in resumed] == [2, 3, 4]
        second.close()
    finally:
        stop()

    # Exactly-once, byte-identical: what the first client consumed plus
    # what the resumed client received is the uninterrupted stream.
    received = [p for _, p in events[:2]] + [p for _, p in resumed]
    reference = [encode_view_frame(f) for f in reference_frames(10)]
    assert received == reference


def test_resume_token_survives_checkpoint_restore(tmp_path):
    # Phase 1: a checkpointing server loses a subscriber mid-stream.
    engine = make_engine(checkpoint_dir=tmp_path, every=2)
    server, (host, port), stop = serve_in_thread(engine, ServeConfig())
    try:
        client = ServeClient(host, port)
        client.subscribe(view="Rain")
        client.run(6)  # frames 0..2; checkpoints at batches 2, 4, 6
        events = collect_frames(client, 3)
        token = events[1][0]["token"]  # consumed up to frame 1
        client.close()
    finally:
        stop()

    # Phase 2: a fresh process restores the newest checkpoint and serves
    # the restored engine; the old token resumes against it.
    simulate_fresh_process()
    restored = CraqrEngine.restore_latest(tmp_path)
    assert restored.batches_run == 6
    server2, (host2, port2), stop2 = serve_in_thread(restored, ServeConfig())
    try:
        client2 = ServeClient(host2, port2)
        client2.subscribe(view="Rain", token=token)
        client2.run(4)
        resumed = collect_frames(client2, 3)
        assert [h["frame_index"] for h, _ in resumed] == [2, 3, 4]
        client2.close()
    finally:
        stop2()

    # The spliced stream is byte-identical to a run that never crashed:
    # no frame lost, none repeated, values exact.
    received = [p for _, p in events[:2]] + [p for _, p in resumed]
    reference = [encode_view_frame(f) for f in reference_frames(10)]
    assert received == reference


def test_result_stream_resume_after_disconnect():
    """The same contract for raw delivery batches (query subscription)."""
    import numpy as np

    from repro.streams.codec import decode_tuple_batch

    engine = make_engine(view=False)
    server, (host, port), stop = serve_in_thread(engine, ServeConfig())
    try:
        first = ServeClient(host, port)
        first.subscribe(query="Storm")
        for _ in range(3):
            first.run(1)
        batches = []
        while len(batches) < 3:
            header, payload = first.next_event(timeout=30)
            if header.get("event") == "batch":
                batches.append((header, payload))
        token = batches[1][0]["token"]  # consumed batches 1 and 2
        first.close()

        second = ServeClient(host, port)
        second.subscribe(query="Storm", token=token)
        second.run(1)
        resumed = []
        while len(resumed) < 2:
            header, payload = second.next_event(timeout=30)
            if header.get("event") == "batch":
                resumed.append((header, payload))
        # The full retained stream, read over the wire with a fresh cursor.
        _, full_payload = second.fetch(query="Storm")
        reference = decode_tuple_batch(full_payload)
        second.close()

        # Concatenated tuple ids = the full stream, exactly once.
        ids = []
        for _, payload in batches[:2] + resumed:
            ids.extend(decode_tuple_batch(payload).tuple_id.tolist())
        np.testing.assert_array_equal(np.asarray(ids), reference.tuple_id)
    finally:
        stop()
