"""Opaque offset tokens: mint, rebuild, reject garbage."""

from __future__ import annotations

import base64
import json

import numpy as np
import pytest

from repro.errors import ServeError, StorageError
from repro.serve.tokens import (
    frame_cursor_from_token,
    frame_token,
    frame_token_at,
    result_cursor_from_token,
    result_token,
)

from serve_harness import make_engine


@pytest.fixture(scope="module")
def engine():
    eng = make_engine()
    eng.run(6)
    return eng


class TestResultTokens:
    def test_round_trip_resumes_exactly(self, engine):
        buffer = engine.query("Storm").buffer
        cursor = buffer.cursor()
        first = cursor.fetch_batch()
        assert len(first)
        token = result_token(cursor)

        rebuilt = result_cursor_from_token(buffer, token)
        assert rebuilt.position == cursor.position
        assert rebuilt.consumed == cursor.consumed
        # Nothing new has arrived, so the rebuilt cursor reads nothing.
        assert len(rebuilt.fetch_batch()) == 0

    def test_mid_stream_token_fetches_the_remainder(self, engine):
        buffer = engine.query("Storm").buffer
        full = buffer.cursor().fetch_batch()

        # Consume half through one cursor, resume the rest via its token.
        cursor = buffer.cursor()
        cursor.fetch_batch()
        engine.run(2)
        token = result_token(cursor)
        rest = result_cursor_from_token(buffer, token).fetch_batch()
        total = buffer.cursor().fetch_batch()
        assert len(full) + len(rest) == len(total)
        np.testing.assert_array_equal(
            rest.tuple_id, total.tuple_id[len(full):]
        )

    def test_token_is_opaque_ascii(self, engine):
        token = result_token(engine.query("Storm").buffer.cursor())
        assert isinstance(token, str)
        token.encode("ascii")  # must not raise

    def test_negative_position_rejected(self, engine):
        raw = json.dumps({"k": "results", "c": -1, "r": 0, "g": 0}).encode()
        token = base64.urlsafe_b64encode(raw).decode()
        with pytest.raises(ServeError, match="negative"):
            result_cursor_from_token(engine.query("Storm").buffer, token)

    def test_missing_field_rejected(self, engine):
        raw = json.dumps({"k": "results", "c": 0}).encode()
        token = base64.urlsafe_b64encode(raw).decode()
        with pytest.raises(ServeError, match="malformed"):
            result_cursor_from_token(engine.query("Storm").buffer, token)


class TestFrameTokens:
    def test_round_trip_resumes_exactly(self, engine):
        buffer = engine.view("Rain").buffer
        cursor = buffer.cursor()
        frames = cursor.fetch()
        assert frames
        token = frame_token(cursor)
        rebuilt = frame_cursor_from_token(buffer, token)
        assert rebuilt.position == cursor.position
        assert rebuilt.fetch() == []

    def test_token_at_explicit_index(self, engine):
        buffer = engine.view("Rain").buffer
        emitted = buffer.frames_emitted
        assert emitted >= 2
        cursor = frame_cursor_from_token(buffer, frame_token_at(1))
        frames = cursor.fetch()
        assert [f.frame_index for f in frames] == list(range(1, emitted))


class TestGarbageTokens:
    @pytest.mark.parametrize(
        "token",
        [
            "not-base64!!",
            base64.urlsafe_b64encode(b"not json").decode(),
            base64.urlsafe_b64encode(b"[1,2]").decode(),
            base64.urlsafe_b64encode(b'{"k":"mystery"}').decode(),
            "",
        ],
    )
    def test_malformed_tokens_raise_serve_error(self, engine, token):
        with pytest.raises(ServeError):
            result_cursor_from_token(engine.query("Storm").buffer, token)
        with pytest.raises(ServeError):
            frame_cursor_from_token(engine.view("Rain").buffer, token)

    def test_kind_mismatch_rejected(self, engine):
        res = result_token(engine.query("Storm").buffer.cursor())
        frm = frame_token(engine.view("Rain").buffer.cursor())
        with pytest.raises(ServeError, match="not a 'results' token"):
            result_cursor_from_token(engine.query("Storm").buffer, frm)
        with pytest.raises(ServeError, match="not a 'frames' token"):
            frame_cursor_from_token(engine.view("Rain").buffer, res)

    def test_evicted_result_token_raises_storage_error(self):
        # A token minted at position 0 of a heavily evicted buffer lags
        # past retention: the *fetch* raises StorageError, never hangs.
        eng = make_engine(retention_batches=2, view=False)
        eng.run(1)
        stale = result_token(eng.query("Storm").buffer.cursor())
        eng.run(8)
        cursor = result_cursor_from_token(eng.query("Storm").buffer, stale)
        with pytest.raises(StorageError, match="retention"):
            cursor.fetch_batch()
