"""The asyncio session server end to end, through the synchronous client."""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import ServeClient, ServeConfig, serve_in_thread
from repro.streams.codec import decode_tuple_batch, decode_view_frame
from repro.serve.protocol import unpack_payloads

from serve_harness import QUERY, VIEW, make_engine

SECOND_QUERY = "ACQUIRE temp FROM RECT(1, 1, 3, 3) AT RATE 6 PER KM2 PER MIN AS Heat"


@pytest.fixture
def served():
    """A live server over a fresh Storm+Rain engine, plus one client."""
    engine = make_engine()
    server, (host, port), stop = serve_in_thread(engine, ServeConfig())
    client = ServeClient(host, port)
    yield server, client, (host, port)
    client.close()
    stop()


class TestHandshake:
    def test_hello_identifies_server_and_engine(self, served):
        _, client, _ = served
        hello = client.hello()
        assert hello["server"] == "craqr-serve"
        assert hello["protocol"] == "craqr/1"
        assert hello["queries"] == ["Storm"]
        assert hello["views"] == ["Rain"]
        assert hello["batches_run"] == 0
        assert hello["batch_interval"] is None

    def test_ping_echoes_nonce(self, served):
        _, client, _ = served
        reply = client.request({"op": "ping", "nonce": "n-42"})[0]
        assert reply["pong"] == "n-42"

    def test_bad_magic_is_refused(self, served):
        _, _, (host, port) = served
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"BOGUS/9\n")
            sock.settimeout(10)
            assert sock.recv(64) == b"craqr: bad magic\n"
            assert sock.recv(64) == b""  # closed

    def test_unknown_op_is_a_structured_error(self, served):
        _, client, _ = served
        with pytest.raises(ServeError, match="unknown operation") as err:
            client.request({"op": "frobnicate"})
        assert err.value.error_type == "ServeError"


class TestExecute:
    def test_statements_return_structured_rows(self, served):
        _, client, _ = served
        rows = client.execute(f"{SECOND_QUERY}; SHOW QUERIES; SHOW VIEWS")
        acquire, queries, views = rows
        assert acquire["ok"] and acquire["kind"] == "query"
        assert acquire["query"]["label"] == "Heat"
        assert acquire["query"]["attribute"] == "temp"
        assert acquire["query"]["active"] and not acquire["query"]["paused"]

        assert queries["kind"] == "sessions"
        assert [r["label"] for r in queries["rows"]] == ["Storm", "Heat"]
        storm = queries["rows"][0]
        assert storm["attribute"] == "rain"
        assert storm["views"] == 1
        assert storm["paused"] is False

        assert views["kind"] == "views"
        (rain,) = views["rows"]
        assert rain["name"] == "Rain"
        assert rain["query_label"] == "Storm"
        assert rain["aggregate"] == "AVG"
        assert rain["active"] is True

    def test_create_view_and_explain_rows(self, served):
        _, client, _ = served
        rows = client.execute(
            "CREATE VIEW Rain2 ON Storm AS MAX(value) GROUP BY CELL WINDOW 3; "
            "EXPLAIN Storm"
        )
        view, explain = rows
        assert view["kind"] == "view"
        assert view["view"]["name"] == "Rain2"
        assert view["view"]["on"] == "Storm"
        assert explain["kind"] == "explain"
        assert explain["text"].startswith("EXPLAIN query 'Storm'")

    def test_mid_script_error_recovers_and_reports(self, served):
        _, client, _ = served
        rows = client.execute(f"{VIEW}; SHOW QUERIES")  # duplicate view name
        failed, shown = rows
        assert failed["ok"] is False
        assert "Rain" in failed["error"]
        assert shown["ok"] is True  # the script continued past the failure
        assert shown["kind"] == "sessions"

    def test_parse_error_is_a_structured_reply(self, served):
        _, client, _ = served
        with pytest.raises(ServeError) as err:
            client.execute("FROB the stream")
        assert err.value.error_type == "QueryParseError"

    def test_text_mode_carries_the_shared_render(self, served):
        _, client, _ = served
        rows = client.execute("SHOW QUERIES; SHOW VIEWS", mode="text")
        assert rows[0]["text"].startswith("== query sessions ==")
        assert "Storm" in rows[0]["text"]
        assert rows[1]["text"].startswith("== continuous views ==")
        assert "Rain" in rows[1]["text"]

    def test_json_mode_has_no_text(self, served):
        _, client, _ = served
        rows = client.execute("SHOW QUERIES")
        assert "text" not in rows[0]


class TestRunAndFetch:
    def test_run_advances_and_counts(self, served):
        server, client, _ = served
        reply = client.run(3)
        assert reply["batches"] == 3
        assert reply["batches_run"] == 3
        assert reply["tuples_delivered"] > 0
        assert server.batches_served == 3

    def test_fetch_query_round_trips_the_stream(self, served):
        server, client, _ = served
        client.run(4)
        reply, payload = client.fetch(query="Storm")
        batch = decode_tuple_batch(payload)
        assert reply["kind"] == "batch"
        assert reply["count"] == len(batch) > 0
        reference = server.engine.query("Storm").buffer.cursor().fetch_batch()
        np.testing.assert_array_equal(batch.tuple_id, reference.tuple_id)
        np.testing.assert_array_equal(batch.value, reference.value)

        # The reply token resumes exactly: nothing new -> empty fetch.
        reply2, payload2 = client.fetch(query="Storm", token=reply["token"])
        assert reply2["count"] == 0 and payload2 == b""

        # After more batches the same token returns only the delta.
        client.run(2)
        reply3, payload3 = client.fetch(query="Storm", token=reply["token"])
        delta = decode_tuple_batch(payload3)
        assert reply3["count"] == len(delta) > 0
        total = server.engine.query("Storm").buffer.cursor().fetch_batch()
        np.testing.assert_array_equal(
            delta.tuple_id, total.tuple_id[len(batch):]
        )

    def test_fetch_view_frames_round_trip(self, served):
        server, client, _ = served
        client.run(6)  # window 2 -> three closed frames
        reply, payload = client.fetch(view="Rain")
        assert reply["kind"] == "frames"
        assert reply["count"] == 3
        frames = [decode_view_frame(p) for p in unpack_payloads(payload)]
        reference = server.engine.view("Rain").frames()
        assert [f.frame_index for f in frames] == [0, 1, 2]
        for got, ref in zip(frames, reference):
            np.testing.assert_array_equal(got.values, ref.values)
            np.testing.assert_array_equal(got.counts, ref.counts)
            assert list(got.keys) == list(ref.keys)
        # Incremental: the token sees only what closes afterwards.
        reply2, _ = client.fetch(view="Rain", token=reply["token"])
        assert reply2["count"] == 0
        client.run(2)
        reply3, _ = client.fetch(view="Rain", token=reply["token"])
        assert reply3["count"] == 1

    def test_fetch_tail_skips_history(self, served):
        _, client, _ = served
        client.run(4)
        reply, _ = client.fetch(query="Storm", tail=True)
        assert reply["count"] == 0

    def test_fetch_unknown_target_is_structured(self, served):
        _, client, _ = served
        with pytest.raises(ServeError) as err:
            client.fetch(query="Nope")
        assert err.value.error_type == "QueryError"
        with pytest.raises(ServeError) as err:
            client.fetch(view="Nope")
        assert err.value.error_type == "ViewError"

    def test_run_validates_batches(self, served):
        _, client, _ = served
        with pytest.raises(ServeError, match="positive integer"):
            client.run(0)
        with pytest.raises(ServeError, match="capped"):
            client.run(20_000)


class TestLaggingFetch:
    def test_token_past_retention_is_an_error_not_a_hang(self):
        engine = make_engine(retention_batches=2, view=False)
        server, (host, port), stop = serve_in_thread(engine, ServeConfig())
        try:
            with ServeClient(host, port, timeout=30) as client:
                client.run(1)
                reply, _ = client.fetch(query="Storm")
                stale = reply["token"]
                client.run(8)  # evicts the batches the token points into
                with pytest.raises(ServeError, match="retention") as err:
                    client.fetch(query="Storm", token=stale)
                assert err.value.error_type == "StorageError"
                assert "fresh cursor" in str(err.value)
                # The connection survives the structured error.
                assert client.hello()["batches_run"] == 9
        finally:
            stop()


class TestSubscriptions:
    def test_view_events_are_pushed_and_decodable(self, served):
        _, client, _ = served
        sub = client.subscribe(view="Rain")
        assert sub["view"] == "Rain"
        assert sub["policy"] == "skip"
        client.run(6)
        frames = []
        for _ in range(3):
            header, payload = client.next_event(timeout=30)
            assert header["event"] == "frame"
            assert header["view"] == "Rain"
            assert header["sub"] == sub["sub"]
            frames.append(decode_view_frame(payload))
        assert [f.frame_index for f in frames] == [0, 1, 2]

    def test_query_events_are_pushed(self, served):
        _, client, _ = served
        sub = client.subscribe(query="Storm")
        client.run(1)
        header, payload = client.next_event(timeout=30)
        assert header["event"] == "batch"
        assert header["query"] == "Storm"
        assert header["count"] == len(decode_tuple_batch(payload)) > 0

    def test_unsubscribe_stops_the_stream(self, served):
        _, client, _ = served
        sub = client.subscribe(view="Rain")
        reply = client.unsubscribe(sub["sub"])
        assert reply["unsubscribed"] is True
        client.run(4)
        with pytest.raises(ServeError, match="no event"):
            client.next_event(timeout=1.0)

    def test_unsubscribe_unknown_sub_rejected(self, served):
        _, client, _ = served
        with pytest.raises(ServeError, match="no subscription"):
            client.unsubscribe(99)

    def test_subscribe_needs_a_target(self, served):
        _, client, _ = served
        with pytest.raises(ServeError, match="needs a 'query' label"):
            client.request({"op": "subscribe"})


class TestHealthAndCheckpoint:
    def test_health_renders_the_shared_table(self, served):
        _, client, _ = served
        client.run(2)
        text = client.health("Storm")
        assert text.startswith("== health of Storm (rain), last batch ==")
        assert "cell" in text and "rate ewma" in text

    def test_checkpoint_writes_where_asked(self, served, tmp_path):
        _, client, _ = served
        client.run(2)
        path = client.checkpoint(str(tmp_path / "served.ckpt"))
        assert (tmp_path / "served.ckpt").exists()
        assert path.endswith("served.ckpt")


class TestWebsocketTransport:
    def test_full_parity_over_websocket(self, served):
        _, _, (host, port) = served
        with ServeClient(host, port, transport="ws") as ws:
            hello = ws.hello()
            assert hello["protocol"] == "craqr/1"
            rows = ws.execute("SHOW QUERIES", mode="text")
            assert rows[0]["text"].startswith("== query sessions ==")
            sub = ws.subscribe(view="Rain")
            ws.run(2)
            header, payload = ws.next_event(timeout=30)
            assert header["event"] == "frame"
            assert decode_view_frame(payload).frame_index == 0

    def test_tcp_and_ws_clients_share_one_engine(self, served):
        _, tcp, (host, port) = served
        with ServeClient(host, port, transport="ws") as ws:
            tcp.run(2)
            assert ws.hello()["batches_run"] == 2


class TestShutdown:
    def test_shutdown_op_acknowledges_then_stops(self):
        engine = make_engine()
        server, (host, port), stop = serve_in_thread(engine, ServeConfig())
        try:
            with ServeClient(host, port) as client:
                assert client.shutdown()["stopping"] is True
        finally:
            stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2).close()
