"""Wire framing: message bodies, payload packing, websocket frames."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.protocol import (
    MAGIC,
    MAX_MESSAGE_BYTES,
    decode_message,
    encode_message,
    frame_message,
    pack_payloads,
    unpack_payloads,
    ws_accept_key,
    ws_decode_frame,
    ws_encode_frame,
)


class TestMessages:
    def test_round_trip(self):
        header = {"op": "fetch", "query": "Storm", "id": 7, "tail": True}
        payload = bytes(range(256)) * 3
        got_header, got_payload = decode_message(encode_message(header, payload))
        assert got_header == header
        assert got_payload == payload

    def test_empty_payload(self):
        header, payload = decode_message(encode_message({"op": "ping"}))
        assert header == {"op": "ping"}
        assert payload == b""

    def test_unicode_header(self):
        header = {"error": "tuvalé — ünïcode ☂"}
        assert decode_message(encode_message(header))[0] == header

    def test_frame_message_prefixes_length(self):
        body = encode_message({"op": "hello"})
        framed = frame_message(body)
        assert framed[:4] == len(body).to_bytes(4, "big")
        assert framed[4:] == body

    def test_too_short_rejected(self):
        with pytest.raises(ServeError, match="too short"):
            decode_message(b"\x00\x00")

    def test_truncated_header_rejected(self):
        with pytest.raises(ServeError, match="truncated"):
            decode_message(b"\x00\x00\x00\xff{}")

    def test_non_json_header_rejected(self):
        body = b"\x00\x00\x00\x04abcd"
        with pytest.raises(ServeError, match="not valid JSON"):
            decode_message(body)

    def test_non_object_header_rejected(self):
        body = b"\x00\x00\x00\x02[]"
        with pytest.raises(ServeError, match="JSON object"):
            decode_message(body)

    def test_magic_is_eight_bytes(self):
        assert MAGIC == b"CRAQR/1\n"
        assert len(MAGIC) == 8


class TestPackedPayloads:
    def test_round_trip(self):
        items = [b"", b"a", b"frame-two", bytes(1000)]
        assert unpack_payloads(pack_payloads(items)) == items

    def test_empty_list(self):
        assert unpack_payloads(pack_payloads([])) == []

    def test_truncated_count_rejected(self):
        with pytest.raises(ServeError, match="count prefix"):
            unpack_payloads(b"\x00")

    def test_truncated_item_rejected(self):
        packed = pack_payloads([b"hello"])
        with pytest.raises(ServeError, match="truncated"):
            unpack_payloads(packed[:-2])

    def test_missing_item_length_rejected(self):
        packed = pack_payloads([b"a", b"b"])
        with pytest.raises(ServeError, match="truncated"):
            unpack_payloads(packed[:6])


class TestWebsocket:
    def test_accept_key_matches_rfc6455_example(self):
        # The worked example from RFC 6455 section 1.3.
        assert (
            ws_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    @pytest.mark.parametrize("size", [0, 1, 125, 126, 127, 65535, 65536, 70000])
    def test_frame_round_trip_all_length_encodings(self, size):
        payload = bytes(i % 251 for i in range(size))
        opcode, got, consumed = ws_decode_frame(ws_encode_frame(payload))
        assert opcode == 0x2
        assert got == payload
        assert consumed == len(ws_encode_frame(payload))

    def test_masked_frame_round_trip(self):
        payload = b"masked but with the zero key XOR is the identity"
        frame = ws_encode_frame(payload, mask=True)
        assert frame[1] & 0x80  # mask bit set
        opcode, got, consumed = ws_decode_frame(frame)
        assert got == payload
        assert consumed == len(frame)

    def test_nonzero_mask_key_applied(self):
        # Hand-build a masked frame with a real key; the decoder must XOR.
        payload = b"abcd" * 3
        key = b"\x01\x02\x03\x04"
        masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        frame = bytes([0x82, 0x80 | len(payload)]) + key + masked
        opcode, got, consumed = ws_decode_frame(frame)
        assert got == payload

    def test_incomplete_buffer_consumes_nothing(self):
        frame = ws_encode_frame(b"0123456789")
        for cut in range(len(frame)):
            opcode, payload, consumed = ws_decode_frame(frame[:cut])
            assert consumed == 0

    def test_opcode_passthrough(self):
        for opcode in (0x1, 0x8, 0x9, 0xA):
            got, _, _ = ws_decode_frame(ws_encode_frame(b"x", opcode=opcode))
            assert got == opcode

    def test_message_size_cap_documented(self):
        assert MAX_MESSAGE_BYTES == 64 * 1024 * 1024
