"""Shared builders for the serving-layer suite.

Every test serves the same deterministic workload — a small city world
with one rain query and one cell-grouped view — so reference runs (the
same engine driven in-process) and served runs (the same engine behind
``serve_in_thread``) can be compared byte-for-byte.  Byte identity is
checked through the wire codec itself: two frames are equal iff their
``encode_view_frame`` bytes are equal.
"""

from __future__ import annotations

from dataclasses import replace

import repro.core.query as _query_module
from repro.config import CheckpointConfig
from repro.core import CraqrEngine
from repro.core.query import QueryIdAllocator
from repro.geometry import Rectangle
from repro.sensing import (
    AlwaysRespond,
    RainField,
    RandomWaypointMobility,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)
from repro.workloads import default_engine_config

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)

QUERY = "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 8 PER KM2 PER MIN AS Storm"
VIEW = "CREATE VIEW Rain ON Storm AS AVG(value) GROUP BY CELL WINDOW 2"


def simulate_fresh_process() -> None:
    """Reset the process-global query-id allocator (see tests/recovery)."""
    _query_module._query_ids = QueryIdAllocator()


def make_world(*, sensor_count: int = 80, seed: int = 11) -> SensingWorld:
    world = SensingWorld(
        WorldConfig(region=REGION, sensor_count=sensor_count, seed=seed),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.25, pause=0.5),
        participation_factory=lambda sensor_id: AlwaysRespond(),
    )
    world.register_field(RainField(REGION, band_width=1.2, period=60.0))
    world.register_field(TemperatureField(REGION))
    return world


def make_engine(
    *,
    checkpoint_dir=None,
    every: int = 2,
    retention_batches=None,
    view: bool = True,
) -> CraqrEngine:
    """One deterministic engine with the Storm query (and Rain view)."""
    simulate_fresh_process()
    config = default_engine_config(retention_batches=retention_batches)
    if checkpoint_dir is not None:
        config = replace(
            config,
            checkpoints=CheckpointConfig(directory=str(checkpoint_dir), every=every),
        )
    engine = CraqrEngine(config, make_world())
    engine.execute(QUERY)
    if view:
        engine.execute(VIEW)
    return engine


def reference_frames(batches: int):
    """The Rain view's frames from an uninterrupted in-process run."""
    engine = make_engine()
    engine.run(batches)
    return engine.view("Rain").frames()


def reference_deliveries(batches: int):
    """Storm's lifetime deliveries from an uninterrupted in-process run."""
    engine = make_engine()
    engine.run(batches)
    return engine.query("Storm").cursor().fetch_batch()
