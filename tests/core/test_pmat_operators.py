"""Unit tests for the PMAT operators (Flatten, Thin, Partition, Union, extensions)."""

import numpy as np
import pytest

from repro.core.pmat import (
    FlattenOperator,
    MarkOperator,
    PartitionOperator,
    SampleOperator,
    ShiftOperator,
    SuperposeOperator,
    ThinOperator,
    UnionOperator,
)
from repro.errors import StreamError
from repro.geometry import Rectangle, RectRegion
from repro.pointprocess import (
    ConstantIntensity,
    HomogeneousMDPP,
    InhomogeneousMDPP,
    LinearIntensity,
    quadrat_chi_square_test,
)
from repro.streams import CollectingSink, SensorTuple

CELL = Rectangle(0.0, 0.0, 1.0, 1.0)


def tuples_from_batch(batch, attribute="rain"):
    return [
        SensorTuple(tuple_id=i, attribute=attribute, t=float(t), x=float(x), y=float(y))
        for i, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y))
    ]


def simulate_tuples(rate=200.0, duration=1.0, seed=0, intensity=None):
    rng = np.random.default_rng(seed)
    if intensity is None:
        batch = HomogeneousMDPP(rate, CELL).sample(duration, rng=rng)
    else:
        batch = InhomogeneousMDPP(intensity, CELL).sample(duration, rng=rng)
    return tuples_from_batch(batch)


class TestFlattenOperator:
    def test_validation(self):
        with pytest.raises(StreamError):
            FlattenOperator(0.0, region=CELL)
        with pytest.raises(StreamError):
            FlattenOperator(1.0, region=CELL, batch_duration=0.0)
        with pytest.raises(StreamError):
            FlattenOperator(1.0, region=CELL, min_batch_for_fit=2)

    def test_buffers_until_flush(self):
        op = FlattenOperator(10.0, region=CELL, rng=np.random.default_rng(0))
        sink = CollectingSink().attach(op.output)
        for item in simulate_tuples(rate=100.0):
            op.accept(item)
        assert len(sink) == 0
        assert op.pending > 0
        op.flush()
        assert op.pending == 0
        assert len(sink) > 0

    def test_output_rate_near_target(self):
        target = 40.0
        op = FlattenOperator(
            target, region=CELL, intensity=ConstantIntensity(400.0),
            rng=np.random.default_rng(1),
        )
        sink = CollectingSink().attach(op.output)
        for item in simulate_tuples(rate=400.0, seed=2):
            op.accept(item)
        op.flush()
        achieved = len(sink) / (CELL.area * 1.0)
        assert achieved == pytest.approx(target, rel=0.3)
        assert op.last_violation_percent == 0.0

    def test_flattens_inhomogeneous_input(self):
        intensity = LinearIntensity(20.0, 0.0, 300.0, 0.0)
        op = FlattenOperator(
            60.0, region=CELL, intensity=intensity, rng=np.random.default_rng(3)
        )
        sink = CollectingSink().attach(op.output)
        for item in simulate_tuples(seed=4, intensity=intensity, duration=1.0):
            op.accept(item)
        op.flush()
        out_batch = sink.to_event_batch()
        result = quadrat_chi_square_test(out_batch, CELL, 3, 3)
        assert not result.rejects_homogeneity(alpha=0.001)

    def test_reports_violations_when_target_unreachable(self):
        op = FlattenOperator(
            500.0, region=CELL, intensity=ConstantIntensity(20.0),
            rng=np.random.default_rng(5),
        )
        for item in simulate_tuples(rate=20.0, seed=6):
            op.accept(item)
        op.flush()
        assert op.last_violation_percent > 50.0

    def test_estimates_intensity_when_not_given(self):
        intensity = LinearIntensity(10.0, 0.0, 200.0, 0.0)
        op = FlattenOperator(40.0, region=CELL, rng=np.random.default_rng(7))
        sink = CollectingSink().attach(op.output)
        for item in simulate_tuples(seed=8, intensity=intensity):
            op.accept(item)
        op.flush()
        assert len(sink) > 0
        report = op.reports[-1]
        assert report.batch_size > 0
        assert report.retained == len(sink)

    def test_empty_batch_reports_full_shortfall(self):
        op = FlattenOperator(10.0, region=CELL)
        op.flush()
        report = op.reports[-1]
        assert report.batch_size == 0
        assert report.violation_percent == 0.0
        assert report.shortfall_percent == 100.0
        assert op.last_violation_percent == 100.0

    def test_emit_discarded_routes_dropped_tuples(self):
        op = FlattenOperator(
            10.0, region=CELL, intensity=ConstantIntensity(300.0),
            emit_discarded=True, rng=np.random.default_rng(9),
        )
        kept = CollectingSink().attach(op.output)
        dropped = CollectingSink().attach(op.discarded_output)
        items = simulate_tuples(rate=300.0, seed=10)
        for item in items:
            op.accept(item)
        op.flush()
        assert len(kept) + len(dropped) == len(items)
        assert len(dropped) > len(kept)

    def test_discarded_output_requires_flag(self):
        op = FlattenOperator(10.0, region=CELL)
        with pytest.raises(StreamError):
            _ = op.discarded_output

    def test_set_target_rate(self):
        op = FlattenOperator(10.0, region=CELL)
        op.set_target_rate(25.0)
        assert op.target_rate == 25.0
        with pytest.raises(StreamError):
            op.set_target_rate(0.0)

    def test_online_mode_accumulates_estimator_updates(self):
        op = FlattenOperator(
            20.0, region=CELL, online=True, rng=np.random.default_rng(11)
        )
        for batch_seed in range(3):
            for item in simulate_tuples(rate=150.0, seed=20 + batch_seed):
                op.accept(item)
            op.flush()
        assert len(op.reports) == 3


class TestThinOperator:
    def test_rate_validation(self):
        with pytest.raises(StreamError):
            ThinOperator(0.0, 1.0)
        with pytest.raises(StreamError):
            ThinOperator(10.0, 10.0)
        with pytest.raises(StreamError):
            ThinOperator(10.0, 12.0)
        with pytest.raises(StreamError):
            ThinOperator(10.0, 0.0)

    def test_retention_probability(self):
        assert ThinOperator(10.0, 4.0).retention_probability == pytest.approx(0.4)

    def test_output_rate(self):
        op = ThinOperator(200.0, 50.0, rng=np.random.default_rng(0))
        sink = CollectingSink().attach(op.output)
        items = simulate_tuples(rate=200.0, seed=1)
        for item in items:
            op.accept(item)
        achieved = len(sink) / (CELL.area * 1.0)
        assert achieved == pytest.approx(50.0, rel=0.3)
        assert op.dropped == len(items) - len(sink)

    def test_set_rates_for_merging(self):
        op = ThinOperator(10.0, 5.0)
        op.set_rates(20.0, 2.0)
        assert op.rate_in == 20.0
        assert op.rate_out == 2.0
        assert op.retention_probability == pytest.approx(0.1)

    def test_emit_discarded(self):
        op = ThinOperator(100.0, 20.0, emit_discarded=True, rng=np.random.default_rng(2))
        kept = CollectingSink().attach(op.output)
        dropped = CollectingSink().attach(op.discarded_output)
        items = simulate_tuples(rate=100.0, seed=3)
        for item in items:
            op.accept(item)
        assert len(kept) + len(dropped) == len(items)

    def test_discarded_output_requires_flag(self):
        with pytest.raises(StreamError):
            _ = ThinOperator(10.0, 5.0).discarded_output

    def test_describe_mentions_rates(self):
        text = ThinOperator(10.0, 5.0, attribute="rain").describe()
        assert "10" in text and "5" in text and "rain" in text


class TestPartitionOperator:
    def test_requires_regions(self):
        with pytest.raises(StreamError):
            PartitionOperator([])

    def test_rejects_overlapping_regions(self):
        with pytest.raises(StreamError):
            PartitionOperator([Rectangle(0, 0, 1, 1), Rectangle(0.5, 0, 1.5, 1)])

    def test_routes_by_region(self):
        left = Rectangle(0, 0, 0.5, 1)
        right = Rectangle(0.5, 0, 1, 1)
        op = PartitionOperator([left, right])
        left_sink = CollectingSink().attach(op.output_for(0))
        right_sink = CollectingSink().attach(op.output_for(1))
        items = simulate_tuples(rate=300.0, seed=4)
        for item in items:
            op.accept(item)
        assert len(left_sink) + len(right_sink) == len(items)
        assert all(item.x < 0.5 for item in left_sink.items)
        assert all(item.x >= 0.5 for item in right_sink.items)

    def test_rate_preserved_on_partitions(self):
        left = Rectangle(0, 0, 0.5, 1)
        right = Rectangle(0.5, 0, 1, 1)
        op = PartitionOperator([left, right])
        left_sink = CollectingSink().attach(op.output_for(0))
        right_sink = CollectingSink().attach(op.output_for(1))
        for item in simulate_tuples(rate=400.0, seed=5):
            op.accept(item)
        left_rate = len(left_sink) / (left.area * 1.0)
        right_rate = len(right_sink) / (right.area * 1.0)
        assert left_rate == pytest.approx(400.0, rel=0.25)
        assert right_rate == pytest.approx(400.0, rel=0.25)

    def test_unmatched_tuples_dropped_by_default(self):
        op = PartitionOperator([Rectangle(0, 0, 0.25, 0.25)])
        sink = CollectingSink().attach(op.output_for(0))
        items = simulate_tuples(rate=200.0, seed=6)
        for item in items:
            op.accept(item)
        assert op.dropped == len(items) - len(sink)

    def test_keep_rest_output(self):
        op = PartitionOperator([Rectangle(0, 0, 0.25, 0.25)], keep_rest=True)
        inside = CollectingSink().attach(op.output_for(0))
        rest = CollectingSink().attach(op.rest_output)
        items = simulate_tuples(rate=200.0, seed=7)
        for item in items:
            op.accept(item)
        assert len(inside) + len(rest) == len(items)
        assert op.dropped == 0

    def test_rest_output_requires_flag(self):
        with pytest.raises(StreamError):
            _ = PartitionOperator([Rectangle(0, 0, 1, 1)]).rest_output

    def test_output_for_bad_index(self):
        with pytest.raises(StreamError):
            PartitionOperator([Rectangle(0, 0, 1, 1)]).output_for(2)


class TestUnionOperator:
    def test_merges_input_streams(self):
        left_region = Rectangle(0, 0, 1, 1)
        right_region = Rectangle(1, 0, 2, 1)
        op = UnionOperator([left_region, right_region], rate=50.0)
        sink = CollectingSink().attach(op.output)
        left_items = tuples_from_batch(
            HomogeneousMDPP(50.0, left_region).sample(1.0, rng=np.random.default_rng(8))
        )
        right_items = tuples_from_batch(
            HomogeneousMDPP(50.0, right_region).sample(1.0, rng=np.random.default_rng(9))
        )
        for item in left_items + right_items:
            op.accept(item)
        assert len(sink) == len(left_items) + len(right_items)
        assert op.region.area == pytest.approx(2.0)

    def test_rate_preserved_after_union(self):
        left_region = Rectangle(0, 0, 1, 1)
        right_region = Rectangle(1, 0, 2, 1)
        op = UnionOperator([left_region, right_region], rate=80.0)
        sink = CollectingSink().attach(op.output)
        rng = np.random.default_rng(10)
        for region in (left_region, right_region):
            for item in tuples_from_batch(HomogeneousMDPP(80.0, region).sample(1.0, rng=rng)):
                op.accept(item)
        achieved = len(sink) / (op.region.area * 1.0)
        assert achieved == pytest.approx(80.0, rel=0.25)

    def test_rejects_overlapping_regions(self):
        with pytest.raises(Exception):
            UnionOperator([Rectangle(0, 0, 1, 1), Rectangle(0.5, 0, 1.5, 1)])

    def test_rejects_bad_rate(self):
        with pytest.raises(StreamError):
            UnionOperator(rate=0.0)

    def test_attach_input_counts(self):
        op = UnionOperator()
        upstream = SampleOperator(1.0)
        op.attach_input(upstream.output)
        assert op.inputs_attached == 1
        sink = CollectingSink().attach(op.output)
        upstream.accept(SensorTuple(1, "rain", 0.0, 0.1, 0.1))
        assert len(sink) == 1


class TestExtensionOperators:
    def test_superpose_merges(self):
        op = SuperposeOperator(rates=[10.0, 20.0])
        assert op.combined_rate == pytest.approx(30.0)
        sink = CollectingSink().attach(op.output)
        op.accept(SensorTuple(1, "rain", 0.0, 0.1, 0.1))
        assert len(sink) == 1

    def test_superpose_rejects_bad_rate(self):
        with pytest.raises(StreamError):
            SuperposeOperator(rates=[0.0])

    def test_shift_displaces_tuples(self):
        op = ShiftOperator(dt=1.0, dx=0.5, dy=-0.5)
        sink = CollectingSink().attach(op.output)
        op.accept(SensorTuple(1, "rain", 1.0, 1.0, 1.0))
        shifted = sink.items[0]
        assert (shifted.t, shifted.x, shifted.y) == (2.0, 1.5, 0.5)
        assert op.displacement == (1.0, 0.5, -0.5)

    def test_mark_attaches_metadata(self):
        op = MarkOperator(lambda rng: 7, mark_key="priority")
        sink = CollectingSink().attach(op.output)
        op.accept(SensorTuple(1, "rain", 0.0, 0.1, 0.1))
        assert sink.items[0].metadata["priority"] == 7

    def test_mark_requires_key(self):
        with pytest.raises(StreamError):
            MarkOperator(lambda rng: 1, mark_key="")

    def test_sample_probability_validation(self):
        with pytest.raises(StreamError):
            SampleOperator(0.0)
        with pytest.raises(StreamError):
            SampleOperator(1.5)

    def test_sample_keeps_expected_fraction(self):
        op = SampleOperator(0.25, rng=np.random.default_rng(11))
        sink = CollectingSink().attach(op.output)
        items = simulate_tuples(rate=2000.0, seed=12)
        for item in items:
            op.accept(item)
        fraction = len(sink) / len(items)
        assert fraction == pytest.approx(0.25, abs=0.05)
        assert op.dropped == len(items) - len(sink)
