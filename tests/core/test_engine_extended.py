"""Additional engine, handler-incentive and online-estimation coverage."""

import numpy as np
import pytest

from repro.config import BudgetConfig, EngineConfig
from repro.core import AcquisitionalQuery, CraqrEngine
from repro.core.pmat import FlattenOperator
from repro.geometry import Grid, Rectangle
from repro.pointprocess import InhomogeneousMDPP, LinearIntensity
from repro.sensing import FlatIncentive, RequestResponseHandler
from repro.streams import CollectingSink, SensorTuple
from tests.conftest import make_world

REGION = Rectangle(0, 0, 4, 4)


def make_engine(seed=71, response_probability=1.0, **config_kwargs):
    world = make_world(REGION, seed=seed, response_probability=response_probability)
    config = EngineConfig(
        grid_cells=16,
        batch_duration=1.0,
        budget=BudgetConfig(initial=50, delta=10, limit=300, floor=20),
        seed=seed,
        **config_kwargs,
    )
    return CraqrEngine(config, world)


class TestEngineVariants:
    def test_online_estimation_mode_runs(self):
        engine = make_engine(online_estimation=True)
        handle = engine.register_query(
            AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 8.0)
        )
        engine.run(6)
        assert handle.buffer.total_tuples > 0
        assert handle.achieved_rate(last_batches=3).achieved_rate == pytest.approx(8.0, rel=0.45)

    def test_rate_spec_hours_still_served(self):
        from repro.core import RateSpec

        engine = make_engine(seed=73)
        handle = engine.register_query(
            AcquisitionalQuery(
                "temp", Rectangle(0, 0, 2, 2), RateSpec(600.0, area_unit="km2", time_unit="hour")
            )
        )
        assert handle.query.rate == pytest.approx(10.0)
        engine.run(5)
        assert handle.achieved_rate(last_batches=3).achieved_rate == pytest.approx(10.0, rel=0.4)

    def test_two_engines_same_seed_agree(self):
        def run_once():
            engine = make_engine(seed=77)
            handle = engine.register_query(
                AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 10.0)
            )
            engine.run(3)
            return handle.buffer.total_tuples

        assert run_once() == run_once()

    def test_queries_added_mid_run_get_served(self):
        engine = make_engine(seed=79)
        first = engine.register_query(AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 8.0))
        engine.run(3)
        second = engine.register_query(AcquisitionalQuery("rain", Rectangle(2, 2, 4, 4), 6.0))
        engine.run(4)
        assert first.buffer.total_tuples > 0
        assert second.buffer.total_tuples > 0
        # The second query only has the batches after its registration.
        assert len(second.buffer.per_batch_counts) <= len(first.buffer.per_batch_counts)

    def test_planner_invariants_after_heavy_churn(self):
        engine = make_engine(seed=83)
        handles = [
            engine.register_query(AcquisitionalQuery("temp", Rectangle(q, r, q + 2, r + 2), 5.0 + q))
            for q, r in [(0, 0), (1, 1), (2, 2), (0, 2), (2, 0)]
        ]
        engine.run(2)
        for handle in handles[::2]:
            handle.delete()
        engine.run(2)
        engine.planner.check_invariants()
        assert engine.planner_stats().queries == len(handles) - len(handles[::2])


class TestHandlerWithIncentives:
    def test_incentive_scheme_increases_response_rate(self):
        world_plain = make_world(REGION, seed=91, response_probability=0.3)
        world_paid = make_world(REGION, seed=91, response_probability=0.3)
        grid = Grid(REGION, side=4)
        plain = RequestResponseHandler(world_plain, grid, default_budget=50)
        paid = RequestResponseHandler(
            world_paid, grid, default_budget=50, incentive=FlatIncentive(2.0)
        )
        _, report_plain = plain.acquire({"rain": grid.cells()}, duration=1.0)
        _, report_paid = paid.acquire({"rain": grid.cells()}, duration=1.0)
        assert report_paid.response_rate > report_plain.response_rate
        assert report_paid.incentive_spent > 0
        assert report_plain.incentive_spent == 0

    def test_incentive_metadata_recorded_on_tuples(self):
        world = make_world(REGION, seed=93, response_probability=0.8)
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(
            world, grid, default_budget=20, incentive=FlatIncentive(0.5)
        )
        items = handler.acquire_cell("rain", grid.cell(1, 1), duration=1.0)
        assert items
        assert all(item.metadata["incentive"] == 0.5 for item in items)


class TestFlattenOnlineMode:
    def test_online_estimator_used_after_warmup(self):
        cell = Rectangle(0, 0, 1, 1)
        intensity = LinearIntensity(20.0, 0.0, 150.0, 0.0)
        process = InhomogeneousMDPP(intensity, cell)
        op = FlattenOperator(
            30.0, region=cell, online=True, min_batch_for_fit=10,
            rng=np.random.default_rng(5),
        )
        sink = CollectingSink().attach(op.output)
        rng = np.random.default_rng(6)
        for batch_index in range(6):
            batch = process.sample(1.0, t_start=float(batch_index), rng=rng)
            for i, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y)):
                op.accept(
                    SensorTuple(
                        tuple_id=batch_index * 10000 + i,
                        attribute="rain",
                        t=float(t),
                        x=float(x),
                        y=float(y),
                    )
                )
            op.flush()
        assert len(op.reports) == 6
        # Later batches should be near the target once the estimate warms up.
        recent = op.reports[-1]
        assert recent.retained == pytest.approx(30.0, rel=0.5)
        assert len(sink) > 0
