"""Unit tests for error models and error-mitigation operators (Section VI)."""

import numpy as np
import pytest

from repro.core.pmat import (
    ClampOperator,
    DeduplicateOperator,
    MajorityVoteOperator,
    OutlierFilterOperator,
)
from repro.errors import CraqrError, StreamError
from repro.geometry import Rectangle
from repro.sensing import ErrorInjector, GpsNoiseModel, ValueErrorModel
from repro.streams import CollectingSink, SensorTuple

REGION = Rectangle(0, 0, 4, 4)


def make_tuple(i=0, t=0.0, x=1.0, y=1.0, value=20.0, sensor_id=1, attribute="temp"):
    return SensorTuple(
        tuple_id=i, attribute=attribute, t=t, x=x, y=y, value=value, sensor_id=sensor_id
    )


class TestGpsNoiseModel:
    def test_zero_sigma_is_identity(self):
        model = GpsNoiseModel(0.0)
        assert model.perturb(1.0, 2.0, np.random.default_rng(0)) == (1.0, 2.0)

    def test_noise_changes_position(self):
        model = GpsNoiseModel(0.5)
        x, y = model.perturb(1.0, 2.0, np.random.default_rng(1))
        assert (x, y) != (1.0, 2.0)

    def test_clamped_to_region(self):
        model = GpsNoiseModel(5.0, region=REGION)
        rng = np.random.default_rng(2)
        for _ in range(50):
            x, y = model.perturb(0.1, 0.1, rng)
            assert REGION.contains(x, y, closed=True)

    def test_negative_sigma_rejected(self):
        with pytest.raises(CraqrError):
            GpsNoiseModel(-1.0)


class TestValueErrorModel:
    def test_numeric_noise(self):
        model = ValueErrorModel(noise_std=1.0)
        rng = np.random.default_rng(3)
        values = {model.corrupt(20.0, rng) for _ in range(5)}
        assert len(values) > 1

    def test_outliers_injected(self):
        model = ValueErrorModel(outlier_probability=1.0, outlier_scale=100.0)
        corrupted = model.corrupt(20.0, np.random.default_rng(4))
        assert abs(corrupted - 20.0) == pytest.approx(100.0)

    def test_boolean_flip(self):
        model = ValueErrorModel(flip_probability=1.0)
        assert model.corrupt(True, np.random.default_rng(5)) is False

    def test_none_passes_through(self):
        model = ValueErrorModel(noise_std=1.0)
        assert model.corrupt(None, np.random.default_rng(6)) is None

    def test_validation(self):
        with pytest.raises(CraqrError):
            ValueErrorModel(noise_std=-1.0)
        with pytest.raises(CraqrError):
            ValueErrorModel(outlier_probability=2.0)
        with pytest.raises(CraqrError):
            ValueErrorModel(flip_probability=-0.1)


class TestErrorInjector:
    def test_corrupts_position_and_value_and_keeps_truth(self):
        injector = ErrorInjector(
            gps=GpsNoiseModel(0.2, region=REGION),
            value=ValueErrorModel(noise_std=0.5),
            rng=np.random.default_rng(7),
        )
        original = make_tuple()
        corrupted = injector.corrupt_tuple(original)
        assert corrupted.metadata["true_x"] == original.x
        assert corrupted.metadata["true_value"] == original.value
        assert injector.corrupted == 1

    def test_corrupt_many(self):
        injector = ErrorInjector(rng=np.random.default_rng(8))
        items = [make_tuple(i) for i in range(5)]
        assert len(injector.corrupt_many(items)) == 5


class TestClampOperator:
    def test_out_of_region_coordinates_clamped(self):
        op = ClampOperator(REGION)
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple(x=-1.0, y=9.0))
        assert op.clamped == 1
        item = sink.items[0]
        assert REGION.contains(item.x, item.y, closed=True)

    def test_in_region_untouched(self):
        op = ClampOperator(REGION)
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple(x=1.0, y=1.0))
        assert op.clamped == 0
        assert sink.items[0].x == 1.0


class TestOutlierFilterOperator:
    def test_drops_gross_outlier(self):
        op = OutlierFilterOperator(window=20, z_threshold=3.0, min_history=5)
        sink = CollectingSink().attach(op.output)
        rng = np.random.default_rng(9)
        for i in range(20):
            op.accept(make_tuple(i, value=20.0 + float(rng.normal(0, 0.5))))
        op.accept(make_tuple(99, value=500.0))
        assert op.dropped == 1
        assert all(item.value < 100 for item in sink.items)

    def test_passes_normal_values(self):
        op = OutlierFilterOperator(window=10, z_threshold=4.0)
        sink = CollectingSink().attach(op.output)
        for i in range(10):
            op.accept(make_tuple(i, value=20.0 + 0.1 * i))
        assert op.dropped == 0
        assert len(sink) == 10

    def test_non_numeric_values_pass_through(self):
        op = OutlierFilterOperator()
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple(value=True, attribute="rain"))
        assert len(sink) == 1

    def test_validation(self):
        with pytest.raises(StreamError):
            OutlierFilterOperator(window=1)
        with pytest.raises(StreamError):
            OutlierFilterOperator(z_threshold=0.0)
        with pytest.raises(StreamError):
            OutlierFilterOperator(window=5, min_history=10)


class TestDeduplicateOperator:
    def test_drops_rapid_repeats_from_same_sensor(self):
        op = DeduplicateOperator(min_gap=0.5)
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple(1, t=1.0, sensor_id=7))
        op.accept(make_tuple(2, t=1.1, sensor_id=7))
        op.accept(make_tuple(3, t=2.0, sensor_id=7))
        assert op.dropped == 1
        assert len(sink) == 2

    def test_different_sensors_not_deduplicated(self):
        op = DeduplicateOperator(min_gap=0.5)
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple(1, t=1.0, sensor_id=7))
        op.accept(make_tuple(2, t=1.1, sensor_id=8))
        assert len(sink) == 2

    def test_unknown_sensor_passes(self):
        op = DeduplicateOperator()
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple(1, sensor_id=None))
        assert len(sink) == 1

    def test_validation(self):
        with pytest.raises(StreamError):
            DeduplicateOperator(min_gap=-1.0)


class TestMajorityVoteOperator:
    def test_flips_isolated_judgment_error(self):
        op = MajorityVoteOperator(window=5)
        sink = CollectingSink().attach(op.output)
        values = [True, True, False, True, True]
        for i, value in enumerate(values):
            op.accept(make_tuple(i, value=value, attribute="rain"))
        assert op.smoothed >= 1
        # The isolated False report is corrected to the local majority.
        assert sink.items[2].value is True

    def test_non_boolean_passes_through(self):
        op = MajorityVoteOperator(window=3)
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple(value=21.5))
        assert sink.items[0].value == 21.5

    def test_validation(self):
        with pytest.raises(StreamError):
            MajorityVoteOperator(window=4)
        with pytest.raises(StreamError):
            MajorityVoteOperator(window=0)


class TestMitigationPipeline:
    def test_cleaning_chain_restores_query_accuracy(self):
        """End to end: corrupted readings -> cleaning operators -> usable stream."""
        rng = np.random.default_rng(11)
        injector = ErrorInjector(
            gps=GpsNoiseModel(0.3, region=REGION),
            value=ValueErrorModel(noise_std=0.3, outlier_probability=0.05, outlier_scale=80.0),
            rng=rng,
        )
        clean_truth = 20.0
        originals = [
            make_tuple(i, t=float(i) * 0.01, value=clean_truth, sensor_id=i % 7)
            for i in range(400)
        ]
        corrupted = injector.corrupt_many(originals)

        clamp = ClampOperator(REGION)
        outlier = OutlierFilterOperator(window=60, z_threshold=3.5, min_history=10)
        outlier.subscribe_to(clamp.output)
        sink = CollectingSink().attach(outlier.output)
        for item in corrupted:
            clamp.accept(item)

        raw_mean_error = abs(np.mean([item.value for item in corrupted]) - clean_truth)
        cleaned_mean_error = abs(np.mean([item.value for item in sink.items]) - clean_truth)
        assert cleaned_mean_error <= raw_mean_error
        assert cleaned_mean_error < 0.5
        assert all(REGION.contains(item.x, item.y, closed=True) for item in sink.items)
