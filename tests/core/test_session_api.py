"""Engine-level tests of the query-session surface (ISSUE 4).

Covers: cursor/subscription equivalence with ``results()`` on both the
columnar and the object path (seeded, byte-identical tuples), in-flight
``set_rate``/``set_region`` replanning, pause/resume, label lookup,
``execute()`` round-trips of the session DDL, bounded retention on a live
engine, and the ``delete_query`` buffer-leak regression.
"""

import pytest

from repro.config import BudgetConfig, EngineConfig
from repro.core.engine import CraqrEngine, QuerySessionInfo
from repro.core.query import AcquisitionalQuery
from repro.errors import PlanningError, QueryError, StorageError
from repro.geometry import Rectangle, RectRegion
from repro.sensing import RainField, SensingWorld, TemperatureField, WorldConfig

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


def make_world(seed=42, sensors=150):
    world = SensingWorld(WorldConfig(region=REGION, sensor_count=sensors, seed=seed))
    world.register_field(RainField(REGION, band_width=1.2, period=40.0))
    world.register_field(TemperatureField(REGION, heat_islands=[(1.0, 1.0, 3.0, 0.5)]))
    return world


def make_engine(columnar=True, retention=None, seed=7, **world_kwargs):
    config = EngineConfig(
        grid_cells=16,
        seed=seed,
        budget=BudgetConfig(initial=30, delta=5, limit=300),
        columnar=columnar,
        retention_batches=retention,
    )
    return CraqrEngine(config, make_world(**world_kwargs))


def by_id(items):
    return sorted(items, key=lambda item: item.tuple_id)


class TestCursorSubscriptionEquivalence:
    @pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "object"])
    def test_cursor_and_subscription_match_results(self, columnar):
        engine = make_engine(columnar=columnar)
        handle = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=20.0)
        )
        cursor = handle.cursor()
        batch_cursor = handle.cursor()
        pushed = []
        handle.subscribe(lambda batch: pushed.extend(batch.to_tuples()))
        streamed = []
        streamed_columnar = []
        for _ in range(5):
            engine.run_batch()
            streamed.extend(cursor.fetch())
            streamed_columnar.extend(batch_cursor.fetch_batch().to_tuples())
        polled = handle.results()
        assert by_id(streamed) == by_id(polled)
        assert by_id(streamed_columnar) == by_id(polled)
        assert by_id(pushed) == by_id(polled)

    def test_columnar_and_object_cursors_byte_identical(self):
        # The columnar/object switch is a pure perf switch; the incremental
        # surface must deliver the same tuples as the batch surface.
        def stream(columnar):
            engine = make_engine(columnar=columnar)
            handle = engine.register_query(
                AcquisitionalQuery(
                    "rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=20.0
                )
            )
            cursor = handle.cursor()
            items = []
            for _ in range(4):
                engine.run_batch()
                items.extend(cursor.fetch())
            return items

        assert by_id(stream(True)) == by_id(stream(False))

    def test_subscription_cancel_stops_callbacks(self):
        engine = make_engine()
        handle = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=20.0)
        )
        calls = []
        subscription = handle.subscribe(lambda batch: calls.append(len(batch)))
        engine.run_batch()
        subscription.cancel()
        engine.run_batch()
        assert len(calls) == 1


class TestInFlightMutation:
    def test_set_rate_converges_without_resetting_buffer(self):
        engine = make_engine(sensors=250)
        handle = engine.register_query(
            AcquisitionalQuery(
                "rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=20.0, name="Storm"
            )
        )
        engine.run(10)
        total_before = handle.buffer.total_tuples
        batches_before = handle.buffer.batches_completed
        query_id = handle.query_id

        handle.set_rate(8.0)
        assert handle.query.rate == 8.0
        assert handle.query_id == query_id  # same session, not a re-registration
        assert handle.buffer.total_tuples == total_before  # buffer preserved
        assert handle.buffer.batches_completed == batches_before

        engine.run(12)
        estimate = handle.achieved_rate(last_batches=5)
        assert estimate.requested_rate == 8.0
        # The tuner's normal horizon: converged to the new target.
        assert estimate.relative_error < 0.30
        assert handle.buffer.batches_completed == batches_before + 12

    def test_set_rate_preserves_other_querys_budget_state(self):
        engine = make_engine(sensors=250)
        altered = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=20.0)
        )
        bystander = engine.register_query(
            AcquisitionalQuery("temp", RectRegion.from_bounds(2.0, 2.0, 4.0, 4.0), rate=10.0)
        )
        engine.run(6)
        bystander_budgets = {
            key: engine.handler.budget_for("temp", key)
            for key in engine.planner.cells_for_query(bystander.query_id)
        }
        altered.set_rate(5.0)
        assert {
            key: engine.handler.budget_for("temp", key)
            for key in engine.planner.cells_for_query(bystander.query_id)
        } == bystander_budgets

    def test_set_region_moves_cells_and_keeps_results(self):
        engine = make_engine()
        handle = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=15.0)
        )
        engine.run(4)
        total_before = handle.buffer.total_tuples
        old_cells = set(engine.planner.cells_for_query(handle.query_id))

        handle.set_region(Rectangle(2.0, 2.0, 4.0, 4.0))
        new_cells = set(engine.planner.cells_for_query(handle.query_id))
        assert new_cells and new_cells.isdisjoint(old_cells)
        assert handle.query.region.area == pytest.approx(4.0)
        assert handle.buffer.total_tuples == total_before

        engine.run(4)
        assert handle.buffer.total_tuples > total_before
        # Vacated cells are dematerialised (no other query used them).
        assert old_cells.isdisjoint(engine.planner.materialized_cells)

    def test_update_query_seeds_budgets_only_for_added_cells(self):
        engine = make_engine(sensors=250)
        handle = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=25.0)
        )
        engine.run(8)  # let the tuner move budgets away from the initial
        kept_budgets = {
            key: engine.handler.budget_for("rain", key)
            for key in engine.planner.cells_for_query(handle.query_id)
        }
        handle.set_region(Rectangle(0.0, 0.0, 3.0, 2.0))  # superset region
        for key, budget in kept_budgets.items():
            assert engine.handler.budget_for("rain", key) == budget

    def test_update_requires_a_change(self):
        engine = make_engine()
        handle = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=15.0)
        )
        with pytest.raises(PlanningError):
            engine.update_query(handle.query_id)

    def test_update_unknown_query_raises(self):
        engine = make_engine()
        with pytest.raises(PlanningError):
            engine.update_query(424242, rate=5.0)

    def test_invalid_rate_rejected_and_state_unchanged(self):
        engine = make_engine()
        handle = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=15.0)
        )
        with pytest.raises(QueryError):
            handle.set_rate(-3.0)
        assert handle.query.rate == 15.0
        engine.run_batch()  # the topology must still be intact


class TestPauseResume:
    def test_pause_stops_deliveries_and_freezes_accounting(self):
        engine = make_engine()
        handle = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=15.0)
        )
        engine.run(3)
        total = handle.buffer.total_tuples
        batches = handle.buffer.batches_completed
        requests = engine.total_requests_sent()

        handle.pause()
        assert handle.is_paused()
        engine.run(3)
        assert handle.buffer.total_tuples == total
        assert handle.buffer.batches_completed == batches
        # The only query is paused: no acquisition at all happens.
        assert engine.total_requests_sent() == requests

        handle.resume()
        assert not handle.is_paused()
        engine.run(3)
        assert handle.buffer.total_tuples > total
        assert handle.buffer.batches_completed == batches + 3

    def test_pause_does_not_leak_shared_cell_tuples(self):
        engine = make_engine()
        paused = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=15.0)
        )
        active = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=10.0)
        )
        paused.pause()
        engine.run(3)
        # The co-located active query keeps the cells acquiring, but none
        # of those tuples may reach the detached session.
        assert paused.buffer.total_tuples == 0
        assert active.buffer.total_tuples > 0

    def test_paused_cells_send_no_violation_feedback(self):
        engine = make_engine()
        handle = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=15.0)
        )
        handle.pause()
        report = engine.run_batch()
        assert report.fabrication.violations == {}
        assert report.budget_decisions == []

    def test_pause_unknown_query_raises(self):
        engine = make_engine()
        with pytest.raises(PlanningError):
            engine.pause_query(99)


class TestLabelLookupAndExecute:
    def test_query_by_label_and_default_label(self):
        engine = make_engine()
        named = engine.register_query(
            AcquisitionalQuery(
                "rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=15.0, name="Storm"
            )
        )
        unnamed = engine.register_query(
            AcquisitionalQuery("temp", RectRegion.from_bounds(1.0, 1.0, 3.0, 3.0), rate=8.0)
        )
        assert engine.query("Storm") is named
        assert engine.query(f"Q{unnamed.query_id}") is unnamed

    def test_query_miss_and_duplicate_raise(self):
        engine = make_engine()
        with pytest.raises(QueryError, match="no registered query"):
            engine.query("Nope")
        for _ in range(2):
            engine.register_query(
                AcquisitionalQuery(
                    "rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=15.0, name="Twin"
                )
            )
        with pytest.raises(QueryError, match="ambiguous"):
            engine.query("Twin")

    def test_execute_acquire_alter_show_stop_round_trip(self):
        engine = make_engine(sensors=250)
        handle = engine.execute(
            "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 20 PER KM2 PER MIN AS Storm"
        )
        assert handle.query.label == "Storm"
        engine.run(5)

        altered = engine.execute("ALTER Storm SET RATE 8 PER KM2 PER MIN")
        assert altered is handle
        assert handle.query.rate == pytest.approx(8.0)

        engine.execute("ALTER Storm SET REGION RECT(1, 1, 3, 3)")
        assert handle.query.region.area == pytest.approx(4.0)

        rows = engine.execute("SHOW QUERIES")
        assert [type(row) for row in rows] == [QuerySessionInfo]
        assert rows[0].label == "Storm" and not rows[0].paused
        assert rows[0].total_tuples == handle.buffer.total_tuples

        stopped = engine.execute("STOP Storm")
        assert stopped is handle
        assert not handle.is_active()
        assert engine.execute("SHOW QUERIES") == []
        with pytest.raises(QueryError):
            engine.execute("ALTER Storm SET RATE 5")

    def test_execute_accepts_parsed_statements(self):
        from repro.query import parse_statements

        engine = make_engine()
        statements = parse_statements(
            "ACQUIRE rain FROM RECT(0,0,2,2) RATE 10 AS A; SHOW QUERIES"
        )
        handle = engine.execute(statements[0])
        assert handle.query.label == "A"
        assert len(engine.execute(statements[1])) == 1

    def test_execute_rejects_multiple_statements_in_one_string(self):
        engine = make_engine()
        with pytest.raises(QueryError, match="exactly one"):
            engine.execute("STOP A; STOP B")

    def test_execute_rejects_non_statements(self):
        engine = make_engine()
        with pytest.raises(QueryError):
            engine.execute(42)


class TestRetention:
    def test_engine_retention_bounds_memory_and_keeps_totals(self):
        engine = make_engine(retention=4, sensors=250)
        handle = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=20.0)
        )
        sizes = []
        for _ in range(12):
            engine.run_batch()
            sizes.append((len(engine.reports), len(handle.buffer.per_batch_counts)))
        assert engine.batches_run == 12
        assert len(engine.reports) == 4
        assert len(handle.buffer.per_batch_counts) == 4
        assert max(count for count, _ in sizes) <= 4
        assert len(engine.budget_tuner.history) <= 4 * len(
            engine.planner.cells_for_query(handle.query_id)
        )
        # Whole-history accounting stays exact through running totals.
        assert handle.achieved_rate().tuples == handle.buffer.total_tuples
        assert handle.buffer.batches_completed == 12
        assert engine.total_tuples_delivered() == handle.buffer.total_tuples
        # Windowed reads beyond the retained window fail loudly.
        with pytest.raises(StorageError, match="retained"):
            handle.achieved_rate(last_batches=8)

    def test_retention_config_validation(self):
        from repro.errors import CraqrError

        with pytest.raises(CraqrError):
            EngineConfig(retention_batches=0)


class TestDeleteQueryLeak:
    def test_delete_drops_engine_buffer_but_handle_keeps_results(self):
        engine = make_engine()
        keep = engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=15.0)
        )
        doomed = engine.register_query(
            AcquisitionalQuery("temp", RectRegion.from_bounds(1.0, 1.0, 3.0, 3.0), rate=8.0)
        )
        engine.run(4)
        delivered_before = engine.total_tuples_delivered()
        doomed_results = doomed.results()
        assert doomed_results

        doomed.delete()
        # The engine-side reference is gone (this was the leak) ...
        assert doomed.query_id not in engine._buffers
        # ... the handle still reads everything ...
        assert doomed.results() == doomed_results
        # ... and lifetime delivery accounting is unchanged.
        assert engine.total_tuples_delivered() == delivered_before

        engine.run(3)
        assert doomed.buffer.total_tuples == len(doomed_results)
        assert keep.buffer.total_tuples > 0

    def test_register_run_delete_churn_leaves_no_buffers(self):
        engine = make_engine()
        for i in range(6):
            handle = engine.register_query(
                AcquisitionalQuery(
                    "rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=10.0 + i
                )
            )
            engine.run_batch()
            handle.delete()
        assert engine._buffers == {}
        assert engine.query_handles() == []
        # The running total still reflects every delivery ever made.
        assert engine.total_tuples_delivered() > 0
