"""Unit tests for AttributeChain and CellTopology (Section V structure)."""

import numpy as np
import pytest

from repro.core import AcquisitionalQuery
from repro.core.topology import AttributeChain, CellTopology
from repro.errors import PlanningError
from repro.geometry import Grid, Rectangle, RectRegion
from repro.pointprocess import HomogeneousMDPP
from repro.streams import SensorTuple

GRID = Grid(Rectangle(0, 0, 4, 4), side=4)
CELL = GRID.cell(1, 1)  # rectangle [1,2) x [1,2)


def full_cell_query(attribute="rain", rate=20.0, name=None):
    return AcquisitionalQuery(attribute, RectRegion(CELL.rect), rate, name=name)


def partial_cell_query(attribute="rain", rate=10.0):
    # Covers the left half of the cell plus the neighbouring cell so the
    # total area exceeds one cell (the paper's minimum-area rule).
    region = RectRegion(Rectangle(0.5, 1.0, 1.5, 2.0))
    return AcquisitionalQuery(attribute, region, rate)


def cell_tuples(rate=300.0, seed=0, attribute="rain"):
    batch = HomogeneousMDPP(rate, CELL.rect).sample(1.0, rng=np.random.default_rng(seed))
    return [
        SensorTuple(tuple_id=i, attribute=attribute, t=float(t), x=float(x), y=float(y))
        for i, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y))
    ]


class TestAttributeChain:
    def test_headroom_must_exceed_one(self):
        with pytest.raises(PlanningError):
            AttributeChain("rain", CELL, headroom=1.0)

    def test_add_and_remove_queries(self):
        chain = AttributeChain("rain", CELL)
        query = full_cell_query()
        chain.add_query(query, query.region)
        assert chain.has_query(query.query_id)
        assert not chain.is_empty
        chain.remove_query(query.query_id)
        assert chain.is_empty

    def test_rejects_wrong_attribute(self):
        chain = AttributeChain("rain", CELL)
        with pytest.raises(PlanningError):
            chain.add_query(full_cell_query(attribute="temp"), RectRegion(CELL.rect))

    def test_rejects_duplicate_query(self):
        chain = AttributeChain("rain", CELL)
        query = full_cell_query()
        chain.add_query(query, query.region)
        with pytest.raises(PlanningError):
            chain.add_query(query, query.region)

    def test_remove_unknown_query(self):
        with pytest.raises(PlanningError):
            AttributeChain("rain", CELL).remove_query(999)

    def test_flatten_rate_has_headroom_over_max(self):
        chain = AttributeChain("rain", CELL, headroom=1.25)
        chain.add_query(full_cell_query(rate=20.0), RectRegion(CELL.rect))
        chain.add_query(full_cell_query(rate=8.0), RectRegion(CELL.rect))
        assert chain.max_rate == 20.0
        assert chain.flatten_rate == pytest.approx(25.0)

    def test_empty_chain_has_no_max_rate(self):
        with pytest.raises(PlanningError):
            _ = AttributeChain("rain", CELL).max_rate

    def test_build_requires_queries(self):
        from repro.streams import StreamTopology

        with pytest.raises(PlanningError):
            AttributeChain("rain", CELL).build(StreamTopology("t"), lambda q, item: None)


class TestCellTopologyStructure:
    def build_cell(self, queries, seed=0):
        topology = CellTopology(CELL, rng=np.random.default_rng(seed))
        for query in queries:
            overlap = query.region.intersection(RectRegion(CELL.rect))
            topology.add_query(query, overlap)
        delivered = {}

        def deliver(query_id, item):
            delivered.setdefault(query_id, []).append(item)

        topology.rebuild(deliver)
        return topology, delivered

    def test_single_query_chain_structure(self):
        query = full_cell_query(rate=20.0)
        topology, _ = self.build_cell([query])
        chain = topology.chain("rain")
        assert len(chain.levels) == 1
        assert chain.levels[0].rate == 20.0
        # The paper: the first operator is always F, and its output rate
        # exceeds the first T's output rate.
        assert chain.flatten.target_rate > chain.levels[0].rate
        topology.check_invariants()

    def test_thin_rates_sorted_descending(self):
        queries = [
            full_cell_query(rate=10.0),
            full_cell_query(rate=30.0),
            full_cell_query(rate=20.0),
        ]
        topology, _ = self.build_cell(queries)
        chain = topology.chain("rain")
        rates = [level.rate for level in chain.levels]
        assert rates == [30.0, 20.0, 10.0]
        topology.check_invariants()

    def test_equal_rate_queries_share_a_level(self):
        queries = [full_cell_query(rate=15.0), full_cell_query(rate=15.0)]
        topology, _ = self.build_cell(queries)
        chain = topology.chain("rain")
        assert len(chain.levels) == 1
        assert len(chain.levels[0].taps) == 2

    def test_consecutive_thin_rates_chain(self):
        queries = [full_cell_query(rate=r) for r in (30.0, 20.0, 10.0)]
        topology, _ = self.build_cell(queries)
        chain = topology.chain("rain")
        assert chain.levels[1].thin.rate_in == pytest.approx(30.0)
        assert chain.levels[2].thin.rate_in == pytest.approx(20.0)

    def test_full_overlap_has_no_partition(self):
        topology, _ = self.build_cell([full_cell_query()])
        chain = topology.chain("rain")
        assert chain.levels[0].taps[0].partition is None

    def test_partial_overlap_gets_partition(self):
        topology, _ = self.build_cell([partial_cell_query()])
        chain = topology.chain("rain")
        assert chain.levels[0].taps[0].partition is not None

    def test_multiple_attributes_get_separate_chains(self):
        queries = [full_cell_query("rain", 20.0), full_cell_query("temp", 10.0)]
        topology, _ = self.build_cell(queries)
        assert set(topology.attributes) == {"rain", "temp"}
        assert topology.operator_count() == 4  # two F + two T

    def test_operator_count_includes_partitions(self):
        topology, _ = self.build_cell([partial_cell_query()])
        assert topology.operator_count() == 3  # F + T + P

    def test_remove_query_drops_empty_chain(self):
        query = full_cell_query()
        topology, _ = self.build_cell([query])
        topology.remove_query(query)
        assert topology.is_empty

    def test_query_ids_listed(self):
        queries = [full_cell_query(rate=10.0), full_cell_query("temp", 5.0)]
        topology, _ = self.build_cell(queries)
        assert set(topology.query_ids()) == {q.query_id for q in queries}

    def test_unknown_chain_raises(self):
        topology, _ = self.build_cell([full_cell_query()])
        with pytest.raises(PlanningError):
            topology.chain("humidity")


class TestCellTopologyExecution:
    def run_batch(self, queries, rate=400.0, seed=1):
        topology = CellTopology(CELL, rng=np.random.default_rng(seed))
        for query in queries:
            overlap = query.region.intersection(RectRegion(CELL.rect))
            topology.add_query(query, overlap)
        delivered = {}

        def deliver(query_id, item):
            delivered.setdefault(query_id, []).append(item)

        topology.rebuild(deliver)
        topology.inject_many(cell_tuples(rate=rate, seed=seed))
        topology.flush()
        return topology, delivered

    def test_delivery_rates_respect_requests(self):
        fast = full_cell_query(rate=60.0, name="fast")
        slow = full_cell_query(rate=15.0, name="slow")
        _, delivered = self.run_batch([fast, slow], rate=500.0)
        fast_rate = len(delivered.get(fast.query_id, []))
        slow_rate = len(delivered.get(slow.query_id, []))
        assert fast_rate == pytest.approx(60.0, rel=0.4)
        assert slow_rate == pytest.approx(15.0, rel=0.6)
        assert fast_rate > slow_rate

    def test_partial_query_only_receives_tuples_in_its_region(self):
        query = partial_cell_query(rate=20.0)
        _, delivered = self.run_batch([query], rate=500.0)
        items = delivered.get(query.query_id, [])
        assert items, "partial query should still receive tuples"
        for item in items:
            assert query.region.contains(item.x, item.y)

    def test_tuples_of_other_attributes_ignored(self):
        query = full_cell_query("rain", 20.0)
        topology = CellTopology(CELL, rng=np.random.default_rng(2))
        topology.add_query(query, query.region)
        delivered = {}
        topology.rebuild(lambda qid, item: delivered.setdefault(qid, []).append(item))
        topology.inject_many(cell_tuples(rate=300.0, seed=3, attribute="temp"))
        topology.flush()
        assert delivered == {}

    def test_violations_reported_per_attribute(self):
        query = full_cell_query("rain", 50.0)
        topology, _ = self.run_batch([query], rate=20.0, seed=4)
        violations = topology.violations()
        assert "rain" in violations
        assert violations["rain"] > 0.0

    def test_rebuild_counter(self):
        query = full_cell_query()
        topology = CellTopology(CELL)
        topology.add_query(query, query.region)
        topology.rebuild(lambda qid, item: None)
        topology.rebuild(lambda qid, item: None)
        assert topology.rebuilds == 2

    def test_describe_lists_operators(self):
        topology, _ = self.run_batch([full_cell_query()], rate=100.0)
        text = topology.describe()
        assert "F:" in text and "T:" in text
