"""Unit tests for the query planner (topology construction, insert, delete)."""

import numpy as np
import pytest

from repro.core import AcquisitionalQuery, QueryPlanner
from repro.errors import PlanningError, QueryError
from repro.geometry import Grid, Rectangle, RectRegion
from repro.pointprocess import HomogeneousMDPP
from repro.streams import SensorTuple
from repro.workloads import fig2_queries

GRID = Grid(Rectangle(0, 0, 4, 4), side=4)


def make_planner(seed=0):
    return QueryPlanner(GRID, rng=np.random.default_rng(seed))


def block_query(attribute="rain", rate=20.0, q0=0, r0=0, span=1, name=None):
    rect = Rectangle(float(q0), float(r0), float(q0 + span), float(r0 + span))
    return AcquisitionalQuery(attribute, RectRegion(rect), rate, name=name)


def cell_tuples(cell_rect, rate=300.0, seed=0, attribute="rain"):
    batch = HomogeneousMDPP(rate, cell_rect).sample(1.0, rng=np.random.default_rng(seed))
    return [
        SensorTuple(tuple_id=i, attribute=attribute, t=float(t), x=float(x), y=float(y))
        for i, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y))
    ]


class TestInsertion:
    def test_insert_materialises_only_overlapping_cells(self):
        planner = make_planner()
        touched = planner.insert_query(block_query(span=2))
        assert sorted(touched) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert sorted(planner.materialized_cells) == sorted(touched)

    def test_insert_single_cell_query(self):
        planner = make_planner()
        touched = planner.insert_query(block_query(q0=2, r0=3, span=1))
        assert touched == [(2, 3)]

    def test_duplicate_insert_rejected(self):
        planner = make_planner()
        query = block_query()
        planner.insert_query(query)
        with pytest.raises(PlanningError):
            planner.insert_query(query)

    def test_too_small_query_rejected(self):
        planner = make_planner()
        small = AcquisitionalQuery("rain", Rectangle(0, 0, 0.5, 0.5), 5.0)
        with pytest.raises(QueryError):
            planner.insert_query(small)

    def test_query_outside_region_rejected(self):
        planner = make_planner()
        outside = AcquisitionalQuery("rain", Rectangle(3, 3, 6, 6), 5.0)
        with pytest.raises(QueryError):
            planner.insert_query(outside)

    def test_shared_cell_single_flatten_per_attribute(self):
        planner = make_planner()
        planner.insert_query(block_query(rate=30.0))
        planner.insert_query(block_query(rate=10.0))
        topology = planner.cell_topology((0, 0))
        chain = topology.chain("rain")
        # One Flatten, two Thin levels, no partitions.
        assert topology.operator_count() == 3
        assert [level.rate for level in chain.levels] == [30.0, 10.0]
        planner.check_invariants()

    def test_attribute_cells_reports_needs(self):
        planner = make_planner()
        planner.insert_query(block_query("rain", q0=0, r0=0))
        planner.insert_query(block_query("temp", q0=2, r0=2))
        needs = planner.attribute_cells()
        assert {cell.key for cell in needs["rain"]} == {(0, 0)}
        assert {cell.key for cell in needs["temp"]} == {(2, 2)}

    def test_stats_after_insertions(self):
        planner = make_planner()
        planner.insert_query(block_query(span=2))
        stats = planner.stats()
        assert stats.queries == 1
        assert stats.materialized_cells == 4
        assert stats.insertions == 1
        assert stats.cells_touched_by_last_change == 4
        assert stats.pmat_operators >= 8  # F + T per cell

    def test_fig2_layout_partial_overlap_uses_partitions(self):
        grid = Grid(Rectangle(0, 0, 3, 3), side=3)
        planner = QueryPlanner(grid, rng=np.random.default_rng(1))
        q1, q2, q3 = fig2_queries(grid)
        for query in (q1, q2, q3):
            planner.insert_query(query)
        planner.check_invariants()
        # Q3 only partially overlaps its two cells, so those chains have a P.
        q3_cells = planner.cells_for_query(q3.query_id)
        assert len(q3_cells) == 2
        for key in q3_cells:
            chain = planner.cell_topology(key).chain("temp")
            taps = [tap for level in chain.levels for tap in level.taps if tap.query_id == q3.query_id]
            assert len(taps) == 1
            assert taps[0].partition is not None
        # Q1 and Q2 perfectly overlap grid cells: no partition operators.
        for query in (q1, q2):
            for key in planner.cells_for_query(query.query_id):
                chain = planner.cell_topology(key).chain(query.attribute)
                taps = [tap for level in chain.levels for tap in level.taps if tap.query_id == query.query_id]
                assert taps[0].partition is None


class TestDeletion:
    def test_delete_removes_empty_cells(self):
        planner = make_planner()
        query = block_query(span=2)
        planner.insert_query(query)
        touched = planner.delete_query(query.query_id)
        assert sorted(touched) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert planner.materialized_cells == []
        assert not planner.has_query(query.query_id)

    def test_delete_keeps_cells_used_by_other_queries(self):
        planner = make_planner()
        keep = block_query(rate=30.0)
        drop = block_query(rate=10.0)
        planner.insert_query(keep)
        planner.insert_query(drop)
        planner.delete_query(drop.query_id)
        assert planner.materialized_cells == [(0, 0)]
        chain = planner.cell_topology((0, 0)).chain("rain")
        # The remaining chain has a single Thin level again (merged form).
        assert [level.rate for level in chain.levels] == [30.0]
        planner.check_invariants()

    def test_delete_middle_rate_merges_thins(self):
        planner = make_planner()
        high = block_query(rate=30.0)
        mid = block_query(rate=20.0)
        low = block_query(rate=10.0)
        for query in (high, mid, low):
            planner.insert_query(query)
        planner.delete_query(mid.query_id)
        chain = planner.cell_topology((0, 0)).chain("rain")
        rates = [level.rate for level in chain.levels]
        assert rates == [30.0, 10.0]
        # The remaining second Thin consumes the 30-rate stream directly:
        # the two formerly consecutive T-operators have been merged.
        assert chain.levels[1].thin.rate_in == pytest.approx(30.0)
        planner.check_invariants()

    def test_delete_unknown_query_raises(self):
        with pytest.raises(PlanningError):
            make_planner().delete_query(12345)

    def test_stats_after_deletion(self):
        planner = make_planner()
        query = block_query()
        planner.insert_query(query)
        planner.delete_query(query.query_id)
        stats = planner.stats()
        assert stats.queries == 0
        assert stats.deletions == 1
        assert stats.materialized_cells == 0


class TestExecution:
    def test_route_and_flush_delivers_results(self):
        planner = make_planner()
        delivered = {}
        query = block_query(rate=25.0)
        planner.insert_query(
            query, on_result=lambda qid, item: delivered.setdefault(qid, []).append(item)
        )
        cell = GRID.cell(0, 0)
        routed = planner.route_cell_batch(cell.key, cell_tuples(cell.rect, seed=2))
        assert routed > 0
        planner.flush_all()
        assert len(delivered.get(query.query_id, [])) > 0

    def test_route_to_unmaterialised_cell_is_dropped(self):
        planner = make_planner()
        planner.insert_query(block_query())
        other_cell = GRID.cell(3, 3)
        routed = planner.route_cell_batch(other_cell.key, cell_tuples(other_cell.rect, seed=3))
        assert routed == 0

    def test_violations_keyed_by_attribute_and_cell(self):
        planner = make_planner()
        query = block_query(rate=100.0)
        planner.insert_query(query)
        cell = GRID.cell(0, 0)
        planner.route_cell_batch(cell.key, cell_tuples(cell.rect, rate=30.0, seed=4))
        planner.flush_all()
        violations = planner.violations()
        assert ("rain", (0, 0)) in violations
        assert violations[("rain", (0, 0))] > 0.0

    def test_result_callback_receives_only_query_region_tuples(self):
        planner = make_planner()
        delivered = []
        # A query over cells (0,0) and (1,0) but only the left half of (1,0).
        region = RectRegion(Rectangle(0.0, 0.0, 1.5, 1.0))
        query = AcquisitionalQuery("rain", region, 20.0)
        planner.insert_query(query, on_result=lambda qid, item: delivered.append(item))
        for key in [(0, 0), (1, 0)]:
            cell = GRID.cell(*key)
            planner.route_cell_batch(key, cell_tuples(cell.rect, rate=400.0, seed=5 + key[0]))
        planner.flush_all()
        assert delivered, "the query should receive tuples"
        for item in delivered:
            assert region.contains(item.x, item.y)

    def test_describe_mentions_queries_and_cells(self):
        planner = make_planner()
        planner.insert_query(block_query())
        text = planner.describe()
        assert "1 queries" in text
        assert "cell(0, 0)" in text
