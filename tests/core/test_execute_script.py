"""``CraqrEngine.execute_script``: per-statement results, error recovery."""

from __future__ import annotations

import pytest

from repro.config import BudgetConfig, EngineConfig
from repro.core import CraqrEngine, StatementResult
from repro.errors import QueryError, QueryParseError, ViewError
from repro.geometry import Rectangle
from repro.query.parser import parse_statements
from repro.sensing import RainField, SensingWorld, TemperatureField, WorldConfig

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)

ACQUIRE = "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 8 PER KM2 PER MIN AS Storm"
VIEW = "CREATE VIEW Rain ON Storm AS AVG(value) GROUP BY CELL WINDOW 2"


def make_engine():
    world = SensingWorld(WorldConfig(region=REGION, sensor_count=80, seed=11))
    world.register_field(RainField(REGION, band_width=1.2, period=60.0))
    world.register_field(TemperatureField(REGION))
    config = EngineConfig(
        grid_cells=16, seed=7, budget=BudgetConfig(initial=30, delta=5, limit=300)
    )
    return CraqrEngine(config, world)


class TestHappyPath:
    def test_results_come_back_in_statement_order(self):
        engine = make_engine()
        results = engine.execute_script(f"{ACQUIRE}; {VIEW}; SHOW QUERIES")
        assert len(results) == 3
        assert all(isinstance(r, StatementResult) for r in results)
        assert all(r.ok for r in results)
        assert results[0].result.query.label == "Storm"
        assert results[1].result.name == "Rain"
        assert [info.label for info in results[2].result] == ["Storm"]

    def test_statement_result_carries_the_parsed_statement(self):
        engine = make_engine()
        (result,) = engine.execute_script("SHOW QUERIES")
        assert type(result.statement).__name__ == "ShowQueriesStatement"
        assert result.error is None

    def test_accepts_pre_parsed_statements(self):
        engine = make_engine()
        statements = parse_statements(f"{ACQUIRE}; SHOW QUERIES")
        results = engine.execute_script(statements)
        assert [r.ok for r in results] == [True, True]

    def test_empty_script_is_a_parse_error(self):
        engine = make_engine()
        with pytest.raises(QueryParseError, match="empty"):
            engine.execute_script("")

    def test_empty_statement_list_returns_no_results(self):
        engine = make_engine()
        assert engine.execute_script([]) == []


class TestErrorRecovery:
    def test_on_error_raise_wraps_with_statement_position(self):
        engine = make_engine()
        engine.execute(ACQUIRE)
        engine.execute(VIEW)
        with pytest.raises(QueryError, match=r"script statement 1 of 2 failed") as err:
            engine.execute_script(f"{VIEW}; SHOW QUERIES")
        assert isinstance(err.value.__cause__, ViewError)

    def test_on_error_continue_collects_and_keeps_going(self):
        # Satellite 2 regression: a failing statement mid-script must not
        # abort the rest, and earlier effects must persist.
        engine = make_engine()
        results = engine.execute_script(
            f"{ACQUIRE}; {VIEW}; {VIEW}; SHOW VIEWS", on_error="continue"
        )
        assert [r.ok for r in results] == [True, True, False, True]
        failed = results[2]
        assert isinstance(failed.error, ViewError)
        assert failed.result is None
        # Effects before and after the failure persisted: the query and
        # the first view exist, and SHOW VIEWS ran on the live engine.
        assert engine.query("Storm").is_active()
        assert [info.name for info in results[3].result] == ["Rain"]

    def test_effects_before_a_raise_persist(self):
        engine = make_engine()
        with pytest.raises(QueryError):
            engine.execute_script(f"{ACQUIRE}; CREATE VIEW X ON Nope AS AVG(value) WINDOW 2")
        assert engine.query("Storm").is_active()

    def test_parse_errors_always_raise(self):
        engine = make_engine()
        with pytest.raises(QueryParseError):
            engine.execute_script("FROB the stream", on_error="continue")
        # Nothing ran: the script failed to parse as a whole.
        assert engine.sessions() == []

    def test_bad_on_error_value_rejected(self):
        engine = make_engine()
        with pytest.raises(QueryError, match="on_error must be"):
            engine.execute_script("SHOW QUERIES", on_error="ignore")


class TestValidateHook:
    def test_validator_sees_every_statement(self):
        engine = make_engine()
        seen = []
        engine.execute_script(
            f"{ACQUIRE}; SHOW QUERIES", validate=lambda s: seen.append(type(s).__name__)
        )
        assert seen == ["ParsedQuery", "ShowQueriesStatement"]

    def test_validator_rejection_is_an_ordinary_statement_error(self):
        engine = make_engine()

        def forbid_acquire(statement):
            if type(statement).__name__ == "ParsedQuery":
                raise QueryError("ACQUIRE is disabled here")

        results = engine.execute_script(
            f"{ACQUIRE}; SHOW QUERIES", on_error="continue", validate=forbid_acquire
        )
        assert [r.ok for r in results] == [False, True]
        assert "disabled" in str(results[0].error)
        # The rejected statement never touched the engine.
        assert engine.sessions() == []

    def test_validator_rejection_raises_with_position_by_default(self):
        engine = make_engine()

        def forbid(statement):
            raise QueryError("nothing allowed")

        with pytest.raises(QueryError, match="script statement 1 of 1 failed"):
            engine.execute_script("SHOW QUERIES", validate=forbid)
