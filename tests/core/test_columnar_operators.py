"""Seeded equivalence of the PMAT operators' batch paths vs the object path.

Every operator with a native ``process_batch`` must, for the same seed,
retain exactly the tuples its per-tuple ``process`` retains — the columnar
fast path is a pure performance switch, never a semantic one.
"""

import numpy as np
import pytest

from repro.core.pmat import (
    ClampOperator,
    DeduplicateOperator,
    FlattenOperator,
    MajorityVoteOperator,
    MarkOperator,
    OutlierFilterOperator,
    PartitionOperator,
    SampleOperator,
    ShiftOperator,
    ThinOperator,
    UnionOperator,
)
from repro.geometry import Rectangle, RectRegion
from repro.pointprocess import ConstantIntensity, HomogeneousMDPP
from repro.streams import CollectingSink, SensorTuple, TupleBatch

CELL = Rectangle(0.0, 0.0, 1.0, 1.0)


def make_items(n=2000, seed=77, value="bool"):
    events = HomogeneousMDPP(float(n), CELL).sample(
        1.0, rng=np.random.default_rng(seed), count=n
    )
    rng = np.random.default_rng(seed + 1)
    items = []
    for i, (t, x, y) in enumerate(zip(events.t, events.x, events.y)):
        if value == "bool":
            v = bool(rng.random() < 0.5)
        else:
            v = float(rng.normal(20.0, 1.0))
        items.append(
            SensorTuple(
                tuple_id=i, attribute="rain", t=float(t), x=float(x), y=float(y),
                value=v, sensor_id=i % 17,
            )
        )
    return items


def run_object_path(operator, items, outputs=1):
    sinks = [CollectingSink().attach(operator.outputs[i]) for i in range(outputs)]
    for item in items:
        operator.accept(item)
    operator.flush()
    return [list(sink.items) for sink in sinks]


def ids(items_or_batch):
    if isinstance(items_or_batch, TupleBatch):
        return [int(i) for i in items_or_batch.tuple_id]
    return [item.tuple_id for item in items_or_batch]


class TestKeepMaskOperators:
    def test_thin_equivalence(self):
        items = make_items()
        obj = ThinOperator(100.0, 25.0, rng=np.random.default_rng(5))
        col = ThinOperator(100.0, 25.0, rng=np.random.default_rng(5))
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items))
        assert ids(object_out) == ids(batch_out)
        assert obj.dropped == col.dropped
        assert (obj.tuples_in, obj.tuples_out) == (col.tuples_in, col.tuples_out)

    def test_flatten_equivalence(self):
        items = make_items()
        make = lambda seed: FlattenOperator(
            500.0, region=CELL, intensity=ConstantIntensity(2000.0),
            rng=np.random.default_rng(seed),
        )
        obj, col = make(9), make(9)
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items))
        assert ids(object_out) == ids(batch_out)
        assert obj.last_violation_percent == col.last_violation_percent
        assert [r.__dict__ for r in obj.reports] == [r.__dict__ for r in col.reports]

    def test_flatten_estimated_intensity_equivalence(self):
        # No known intensity: both paths must fit the same MLE model.
        items = make_items(800)
        make = lambda: FlattenOperator(200.0, region=CELL, rng=np.random.default_rng(3))
        obj, col = make(), make()
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items))
        assert ids(object_out) == ids(batch_out)

    def test_flatten_empty_batch_reports_shortfall(self):
        operator = FlattenOperator(10.0, region=CELL, rng=np.random.default_rng(0))
        out = operator.process_batch(TupleBatch.empty("rain"))
        assert out.is_empty
        assert operator.last_violation_percent == 100.0

    def test_sample_equivalence(self):
        items = make_items()
        obj = SampleOperator(0.3, rng=np.random.default_rng(21))
        col = SampleOperator(0.3, rng=np.random.default_rng(21))
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items))
        assert ids(object_out) == ids(batch_out)
        assert obj.dropped == col.dropped


class TestRoutingOperators:
    def test_partition_multi_equivalence(self):
        items = make_items()
        halves = [RectRegion(r) for r in CELL.subdivide(2, 1)]
        obj = PartitionOperator(halves, rng=np.random.default_rng(1))
        col = PartitionOperator(halves, rng=np.random.default_rng(1))
        object_outs = run_object_path(obj, items, outputs=2)
        batch_outs = col.process_batch_multi(TupleBatch.from_tuples(items))
        for object_out, batch_out in zip(object_outs, batch_outs):
            assert ids(object_out) == ids(batch_out)
        assert obj.dropped == col.dropped

    def test_partition_drops_unmatched_without_rest(self):
        items = make_items()
        left = RectRegion.from_bounds(0.0, 0.0, 0.25, 1.0)
        col = PartitionOperator([left], rng=np.random.default_rng(1))
        outs = col.process_batch_multi(TupleBatch.from_tuples(items))
        assert len(outs) == 1
        assert col.dropped == len(items) - len(outs[0])

    def test_partition_keep_rest(self):
        items = make_items()
        left = RectRegion.from_bounds(0.0, 0.0, 0.25, 1.0)
        col = PartitionOperator([left], keep_rest=True, rng=np.random.default_rng(1))
        outs = col.process_batch_multi(TupleBatch.from_tuples(items))
        assert len(outs) == 2
        assert len(outs[0]) + len(outs[1]) == len(items)
        assert col.dropped == 0

    def test_partition_process_batch_pushes_side_outputs(self):
        # The single-output contract must not lose tuples landing in the
        # non-primary splits: they flow to their output streams.
        items = make_items(200)
        halves = [RectRegion(r) for r in CELL.subdivide(2, 1)]
        operator = PartitionOperator(halves, rng=np.random.default_rng(1))
        side = CollectingSink().attach(operator.output_for(1))
        primary = operator.process_batch(TupleBatch.from_tuples(items))
        assert len(primary) + len(side.items) == len(items)
        assert len(side.items) > 0

    def test_union_passes_batch_through(self):
        batch = TupleBatch.from_tuples(make_items(50))
        union = UnionOperator()
        out = union.process_batch(batch)
        assert out is batch
        assert union.tuples_in == 50
        assert union.tuples_out == 50

    def test_shift_equivalence(self):
        items = make_items(100)
        obj = ShiftOperator(dt=1.0, dx=0.1, dy=-0.1)
        col = ShiftOperator(dt=1.0, dx=0.1, dy=-0.1)
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items)).to_tuples()
        assert object_out == batch_out

    def test_mark_equivalence(self):
        items = make_items(100)
        obj = MarkOperator(lambda r: int(r.integers(0, 10)), rng=np.random.default_rng(2))
        col = MarkOperator(lambda r: int(r.integers(0, 10)), rng=np.random.default_rng(2))
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items)).to_tuples()
        assert [it.metadata["mark"] for it in object_out] == [
            it.metadata["mark"] for it in batch_out
        ]


class TestCleaningOperators:
    def test_clamp_equivalence(self):
        rng = np.random.default_rng(11)
        items = [
            SensorTuple(
                tuple_id=i, attribute="rain",
                t=float(i), x=float(rng.uniform(-0.5, 1.5)), y=float(rng.uniform(-0.5, 1.5)),
                value=True, sensor_id=i,
            )
            for i in range(500)
        ]
        obj, col = ClampOperator(CELL), ClampOperator(CELL)
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items)).to_tuples()
        assert [(it.x, it.y) for it in object_out] == [(it.x, it.y) for it in batch_out]
        assert obj.clamped == col.clamped

    def test_deduplicate_equivalence(self):
        rng = np.random.default_rng(13)
        items = [
            SensorTuple(
                tuple_id=i, attribute="rain", t=float(rng.uniform(0, 1)),
                x=0.5, y=0.5, value=True, sensor_id=int(rng.integers(0, 5)),
            )
            for i in range(500)
        ]
        obj = DeduplicateOperator(min_gap=0.05)
        col = DeduplicateOperator(min_gap=0.05)
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items))
        assert ids(object_out) == ids(batch_out)
        assert obj.dropped == col.dropped

    def test_outlier_filter_equivalence(self):
        rng = np.random.default_rng(17)
        items = []
        for i in range(500):
            value = float(rng.normal(20.0, 0.5))
            if i % 50 == 25:
                value += 100.0  # gross outlier
            items.append(
                SensorTuple(tuple_id=i, attribute="temp", t=float(i), x=0.5, y=0.5,
                            value=value, sensor_id=i)
            )
        obj = OutlierFilterOperator(window=50, z_threshold=4.0)
        col = OutlierFilterOperator(window=50, z_threshold=4.0)
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items))
        assert ids(object_out) == ids(batch_out)
        assert obj.dropped == col.dropped
        assert obj.dropped > 0

    def test_majority_vote_equivalence(self):
        rng = np.random.default_rng(19)
        items = [
            SensorTuple(tuple_id=i, attribute="rain", t=float(i), x=0.5, y=0.5,
                        value=bool(rng.random() < 0.7), sensor_id=i)
            for i in range(300)
        ]
        obj = MajorityVoteOperator(window=5)
        col = MajorityVoteOperator(window=5)
        (object_out,) = run_object_path(obj, items)
        batch_out = col.process_batch(TupleBatch.from_tuples(items)).to_tuples()
        assert [it.value for it in object_out] == [it.value for it in batch_out]
        assert obj.smoothed == col.smoothed
        assert obj.smoothed > 0
