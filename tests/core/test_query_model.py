"""Unit tests for AcquisitionalQuery and RateSpec."""

import pytest

from repro.core import AcquisitionalQuery, RateSpec
from repro.errors import QueryError
from repro.geometry import Rectangle, RectRegion


class TestRateSpec:
    def test_native_units_pass_through(self):
        assert RateSpec(10.0).per_unit == pytest.approx(10.0)

    def test_km2_per_min_is_native(self):
        # The engine's native units are km and minutes, so 10 /km2/min == 10.
        assert RateSpec(10.0, area_unit="km2", time_unit="min").per_unit == pytest.approx(10.0)

    def test_per_hour_scales_down(self):
        assert RateSpec(60.0, area_unit="km2", time_unit="hour").per_unit == pytest.approx(1.0)

    def test_per_second_scales_up(self):
        assert RateSpec(1.0, area_unit="km2", time_unit="sec").per_unit == pytest.approx(60.0)

    def test_float_conversion(self):
        assert float(RateSpec(5.0)) == pytest.approx(5.0)

    def test_rejects_non_positive(self):
        with pytest.raises(QueryError):
            RateSpec(0.0)

    def test_rejects_unknown_units(self):
        with pytest.raises(QueryError):
            RateSpec(1.0, area_unit="furlong2")
        with pytest.raises(QueryError):
            RateSpec(1.0, time_unit="fortnight")


class TestAcquisitionalQuery:
    def test_basic_construction(self):
        query = AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 10.0)
        assert query.attribute == "rain"
        assert query.rate == 10.0
        assert query.region.area == pytest.approx(4.0)

    def test_rectangle_coerced_to_region(self):
        query = AcquisitionalQuery("rain", Rectangle(0, 0, 1, 1), 5.0)
        assert isinstance(query.region, RectRegion)

    def test_rate_spec_converted(self):
        query = AcquisitionalQuery(
            "rain", Rectangle(0, 0, 1, 1), RateSpec(120.0, time_unit="hour")
        )
        assert query.rate == pytest.approx(2.0)

    def test_query_ids_unique(self):
        a = AcquisitionalQuery("rain", Rectangle(0, 0, 1, 1), 5.0)
        b = AcquisitionalQuery("rain", Rectangle(0, 0, 1, 1), 5.0)
        assert a.query_id != b.query_id

    def test_label_uses_name_when_given(self):
        named = AcquisitionalQuery("rain", Rectangle(0, 0, 1, 1), 5.0, name="Storm")
        anonymous = AcquisitionalQuery("rain", Rectangle(0, 0, 1, 1), 5.0)
        assert named.label == "Storm"
        assert anonymous.label == f"Q{anonymous.query_id}"

    def test_expected_tuples(self):
        query = AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 10.0)
        assert query.expected_tuples(3.0) == pytest.approx(120.0)
        with pytest.raises(QueryError):
            query.expected_tuples(0.0)

    def test_with_rate_creates_new_query(self):
        query = AcquisitionalQuery("rain", Rectangle(0, 0, 1, 1), 5.0)
        changed = query.with_rate(8.0)
        assert changed.rate == 8.0
        assert changed.query_id != query.query_id

    def test_validation_errors(self):
        with pytest.raises(QueryError):
            AcquisitionalQuery("", Rectangle(0, 0, 1, 1), 5.0)
        with pytest.raises(QueryError):
            AcquisitionalQuery("rain", Rectangle(0, 0, 1, 1), 0.0)
        with pytest.raises(QueryError):
            AcquisitionalQuery("rain", Rectangle(0, 0, 1, 1), "fast")
        with pytest.raises(QueryError):
            AcquisitionalQuery("rain", "not a region", 5.0)

    def test_validate_against_minimum_area(self):
        query = AcquisitionalQuery("rain", Rectangle(0, 0, 0.5, 0.5), 5.0)
        with pytest.raises(QueryError):
            query.validate_against(Rectangle(0, 0, 4, 4), min_area=1.0)

    def test_validate_against_containment(self):
        query = AcquisitionalQuery("rain", Rectangle(3, 3, 6, 6), 5.0)
        with pytest.raises(QueryError):
            query.validate_against(Rectangle(0, 0, 4, 4), min_area=1.0)

    def test_validate_against_accepts_valid(self):
        query = AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 5.0)
        query.validate_against(Rectangle(0, 0, 4, 4), min_area=1.0)
