"""Unit tests for budget tuning, the stream fabricator and the CrAQR engine."""

import numpy as np
import pytest

from repro.baselines import OracleBudgetController
from repro.config import BudgetConfig, EngineConfig
from repro.core import AcquisitionalQuery, BudgetTuner, CraqrEngine, QueryPlanner, StreamFabricator
from repro.errors import BudgetError, PlanningError, QueryError
from repro.geometry import Grid, Rectangle, RectRegion
from repro.pointprocess import HomogeneousMDPP
from repro.sensing import RequestResponseHandler
from repro.streams import SensorTuple
from tests.conftest import make_world

REGION = Rectangle(0, 0, 4, 4)
GRID = Grid(REGION, side=4)


def make_handler(seed=3, response_probability=1.0, default_budget=40):
    world = make_world(REGION, seed=seed, response_probability=response_probability)
    return RequestResponseHandler(world, GRID, default_budget=default_budget), world


class TestBudgetTuner:
    def make_tuner(self, **kwargs):
        handler, _ = make_handler()
        config = BudgetConfig(
            initial=kwargs.get("initial", 50),
            delta=kwargs.get("delta", 10),
            limit=kwargs.get("limit", 100),
            floor=kwargs.get("floor", 10),
            violation_threshold=kwargs.get("threshold", 5.0),
        )
        return BudgetTuner(handler, config), handler

    def test_initial_budget_installed_once(self):
        tuner, handler = self.make_tuner(initial=50)
        tuner.ensure_initial_budget("rain", (0, 0))
        assert handler.budget_for("rain", (0, 0)) == 50

    def test_violation_above_threshold_increases_budget(self):
        tuner, handler = self.make_tuner()
        decisions = tuner.tune({("rain", (0, 0)): 20.0})
        assert decisions[0].direction == 1
        assert handler.budget_for("rain", (0, 0)) == 60

    def test_violation_below_threshold_decreases_budget(self):
        tuner, handler = self.make_tuner()
        decisions = tuner.tune({("rain", (0, 0)): 0.0})
        assert decisions[0].direction == -1
        assert handler.budget_for("rain", (0, 0)) == 40

    def test_budget_respects_floor(self):
        tuner, handler = self.make_tuner(initial=15, delta=10, floor=10)
        tuner.tune({("rain", (0, 0)): 0.0})
        assert handler.budget_for("rain", (0, 0)) == 10
        tuner.tune({("rain", (0, 0)): 0.0})
        assert handler.budget_for("rain", (0, 0)) == 10

    def test_budget_saturates_at_limit(self):
        tuner, handler = self.make_tuner(initial=95, delta=10, limit=100)
        decisions = tuner.tune({("rain", (0, 0)): 50.0})
        assert handler.budget_for("rain", (0, 0)) == 100
        assert decisions[0].saturated
        assert ("rain", (0, 0)) in tuner.saturated_pairs

    def test_saturation_clears_when_violations_stop(self):
        tuner, _ = self.make_tuner(initial=95, delta=10, limit=100)
        tuner.tune({("rain", (0, 0)): 50.0})
        tuner.tune({("rain", (0, 0)): 0.0})
        assert tuner.saturated_pairs == []

    def test_negative_violation_rejected(self):
        tuner, _ = self.make_tuner()
        with pytest.raises(BudgetError):
            tuner.tune({("rain", (0, 0)): -1.0})

    def test_history_accumulates(self):
        tuner, _ = self.make_tuner()
        tuner.tune({("rain", (0, 0)): 10.0})
        tuner.tune({("rain", (0, 0)): 0.0})
        assert len(tuner.history) == 2

    def test_feedback_loop_converges_towards_sufficient_budget(self):
        # A toy closed loop: violations occur whenever the budget is below
        # the (hidden) required budget of 80; the tuner should climb to >= 80
        # and then hover around it.
        tuner, handler = self.make_tuner(initial=20, delta=10, limit=200)
        required = 80
        for _ in range(20):
            budget = handler.budget_for("rain", (0, 0))
            violation = 50.0 if budget < required else 0.0
            tuner.tune({("rain", (0, 0)): violation})
        assert handler.budget_for("rain", (0, 0)) >= required - 10


class TestOracleBudgetController:
    def test_required_budget_accounts_for_response_probability(self):
        handler, world = make_handler(response_probability=1.0)
        oracle = OracleBudgetController(world, handler, response_probability=0.5, headroom=1.0)
        cell = GRID.cell(0, 0)
        assert oracle.required_budget(10.0, cell, 1.0) == 20

    def test_apply_sets_handler_budget(self):
        handler, world = make_handler()
        oracle = OracleBudgetController(world, handler, response_probability=0.8)
        cell = GRID.cell(1, 1)
        budget = oracle.apply("rain", cell, 16.0, 1.0)
        assert handler.budget_for("rain", cell.key) == budget

    def test_max_budget_cap(self):
        handler, world = make_handler()
        oracle = OracleBudgetController(
            world, handler, response_probability=0.1, max_budget=50
        )
        assert oracle.required_budget(100.0, GRID.cell(0, 0), 1.0) == 50

    def test_validation(self):
        handler, world = make_handler()
        with pytest.raises(BudgetError):
            OracleBudgetController(world, handler, response_probability=0.0)
        oracle = OracleBudgetController(world, handler, response_probability=0.5)
        with pytest.raises(BudgetError):
            oracle.required_budget(0.0, GRID.cell(0, 0), 1.0)


class TestStreamFabricator:
    def make_setup(self, rate=25.0, seed=0):
        planner = QueryPlanner(GRID, rng=np.random.default_rng(seed))
        fabricator = StreamFabricator(planner, GRID)
        delivered = {}

        def deliver(query_id, item):
            delivered.setdefault(query_id, []).append(item)
            fabricator.register_delivery(query_id)

        query = AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), rate)
        planner.insert_query(query, on_result=deliver)
        return planner, fabricator, query, delivered

    def raw_tuples(self, rate=300.0, seed=1):
        tuples_by_cell = {}
        for key in [(0, 0), (1, 0), (0, 1), (1, 1)]:
            cell = GRID.cell(*key)
            batch = HomogeneousMDPP(rate, cell.rect).sample(
                1.0, rng=np.random.default_rng(seed + key[0] * 10 + key[1])
            )
            tuples_by_cell[key] = [
                SensorTuple(tuple_id=i, attribute="rain", t=float(t), x=float(x), y=float(y))
                for i, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y))
            ]
        return tuples_by_cell

    def test_map_phase_reassigns_moved_tuples(self):
        planner, fabricator, _, _ = self.make_setup()
        # A tuple reported under cell (0,0) but whose coordinates are in (1,1).
        stray = SensorTuple(tuple_id=1, attribute="rain", t=0.1, x=1.5, y=1.5)
        mapped = fabricator.map_tuples({(0, 0): [stray]})
        assert (1, 1) in mapped
        assert mapped[(1, 1)] == [stray]

    def test_process_batch_delivers_and_reports(self):
        planner, fabricator, query, delivered = self.make_setup(rate=30.0)
        result = fabricator.process_batch(self.raw_tuples())
        assert result.tuples_in > 0
        assert result.tuples_routed > 0
        assert result.tuples_delivered == len(delivered[query.query_id])
        assert result.delivered_per_query[query.query_id] == result.tuples_delivered
        assert ("rain", (0, 0)) in result.violations
        assert fabricator.batches_processed == 1
        assert fabricator.delivered_total(query.query_id) == result.tuples_delivered

    def test_sharing_factor_with_two_queries(self):
        planner = QueryPlanner(GRID, rng=np.random.default_rng(5))
        fabricator = StreamFabricator(planner, GRID)

        def deliver(query_id, item):
            fabricator.register_delivery(query_id)

        for rate in (30.0, 15.0):
            planner.insert_query(
                AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), rate), on_result=deliver
            )
        result = fabricator.process_batch(self.raw_tuples(seed=6))
        # Two queries re-use the same routed tuples, so more deliveries than
        # a single query would get from the same acquisition.
        assert result.tuples_delivered > 0
        assert result.sharing_factor > 0.0


class TestCraqrEngine:
    def make_engine(self, response_probability=1.0, seed=2, **config_kwargs):
        world = make_world(REGION, seed=seed, response_probability=response_probability)
        config = EngineConfig(
            grid_cells=16,
            batch_duration=1.0,
            budget=BudgetConfig(initial=60, delta=10, limit=400, violation_threshold=5.0),
            seed=seed,
            **config_kwargs,
        )
        return CraqrEngine(config, world)

    def test_register_and_run_delivers_rate(self):
        engine = self.make_engine()
        handle = engine.register_query(
            AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 10.0)
        )
        engine.run(8)
        estimate = handle.achieved_rate()
        assert estimate.achieved_rate == pytest.approx(10.0, rel=0.35)
        assert engine.batches_run == 8
        assert len(engine.reports) == 8

    def test_duplicate_registration_rejected(self):
        engine = self.make_engine()
        query = AcquisitionalQuery("temp", Rectangle(0, 0, 1, 1), 5.0)
        engine.register_query(query)
        with pytest.raises(QueryError):
            engine.register_query(query)

    def test_run_requires_positive_batches(self):
        engine = self.make_engine()
        with pytest.raises(QueryError):
            engine.run(0)

    def test_delete_query_stops_future_deliveries(self):
        engine = self.make_engine()
        handle = engine.register_query(
            AcquisitionalQuery("temp", Rectangle(0, 0, 1, 1), 8.0)
        )
        engine.run(3)
        delivered_before = handle.buffer.total_tuples
        handle.delete()
        assert not handle.is_active()
        engine.register_query(AcquisitionalQuery("temp", Rectangle(1, 1, 2, 2), 8.0))
        engine.run(3)
        assert handle.buffer.total_tuples == delivered_before

    def test_delete_unknown_query_raises(self):
        engine = self.make_engine()
        with pytest.raises(PlanningError):
            engine.delete_query(999999)

    def test_reports_contain_budget_decisions(self):
        engine = self.make_engine(response_probability=0.4)
        engine.register_query(AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 30.0))
        report = engine.run_batch()
        assert report.handler.requests_sent > 0
        assert isinstance(report.budget_decisions, list)
        assert report.tuples_acquired == report.handler.responses_received

    def test_budget_increases_under_persistent_violations(self):
        engine = self.make_engine(response_probability=0.3)
        engine.register_query(AcquisitionalQuery("rain", Rectangle(0, 0, 1, 1), 50.0))
        initial_budget = engine.handler.budget_for("rain", (0, 0))
        engine.run(6)
        assert engine.handler.budget_for("rain", (0, 0)) > initial_budget

    def test_world_clock_advances_with_batches(self):
        engine = self.make_engine()
        engine.register_query(AcquisitionalQuery("temp", Rectangle(0, 0, 1, 1), 5.0))
        engine.run(4)
        assert engine.world.now == pytest.approx(4.0)

    def test_totals_are_consistent(self):
        engine = self.make_engine()
        handle = engine.register_query(
            AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 12.0)
        )
        engine.run(5)
        assert engine.total_tuples_delivered() == handle.buffer.total_tuples
        assert engine.total_requests_sent() >= engine.total_tuples_acquired()

    def test_queries_only_receive_their_attribute(self):
        engine = self.make_engine()
        rain = engine.register_query(AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 10.0))
        temp = engine.register_query(AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 10.0))
        engine.run(4)
        assert all(item.attribute == "rain" for item in rain.results())
        assert all(item.attribute == "temp" for item in temp.results())

    def test_results_lie_inside_query_region(self):
        engine = self.make_engine()
        region = Rectangle(1, 1, 3, 3)
        handle = engine.register_query(AcquisitionalQuery("temp", region, 10.0))
        engine.run(4)
        for item in handle.results():
            assert region.contains(item.x, item.y, closed=True)

    def test_discarded_store_populated_when_enabled(self):
        engine = self.make_engine(store_discarded=True)
        engine.register_query(AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 5.0))
        engine.run(4)
        store = engine.discarded_store
        assert store is not None
        # The Flatten operators drop the surplus above the (low) target rate
        # and those tuples land in the separate store, keyed by operator name.
        assert store.total_discarded > 0
        assert any(name.startswith("F:temp") for name in store.operators)

    def test_no_discarded_store_by_default(self):
        engine = self.make_engine()
        assert engine.discarded_store is None

    def test_planner_stats_accessible(self):
        engine = self.make_engine()
        engine.register_query(AcquisitionalQuery("temp", Rectangle(0, 0, 2, 2), 10.0))
        stats = engine.planner_stats()
        assert stats.queries == 1
        assert stats.materialized_cells == 4
