"""Unit tests for the query-cost optimizer and the tree-merge topology (Section VI)."""

import numpy as np
import pytest

from repro.core import (
    AcquisitionalQuery,
    GridGranularityAdvisor,
    TopologyCostModel,
    TreeMergeBuilder,
    estimate_query_cost,
    merge_depth,
    operator_count,
)
from repro.errors import PlanningError
from repro.geometry import Grid, Rectangle, RectRegion
from repro.streams import CollectingSink, Stream, SensorTuple

REGION = Rectangle(0, 0, 4, 4)
GRID = Grid(REGION, side=4)


class TestCostModel:
    def test_rejects_negative_prices(self):
        with pytest.raises(PlanningError):
            TopologyCostModel(cost_per_request=-1.0)

    def test_cell_aligned_query_has_no_over_acquisition(self):
        query = AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 10.0)
        estimate = estimate_query_cost(query, GRID)
        assert estimate.cells == 4
        assert estimate.over_acquisition == pytest.approx(0.0)
        assert estimate.total > 0
        assert estimate.requests_per_batch > 0

    def test_partial_overlap_causes_over_acquisition(self):
        query = AcquisitionalQuery("rain", Rectangle(0.5, 0.5, 1.5, 1.5), 10.0)
        estimate = estimate_query_cost(query, GRID)
        assert estimate.cells == 4
        assert estimate.over_acquisition > 0.5

    def test_cost_scales_with_rate(self):
        slow = AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 5.0)
        fast = AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 20.0)
        assert estimate_query_cost(fast, GRID).total > estimate_query_cost(slow, GRID).total

    def test_cost_scales_with_response_probability(self):
        query = AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 10.0)
        cheap = estimate_query_cost(query, GRID, response_probability=0.9)
        pricey = estimate_query_cost(query, GRID, response_probability=0.3)
        assert pricey.requests_per_batch > cheap.requests_per_batch

    def test_validation(self):
        query = AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 10.0)
        with pytest.raises(PlanningError):
            estimate_query_cost(query, GRID, response_probability=0.0)
        with pytest.raises(PlanningError):
            estimate_query_cost(query, GRID, batch_duration=0.0)
        with pytest.raises(PlanningError):
            estimate_query_cost(query, GRID, chain_depth=0)


class TestGranularityAdvisor:
    def make_queries(self, aligned_to=4):
        cell = REGION.width / aligned_to
        return [
            AcquisitionalQuery("rain", Rectangle(0, 0, 2 * cell, 2 * cell), 10.0),
            AcquisitionalQuery("temp", Rectangle(cell, cell, 3 * cell, 3 * cell), 6.0),
        ]

    def test_evaluate_returns_cost_and_over_acquisition(self):
        advisor = GridGranularityAdvisor(REGION)
        cost, over = advisor.evaluate(self.make_queries(), side=4)
        assert cost > 0
        assert 0.0 <= over <= 1.0

    def test_recommendation_prefers_coarse_grid_for_aligned_queries(self):
        # Queries aligned to the 2x2 grid: the coarse grid is cheapest and
        # already has zero over-acquisition.
        queries = [
            AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 10.0),
            AcquisitionalQuery("temp", Rectangle(2, 2, 4, 4), 6.0),
        ]
        advisor = GridGranularityAdvisor(REGION)
        recommendation = advisor.recommend(queries, candidate_sides=(2, 4, 8))
        assert recommendation.side == 2
        assert recommendation.mean_over_acquisition == pytest.approx(0.0)

    def test_recommendation_refines_grid_for_small_queries(self):
        # Small, non-aligned queries force a finer grid to avoid acquiring
        # far more than the query region needs.
        queries = [
            AcquisitionalQuery("rain", Rectangle(0.25, 0.25, 1.25, 1.25), 10.0),
            AcquisitionalQuery("rain", Rectangle(2.5, 2.5, 3.5, 3.5), 10.0),
        ]
        advisor = GridGranularityAdvisor(REGION)
        recommendation = advisor.recommend(
            queries, candidate_sides=(2, 4, 8), max_over_acquisition=0.3
        )
        assert recommendation.side >= 4
        assert recommendation.per_side_over_acquisition[2] > 0.3

    def test_recommendation_validation(self):
        advisor = GridGranularityAdvisor(REGION)
        with pytest.raises(PlanningError):
            advisor.recommend([], candidate_sides=(2,))
        with pytest.raises(PlanningError):
            advisor.recommend(self.make_queries(), candidate_sides=())
        with pytest.raises(PlanningError):
            advisor.evaluate(self.make_queries(), side=0)


def make_tuple(i, t=0.0):
    return SensorTuple(tuple_id=i, attribute="rain", t=t, x=0.5, y=0.5)


class TestMergeMath:
    def test_merge_depth(self):
        assert merge_depth(1, 2) == 1
        assert merge_depth(2, 2) == 1
        assert merge_depth(8, 2) == 3
        assert merge_depth(9, 3) == 2

    def test_operator_count(self):
        assert operator_count(1, 2) == 1
        assert operator_count(2, 2) == 1
        assert operator_count(8, 2) == 7
        assert operator_count(9, 3) == 4

    def test_validation(self):
        with pytest.raises(PlanningError):
            merge_depth(0, 2)
        with pytest.raises(PlanningError):
            merge_depth(4, 1)
        with pytest.raises(PlanningError):
            operator_count(0, 2)


class TestTreeMergeBuilder:
    def make_inputs(self, count):
        return [Stream(f"leaf{i}") for i in range(count)]

    def test_fan_in_validation(self):
        with pytest.raises(PlanningError):
            TreeMergeBuilder(fan_in=1)

    def test_empty_inputs_rejected(self):
        with pytest.raises(PlanningError):
            TreeMergeBuilder().build([])

    def test_tree_structure_matches_math(self):
        inputs = self.make_inputs(8)
        tree = TreeMergeBuilder(fan_in=2, rng=np.random.default_rng(0)).build(inputs)
        assert tree.leaves == 8
        assert tree.operator_count == operator_count(8, 2)
        assert tree.depth == merge_depth(8, 2)

    def test_all_tuples_reach_the_root(self):
        inputs = self.make_inputs(5)
        tree = TreeMergeBuilder(fan_in=2, rng=np.random.default_rng(1)).build(inputs)
        sink = CollectingSink().attach(tree.output)
        for index, stream in enumerate(inputs):
            for j in range(3):
                stream.push(make_tuple(index * 10 + j, t=float(j)))
        assert len(sink) == 15

    def test_single_input_still_produces_root(self):
        inputs = self.make_inputs(1)
        tree = TreeMergeBuilder(fan_in=4).build(inputs)
        sink = CollectingSink().attach(tree.output)
        inputs[0].push(make_tuple(1))
        assert len(sink) == 1
        assert tree.operator_count == 1

    def test_wide_fan_in_produces_flat_merge(self):
        inputs = self.make_inputs(6)
        tree = TreeMergeBuilder(fan_in=8).build(inputs)
        assert tree.operator_count == 1
        assert tree.depth == 1
