"""Unit tests for ViewFrame, ViewFrameBuffer and FrameCursor."""

import numpy as np
import pytest

from repro.errors import StorageError, ViewError
from repro.views import ViewFrame, ViewFrameBuffer


def make_frame(index, groups=2, start=None):
    keys = np.empty(groups, dtype=object)
    keys[:] = [(g, 0) for g in range(groups)]
    start = float(index) if start is None else start
    return ViewFrame(
        frame_index=index,
        window_start=start,
        window_end=start + 1.0,
        keys=keys,
        values=np.arange(groups, dtype=np.float64),
        counts=np.full(groups, 10, dtype=np.int64),
    )


class TestViewFrame:
    def test_column_lengths_must_agree(self):
        keys = np.empty(2, dtype=object)
        keys[:] = ["a", "b"]
        with pytest.raises(ViewError, match="disagree"):
            ViewFrame(0, 0.0, 1.0, keys, np.zeros(3), np.zeros(2, dtype=np.int64))

    def test_accessors(self):
        frame = make_frame(3, groups=4)
        assert frame.groups == 4 and len(frame) == 4
        assert frame.tuples == 40
        assert not frame.is_empty
        assert frame.value_of((2, 0)) == 2.0
        with pytest.raises(ViewError, match="no group"):
            frame.value_of((9, 9))

    def test_empty_frame(self):
        frame = ViewFrame(
            0, 0.0, 1.0,
            np.empty(0, dtype=object), np.empty(0), np.empty(0, dtype=np.int64),
        )
        assert frame.is_empty and frame.tuples == 0


class TestViewFrameBuffer:
    def test_rejects_bad_retention(self):
        with pytest.raises(StorageError):
            ViewFrameBuffer(retention_frames=0)

    def test_append_enforces_lifetime_order(self):
        buffer = ViewFrameBuffer()
        buffer.append(make_frame(0))
        with pytest.raises(StorageError, match="lifetime order"):
            buffer.append(make_frame(5))

    def test_retention_evicts_but_totals_survive(self):
        buffer = ViewFrameBuffer(retention_frames=3)
        for i in range(10):
            buffer.append(make_frame(i))
        assert len(buffer) == 3
        assert buffer.frames_emitted == 10
        assert buffer.frames_evicted == 7
        assert buffer.tuples_total == 10 * 20  # exact despite eviction
        retained = buffer.frames()
        assert [f.frame_index for f in retained] == [7, 8, 9]
        assert buffer.latest().frame_index == 9

    def test_frame_lookup(self):
        buffer = ViewFrameBuffer(retention_frames=2)
        for i in range(4):
            buffer.append(make_frame(i))
        assert buffer.frame(3).frame_index == 3
        with pytest.raises(StorageError, match="evicted"):
            buffer.frame(0)
        with pytest.raises(StorageError, match="not been emitted"):
            buffer.frame(4)


class TestFrameCursor:
    def test_reads_only_new_frames(self):
        buffer = ViewFrameBuffer()
        cursor = buffer.cursor()
        assert cursor.fetch() == []
        buffer.append(make_frame(0))
        buffer.append(make_frame(1))
        got = cursor.fetch()
        assert [f.frame_index for f in got] == [0, 1]
        assert cursor.fetch() == []
        buffer.append(make_frame(2))
        assert [f.frame_index for f in cursor.fetch()] == [2]
        assert cursor.pending == 0

    def test_tail_cursor_skips_history(self):
        buffer = ViewFrameBuffer()
        buffer.append(make_frame(0))
        cursor = buffer.cursor(tail=True)
        assert cursor.fetch() == []
        buffer.append(make_frame(1))
        assert [f.frame_index for f in cursor.fetch()] == [1]

    def test_lagging_cursor_raises_after_eviction(self):
        buffer = ViewFrameBuffer(retention_frames=2)
        cursor = buffer.cursor()
        for i in range(5):
            buffer.append(make_frame(i))
        with pytest.raises(StorageError, match="has been evicted"):
            cursor.fetch()

    def test_caught_up_cursor_survives_eviction(self):
        buffer = ViewFrameBuffer(retention_frames=2)
        cursor = buffer.cursor()
        buffer.append(make_frame(0))
        assert len(cursor.fetch()) == 1
        for i in range(1, 6):
            buffer.append(make_frame(i))
        # The cursor fell behind but frame 0 was read before eviction;
        # frames 1..3 were evicted unread -> that *is* data loss.
        with pytest.raises(StorageError):
            cursor.fetch()
        fresh = buffer.cursor()
        assert [f.frame_index for f in fresh.fetch()] == [4, 5]

    def test_iteration_drains_pending(self):
        buffer = ViewFrameBuffer()
        buffer.append(make_frame(0))
        cursor = buffer.cursor()
        assert [f.frame_index for f in cursor] == [0]
