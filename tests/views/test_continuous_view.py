"""Unit tests for ContinuousView maintenance, driven without an engine.

The view is fed delivered :class:`TupleBatch` columns directly (exactly
what the subscription path hands it) and its clock is advanced by hand, so
window/pane/grouping semantics are pinned down independently of the
simulation.
"""

import numpy as np
import pytest

from repro.errors import ViewError
from repro.geometry import Grid, Rectangle
from repro.streams import TupleBatch
from repro.views import ContinuousView, ViewSpec


def make_grid(side=2, extent=4.0):
    return Grid(Rectangle(0.0, 0.0, extent, extent), side)


def make_view(spec, *, grid=None, retention_batches=None, start_time=0.0):
    return ContinuousView(
        spec,
        name="V",
        query_id=1,
        query_label="Q1",
        grid=grid if grid is not None else make_grid(),
        batch_duration=1.0,
        retention_batches=retention_batches,
        start_time=start_time,
    )


def batch(ts, xs=None, ys=None, values=None, attribute="rain"):
    ts = np.asarray(ts, dtype=float)
    n = ts.shape[0]
    xs = np.zeros(n) + 0.5 if xs is None else np.asarray(xs, dtype=float)
    ys = np.zeros(n) + 0.5 if ys is None else np.asarray(ys, dtype=float)
    values = np.ones(n) if values is None else np.asarray(values)
    ids = np.arange(n, dtype=np.int64)
    return TupleBatch(attribute, ts, xs, ys, values, ids, ids)


class TestTumblingMaintenance:
    def test_frames_emit_at_window_close(self):
        view = make_view(ViewSpec(aggregate="SUM", window=2.0))
        view.on_delivery(batch([0.2, 0.8], values=[1.0, 2.0]))
        assert view.advance_to(1.0) == []  # window [0, 2) still open
        view.on_delivery(batch([1.5], values=[4.0]))
        (frame,) = view.advance_to(2.0)
        assert frame.window_start == 0.0 and frame.window_end == 2.0
        assert frame.tuples == 3
        assert frame.values.tolist() == [7.0]
        assert list(frame.keys) == ["*"]

    def test_quiet_windows_emit_empty_frames(self):
        view = make_view(ViewSpec(aggregate="COUNT", window=1.0))
        view.on_delivery(batch([0.5]))
        frames = view.advance_to(3.0)
        assert [f.window_start for f in frames] == [0.0, 1.0, 2.0]
        assert [f.tuples for f in frames] == [1, 0, 0]
        assert frames[1].is_empty

    def test_boundary_tuple_lands_in_exactly_one_frame(self):
        view = make_view(ViewSpec(aggregate="COUNT", window=1.0))
        view.on_delivery(batch([0.5, 1.0]))  # 1.0 is exactly on the boundary
        first, second = view.advance_to(2.0)
        assert first.tuples == 1  # [0, 1) holds only t=0.5
        assert second.tuples == 1  # [1, 2) holds only t=1.0
        assert view.buffer.tuples_total == 2

    def test_cell_grouping_uses_coordinates(self):
        grid = make_grid(side=2, extent=4.0)  # 2x2 km cells
        view = make_view(
            ViewSpec(aggregate="AVG", window=1.0, group_by="cell"), grid=grid
        )
        view.on_delivery(
            batch(
                [0.1, 0.2, 0.3],
                xs=[0.5, 3.5, 0.6],
                ys=[0.5, 3.5, 0.7],
                values=[2.0, 10.0, 4.0],
            )
        )
        (frame,) = view.advance_to(1.0)
        assert list(frame.keys) == [(0, 0), (1, 1)]
        assert frame.value_of((0, 0)) == pytest.approx(3.0)
        assert frame.value_of((1, 1)) == pytest.approx(10.0)
        assert frame.counts.tolist() == [2, 1]

    def test_attribute_grouping_keys_by_stream_attribute(self):
        view = make_view(ViewSpec(aggregate="COUNT", window=1.0, group_by="attribute"))
        view.on_delivery(batch([0.1, 0.2], attribute="rain"))
        (frame,) = view.advance_to(1.0)
        assert list(frame.keys) == ["rain"]
        assert frame.counts.tolist() == [2]

    def test_percentile_aggregate_over_window(self):
        view = make_view(ViewSpec(aggregate="P50", window=1.0))
        view.on_delivery(batch(np.linspace(0.0, 0.9, 9), values=np.arange(1.0, 10.0)))
        (frame,) = view.advance_to(1.0)
        assert frame.values[0] == 5.0  # exact median, sketch never compacted

    def test_non_numeric_values_raise_for_numeric_aggregates(self):
        view = make_view(ViewSpec(aggregate="AVG", window=1.0))
        values = np.empty(1, dtype=object)
        values[:] = ["wet"]
        with pytest.raises(ViewError, match="numeric"):
            view.on_delivery(batch([0.1], values=values))

    def test_count_ignores_value_column(self):
        view = make_view(ViewSpec(aggregate="COUNT", window=1.0))
        values = np.empty(2, dtype=object)
        values[:] = ["wet", "dry"]
        view.on_delivery(batch([0.1, 0.2], values=values))
        (frame,) = view.advance_to(1.0)
        assert frame.values.tolist() == [2.0]


class TestSlidingMaintenance:
    def test_panes_merge_into_overlapping_frames(self):
        view = make_view(ViewSpec(aggregate="SUM", window=2.0, slide=1.0))
        view.on_delivery(batch([0.5], values=[1.0]))
        assert view.advance_to(1.0) == []  # first full window ends at t=2
        view.on_delivery(batch([1.5], values=[10.0]))
        (w01,) = view.advance_to(2.0)
        assert (w01.window_start, w01.window_end) == (0.0, 2.0)
        assert w01.values.tolist() == [11.0]
        view.on_delivery(batch([2.5], values=[100.0]))
        (w12,) = view.advance_to(3.0)
        assert (w12.window_start, w12.window_end) == (1.0, 3.0)
        assert w12.values.tolist() == [110.0]

    def test_shared_panes_are_not_mutated_across_frames(self):
        # P50 partials are mutable sketches; merging them into a frame
        # must not corrupt the pane a later frame still needs.
        view = make_view(ViewSpec(aggregate="P50", window=2.0, slide=1.0))
        view.on_delivery(batch([0.5], values=[1.0]))
        view.on_delivery(batch([1.5], values=[3.0]))
        view.on_delivery(batch([2.5], values=[5.0]))
        frames = view.advance_to(3.0)
        assert [f.values.tolist() for f in frames] == [[1.0], [3.0]]

    def test_tuples_count_once_per_overlapping_frame(self):
        view = make_view(ViewSpec(aggregate="COUNT", window=3.0, slide=1.0))
        view.on_delivery(batch([0.5, 1.5, 2.5]))
        frames = view.advance_to(5.0)
        # Windows [0,3), [1,4), [2,5): the t=2.5 tuple is in all three.
        assert [f.tuples for f in frames] == [3, 2, 1]


class TestAttachmentAndRetention:
    def test_mid_stream_attachment_skips_partial_panes(self):
        view = make_view(ViewSpec(aggregate="COUNT", window=2.0), start_time=3.0)
        # Pane [2, 4) was half-observed when the view attached at t=3;
        # its tuples are excluded so no partial frame is ever served.
        view.on_delivery(batch([3.5, 4.5]))
        frames = view.advance_to(6.0)
        assert [f.window_start for f in frames] == [4.0]
        assert frames[0].tuples == 1
        assert view.pre_origin_dropped == 1

    def test_aligned_attachment_drops_nothing(self):
        view = make_view(ViewSpec(aggregate="COUNT", window=2.0), start_time=4.0)
        view.on_delivery(batch([4.1, 5.9]))
        (frame,) = view.advance_to(6.0)
        assert frame.tuples == 2
        assert view.pre_origin_dropped == 0

    def test_retention_maps_batches_to_frames(self):
        view = make_view(
            ViewSpec(aggregate="COUNT", window=2.0), retention_batches=6
        )
        for i in range(20):
            view.on_delivery(batch([i + 0.5]))
            view.advance_to(float(i + 1))
        # One frame per 2 batches; 6 retained batches -> 3 retained frames.
        assert view.buffer.retention_frames == 3
        assert len(view.buffer) == 3
        assert view.buffer.frames_emitted == 10
        assert view.buffer.tuples_total == 20  # lifetime total survives

    def test_window_must_align_to_batch_duration(self):
        with pytest.raises(ViewError, match="batch duration"):
            ContinuousView(
                ViewSpec(aggregate="COUNT", window=2.5),
                name="V",
                query_id=1,
                query_label="Q1",
                grid=make_grid(),
                batch_duration=1.0,
            )

    def test_detach_is_idempotent(self):
        class FakeSubscription:
            cancelled = 0

            def cancel(self):
                FakeSubscription.cancelled += 1

        view = make_view(ViewSpec(aggregate="COUNT", window=1.0))
        view.attach(FakeSubscription())
        assert view.is_active
        view.detach()
        view.detach()
        assert not view.is_active
        assert FakeSubscription.cancelled == 1
