"""Engine-level tests of the continuous-view serving surface (ISSUE 5).

Covers: ``QueryHandle.view`` and the ``CREATE VIEW`` / ``DROP VIEW`` /
``SHOW VIEWS`` execute() round-trips, frame correctness against the raw
stream, survival across ALTER SET REGION (vacated cells close, added cells
appear), pause/resume (empty frames, exact lifetime totals), retention
eviction, STOP auto-detach, and the extended SHOW QUERIES session rows.
"""

import pytest

from repro.config import BudgetConfig, EngineConfig
from repro.core.engine import CraqrEngine
from repro.core.query import AcquisitionalQuery
from repro.errors import PlanningError, ViewError
from repro.geometry import Rectangle, RectRegion
from repro.sensing import RainField, SensingWorld, WorldConfig
from repro.views import ViewHandle, ViewSessionInfo, ViewSpec

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


def make_engine(columnar=True, retention=None, seed=7, sensors=150):
    world = SensingWorld(WorldConfig(region=REGION, sensor_count=sensors, seed=42))
    world.register_field(RainField(REGION, band_width=1.2, period=40.0))
    config = EngineConfig(
        grid_cells=16,
        seed=seed,
        budget=BudgetConfig(initial=30, delta=5, limit=300),
        columnar=columnar,
        retention_batches=retention,
    )
    return CraqrEngine(config, world)


def register_storm(engine, rate=20.0):
    return engine.register_query(
        AcquisitionalQuery(
            "rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=rate, name="Storm"
        )
    )


class TestViewLifecycle:
    def test_handle_view_and_frames(self):
        engine = make_engine()
        handle = register_storm(engine)
        view = handle.view(ViewSpec(aggregate="COUNT", window=2.0))
        assert isinstance(view, ViewHandle)
        assert view.is_active()
        engine.run(4)
        frames = view.frames()
        assert [f.window_start for f in frames] == [0.0, 2.0]
        # A whole-region COUNT frame is a single "*" group whose value is
        # its own tuple count.
        for frame in frames:
            assert list(frame.keys) == ["*"]
            assert frame.values.tolist() == [float(frame.tuples)]
        assert view.buffer.tuples_total == sum(f.tuples for f in frames)
        assert handle.views() == [view]

    def test_frame_counts_match_raw_stream(self):
        engine = make_engine()
        handle = register_storm(engine)
        view = handle.view(ViewSpec(aggregate="COUNT", window=1.0))
        cursor = handle.cursor()
        engine.run(5)
        raw = cursor.fetch()
        frames = view.frames()
        # Tuples with t beyond the last closed window are still pending.
        closed_end = frames[-1].window_end
        in_closed = [item for item in raw if item.t < closed_end]
        assert sum(f.tuples for f in frames) == len(in_closed)

    def test_auto_named_views_are_unique(self):
        engine = make_engine()
        handle = register_storm(engine)
        a = handle.view(ViewSpec(aggregate="COUNT", window=1.0))
        b = handle.view(ViewSpec(aggregate="AVG", window=1.0))
        assert a.name != b.name
        assert {v.name for v in engine.view_handles()} == {a.name, b.name}

    def test_auto_naming_skips_user_taken_names(self):
        engine = make_engine()
        handle = register_storm(engine)
        handle.view(ViewSpec(aggregate="COUNT", window=1.0), name="V1")
        unnamed = handle.view(ViewSpec(aggregate="COUNT", window=1.0))
        assert unnamed.name != "V1"
        assert engine.has_view(unnamed.name)

    def test_view_created_inside_a_subscriber_starts_at_the_next_batch(self):
        # A subscription callback fires mid-batch, after the batch's
        # deliveries were dispatched: a view created there must not claim
        # to have observed that batch's window.
        engine = make_engine()
        handle = register_storm(engine)
        created = []

        def create_late(batch):
            if not created:
                created.append(handle.view(ViewSpec(aggregate="COUNT", window=1.0)))

        handle.subscribe(create_late)
        engine.run(3)
        (view,) = created
        frames = view.frames()
        # Created during batch 0's end_batch: the first fully observed
        # window is [1, 2) — and no emitted frame under-reports coverage.
        assert [f.window_start for f in frames] == [1.0, 2.0]
        assert all(f.tuples > 0 for f in frames)

    def test_duplicate_names_rejected(self):
        engine = make_engine()
        handle = register_storm(engine)
        handle.view(ViewSpec(aggregate="COUNT", window=1.0), name="W")
        with pytest.raises(ViewError, match="already exists"):
            handle.view(ViewSpec(aggregate="AVG", window=1.0), name="W")

    def test_view_on_unregistered_query_rejected(self):
        engine = make_engine()
        with pytest.raises(PlanningError):
            engine.create_view(99, ViewSpec(aggregate="COUNT", window=1.0))

    def test_misaligned_window_rejected_at_creation(self):
        engine = make_engine()
        handle = register_storm(engine)
        with pytest.raises(ViewError, match="batch duration"):
            handle.view(ViewSpec(aggregate="COUNT", window=1.5))

    def test_drop_view_keeps_frames_readable(self):
        engine = make_engine()
        handle = register_storm(engine)
        view = handle.view(ViewSpec(aggregate="COUNT", window=1.0), name="W")
        engine.run(2)
        dropped = engine.drop_view("W")
        assert not dropped.is_active()
        assert not engine.has_view("W")
        frames_at_drop = len(dropped.frames())
        engine.run(2)  # no further maintenance
        assert len(dropped.frames()) == frames_at_drop
        with pytest.raises(ViewError):
            engine.drop_view("W")

    def test_stop_query_detaches_its_views(self):
        engine = make_engine()
        handle = register_storm(engine)
        view = handle.view(ViewSpec(aggregate="COUNT", window=1.0), name="W")
        engine.run(2)
        engine.execute("STOP Storm")
        assert not view.is_active()
        assert engine.views() == []
        assert len(view.frames()) == 2  # still readable

    def test_view_created_mid_run_sees_only_the_future(self):
        engine = make_engine()
        handle = register_storm(engine)
        engine.run(3)
        view = handle.view(ViewSpec(aggregate="COUNT", window=1.0))
        engine.run(2)
        frames = view.frames()
        assert [f.window_start for f in frames] == [3.0, 4.0]


class TestFailedViewQuarantine:
    def test_non_numeric_stream_quarantines_the_view_not_the_batch(self):
        from repro.sensing import ConstantField

        world = SensingWorld(WorldConfig(region=REGION, sensor_count=150, seed=42))
        world.register_field(ConstantField(constant="wet", attribute="rain"))
        config = EngineConfig(
            grid_cells=16, seed=7, budget=BudgetConfig(initial=30, delta=5, limit=300)
        )
        engine = CraqrEngine(config, world)
        handle = register_storm(engine)
        healthy = handle.view(ViewSpec(aggregate="COUNT", window=1.0), name="Healthy")
        broken = handle.view(ViewSpec(aggregate="AVG", window=1.0), name="Broken")
        # The AVG fold raises on the string-valued stream; the engine must
        # quarantine that view instead of aborting the batch.
        report = engine.run_batch()
        engine.run_batch()
        assert report.tuples_delivered > 0
        assert engine.batches_run == 2
        assert not broken.is_active()
        assert isinstance(broken.error, ViewError)
        assert "numeric" in str(broken.error)
        # The healthy view and the query session kept going.
        assert healthy.is_active() and healthy.error is None
        assert [f.tuples for f in healthy.frames()][0] > 0
        assert handle.buffer.batches_completed == 2
        # SHOW VIEWS surfaces the failure instead of listing a zombie.
        by_name = {row.name: row for row in engine.views()}
        assert by_name["Healthy"].active and by_name["Healthy"].error is None
        assert not by_name["Broken"].active
        assert "numeric" in by_name["Broken"].error
        # drop() removes the quarantined view (registry check, not the
        # maintenance flag) and is idempotent; the name becomes reusable.
        broken.drop()
        broken.drop()
        assert not engine.has_view("Broken")
        handle.view(ViewSpec(aggregate="COUNT", window=1.0), name="Broken")


class TestExecuteRoundTrip:
    def test_create_show_drop_via_statements(self):
        engine = make_engine()
        engine.execute(
            "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 20 PER KM2 PER MIN AS Storm"
        )
        view = engine.execute(
            "CREATE VIEW Wetness ON Storm AS AVG(value) GROUP BY CELL "
            "WINDOW 2 SLIDE 1"
        )
        assert isinstance(view, ViewHandle)
        assert view.name == "Wetness"
        assert view.spec.group_by == "cell" and view.spec.is_sliding
        engine.run(4)
        rows = engine.execute("SHOW VIEWS")
        assert [type(row) for row in rows] == [ViewSessionInfo]
        (row,) = rows
        assert row.name == "Wetness" and row.query_label == "Storm"
        assert row.frames_emitted == len(view.frames()) == 3
        dropped = engine.execute("DROP VIEW Wetness")
        assert dropped.name == "Wetness" and not dropped.is_active()
        assert engine.execute("SHOW VIEWS") == []

    def test_show_queries_rows_carry_view_counts_and_state(self):
        engine = make_engine()
        engine.execute(
            "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 20 PER KM2 PER MIN AS Storm"
        )
        engine.execute("CREATE VIEW W ON Storm AS COUNT(*) WINDOW 1")
        engine.run(3)
        (row,) = engine.execute("SHOW QUERIES")
        assert row.views == 1
        assert row.paused is False
        assert row.total_tuples == engine.query("Storm").buffer.total_tuples
        engine.query("Storm").pause()
        (row,) = engine.execute("SHOW QUERIES")
        assert row.paused is True

    def test_create_view_on_unknown_query_is_a_query_error(self):
        engine = make_engine()
        from repro.errors import QueryError

        with pytest.raises(QueryError, match="no registered query"):
            engine.execute("CREATE VIEW W ON Ghost AS COUNT(*) WINDOW 1")


class TestViewsSurviveSessionMutation:
    def test_alter_region_closes_vacated_cells_and_opens_new_ones(self):
        engine = make_engine()
        handle = register_storm(engine)
        view = handle.view(
            ViewSpec(aggregate="COUNT", window=2.0, group_by="cell"), name="W"
        )
        engine.run(2)
        before = view.frames()[-1]
        cells_before = set(before.keys)
        assert cells_before  # the 2x2 km query spans cells (0..1, 0..1)
        # Move the query to the opposite corner of the region.
        engine.execute("ALTER Storm SET REGION RECT(2, 2, 4, 4)")
        engine.run(2)
        after = view.frames()[-1]
        cells_after = set(after.keys)
        assert cells_after
        assert cells_before.isdisjoint(cells_after)
        assert all(q >= 2 and r >= 2 for q, r in cells_after)

    def test_pause_emits_empty_frames_and_totals_stay_exact(self):
        engine = make_engine()
        handle = register_storm(engine)
        view = handle.view(ViewSpec(aggregate="COUNT", window=1.0), name="W")
        engine.run(2)
        handle.pause()
        engine.run(3)
        handle.resume()
        engine.run(2)
        frames = view.frames()
        assert len(frames) == 7  # gap-free in sim time
        assert [f.is_empty for f in frames[2:5]] == [True, True, True]
        assert frames[5].tuples > 0 or frames[6].tuples > 0
        # Lifetime totals: every delivered tuple inside closed windows is
        # accounted exactly once (tumbling).
        closed_end = frames[-1].window_end
        delivered = [item for item in handle.results() if item.t < closed_end]
        assert view.buffer.tuples_total == len(delivered)

    def test_alter_rate_keeps_the_view_attached(self):
        engine = make_engine()
        handle = register_storm(engine)
        view = handle.view(ViewSpec(aggregate="COUNT", window=1.0), name="W")
        engine.run(1)
        engine.execute("ALTER Storm SET RATE 5")
        engine.run(1)
        assert view.is_active()
        assert len(view.frames()) == 2


class TestViewRetention:
    def test_frames_evict_with_exact_lifetime_totals(self):
        engine = make_engine(retention=4)
        handle = register_storm(engine)
        view = handle.view(ViewSpec(aggregate="COUNT", window=2.0), name="W")
        cursor = view.frame_cursor()
        raw_cursor = handle.cursor()
        seen = []
        raw = []
        for _ in range(20):
            engine.run_batch()
            seen.extend(cursor.fetch())
            raw.extend(raw_cursor.fetch())
        # 20 batches -> 10 closed windows; retention 4 batches -> 2 frames.
        assert view.buffer.frames_emitted == 10
        assert len(view.buffer) == 2
        assert view.buffer.retention_frames == 2
        # The incremental reader saw every frame despite eviction ...
        assert [f.frame_index for f in seen] == list(range(10))
        # ... and lifetime totals survive eviction exactly: every delivered
        # tuple inside a closed window is accounted once.
        assert view.buffer.tuples_total == sum(f.tuples for f in seen)
        closed_end = seen[-1].window_end
        assert view.buffer.tuples_total == sum(1 for item in raw if item.t < closed_end)

    def test_lagging_frame_cursor_raises(self):
        from repro.errors import StorageError

        engine = make_engine(retention=2)
        handle = register_storm(engine)
        view = handle.view(ViewSpec(aggregate="COUNT", window=1.0), name="W")
        lagging = view.frame_cursor()
        engine.run(6)
        with pytest.raises(StorageError, match="evicted"):
            lagging.fetch()
