"""Unit tests for the quantile sketch, the aggregate registry and ViewSpec."""

import numpy as np
import pytest

from repro.errors import ViewError
from repro.views import QuantileSketch, ViewSpec, get_aggregate, register_aggregate
from repro.views.aggregates import Aggregate


class TestQuantileSketch:
    def test_rejects_tiny_capacity(self):
        with pytest.raises(ViewError):
            QuantileSketch(1)

    def test_exact_before_compaction(self):
        sketch = QuantileSketch(64)
        values = np.array([5.0, 1.0, 9.0, 3.0, 7.0])
        sketch.extend(values)
        assert sketch.is_exact
        assert sketch.count == 5
        # Nearest-rank quantiles of {1,3,5,7,9}.
        assert sketch.quantile(0.5) == 5.0
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 9.0
        assert sketch.quantile(0.2) == 1.0
        assert sketch.quantile(0.21) == 3.0

    def test_empty_quantile_raises(self):
        with pytest.raises(ViewError):
            QuantileSketch().quantile(0.5)

    def test_bad_fraction_raises(self):
        sketch = QuantileSketch()
        sketch.extend(np.ones(3))
        with pytest.raises(ViewError):
            sketch.quantile(1.5)

    def test_compaction_bounds_memory_and_stays_deterministic(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=10_000)
        a = QuantileSketch(128)
        b = QuantileSketch(128)
        for chunk in np.split(values, 50):
            a.extend(chunk)
            b.extend(chunk)
        assert not a.is_exact
        assert a.retained <= 128
        assert a.count == 10_000
        # Deterministic: same values in the same chunks -> same answers.
        for q in (0.1, 0.5, 0.9, 0.99):
            assert a.quantile(q) == b.quantile(q)
        # And close to the exact quantile.
        assert a.quantile(0.5) == pytest.approx(np.quantile(values, 0.5), abs=0.1)

    def test_merge_matches_single_stream_when_exact(self):
        left, right, whole = QuantileSketch(), QuantileSketch(), QuantileSketch()
        first = np.arange(10.0)
        second = np.arange(100.0, 120.0)
        left.extend(first)
        right.extend(second)
        whole.extend(np.concatenate([first, second]))
        left.merge(right)
        assert left.count == whole.count
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert left.quantile(q) == whole.quantile(q)

    def test_copy_is_independent(self):
        sketch = QuantileSketch()
        sketch.extend(np.array([1.0, 2.0]))
        clone = sketch.copy()
        clone.extend(np.array([100.0]))
        assert sketch.count == 2
        assert clone.count == 3


class TestAggregateRegistry:
    def test_builtins_resolve(self):
        for name in ("COUNT", "SUM", "AVG", "MIN", "MAX", "count", "Avg"):
            assert isinstance(get_aggregate(name), Aggregate)

    def test_percentiles_resolve_dynamically(self):
        agg = get_aggregate("P95")
        state = agg.new_state()
        state = agg.fold(state, np.arange(100.0), 100)
        assert agg.result(state) == 94.0  # nearest-rank P95 of 0..99

    def test_unknown_aggregate_raises(self):
        with pytest.raises(ViewError, match="unknown aggregate"):
            get_aggregate("MEDIAN")
        with pytest.raises(ViewError):
            get_aggregate("P0")
        with pytest.raises(ViewError):
            get_aggregate("P100")

    def test_fold_merge_result_roundtrip(self):
        values = np.array([2.0, 4.0, 6.0, 8.0])
        expectations = {
            "COUNT": 4.0,
            "SUM": 20.0,
            "AVG": 5.0,
            "MIN": 2.0,
            "MAX": 8.0,
            "P50": 4.0,
        }
        for name, expected in expectations.items():
            agg = get_aggregate(name)
            # Fold in two halves, then merge — must equal one-shot folding.
            a = agg.fold(agg.new_state(), values[:2], 2)
            b = agg.fold(agg.new_state(), values[2:], 2)
            merged = agg.merge(a, b)
            assert agg.result(merged) == pytest.approx(expected), name

    def test_custom_aggregates_register(self):
        class SpreadAggregate(Aggregate):
            name = "SPREAD"

            def new_state(self):
                return (float("inf"), float("-inf"))

            def fold(self, state, values, count):
                return (min(state[0], float(values.min())),
                        max(state[1], float(values.max())))

            def merge(self, state, other):
                return (min(state[0], other[0]), max(state[1], other[1]))

            def result(self, state):
                return state[1] - state[0]

        register_aggregate("SPREAD", SpreadAggregate)
        agg = get_aggregate("spread")
        state = agg.fold(agg.new_state(), np.array([3.0, 9.0, 5.0]), 3)
        assert agg.result(state) == 6.0
        # Usable from a ViewSpec immediately.
        ViewSpec(aggregate="SPREAD", window=2.0)

    def test_register_rejects_bad_names(self):
        with pytest.raises(ViewError):
            register_aggregate("BAD NAME", Aggregate)


class TestViewSpec:
    def test_defaults_are_tumbling_region(self):
        spec = ViewSpec(aggregate="COUNT", window=4.0)
        assert spec.slide_duration == 4.0
        assert not spec.is_sliding
        assert spec.panes_per_window == 1
        assert spec.group_by == "region"

    def test_sliding_panes(self):
        spec = ViewSpec(aggregate="AVG", window=6.0, slide=2.0, group_by="cell")
        assert spec.is_sliding
        assert spec.panes_per_window == 3

    def test_rejects_bad_specs(self):
        with pytest.raises(ViewError):
            ViewSpec(aggregate="NOPE", window=2.0)
        with pytest.raises(ViewError):
            ViewSpec(aggregate="COUNT", window=0.0)
        with pytest.raises(ViewError):
            ViewSpec(aggregate="COUNT", window=2.0, slide=0.0)
        with pytest.raises(ViewError, match="must not exceed"):
            ViewSpec(aggregate="COUNT", window=2.0, slide=3.0)
        with pytest.raises(ViewError, match="whole multiple"):
            ViewSpec(aggregate="COUNT", window=5.0, slide=2.0)
        with pytest.raises(ViewError, match="unknown grouping"):
            ViewSpec(aggregate="COUNT", window=2.0, group_by="sensor")

    def test_alignment_validation(self):
        spec = ViewSpec(aggregate="COUNT", window=3.0, slide=1.0)
        assert spec.validate_alignment(1.0) == (1, 3)
        with pytest.raises(ViewError, match="batch duration"):
            spec.validate_alignment(2.0)

    def test_describe_mentions_the_clauses(self):
        text = ViewSpec(aggregate="P90", window=4.0, slide=2.0, group_by="cell").describe()
        assert "P90" in text and "GROUP BY CELL" in text
        assert "WINDOW 4" in text and "SLIDE 2" in text
