"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BudgetConfig, EngineConfig
from repro.geometry import Grid, Rectangle, RectRegion
from repro.sensing import (
    AlwaysRespond,
    BernoulliParticipation,
    RandomWaypointMobility,
    RainField,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def unit_region():
    """The unit square region."""
    return Rectangle(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def city_region():
    """A 4x4 deployment region (one unit = 1 km)."""
    return Rectangle(0.0, 0.0, 4.0, 4.0)


@pytest.fixture
def city_grid(city_region):
    """A 4x4 grid over the city region."""
    return Grid(city_region, side=4)


@pytest.fixture
def small_config():
    """A small engine configuration suitable for fast tests."""
    return EngineConfig(
        grid_cells=16,
        batch_duration=1.0,
        budget=BudgetConfig(initial=40, delta=10, limit=400, violation_threshold=5.0),
        seed=42,
    )


def make_world(
    region: Rectangle,
    *,
    sensor_count: int = 120,
    seed: int = 7,
    response_probability: float = 1.0,
) -> SensingWorld:
    """Build a small deterministic sensing world for tests."""
    if response_probability >= 1.0:
        participation_factory = lambda sensor_id: AlwaysRespond()
    else:
        participation_factory = lambda sensor_id: BernoulliParticipation(
            response_probability, mean_latency=0.05
        )
    world = SensingWorld(
        WorldConfig(region=region, sensor_count=sensor_count, seed=seed),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.3, pause=0.2),
        participation_factory=participation_factory,
    )
    world.register_field(RainField(region, band_width=region.width * 0.4, period=50.0))
    world.register_field(TemperatureField(region))
    return world


@pytest.fixture
def city_world(city_region):
    """A deterministic 4x4 world with rain and temperature fields."""
    return make_world(city_region)


@pytest.fixture
def unit_rect_region(unit_region):
    """The unit square as a Region."""
    return RectRegion(unit_region)
