"""Unit tests for the session-consumption surface of QueryResultBuffer.

Covers the resumable cursor (object and columnar reads over mixed chunk
kinds), push subscriptions, bounded retention with exact running totals,
and the eviction errors a lagging consumer must receive.
"""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import QueryResultBuffer
from repro.streams import SensorTuple, TupleBatch


def make_batch(start, count, attribute="rain"):
    ids = np.arange(start, start + count, dtype=np.int64)
    return TupleBatch(
        attribute,
        ids * 1.0,
        ids * 0.1,
        ids * 0.2,
        ids * 2.0,
        ids,
        ids,
    )


def make_tuple(tuple_id, attribute="rain"):
    return SensorTuple(
        tuple_id=tuple_id,
        attribute=attribute,
        t=float(tuple_id),
        x=0.5,
        y=0.5,
        value=float(tuple_id) * 2.0,
        sensor_id=None,
    )


def make_buffer(**kwargs):
    kwargs.setdefault("requested_rate", 10.0)
    kwargs.setdefault("region_area", 4.0)
    return QueryResultBuffer(1, **kwargs)


class TestCursorReads:
    def test_cursor_catches_up_then_reads_incrementally(self):
        buffer = make_buffer()
        buffer.extend_batch(make_batch(0, 5))
        cursor = buffer.cursor()
        assert [item.tuple_id for item in cursor.fetch()] == [0, 1, 2, 3, 4]
        assert cursor.fetch() == []
        buffer.extend_batch(make_batch(5, 3))
        assert [item.tuple_id for item in cursor.fetch()] == [5, 6, 7]

    def test_tail_cursor_skips_existing_history(self):
        buffer = make_buffer()
        buffer.extend_batch(make_batch(0, 5))
        cursor = buffer.cursor(tail=True)
        assert cursor.pending == 0
        buffer.extend_batch(make_batch(5, 2))
        assert [item.tuple_id for item in cursor.fetch()] == [5, 6]

    def test_fetch_batch_equals_fetch_objects(self):
        buffer = make_buffer()
        buffer.extend_batch(make_batch(0, 4))
        buffer.append(make_tuple(4))
        buffer.append(make_tuple(5))
        buffer.extend_batch(make_batch(6, 2))
        object_cursor = buffer.cursor()
        batch_cursor = buffer.cursor()
        via_objects = object_cursor.fetch()
        via_batch = batch_cursor.fetch_batch().to_tuples()
        assert [item.tuple_id for item in via_batch] == [
            item.tuple_id for item in via_objects
        ] == list(range(8))

    def test_fetch_batch_empty_when_nothing_pending(self):
        buffer = make_buffer()
        cursor = buffer.cursor()
        assert len(cursor.fetch_batch()) == 0
        buffer.extend_batch(make_batch(0, 2))
        cursor.fetch_batch()
        assert len(cursor.fetch_batch()) == 0

    def test_cursor_sees_appends_into_open_object_chunk(self):
        buffer = make_buffer()
        buffer.append(make_tuple(0))
        cursor = buffer.cursor()
        assert len(cursor.fetch()) == 1
        # A subsequent append extends the same list chunk; the cursor's
        # row-level position must pick it up.
        buffer.append(make_tuple(1))
        assert [item.tuple_id for item in cursor.fetch()] == [1]

    def test_cursor_iteration_drains_pending(self):
        buffer = make_buffer()
        buffer.extend_batch(make_batch(0, 3))
        cursor = buffer.cursor()
        assert [item.tuple_id for item in cursor] == [0, 1, 2]
        assert list(cursor) == []

    def test_pending_and_consumed_counters(self):
        buffer = make_buffer()
        buffer.extend_batch(make_batch(0, 4))
        cursor = buffer.cursor()
        assert cursor.pending == 4 and cursor.consumed == 0
        cursor.fetch()
        assert cursor.pending == 0 and cursor.consumed == 4

    def test_cursor_unaffected_by_items_materialisation(self):
        buffer = make_buffer()
        buffer.extend_batch(make_batch(0, 3))
        cursor = buffer.cursor()
        buffer.items()  # converts the columnar chunk to a list in place
        assert [item.tuple_id for item in cursor.fetch()] == [0, 1, 2]


class TestCursorEviction:
    def test_lagging_cursor_raises_after_retention_eviction(self):
        buffer = make_buffer(retention_batches=2)
        cursor = buffer.cursor()
        for start in range(0, 40, 10):
            buffer.extend_batch(make_batch(start, 10))
            buffer.end_batch()
        with pytest.raises(StorageError, match="evicted"):
            cursor.fetch()

    def test_cursor_within_window_survives_eviction(self):
        buffer = make_buffer(retention_batches=2)
        buffer.extend_batch(make_batch(0, 10))
        buffer.end_batch()
        cursor = buffer.cursor(tail=True)
        for start in (10, 20):
            buffer.extend_batch(make_batch(start, 10))
            buffer.end_batch()
        assert [item.tuple_id for item in cursor.fetch()] == list(range(10, 30))

    def test_fully_consumed_open_chunk_eviction_is_lossless(self):
        # Regression: a cursor that read an object-path chunk mid-batch is
        # pinned *inside* the still-open chunk; once that fully-consumed
        # chunk is evicted the cursor must resume, not report eviction.
        buffer = make_buffer(retention_batches=1)
        buffer.append(make_tuple(0))
        buffer.append(make_tuple(1))
        cursor = buffer.cursor()
        assert [item.tuple_id for item in cursor.fetch()] == [0, 1]  # mid-batch read
        buffer.end_batch()
        buffer.append(make_tuple(2))
        buffer.end_batch()  # evicts the chunk the cursor position points into
        assert [item.tuple_id for item in cursor.fetch()] == [2]
        # A cursor with genuinely unread evicted tuples still fails loudly.
        stale = make_buffer(retention_batches=1)
        stale_cursor = stale.cursor()
        for i in range(4):
            stale.append(make_tuple(i))
            stale.end_batch()
        with pytest.raises(StorageError, match="evicted"):
            stale_cursor.fetch()

    def test_capacity_trim_evicts_lagging_cursor(self):
        buffer = make_buffer(capacity=5)
        cursor = buffer.cursor()
        buffer.extend_batch(make_batch(0, 10))
        with pytest.raises(StorageError, match="evicted"):
            cursor.fetch()
        fresh = buffer.cursor()
        assert [item.tuple_id for item in fresh.fetch()] == [5, 6, 7, 8, 9]


class TestSubscriptions:
    def test_subscriber_fires_once_per_batch_with_new_tuples(self):
        buffer = make_buffer()
        received = []
        buffer.subscribe(lambda batch: received.append(batch))
        buffer.extend_batch(make_batch(0, 3))
        buffer.extend_batch(make_batch(3, 2))
        assert received == []  # nothing until the batch closes
        buffer.end_batch()
        assert len(received) == 1
        assert [t.tuple_id for t in received[0].to_tuples()] == [0, 1, 2, 3, 4]
        buffer.end_batch()  # empty batch: no callback
        assert len(received) == 1

    def test_subscriber_receives_object_path_deliveries_as_batch(self):
        buffer = make_buffer()
        received = []
        buffer.subscribe(lambda batch: received.append(batch))
        buffer.append(make_tuple(0))
        buffer.append(make_tuple(1))
        buffer.end_batch()
        assert len(received) == 1
        assert received[0].attribute == "rain"
        assert list(received[0].tuple_id) == [0, 1]

    def test_multiple_subscribers_and_cancel(self):
        buffer = make_buffer()
        first, second = [], []
        subscription = buffer.subscribe(lambda batch: first.append(len(batch)))
        buffer.subscribe(lambda batch: second.append(len(batch)))
        buffer.extend_batch(make_batch(0, 2))
        buffer.end_batch()
        assert subscription.active
        subscription.cancel()
        assert not subscription.active
        subscription.cancel()  # idempotent
        buffer.extend_batch(make_batch(2, 3))
        buffer.end_batch()
        assert first == [2]
        assert second == [2, 3]

    def test_mid_batch_subscription_sees_only_later_deliveries(self):
        buffer = make_buffer()
        buffer.extend_batch(make_batch(0, 4))
        received = []
        buffer.subscribe(lambda batch: received.append(batch))
        buffer.extend_batch(make_batch(4, 2))
        buffer.end_batch()
        assert list(received[0].tuple_id) == [4, 5]

    def test_non_callable_subscriber_rejected(self):
        with pytest.raises(StorageError):
            make_buffer().subscribe("not callable")


class TestRetentionAccounting:
    def run_batches(self, buffer, batches, per_batch=10):
        start = buffer.total_tuples
        for _ in range(batches):
            buffer.extend_batch(make_batch(start, per_batch))
            buffer.end_batch()
            start += per_batch

    def test_retained_window_is_bounded(self):
        buffer = make_buffer(retention_batches=3)
        self.run_batches(buffer, 10)
        assert len(buffer) == 30
        assert buffer.per_batch_counts == [10, 10, 10]
        assert buffer.batches_completed == 10
        assert buffer.total_tuples == 100
        assert buffer.evicted_tuples == 70

    def test_whole_history_rate_is_exact_after_eviction(self):
        buffer = make_buffer(retention_batches=3)
        self.run_batches(buffer, 10)
        estimate = buffer.rate_over_batches(2.0)
        assert estimate.tuples == 100
        assert estimate.duration == 20.0
        assert estimate.achieved_rate == pytest.approx(100 / (4.0 * 20.0))

    def test_windowed_rate_within_retention(self):
        buffer = make_buffer(retention_batches=3)
        self.run_batches(buffer, 10)
        estimate = buffer.rate_over_batches(1.0, last=2)
        assert estimate.tuples == 20

    def test_windowed_rate_beyond_retention_raises(self):
        buffer = make_buffer(retention_batches=3)
        self.run_batches(buffer, 10)
        with pytest.raises(StorageError, match="retained"):
            buffer.rate_over_batches(1.0, last=5)

    def test_window_larger_than_history_means_whole_history(self):
        # Pre-session semantics: counts[-last:] with last > len returned all.
        buffer = make_buffer(retention_batches=5)
        self.run_batches(buffer, 3)
        estimate = buffer.rate_over_batches(1.0, last=50)
        assert estimate.tuples == 30
        assert estimate.duration == 3.0

    def test_items_returns_only_retained_tuples(self):
        buffer = make_buffer(retention_batches=2)
        self.run_batches(buffer, 5)
        assert [item.tuple_id for item in buffer.items()] == list(range(30, 50))

    def test_retention_aligns_to_batches_despite_object_appends(self):
        buffer = make_buffer(retention_batches=2)
        for batch in range(4):
            for i in range(3):
                buffer.append(make_tuple(batch * 3 + i))
            buffer.end_batch()
        # Appends across end_batch must not share a chunk, or eviction
        # would split a batch; the retained window is exactly 2 batches.
        assert [item.tuple_id for item in buffer.items()] == list(range(6, 12))
        assert buffer.total_tuples == 12

    def test_retention_validation(self):
        with pytest.raises(StorageError):
            make_buffer(retention_batches=0)

    def test_requested_rate_and_area_updates(self):
        buffer = make_buffer()
        self.run_batches(buffer, 2)
        buffer.set_requested_rate(99.0)
        buffer.set_region_area(2.0)
        estimate = buffer.rate_over_batches(1.0)
        assert estimate.requested_rate == 99.0
        assert estimate.area == 2.0
        with pytest.raises(StorageError):
            buffer.set_requested_rate(0.0)
        with pytest.raises(StorageError):
            buffer.set_region_area(-1.0)
