"""Cursor-offset round-trips: token-rebuilt cursors fetch byte-identically.

Satellite of the serving layer: an offset token minted from a cursor must
rebuild a cursor whose fetches are byte-identical (through the wire
codec) to the fetches the original cursor would have made — including
when the token crosses an engine checkpoint/restore, and failing with
:class:`~repro.errors.StorageError` (not hanging, not silently skipping)
when the token lags past retention.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

import repro.core.query as _query_module
from repro.config import CheckpointConfig
from repro.core import CraqrEngine
from repro.core.query import QueryIdAllocator
from repro.errors import StorageError
from repro.geometry import Rectangle
from repro.sensing import (
    AlwaysRespond,
    RainField,
    RandomWaypointMobility,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)
from repro.serve.tokens import (
    frame_cursor_from_token,
    frame_token,
    result_cursor_from_token,
    result_token,
)
from repro.streams.codec import encode_tuple_batch, encode_view_frame
from repro.workloads import default_engine_config

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)
QUERY = "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 8 PER KM2 PER MIN AS Storm"
VIEW = "CREATE VIEW Rain ON Storm AS AVG(value) GROUP BY CELL WINDOW 2"


def make_engine(*, checkpoint_dir=None, retention_batches=None, view=True):
    _query_module._query_ids = QueryIdAllocator()
    config = default_engine_config(retention_batches=retention_batches)
    if checkpoint_dir is not None:
        config = replace(
            config, checkpoints=CheckpointConfig(directory=str(checkpoint_dir), every=2)
        )
    world = SensingWorld(
        WorldConfig(region=REGION, sensor_count=80, seed=11),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.25, pause=0.5),
        participation_factory=lambda sensor_id: AlwaysRespond(),
    )
    world.register_field(RainField(REGION, band_width=1.2, period=60.0))
    world.register_field(TemperatureField(REGION))
    engine = CraqrEngine(config, world)
    engine.execute(QUERY)
    if view:
        engine.execute(VIEW)
    return engine


class TestResultCursorTokens:
    def test_two_step_fetch_equals_straight_through(self):
        engine = make_engine(view=False)
        engine.run(4)
        cursor = engine.query("Storm").buffer.cursor()
        first = cursor.fetch_batch()
        token = result_token(cursor)
        engine.run(3)

        rest = result_cursor_from_token(
            engine.query("Storm").buffer, token
        ).fetch_batch()
        whole = engine.query("Storm").buffer.cursor().fetch_batch()
        for name in ("t", "x", "y", "value", "sensor_id", "tuple_id"):
            np.testing.assert_array_equal(
                np.concatenate([getattr(first, name), getattr(rest, name)]),
                getattr(whole, name),
            )

    def test_rebuilt_and_original_cursor_fetch_identical_bytes(self):
        engine = make_engine(view=False)
        engine.run(2)
        original = engine.query("Storm").buffer.cursor()
        original.fetch_batch()
        token = result_token(original)
        engine.run(2)

        rebuilt = result_cursor_from_token(engine.query("Storm").buffer, token)
        assert encode_tuple_batch(rebuilt.fetch_batch()) == encode_tuple_batch(
            original.fetch_batch()
        )
        # Both now sit at the same frontier and mint the same token.
        assert result_token(rebuilt) == result_token(original)

    def test_token_survives_checkpoint_restore(self, tmp_path):
        engine = make_engine(checkpoint_dir=tmp_path, view=False)
        engine.run(2)
        cursor = engine.query("Storm").buffer.cursor()
        cursor.fetch_batch()
        token = result_token(cursor)
        engine.run(4)  # checkpoints fire at batches 2, 4, 6
        expected = encode_tuple_batch(
            result_cursor_from_token(engine.query("Storm").buffer, token).fetch_batch()
        )

        _query_module._query_ids = QueryIdAllocator()
        restored = CraqrEngine.restore_latest(tmp_path)
        assert restored.batches_run == 6
        got = encode_tuple_batch(
            result_cursor_from_token(
                restored.query("Storm").buffer, token
            ).fetch_batch()
        )
        assert got == expected  # byte-identical across the restore

    def test_token_past_retention_raises_storage_error(self):
        engine = make_engine(retention_batches=2, view=False)
        engine.run(1)
        cursor = engine.query("Storm").buffer.cursor()
        token = result_token(cursor)
        engine.run(8)
        with pytest.raises(StorageError, match="open a fresh"):
            result_cursor_from_token(engine.query("Storm").buffer, token).fetch_batch()


class TestFrameCursorTokens:
    def test_two_step_fetch_equals_straight_through(self):
        engine = make_engine()
        engine.run(4)  # frames 0, 1
        cursor = engine.view("Rain").buffer.cursor()
        first = cursor.fetch()
        token = frame_token(cursor)
        engine.run(4)  # frames 2, 3

        rest = frame_cursor_from_token(engine.view("Rain").buffer, token).fetch()
        whole = engine.view("Rain").buffer.cursor().fetch()
        assert [encode_view_frame(f) for f in first + rest] == [
            encode_view_frame(f) for f in whole
        ]

    def test_token_survives_checkpoint_restore(self, tmp_path):
        engine = make_engine(checkpoint_dir=tmp_path)
        engine.run(4)
        cursor = engine.view("Rain").buffer.cursor()
        consumed = cursor.fetch()
        assert [f.frame_index for f in consumed] == [0, 1]
        token = frame_token(cursor)
        engine.run(2)  # frame 2; checkpoint at batch 6
        expected = [
            encode_view_frame(f)
            for f in frame_cursor_from_token(engine.view("Rain").buffer, token).fetch()
        ]

        _query_module._query_ids = QueryIdAllocator()
        restored = CraqrEngine.restore_latest(tmp_path)
        got = [
            encode_view_frame(f)
            for f in frame_cursor_from_token(
                restored.view("Rain").buffer, token
            ).fetch()
        ]
        assert got == expected
        assert [  # and the restored engine keeps emitting past the token
            f.frame_index for f in restored.view("Rain").frames()
        ] == [0, 1, 2]

    def test_token_past_retention_raises_storage_error(self):
        from repro.serve.tokens import frame_token_at
        from repro.views.frames import ViewFrame, ViewFrameBuffer

        buffer = ViewFrameBuffer(retention_frames=2)
        for i in range(6):
            keys = np.empty(1, dtype=object)
            keys[:] = [(0, i)]
            buffer.append(
                ViewFrame(
                    frame_index=i,
                    window_start=2.0 * i,
                    window_end=2.0 * i + 2.0,
                    keys=keys,
                    values=np.array([float(i)]),
                    counts=np.array([1], dtype=np.int64),
                )
            )
        stale = frame_token_at(1)  # frames 0..3 are gone
        with pytest.raises(StorageError, match="open a fresh"):
            frame_cursor_from_token(buffer, stale).fetch()
