"""Unit tests for the storage substrate (stores, buffers, index)."""

import pytest

from repro.errors import StorageError
from repro.geometry import Rectangle
from repro.storage import (
    DiscardedStore,
    QueryResultBuffer,
    SpatioTemporalIndex,
    TupleStore,
)
from repro.streams import SensorTuple

REGION = Rectangle(0, 0, 4, 4)


def make_tuple(tuple_id=0, attribute="rain", t=0.0, x=0.5, y=0.5, value=None):
    return SensorTuple(tuple_id=tuple_id, attribute=attribute, t=t, x=x, y=y, value=value)


class TestSpatioTemporalIndex:
    def test_insert_and_query(self):
        index = SpatioTemporalIndex(REGION, nx=4, ny=4)
        index.insert(make_tuple(x=0.5, y=0.5))
        index.insert(make_tuple(x=3.5, y=3.5))
        hits = index.query(Rectangle(0, 0, 1, 1))
        assert len(hits) == 1
        assert index.count == 2

    def test_query_filters_by_time_and_attribute(self):
        index = SpatioTemporalIndex(REGION)
        index.insert(make_tuple(t=1.0, attribute="rain"))
        index.insert(make_tuple(t=5.0, attribute="temp"))
        assert len(index.query(Rectangle(0, 0, 4, 4), t_start=0.0, t_end=2.0)) == 1
        assert len(index.query(Rectangle(0, 0, 4, 4), attribute="temp")) == 1

    def test_results_sorted_by_time(self):
        index = SpatioTemporalIndex(REGION)
        index.insert(make_tuple(t=3.0))
        index.insert(make_tuple(t=1.0))
        times = [item.t for item in index.query(Rectangle(0, 0, 4, 4))]
        assert times == [1.0, 3.0]

    def test_invalid_grid(self):
        with pytest.raises(StorageError):
            SpatioTemporalIndex(REGION, nx=0)

    def test_clear(self):
        index = SpatioTemporalIndex(REGION)
        index.insert_many([make_tuple(tuple_id=i) for i in range(3)])
        index.clear()
        assert index.count == 0
        assert index.query(Rectangle(0, 0, 4, 4)) == []


class TestTupleStore:
    def test_insert_and_len(self):
        store = TupleStore()
        store.insert_many([make_tuple(tuple_id=i) for i in range(5)])
        assert len(store) == 5
        assert store.stats().inserted_total == 5

    def test_capacity_evicts_fifo(self):
        store = TupleStore(capacity=3)
        for i in range(5):
            store.insert(make_tuple(tuple_id=i, t=float(i)))
        assert len(store) == 3
        assert [item.tuple_id for item in store.all()] == [2, 3, 4]
        assert store.stats().evicted_total == 2

    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            TupleStore(capacity=0)

    def test_attribute_and_time_filters(self):
        store = TupleStore()
        store.insert(make_tuple(attribute="rain", t=1.0))
        store.insert(make_tuple(attribute="temp", t=2.0))
        assert len(store.for_attribute("rain")) == 1
        assert len(store.in_time_window(1.5, 3.0)) == 1
        with pytest.raises(StorageError):
            store.in_time_window(3.0, 1.0)

    def test_in_rectangle_without_index(self):
        store = TupleStore()
        store.insert(make_tuple(x=0.5, y=0.5))
        store.insert(make_tuple(x=3.5, y=3.5))
        assert len(store.in_rectangle(Rectangle(0, 0, 1, 1))) == 1

    def test_in_rectangle_with_index(self):
        store = TupleStore(region=REGION)
        store.insert(make_tuple(x=0.5, y=0.5, attribute="rain"))
        store.insert(make_tuple(x=3.5, y=3.5, attribute="temp"))
        hits = store.in_rectangle(Rectangle(0, 0, 1, 1))
        assert len(hits) == 1
        assert hits[0].attribute == "rain"

    def test_clear_keeps_statistics(self):
        store = TupleStore()
        store.insert(make_tuple())
        store.clear()
        assert len(store) == 0
        assert store.stats().inserted_total == 1

    def test_stats_attributes(self):
        store = TupleStore()
        store.insert(make_tuple(attribute="rain"))
        store.insert(make_tuple(attribute="temp"))
        assert store.stats().attributes == ("rain", "temp")


class TestQueryResultBuffer:
    def make_buffer(self, rate=10.0, area=4.0, capacity=None):
        return QueryResultBuffer(1, requested_rate=rate, region_area=area, capacity=capacity)

    def test_validation(self):
        with pytest.raises(StorageError):
            QueryResultBuffer(1, requested_rate=0.0, region_area=1.0)
        with pytest.raises(StorageError):
            QueryResultBuffer(1, requested_rate=1.0, region_area=0.0)
        with pytest.raises(StorageError):
            QueryResultBuffer(1, requested_rate=1.0, region_area=1.0, capacity=0)

    def test_append_and_batches(self):
        buffer = self.make_buffer()
        for i in range(5):
            buffer.append(make_tuple(tuple_id=i))
        assert buffer.end_batch() == 5
        buffer.append(make_tuple(tuple_id=6))
        assert buffer.end_batch() == 1
        assert buffer.per_batch_counts == [5, 1]
        assert buffer.total_tuples == 6

    def test_capacity_truncates_retained_items(self):
        buffer = self.make_buffer(capacity=3)
        for i in range(10):
            buffer.append(make_tuple(tuple_id=i))
        assert len(buffer) == 3
        assert buffer.total_tuples == 10

    def test_rate_over(self):
        buffer = self.make_buffer(rate=10.0, area=2.0)
        for i in range(40):
            buffer.append(make_tuple(tuple_id=i))
        estimate = buffer.rate_over(2.0)
        assert estimate.achieved_rate == pytest.approx(10.0)
        assert estimate.relative_error == pytest.approx(0.0)

    def test_rate_over_batches(self):
        buffer = self.make_buffer(rate=5.0, area=1.0)
        for batch in range(4):
            for i in range(5):
                buffer.append(make_tuple(tuple_id=batch * 10 + i))
            buffer.end_batch()
        estimate = buffer.rate_over_batches(1.0)
        assert estimate.achieved_rate == pytest.approx(5.0)
        last_two = buffer.rate_over_batches(1.0, last=2)
        assert last_two.tuples == 10

    def test_rate_over_batches_requires_history(self):
        with pytest.raises(StorageError):
            self.make_buffer().rate_over_batches(1.0)

    def test_rate_over_batches_rejects_non_positive_last(self):
        # Regression: last=0 used to slice [-0:] — the whole history — and
        # silently report the lifetime rate instead of a recent window.
        buffer = self.make_buffer(rate=5.0, area=1.0)
        for i in range(5):
            buffer.append(make_tuple(tuple_id=i))
        buffer.end_batch()
        with pytest.raises(StorageError):
            buffer.rate_over_batches(1.0, last=0)
        with pytest.raises(StorageError):
            buffer.rate_over_batches(1.0, last=-2)

    def test_values_and_event_batch(self):
        buffer = self.make_buffer()
        buffer.append(make_tuple(value=1.5, t=1.0))
        buffer.append(make_tuple(value=2.5, t=2.0))
        assert buffer.values() == [1.5, 2.5]
        assert len(buffer.to_event_batch()) == 2


class TestDiscardedStore:
    def test_record_and_counts(self):
        store = DiscardedStore()
        store.record("F:rain", make_tuple())
        store.record("F:rain", make_tuple(tuple_id=2))
        store.record("T:temp", make_tuple(tuple_id=3))
        assert store.total_discarded == 3
        assert store.counts() == {"F:rain": 2, "T:temp": 1}
        assert set(store.operators) == {"F:rain", "T:temp"}

    def test_subscriber_callback(self):
        store = DiscardedStore()
        callback = store.subscriber_for("F:rain")
        callback(make_tuple())
        assert store.counts()["F:rain"] == 1

    def test_capacity_per_operator(self):
        store = DiscardedStore(capacity_per_operator=2)
        for i in range(5):
            store.record("op", make_tuple(tuple_id=i))
        assert len(store.for_operator("op")) == 2
        assert store.total_discarded == 5

    def test_validation(self):
        with pytest.raises(StorageError):
            DiscardedStore(capacity_per_operator=0)
        with pytest.raises(StorageError):
            DiscardedStore().record("", make_tuple())

    def test_unknown_operator_returns_empty(self):
        assert DiscardedStore().for_operator("missing") == []
