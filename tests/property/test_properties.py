"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.pmat import PartitionOperator, ThinOperator
from repro.geometry import Grid, Rectangle, RectRegion, union_regions
from repro.pointprocess import EventBatch, flatten_events, thin_events
from repro.pointprocess.intensity import ConstantIntensity, LinearIntensity
from repro.streams import CollectingSink, SensorTuple

# ----------------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------------

coordinates = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
positive_extent = st.floats(min_value=0.1, max_value=50.0, allow_nan=False, allow_infinity=False)


@st.composite
def rectangles(draw):
    x_min = draw(coordinates)
    y_min = draw(coordinates)
    width = draw(positive_extent)
    height = draw(positive_extent)
    return Rectangle(x_min, y_min, x_min + width, y_min + height)


@st.composite
def event_batches(draw, max_events=60):
    count = draw(st.integers(min_value=0, max_value=max_events))
    rows = [
        (
            draw(st.floats(min_value=0.0, max_value=10.0)),
            draw(st.floats(min_value=0.0, max_value=1.0)),
            draw(st.floats(min_value=0.0, max_value=1.0)),
        )
        for _ in range(count)
    ]
    return EventBatch.from_rows(rows)


# ----------------------------------------------------------------------------
# Geometry properties
# ----------------------------------------------------------------------------


class TestRectangleProperties:
    @given(rectangles())
    def test_area_is_positive(self, rect):
        assert rect.area > 0.0

    @given(rectangles())
    def test_center_is_inside(self, rect):
        assert rect.contains_point(rect.center)

    @given(rectangles(), rectangles())
    def test_overlap_is_symmetric_and_bounded(self, a, b):
        overlap_ab = a.overlap_area(b)
        overlap_ba = b.overlap_area(a)
        assert abs(overlap_ab - overlap_ba) < 1e-6 * max(1.0, overlap_ab)
        assert overlap_ab <= min(a.area, b.area) + 1e-9

    @given(rectangles(), rectangles())
    def test_intersection_contained_in_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_rectangle(overlap)
            assert b.contains_rectangle(overlap)

    @given(rectangles(), st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    def test_subdivision_preserves_area(self, rect, nx, ny):
        cells = rect.subdivide(nx, ny)
        assert len(cells) == nx * ny
        assert abs(sum(c.area for c in cells) - rect.area) < 1e-6 * rect.area

    @given(rectangles(), st.integers(min_value=1, max_value=6))
    def test_grid_cells_tile_region(self, rect, side):
        grid = Grid(rect, side)
        assert abs(grid.total_cell_area() - rect.area) < 1e-6 * rect.area
        # Every cell centre maps back to its own cell.
        for cell in grid.cells():
            located = grid.locate(cell.rect.center.x, cell.rect.center.y)
            assert located.key == cell.key

    @given(rectangles(), st.integers(min_value=1, max_value=4))
    def test_union_of_grid_cells_recovers_region_area(self, rect, side):
        grid = Grid(rect, side)
        merged = union_regions([cell.region for cell in grid.cells()])
        assert abs(merged.area - rect.area) < 1e-6 * rect.area


# ----------------------------------------------------------------------------
# Thinning / flattening properties
# ----------------------------------------------------------------------------


class TestThinningProperties:
    @given(event_batches(), st.floats(min_value=0.05, max_value=1.0), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_thinning_partitions_the_batch(self, batch, probability, seed):
        result = thin_events(batch, probability, rng=np.random.default_rng(seed))
        assert result.retained_count + result.discarded_count == len(batch)
        assert result.retained_count == int(result.keep_mask.sum())

    @given(event_batches(max_events=40), st.floats(min_value=1.0, max_value=50.0), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_flatten_probabilities_are_valid(self, batch, target, seed):
        intensity = ConstantIntensity(5.0)
        result = flatten_events(batch, intensity, target, rng=np.random.default_rng(seed))
        assert np.all(result.retain_probability >= 0.0)
        assert np.all(result.retain_probability <= 1.0 + 1e-12)
        assert 0.0 <= result.violation_percent <= 100.0
        assert 0.0 <= result.shortfall_percent <= 100.0
        assert result.retained_count + result.discarded_count == len(batch)

    @given(event_batches(max_events=40), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_flatten_expected_count_never_exceeds_batch(self, batch, seed):
        intensity = LinearIntensity(2.0, 0.1, 3.0, 1.0)
        result = flatten_events(batch, intensity, 10.0, rng=np.random.default_rng(seed))
        assert result.retained_count <= len(batch)


# ----------------------------------------------------------------------------
# Operator properties
# ----------------------------------------------------------------------------


def tuples_from_batch(batch):
    return [
        SensorTuple(tuple_id=i, attribute="rain", t=float(t), x=float(x), y=float(y))
        for i, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y))
    ]


class TestOperatorProperties:
    @given(
        event_batches(max_events=50),
        st.floats(min_value=1.0, max_value=99.0),
        st.integers(0, 2 ** 31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_thin_operator_conserves_tuples(self, batch, rate_out, seed):
        op = ThinOperator(100.0, rate_out, rng=np.random.default_rng(seed))
        sink = CollectingSink().attach(op.output)
        for item in tuples_from_batch(batch):
            op.accept(item)
        assert len(sink) + op.dropped == len(batch)

    @given(event_batches(max_events=50), st.integers(1, 3), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_partition_operator_conserves_and_separates(self, batch, parts, seed):
        cell = Rectangle(0.0, 0.0, 1.0, 1.0)
        regions = [RectRegion(r) for r in cell.subdivide(parts, 1)]
        op = PartitionOperator(regions, rng=np.random.default_rng(seed))
        sinks = [CollectingSink().attach(op.output_for(i)) for i in range(len(regions))]
        items = tuples_from_batch(batch)
        for item in items:
            op.accept(item)
        routed = sum(len(sink) for sink in sinks)
        assert routed + op.dropped == len(items)
        for region, sink in zip(regions, sinks):
            for item in sink.items:
                assert region.contains(item.x, item.y)
