"""Property-based tests for the query DSL, rate conversions and storage."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import AcquisitionalQuery, RateSpec
from repro.query import parse_query
from repro.storage import QueryResultBuffer, TupleStore
from repro.streams import SensorTuple

finite_coord = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False)
positive_extent = st.floats(min_value=0.5, max_value=20.0, allow_nan=False, allow_infinity=False)
rates = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False, allow_infinity=False)
attributes = st.sampled_from(["rain", "temp", "noise", "co2"])


@st.composite
def query_statements(draw):
    """A random ACQUIRE statement together with its expected components."""
    attribute = draw(attributes)
    x_min = draw(finite_coord)
    y_min = draw(finite_coord)
    width = draw(positive_extent)
    height = draw(positive_extent)
    rate = draw(rates)
    area_unit = draw(st.sampled_from(["KM2", "M2", "UNIT2"]))
    time_unit = draw(st.sampled_from(["MIN", "SEC", "HOUR", "UNIT"]))
    text = (
        f"ACQUIRE {attribute} FROM RECT({x_min}, {y_min}, {x_min + width}, {y_min + height}) "
        f"AT RATE {rate} PER {area_unit} PER {time_unit}"
    )
    return text, attribute, (x_min, y_min, x_min + width, y_min + height), rate, area_unit, time_unit


class TestQueryLanguageProperties:
    @given(query_statements())
    @settings(max_examples=80, deadline=None)
    def test_parse_round_trip(self, case):
        text, attribute, bounds, rate, area_unit, time_unit = case
        parsed = parse_query(text)
        assert parsed.attribute == attribute
        assert parsed.rate_value == rate
        query = parsed.to_query()
        assert isinstance(query, AcquisitionalQuery)
        bbox = query.region.bounding_box
        assert bbox.x_min == bounds[0]
        assert bbox.y_max == bounds[3]
        # The converted rate agrees with an independently built RateSpec.
        expected = RateSpec(rate, area_unit=area_unit.lower(), time_unit=time_unit.lower())
        assert abs(query.rate - expected.per_unit) <= 1e-9 * max(1.0, expected.per_unit)

    @given(rates)
    @settings(max_examples=50, deadline=None)
    def test_rate_unit_consistency(self, value):
        per_min = RateSpec(value, area_unit="km2", time_unit="min").per_unit
        per_hour = RateSpec(value * 60.0, area_unit="km2", time_unit="hour").per_unit
        per_sec = RateSpec(value / 60.0, area_unit="km2", time_unit="sec").per_unit
        assert abs(per_min - per_hour) < 1e-6 * max(per_min, 1.0)
        assert abs(per_min - per_sec) < 1e-6 * max(per_min, 1.0)


def make_tuples(count):
    return [
        SensorTuple(tuple_id=i, attribute="rain", t=float(i), x=0.0, y=0.0)
        for i in range(count)
    ]


class TestStorageProperties:
    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=120))
    @settings(max_examples=60, deadline=None)
    def test_tuple_store_capacity_invariant(self, capacity, inserts):
        store = TupleStore(capacity=capacity)
        store.insert_many(make_tuples(inserts))
        assert len(store) == min(capacity, inserts)
        stats = store.stats()
        assert stats.inserted_total == inserts
        assert stats.evicted_total == max(0, inserts - capacity)
        # The retained tuples are always the most recent ones, oldest first.
        retained_ids = [item.tuple_id for item in store.all()]
        assert retained_ids == list(range(max(0, inserts - capacity), inserts))

    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=10),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_result_buffer_rate_accounting(self, batch_counts, area, requested):
        buffer = QueryResultBuffer(1, requested_rate=requested, region_area=area)
        tuple_id = 0
        for count in batch_counts:
            for _ in range(count):
                buffer.append(
                    SensorTuple(tuple_id=tuple_id, attribute="rain", t=0.0, x=0.0, y=0.0)
                )
                tuple_id += 1
            buffer.end_batch()
        assert buffer.per_batch_counts == batch_counts
        estimate = buffer.rate_over_batches(1.0)
        expected_rate = sum(batch_counts) / (area * len(batch_counts))
        assert np.isclose(estimate.achieved_rate, expected_rate)
        assert estimate.tuples == sum(batch_counts)
