"""Unit tests for workload and scenario generators."""

import pytest

from repro.errors import WorkloadError
from repro.geometry import Grid, Rectangle, RectRegion
from repro.workloads import (
    build_hotspot_world,
    build_rain_temperature_world,
    build_uniform_world,
    default_engine_config,
    fig2_queries,
    overlapping_query_workload,
    random_query_workload,
    synthetic_homogeneous_batch,
    synthetic_inhomogeneous_batch,
)
from repro.workloads.generators import synthetic_hotspot_batch
from repro.workloads.scenarios import hotspot_scenario, rain_temperature_scenario

GRID = Grid(Rectangle(0, 0, 4, 4), side=4)


class TestQueryWorkloads:
    def test_random_workload_size_and_validity(self):
        queries = random_query_workload(GRID, 20, seed=1)
        assert len(queries) == 20
        for query in queries:
            query.validate_against(GRID.region, GRID.cell_area)
            assert query.attribute in ("rain", "temp")
            assert 5.0 <= query.rate <= 50.0

    def test_random_workload_reproducible(self):
        a = random_query_workload(GRID, 5, seed=3)
        b = random_query_workload(GRID, 5, seed=3)
        assert [(q.attribute, q.rate) for q in a] == [(q.attribute, q.rate) for q in b]

    def test_random_workload_validation(self):
        with pytest.raises(WorkloadError):
            random_query_workload(GRID, 0)
        with pytest.raises(WorkloadError):
            random_query_workload(GRID, 3, attributes=())
        with pytest.raises(WorkloadError):
            random_query_workload(GRID, 3, rate_range=(5.0, 1.0))
        with pytest.raises(WorkloadError):
            random_query_workload(GRID, 3, max_cells_per_side=9)

    def test_overlapping_workload_shares_region(self):
        queries = overlapping_query_workload(GRID, 6, seed=2)
        regions = {tuple(q.region.bounding_box.corners()[0].as_tuple()) for q in queries}
        assert len(regions) == 1
        assert all(q.attribute == "rain" for q in queries)

    def test_overlapping_workload_validation(self):
        with pytest.raises(WorkloadError):
            overlapping_query_workload(GRID, 0)
        with pytest.raises(WorkloadError):
            overlapping_query_workload(GRID, 2, overlap_cells=10)

    def test_fig2_queries_layout(self):
        grid = Grid(Rectangle(0, 0, 3, 3), side=3)
        q1, q2, q3 = fig2_queries(grid)
        assert (q1.attribute, q2.attribute, q3.attribute) == ("rain", "temp", "temp")
        assert q1.rate > q2.rate > q3.rate
        # Q1 covers four whole cells, Q2 one whole cell, Q3 straddles two.
        assert len(grid.overlapping_cells(q1.region)) == 4
        assert len(grid.overlapping_cells(q2.region)) == 1
        assert len(grid.overlapping_cells(q3.region)) == 2

    def test_fig2_requires_large_enough_grid(self):
        with pytest.raises(WorkloadError):
            fig2_queries(Grid(Rectangle(0, 0, 2, 2), side=2))


class TestSyntheticBatches:
    def test_homogeneous_batch(self):
        region = Rectangle(0, 0, 1, 1)
        batch = synthetic_homogeneous_batch(100.0, region, 2.0, seed=1)
        assert len(batch) > 100
        with pytest.raises(WorkloadError):
            synthetic_homogeneous_batch(0.0, region, 1.0)

    def test_inhomogeneous_batch_returns_truth(self):
        region = Rectangle(0, 0, 1, 1)
        batch, intensity = synthetic_inhomogeneous_batch(region, 1.0, seed=2)
        assert len(batch) > 0
        assert intensity.theta[0] == 20.0
        with pytest.raises(WorkloadError):
            synthetic_inhomogeneous_batch(region, 0.0)

    def test_hotspot_batch(self):
        region = Rectangle(0, 0, 1, 1)
        batch, intensity = synthetic_hotspot_batch(region, 1.0, seed=3)
        assert len(batch) > 0
        assert intensity.max_rate(region, 0.0, 1.0) > intensity.baseline


class TestScenarios:
    def test_default_engine_config_valid(self):
        config = default_engine_config()
        assert config.grid_side == 4
        assert config.budget.floor <= config.budget.initial

    def test_rain_temperature_world_attributes(self):
        world = build_rain_temperature_world(sensor_count=50, seed=1)
        assert set(world.attributes) == {"rain", "temp"}
        assert len(world.sensors) == 50

    def test_uniform_world(self):
        world = build_uniform_world(sensor_count=30, seed=2)
        assert set(world.attributes) == {"rain", "temp"}

    def test_hotspot_world_is_skewed(self):
        world = build_hotspot_world(sensor_count=200, seed=3)
        world.advance(20.0)
        counts = world.density_snapshot(4, 4).astype(float)
        mean = counts.mean()
        assert counts.max() > 2.5 * mean

    def test_scenario_bundles(self):
        scenario = rain_temperature_scenario(sensor_count=40, seed=4)
        assert scenario.world.config.sensor_count == 40
        assert scenario.config.grid_cells == 16
        hotspot = hotspot_scenario(sensor_count=40, seed=5)
        assert "hotspot" in hotspot.name
