"""Acceptance regression for the crash-recovery scenario.

The ``crash-recovery`` workload is the flaky crowd running under periodic
crash-consistent checkpoints.  The acceptance bar: kill the engine
mid-run, restore from the last good checkpoint, replay — the replayed run
delivers exactly the same per-batch stream as an uninterrupted run of the
same seeded scenario, pinned below as a constant so any nondeterminism
(or an unintended behaviour change in the acquisition stack) fails
loudly.
"""

import pytest

from repro.core import CraqrEngine
from repro.faults import CrashInjector, CrashPoint, SimulatedCrash
from repro.workloads import crash_recovery_scenario

QUERY = "ACQUIRE rain FROM RECT(0,0,3,3) AT RATE 8 PER KM2 PER MIN AS Storm"
VIEW = "CREATE VIEW Rain ON Storm AS AVG(value) GROUP BY CELL WINDOW 2"
BATCHES = 12
CRASH_AT = 7  # mid-run, past two checkpoints (every=2 → 2, 4, 6 on disk)

#: Lifetime deliveries of the uninterrupted 12-batch reference run —
#: pinned so the scenario itself stays deterministic across PRs.
EXPECTED_DELIVERED = 842

SENSORS = 150  # smaller than the demo scenario's 300: CI-friendly


def build_engine(checkpoint_dir=None):
    # The scenario requires a directory; the reference run strips the
    # checkpoint config entirely, so its placeholder is never touched.
    scenario = crash_recovery_scenario(
        checkpoint_dir="unused" if checkpoint_dir is None else str(checkpoint_dir),
        sensor_count=SENSORS,
    )
    config = scenario.config
    if checkpoint_dir is None:
        from dataclasses import replace

        config = replace(config, checkpoints=None)
    engine = CraqrEngine(config, scenario.world)
    engine.execute(QUERY)
    engine.execute(VIEW)
    return engine


def delivered_trace(engine):
    return [r.tuples_delivered for r in engine.reports]


class TestCrashRecoveryScenario:
    def test_replay_after_crash_matches_uninterrupted_run(self, tmp_path):
        reference = build_engine()
        for _ in range(BATCHES):
            reference.run_batch()
        assert reference.total_tuples_delivered() == EXPECTED_DELIVERED

        crashed = build_engine(tmp_path)
        crashed.arm_crash(CrashInjector(CrashPoint.POST_MERGE, at_batch=CRASH_AT))
        with pytest.raises(SimulatedCrash):
            while True:
                crashed.run_batch()
        assert crashed.batches_run == CRASH_AT
        del crashed

        restored = CraqrEngine.restore_latest(tmp_path)
        assert restored.batches_run == 6  # newest checkpoint before the crash
        while restored.batches_run < BATCHES:
            restored.run_batch()

        assert restored.total_tuples_delivered() == EXPECTED_DELIVERED
        assert delivered_trace(restored) == delivered_trace(reference)
        ref_frames = reference.view("Rain").frames()
        res_frames = restored.view("Rain").frames()
        assert [f.values.tobytes() for f in res_frames] == [
            f.values.tobytes() for f in ref_frames
        ]

    def test_scenario_is_configured_for_recovery(self, tmp_path):
        scenario = crash_recovery_scenario(checkpoint_dir=str(tmp_path))
        assert scenario.name == "crash-recovery"
        assert scenario.config.checkpoints is not None
        assert scenario.config.checkpoints.every == 2
        assert scenario.config.checkpoints.retain == 3
        assert scenario.config.faults is not None
        assert scenario.config.resilience is not None
