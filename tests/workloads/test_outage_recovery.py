"""End-to-end degradation and recovery acceptance for the fault scenarios.

The headline regression: under ``cell_outage_scenario`` the mitigation
stack (deadline + retries + quarantine with probation + degradation-aware
budget freezing) recovers at least 90% of the pre-outage delivered rate
within a few batches of the outage ending, while the mitigation-disabled
baseline — identical faults, but permanent quarantine — never recovers at
all.  The shortfall during the outage must be *fault-attributed* in
``violations()``, not mistaken for planner error.
"""

import pytest

from repro.core import CraqrEngine
from repro.workloads import cell_outage_scenario, flaky_crowd_scenario

OUTAGE_QUERY = "ACQUIRE temp FROM RECT(0,0,2,2) AT RATE 10 PER KM2 PER MIN AS Quad"
#: Outage window in batches (duration 1.0 each): dark during [4, 10).
OUTAGE_START_BATCH = 4
OUTAGE_END_BATCH = 10
RECOVERY_DEADLINE_BATCH = 13  # within 3 batches of the lights coming back


def run_outage(*, mitigation, batches=24):
    scenario = cell_outage_scenario(mitigation=mitigation)
    engine = CraqrEngine(scenario.config, scenario.world)
    engine.execute(OUTAGE_QUERY)
    delivered = []
    for _ in range(batches):
        report = engine.run_batch()
        delivered.append(report.tuples_delivered)
    return engine, delivered


class TestCellOutageRecovery:
    def test_mitigated_engine_recovers_after_the_outage(self):
        engine, delivered = run_outage(mitigation=True)
        baseline = sum(delivered[:OUTAGE_START_BATCH - 1]) / (OUTAGE_START_BATCH - 1)
        assert baseline > 0
        # The outage actually bites: the dark quadrant serves the whole
        # query region, so deliveries collapse while it lasts.
        mid_outage = delivered[OUTAGE_START_BATCH + 1 : OUTAGE_END_BATCH]
        assert max(mid_outage) < 0.25 * baseline
        # ... and recovery reaches >= 90% of the pre-outage rate within
        # three batches of the outage ending.
        recovery_window = delivered[OUTAGE_END_BATCH:RECOVERY_DEADLINE_BATCH]
        assert max(recovery_window) >= 0.9 * baseline
        # Once recovered, it stays recovered.
        tail = delivered[RECOVERY_DEADLINE_BATCH:]
        assert sum(tail) / len(tail) >= 0.75 * baseline

    def test_disabled_mitigation_never_recovers(self):
        engine, delivered = run_outage(mitigation=False)
        baseline = sum(delivered[:OUTAGE_START_BATCH - 1]) / (OUTAGE_START_BATCH - 1)
        assert baseline > 0
        # Permanent quarantine: every stationary sensor that failed during
        # the outage is gone for good, so nothing is delivered again.
        assert sum(delivered[OUTAGE_END_BATCH:]) == 0
        summary = engine.health_monitor.summary()
        assert summary.quarantined > 0
        assert summary.released == 0

    def test_outage_shortfall_is_fault_attributed(self):
        scenario = cell_outage_scenario(mitigation=True)
        engine = CraqrEngine(scenario.config, scenario.world)
        engine.execute(OUTAGE_QUERY)
        engine.run(OUTAGE_START_BATCH + 4)  # well inside the dark window
        degraded = engine.degraded_pairs()
        assert degraded  # the dead cells are flagged
        assert all(attribute == "temp" for attribute, _ in degraded)
        violations = engine.violations()
        attributed = [v for v in violations if v.fault_attributed]
        assert attributed
        for violation in attributed:
            assert (violation.attribute, violation.cell) in degraded
            assert violation.response_rate is not None
            assert violation.response_rate < 0.25
        # The frozen pairs' budget delta was redistributed, so at least one
        # decision this batch is marked fault-attributed too.
        decisions = engine.reports[-1].budget_decisions
        assert any(d.fault_attributed for d in decisions)

    def test_sessions_surface_degraded_cells(self):
        scenario = cell_outage_scenario(mitigation=True)
        engine = CraqrEngine(scenario.config, scenario.world)
        engine.execute(OUTAGE_QUERY)
        engine.run(OUTAGE_START_BATCH + 4)
        (info,) = engine.sessions()
        assert info.degraded_pairs
        assert set(info.degraded_pairs) == {
            cell for _, cell in engine.degraded_pairs()
        }


class TestFlakyCrowdScenario:
    def test_mitigation_holds_rates_within_ten_percent(self):
        scenario = flaky_crowd_scenario()
        engine = CraqrEngine(scenario.config, scenario.world)
        storm = engine.execute(
            "ACQUIRE rain FROM RECT(0,0,2.5,2.5) AT RATE 8 PER KM2 PER MIN AS Storm"
        )
        heat = engine.execute(
            "ACQUIRE temp FROM RECT(1,1,4,4) AT RATE 6 PER KM2 PER MIN AS Heat"
        )
        engine.run(12)
        for handle in (storm, heat):
            estimate = handle.achieved_rate()
            assert estimate.achieved_rate >= 0.9 * estimate.requested_rate
        # Every configured fault class actually fired ...
        injector = engine.fault_injector
        assert injector.drops_injected > 0
        assert injector.outliers_injected > 0
        assert injector.stuck_replays > 0
        assert injector.latencies_inflated > 0
        # ... and the mitigation stack visibly worked against it.
        assert sum(r.handler.timeouts for r in engine.reports) > 0
        assert sum(r.handler.retries_sent for r in engine.reports) > 0
        summary = engine.health_monitor.summary()
        assert summary.quarantine_events > 0
        assert summary.released > 0  # probation keeps the crowd alive

    def test_moving_outage_sweeps_columns(self):
        scenario = cell_outage_scenario(moving=True)
        assert scenario.name == "cell-outage-moving"
        outages = scenario.config.faults.outages
        assert len(outages) > 1
        covered = [outage.cells for outage in outages]
        # Each window blacks out a different column of cells.
        assert len({cells for cells in covered}) == len(covered)
