"""Tiny shared helpers for the craqr-lint fixture tests."""

from __future__ import annotations


def codes(report):
    """The multiset of finding codes in a report, sorted."""
    return sorted(f.code for f in report.findings)
