"""CRQ2xx — batch-protocol completeness fixtures."""

from __future__ import annotations

from lint_harness import codes


def test_step_batch_without_batch_key_flagged(lint):
    report = lint(
        {
            "mobility.py": """\
            class DriftMobility:
                def step_batch(self, rows, dt):
                    pass
            """
        }
    )
    assert codes(report) == ["CRQ201"]


def test_batch_key_without_step_batch_flagged(lint):
    report = lint(
        {
            "mobility.py": """\
            class DriftMobility:
                def batch_key(self):
                    return ("drift",)
            """
        }
    )
    assert codes(report) == ["CRQ201"]


def test_paired_batch_protocol_is_clean(lint):
    report = lint(
        {
            "mobility.py": """\
            class DriftMobility:
                def batch_key(self):
                    return ("drift",)

                def step_batch(self, rows, dt):
                    pass
            """
        }
    )
    assert codes(report) == []


def test_partial_vector_state_protocol_flagged(lint):
    report = lint(
        {
            "participation.py": """\
            class FlakyParticipation:
                def vector_state_columns(self):
                    return ("streak",)

                def vector_probabilities(self, params, state, now):
                    return state
            """
        }
    )
    assert codes(report) == ["CRQ202"]


def test_full_vector_state_protocol_is_clean(lint):
    report = lint(
        {
            "participation.py": """\
            class FlakyParticipation:
                def vector_state_columns(self):
                    return ("streak",)

                def vector_state_key(self):
                    return ("flaky",)

                def vector_static_params(self):
                    return ()

                def init_vector_state(self, n):
                    pass

                def vector_probabilities(self, params, state, now):
                    return state

                def vector_commit(self, state, responded):
                    pass
            """
        }
    )
    assert codes(report) == []


def test_operator_process_batch_without_lowering_flagged(lint):
    report = lint(
        {
            "ops.py": """\
            class NoopOperator(PMATOperator):
                def process_batch(self, batch):
                    return batch
            """
        }
    )
    assert codes(report) == ["CRQ203"]


def test_operator_with_lower_ir_is_clean(lint):
    report = lint(
        {
            "ops.py": """\
            class NoopOperator(StreamOperator):
                def process_batch(self, batch):
                    return batch

                def lower_ir(self):
                    return {"kind": "noop"}
            """
        }
    )
    assert codes(report) == []


def test_operator_with_interpreted_fallback_marker_is_clean(lint):
    report = lint(
        {
            "ops.py": """\
            class NoopOperator(PMATOperator):
                interpreted_fallback = True

                def process_batch(self, batch):
                    return batch
            """
        }
    )
    assert codes(report) == []


def test_non_operator_class_not_held_to_crq203(lint):
    report = lint(
        {
            "ops.py": """\
            class BatchAccumulator:
                def process_batch(self, batch):
                    return batch
            """
        }
    )
    assert codes(report) == []


def test_inline_suppression_waives_protocol_finding(lint):
    report = lint(
        {
            "ops.py": """\
            class NoopOperator(PMATOperator):  # craqr: ignore[CRQ203] - prototype
                def process_batch(self, batch):
                    return batch
            """
        }
    )
    assert codes(report) == []
    assert report.suppressed == 1
