"""CRQ3xx — snapshot state coverage fixtures."""

from __future__ import annotations

from lint_harness import codes

OPAQUE_GETSTATE = """\
class Box:
    def __init__(self, a, b):
        self.a = a
        self.b = b

    def __getstate__(self):
        return {"a": self.a}
"""

UNDECLARED_EXCLUSION = """\
class Box:
    def __init__(self, payload):
        self.payload = payload
        self._cache = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_cache"] = None
        return state
"""

DECLARED_EXCLUSION = """\
class Box:
    _DERIVED_STATE = ("_cache",)

    def __init__(self, payload):
        self.payload = payload
        self._cache = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_cache"] = None
        return state
"""

SETSTATE_REBUILD = """\
class Box:
    def __init__(self, payload):
        self.payload = payload
        self._cache = None

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_cache"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache = None
"""

STALE_DECLARATION = """\
class Box:
    _DERIVED_STATE = ("_cache", "_gone")

    def __init__(self, payload):
        self.payload = payload
        self._cache = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_cache"] = None
        return state
"""

REDUCER_MISSES_ATTR = """\
import copyreg

class Packet:
    def __init__(self, a, b):
        self.a = a
        self.b = b

def _reduce_packet(packet):
    return (Packet, (packet.a,))

dispatch_table = {}
dispatch_table[Packet] = _reduce_packet
"""

REDUCER_WHOLESALE = """\
import copyreg

class Packet:
    def __init__(self, a, b):
        self.a = a
        self.b = b

def _reduce_packet(packet):
    return (Packet.__new__, (Packet,), dict(packet.__dict__))

dispatch_table = {}
dispatch_table[Packet] = _reduce_packet
"""


def test_opaque_getstate_flagged(lint):
    assert codes(lint({"box.py": OPAQUE_GETSTATE})) == ["CRQ301"]


def test_undeclared_exclusion_flagged(lint):
    assert codes(lint({"box.py": UNDECLARED_EXCLUSION})) == ["CRQ302"]


def test_declared_exclusion_is_clean(lint):
    assert codes(lint({"box.py": DECLARED_EXCLUSION})) == []


def test_setstate_rebuild_is_clean(lint):
    assert codes(lint({"box.py": SETSTATE_REBUILD})) == []


def test_stale_derived_state_entry_flagged(lint):
    assert codes(lint({"box.py": STALE_DECLARATION})) == ["CRQ303"]


def test_reducer_missing_init_attribute_flagged(lint):
    report = lint({"codec.py": REDUCER_MISSES_ATTR})
    assert codes(report) == ["CRQ304"]
    assert "'b'" in report.findings[0].message or "b" in report.findings[0].message


def test_wholesale_dict_reducer_is_clean(lint):
    assert codes(lint({"codec.py": REDUCER_WHOLESALE})) == []


def test_aliased_reducer_resolved_through_module_alias(lint):
    source = """\
    class Packet:
        def __init__(self, a, b):
            self.a = a
            self.b = b

    def reduce_packet(packet):
        return (Packet, (packet.a,))

    _reduce_packet = reduce_packet
    dispatch_table = {}
    dispatch_table[Packet] = _reduce_packet
    """
    assert codes(lint({"codec.py": source})) == ["CRQ304"]


def test_inline_suppression_waives_snapshot_finding(lint):
    source = """\
    class Box:
        def __init__(self, payload):
            self.payload = payload
            self._cache = None

        def __getstate__(self):
            state = dict(self.__dict__)
            state["_cache"] = None  # craqr: ignore[CRQ302] - rebuilt lazily
            return state
    """
    report = lint({"box.py": source})
    assert codes(report) == []
    assert report.suppressed == 1
