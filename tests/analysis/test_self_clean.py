"""Tier-1 guard: the repo's own source lints clean with an empty baseline.

This is the enforcement point of the whole PR-10 contract: any new RNG
fallback, partial protocol, undocumented snapshot exclusion, hot-path
regression or wire-schema drift lands as a failing test, and the
committed baseline cannot silently grow to absorb it.
"""

from __future__ import annotations

import json
import pathlib

import repro
from repro.analysis import DEFAULT_BASELINE_NAME, analyze

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
BASELINE = REPO_ROOT / DEFAULT_BASELINE_NAME
PACKAGE = pathlib.Path(repro.__file__).parent


def test_committed_baseline_is_empty():
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert payload == {"version": 1, "entries": []}


def test_repro_source_lints_clean():
    report = analyze([PACKAGE], baseline_path=BASELINE)
    assert report.findings == [], "\n" + "\n".join(
        f.render() for f in report.findings
    )
    assert report.baselined == 0
    # The whole package was actually scanned, not a stray subset.
    assert report.checked_files > 100
