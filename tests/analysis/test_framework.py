"""Analyzer framework: suppressions, baselines, report plumbing."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Finding,
    all_codes,
    all_rules,
    analyze,
    load_baseline,
    render,
    save_baseline,
)
from repro.analysis.findings import collect_suppressions, is_suppressed

from lint_harness import codes

UNSEEDED = """\
import numpy as np

def fresh():
    return np.random.default_rng()
"""


# ----------------------------------------------------------------------
# Suppression comment parsing
# ----------------------------------------------------------------------
def test_collect_suppressions_with_codes():
    source = "x = 1  # craqr: ignore[CRQ103]\ny = 2\n"
    supp = collect_suppressions(source)
    assert supp == {1: frozenset({"CRQ103"})}


def test_collect_suppressions_multiple_codes():
    source = "x = 1  # craqr: ignore[CRQ103, CRQ104] - reason\n"
    assert collect_suppressions(source) == {1: frozenset({"CRQ103", "CRQ104"})}


def test_collect_suppressions_bare_ignores_everything():
    source = "x = 1  # craqr: ignore\n"
    supp = collect_suppressions(source)
    assert supp == {1: None}
    finding = Finding(path="mod.py", line=1, col=0, code="CRQ999", message="m")
    assert is_suppressed(finding, supp)


def test_suppression_on_other_line_does_not_waive():
    supp = collect_suppressions("x = 1  # craqr: ignore[CRQ103]\ny = 2\n")
    finding = Finding(path="mod.py", line=2, col=0, code="CRQ103", message="m")
    assert not is_suppressed(finding, supp)


def test_wrong_code_does_not_waive():
    supp = collect_suppressions("x = 1  # craqr: ignore[CRQ104]\n")
    finding = Finding(path="mod.py", line=1, col=0, code="CRQ103", message="m")
    assert not is_suppressed(finding, supp)


# ----------------------------------------------------------------------
# Baseline round trip
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    """Finding -> baseline -> clean run -> fix -> stale entry reported."""
    mod = tmp_path / "mod.py"
    mod.write_text(UNSEEDED)
    baseline = tmp_path / "craqr-baseline.json"

    # 1. The violation is reported with no baseline in play.
    report = analyze([tmp_path], baseline_path=None)
    assert codes(report) == ["CRQ103"]

    # 2. Writing the baseline waives it: the run is now clean.
    report = analyze([tmp_path], baseline_path=baseline, write_baseline=True)
    assert report.ok and report.baselined == 1
    report = analyze([tmp_path], baseline_path=baseline)
    assert report.ok and report.baselined == 1

    # 3. Fixing the violation makes the baseline entry stale — and the
    #    stale entry itself is a finding, so baselines cannot rot.
    mod.write_text("import numpy as np\n\nrng = np.random.default_rng(7)\n")
    report = analyze([tmp_path], baseline_path=baseline)
    assert codes(report) == ["CRQ002"]
    assert not report.ok

    # 4. Rewriting the baseline empties it and the tree is clean again.
    report = analyze([tmp_path], baseline_path=baseline, write_baseline=True)
    assert report.ok
    assert load_baseline(baseline) == []


def test_baseline_survives_line_drift(tmp_path):
    """Baseline identity is (code, path, symbol), not line numbers."""
    mod = tmp_path / "mod.py"
    mod.write_text(UNSEEDED)
    baseline = tmp_path / "craqr-baseline.json"
    analyze([tmp_path], baseline_path=baseline, write_baseline=True)

    mod.write_text("# a new leading comment\n\n" + UNSEEDED)
    report = analyze([tmp_path], baseline_path=baseline)
    assert report.ok and report.baselined == 1


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == []


def test_corrupt_baseline_raises(tmp_path):
    bad = tmp_path / "craqr-baseline.json"
    bad.write_text("not json {")
    with pytest.raises(ValueError):
        load_baseline(bad)


def test_save_baseline_is_stable_json(tmp_path):
    baseline = tmp_path / "craqr-baseline.json"
    finding = Finding(
        path="repro/mod.py", line=3, col=4, code="CRQ103", message="m",
        symbol="fresh",
    )
    save_baseline(baseline, [finding])
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1
    assert payload["entries"] == [
        {"code": "CRQ103", "path": "repro/mod.py", "symbol": "fresh"}
    ]


# ----------------------------------------------------------------------
# Report plumbing
# ----------------------------------------------------------------------
def test_parse_error_reported_as_crq001(lint):
    report = lint({"broken.py": "def broken(:\n"})
    assert codes(report) == ["CRQ001"]


def test_render_json_round_trips(lint):
    report = lint({"mod.py": UNSEEDED})
    payload = json.loads(render(report, "json"))
    assert payload["ok"] is False
    assert payload["findings"][0]["code"] == "CRQ103"
    assert "CRQ103" in render(report, "text")


def test_every_registered_code_has_a_rationale():
    registered = set()
    for spec in all_rules():
        registered.update(spec.codes)
    assert registered <= set(all_codes())
    # Five rule families, plus the two meta codes.
    families = {code[:4] for code in registered}
    assert families == {"CRQ1", "CRQ2", "CRQ3", "CRQ4", "CRQ5"}
    assert {"CRQ001", "CRQ002"} <= set(all_codes())
