"""CRQ1xx — RNG stream discipline fixtures."""

from __future__ import annotations

from lint_harness import codes


def test_stdlib_random_import_flagged(lint):
    report = lint({"mod.py": "import random\n"})
    assert codes(report) == ["CRQ101"]


def test_from_random_import_flagged(lint):
    report = lint({"mod.py": "from random import shuffle\n"})
    assert codes(report) == ["CRQ101"]


def test_global_numpy_stream_call_flagged(lint):
    report = lint(
        {
            "mod.py": """\
            import numpy as np

            def draw():
                return np.random.random(4)
            """
        }
    )
    assert codes(report) == ["CRQ102"]


def test_unseeded_default_rng_flagged(lint):
    report = lint(
        {
            "mod.py": """\
            import numpy as np

            def fresh():
                return np.random.default_rng()
            """
        }
    )
    assert codes(report) == ["CRQ103"]


def test_rng_param_fallback_flagged_as_crq104(lint):
    report = lint(
        {
            "mod.py": """\
            import numpy as np

            def sample(n, rng=None):
                rng = rng if rng is not None else np.random.default_rng()
                return rng.normal(size=n)
            """
        }
    )
    assert codes(report) == ["CRQ104"]


def test_rng_param_global_draw_flagged_as_crq104(lint):
    report = lint(
        {
            "mod.py": """\
            import numpy as np

            def sample(n, rng):
                return np.random.normal(size=n)
            """
        }
    )
    assert codes(report) == ["CRQ104"]


def test_one_code_per_site_never_both(lint):
    # Regression: the scope walker used to re-scan function statements at
    # module context and emit CRQ103 alongside CRQ104 for the same call.
    report = lint(
        {
            "mod.py": """\
            import numpy as np

            class Sampler:
                def __init__(self, rng=None):
                    self._rng = rng if rng is not None else np.random.default_rng()
            """
        }
    )
    assert codes(report) == ["CRQ104"]


def test_seeded_construction_is_clean(lint):
    report = lint(
        {
            "mod.py": """\
            import numpy as np

            def make(seed, parent):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(parent.integers(0, 2 ** 63 - 1))
                c = np.random.default_rng(seed=seed)
                return a, b, c
            """
        }
    )
    assert codes(report) == []


def test_sanctioned_module_may_create_unseeded_stream(lint):
    report = lint(
        {
            "repro/__init__.py": "",
            "repro/rng.py": """\
            import numpy as np

            def ensure_rng(rng=None):
                if rng is not None:
                    return rng
                return np.random.default_rng()
            """,
        }
    )
    assert codes(report) == []


def test_inline_suppression_waives_rng_finding(lint):
    report = lint(
        {
            "mod.py": """\
            import numpy as np

            def fresh():
                return np.random.default_rng()  # craqr: ignore[CRQ103] - interactive helper
            """
        }
    )
    assert codes(report) == []
    assert report.suppressed == 1
