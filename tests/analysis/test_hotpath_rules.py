"""CRQ4xx — hot-path purity fixtures (synthetic manifests)."""

from __future__ import annotations

from lint_harness import codes

HOT = [("mod.py", "hot")]


def test_tolist_in_hot_path_flagged(lint):
    report = lint(
        {
            "mod.py": """\
            def hot(col):
                return col.tolist()
            """
        },
        hot_paths=HOT,
    )
    assert codes(report) == ["CRQ401"]


def test_range_len_loop_in_hot_path_flagged(lint):
    report = lint(
        {
            "mod.py": """\
            def hot(col):
                total = 0.0
                for i in range(len(col)):
                    total += col[i]
                return total
            """
        },
        hot_paths=HOT,
    )
    assert codes(report) == ["CRQ402"]


def test_zip_loop_in_hot_path_flagged(lint):
    report = lint(
        {
            "mod.py": """\
            def hot(a, b):
                out = []
                for x, y in zip(a, b):
                    out.append(x + y)
                return out
            """
        },
        hot_paths=HOT,
    )
    assert codes(report) == ["CRQ402"]


def test_object_construction_inside_loop_flagged(lint):
    report = lint(
        {
            "mod.py": """\
            def hot(rows):
                out = []
                for row in rows:
                    out.append(Record(row))
                return out
            """
        },
        hot_paths=HOT,
    )
    # The for-loop itself is not a range(len)/zip loop, so only CRQ403.
    assert codes(report) == ["CRQ403"]


def test_construction_outside_loop_is_clean(lint):
    report = lint(
        {
            "mod.py": """\
            def hot(rows):
                builder = Record(None)
                return builder.consume(rows)
            """
        },
        hot_paths=HOT,
    )
    assert codes(report) == []


def test_cold_function_not_scanned(lint):
    report = lint(
        {
            "mod.py": """\
            def cold(col):
                return col.tolist()
            """
        },
        hot_paths=HOT,
    )
    assert codes(report) == ["CRQ404"]  # 'hot' itself is gone


def test_missing_manifest_module_flagged_when_strict(lint):
    report = lint(
        {"mod.py": "def hot():\n    pass\n"},
        hot_paths=[("mod.py", "hot"), ("vanished.py", "gone")],
    )
    assert codes(report) == ["CRQ404"]


def test_method_manifest_entries_resolve_dotted(lint):
    report = lint(
        {
            "mod.py": """\
            class Handler:
                def run(self, col):
                    return col.tolist()
            """
        },
        hot_paths=[("mod.py", "Handler.run")],
    )
    assert codes(report) == ["CRQ401"]


def test_inline_suppression_waives_hot_path_finding(lint):
    report = lint(
        {
            "mod.py": """\
            def hot(cells, lows, highs):
                out = {}
                for cell, lo, hi in zip(cells, lows, highs):  # craqr: ignore[CRQ402] - per cell
                    out[cell] = (lo, hi)
                return out
            """
        },
        hot_paths=HOT,
    )
    assert codes(report) == []
    assert report.suppressed == 1


def test_committed_manifest_resolves_against_real_tree():
    """Every entry in the shipped manifest must resolve (CRQ404 guard)."""
    import pathlib

    import repro
    from repro.analysis import analyze

    src = pathlib.Path(repro.__file__).parent
    report = analyze([src], baseline_path=None)
    assert [f for f in report.findings if f.code == "CRQ404"] == []
