"""CRQ5xx — wire-schema consistency fixtures."""

from __future__ import annotations

from lint_harness import codes

SERVER_OK = """\
class Server:
    def _op_status(self, conn, header):
        detail = header.get("detail")
        return {"detail": detail}

    def _op_read(self, conn, header):
        return {"rows": header["limit"]}
"""


def test_unknown_op_flagged(lint):
    report = lint(
        {
            "serve/client.py": """\
            def request_shutdown(conn):
                conn.send({"op": "shutdown", "id": 1})
            """,
            "serve/server.py": SERVER_OK,
        }
    )
    assert codes(report) == ["CRQ501"]


def test_unread_header_key_flagged(lint):
    report = lint(
        {
            "serve/client.py": """\
            def request_status(conn):
                conn.send({"op": "status", "id": 1, "verbose": True})
            """,
            "serve/server.py": SERVER_OK,
        }
    )
    assert codes(report) == ["CRQ502"]
    assert "'verbose'" in report.findings[0].message


def test_matching_schema_is_clean(lint):
    report = lint(
        {
            "serve/client.py": """\
            def request_status(conn):
                conn.send({"op": "status", "id": 1, "detail": "full"})

            def request_read(conn, limit):
                header = {"op": "read", "id": 2}
                header["limit"] = limit
                conn.send(header)
            """,
            "serve/server.py": SERVER_OK,
        }
    )
    assert codes(report) == []


def test_grown_header_dict_keys_are_tracked(lint):
    report = lint(
        {
            "serve/client.py": """\
            def request_read(conn, limit):
                header = {"op": "read", "id": 2}
                header["offset"] = 0
                conn.send(header)
            """,
            "serve/server.py": SERVER_OK,
        }
    )
    assert codes(report) == ["CRQ502"]


def test_magic_literal_outside_protocol_module_flagged(lint):
    report = lint(
        {
            "serve/client.py": "MAGIC = b\"CRAQR/1\\n\"\n",
            "serve/server.py": SERVER_OK,
        }
    )
    assert codes(report) == ["CRQ503"]


def test_magic_literal_inside_protocol_module_is_clean(lint):
    report = lint(
        {
            "serve/protocol.py": "MAGIC = b\"CRAQR/1\\n\"\nPROTOCOL = \"craqr/1\"\n",
        }
    )
    assert codes(report) == []


def test_inline_suppression_waives_wire_finding(lint):
    report = lint(
        {
            "serve/client.py": """\
            def request_shutdown(conn):
                conn.send({"op": "shutdown", "id": 1})  # craqr: ignore[CRQ501] - server-side handler pending
            """,
            "serve/server.py": SERVER_OK,
        }
    )
    assert codes(report) == []
    assert report.suppressed == 1


def test_no_pair_check_without_both_modules(lint):
    report = lint(
        {
            "serve/client.py": """\
            def request_shutdown(conn):
                conn.send({"op": "shutdown", "id": 1})
            """,
        }
    )
    assert codes(report) == []
