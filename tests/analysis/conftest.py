"""Shared fixture: write synthetic modules and lint them."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze


@pytest.fixture
def lint(tmp_path):
    """Write ``name -> source`` files into a tmp package and analyze it.

    Sources are dedented; nested paths (``"pkg/mod.py"``) are allowed.
    Returns the :class:`~repro.analysis.AnalysisReport`.  Keyword
    arguments are forwarded to :func:`repro.analysis.analyze` (e.g.
    ``hot_paths`` to register hot functions for the CRQ4xx rules).
    """

    def _lint(files, **kwargs):
        root = tmp_path / "proj"
        for name, source in files.items():
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return analyze([root], **kwargs)

    return _lint
