"""Unit tests for the metrics layer (rates, violations, cost, reporting)."""

import pytest

from repro.errors import CraqrError
from repro.metrics import (
    CostModel,
    CostReport,
    ResultTable,
    ViolationTracker,
    achieved_rate,
    format_table,
    per_batch_rates,
    rate_error,
)
from repro.streams import SensorTuple


def make_tuples(count):
    return [
        SensorTuple(tuple_id=i, attribute="rain", t=float(i), x=0.0, y=0.0)
        for i in range(count)
    ]


class TestRateMetrics:
    def test_achieved_rate(self):
        assert achieved_rate(make_tuples(20), area=2.0, duration=5.0) == pytest.approx(2.0)

    def test_achieved_rate_validation(self):
        with pytest.raises(CraqrError):
            achieved_rate([], area=0.0, duration=1.0)

    def test_rate_error(self):
        assert rate_error(8.0, 10.0) == pytest.approx(0.2)
        with pytest.raises(CraqrError):
            rate_error(1.0, 0.0)

    def test_per_batch_rates(self):
        assert per_batch_rates([4, 8], area=2.0, batch_duration=1.0) == [2.0, 4.0]
        with pytest.raises(CraqrError):
            per_batch_rates([1], area=1.0, batch_duration=0.0)


class TestViolationTracker:
    def test_record_and_latest(self):
        tracker = ViolationTracker()
        tracker.record({("rain", (0, 0)): 10.0})
        tracker.record({("rain", (0, 0)): 2.0})
        assert tracker.latest(("rain", (0, 0))) == 2.0
        assert tracker.mean(("rain", (0, 0))) == pytest.approx(6.0)

    def test_unknown_pair_defaults(self):
        tracker = ViolationTracker()
        assert tracker.latest(("rain", (9, 9))) == 0.0
        assert tracker.mean(("rain", (9, 9))) == 0.0

    def test_negative_violation_rejected(self):
        with pytest.raises(CraqrError):
            ViolationTracker().record({("rain", (0, 0)): -1.0})

    def test_overall_mean(self):
        tracker = ViolationTracker()
        tracker.record({("rain", (0, 0)): 10.0, ("temp", (1, 1)): 20.0})
        assert tracker.overall_mean() == pytest.approx(15.0)
        assert ViolationTracker().overall_mean() == 0.0

    def test_batches_below_and_convergence(self):
        tracker = ViolationTracker()
        pair = ("rain", (0, 0))
        for value in [50.0, 20.0, 4.0, 3.0, 2.0, 1.0, 0.0]:
            tracker.record({pair: value})
        assert tracker.batches_below(pair, 5.0) == 5
        assert tracker.converged(pair, 5.0, window=5)
        assert not tracker.converged(pair, 5.0, window=7)


class TestCost:
    def test_cost_model_validation(self):
        with pytest.raises(CraqrError):
            CostModel(cost_per_request=-1.0)

    def test_cost_report_total(self):
        report = CostReport(requests=100, responses=50, incentive_spent=10.0)
        expected = 100 * 1.0 + 50 * 0.2 + 10.0 * 1.0
        assert report.total == pytest.approx(expected)

    def test_per_delivered_tuple(self):
        report = CostReport(requests=100, responses=50, incentive_spent=0.0)
        assert report.per_delivered_tuple(55) == pytest.approx(report.total / 55)
        assert report.per_delivered_tuple(0) == float("inf")
        with pytest.raises(CraqrError):
            report.per_delivered_tuple(-1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(CraqrError):
            CostReport(requests=-1, responses=0, incentive_spent=0.0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "long-name" in lines[2] or "long-name" in lines[3]

    def test_format_table_validation(self):
        with pytest.raises(CraqrError):
            format_table([], [])
        with pytest.raises(CraqrError):
            format_table(["a"], [["x", "y"]])

    def test_result_table_rows_and_columns(self):
        table = ResultTable("demo", ["queries", "cost"])
        table.add_row(1, 10.0)
        table.add_row(2, 18.0)
        assert table.column("cost") == [10.0, 18.0]
        rendered = table.render()
        assert "demo" in rendered and "queries" in rendered

    def test_result_table_wrong_arity(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(CraqrError):
            table.add_row(1)

    def test_result_table_unknown_column(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(CraqrError):
            table.column("missing")
