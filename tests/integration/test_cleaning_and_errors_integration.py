"""Integration: error models + cleaning operators around a live CrAQR engine."""

import numpy as np
import pytest

from repro import AcquisitionalQuery, CraqrEngine
from repro.core.pmat import ClampOperator, DeduplicateOperator, OutlierFilterOperator
from repro.geometry import Rectangle
from repro.sensing import ErrorInjector, GpsNoiseModel, ValueErrorModel
from repro.streams import CollectingSink
from repro.workloads import build_rain_temperature_world, default_engine_config

REGION = Rectangle(0, 0, 4, 4)


class TestErrorAwareAcquisition:
    def test_corrupted_stream_cleaned_after_fabrication(self):
        """Fabricate a temperature stream, corrupt it, clean it, compare errors."""
        world = build_rain_temperature_world(sensor_count=250, seed=301)
        engine = CraqrEngine(default_engine_config(seed=302), world)
        handle = engine.register_query(
            AcquisitionalQuery("temp", Rectangle(0, 0, 4, 4), 5.0, name="city-temp")
        )
        engine.run(10)
        clean_items = handle.results()
        assert len(clean_items) > 100

        injector = ErrorInjector(
            gps=GpsNoiseModel(0.4, region=REGION),
            value=ValueErrorModel(noise_std=0.2, outlier_probability=0.04, outlier_scale=60.0),
            rng=np.random.default_rng(303),
        )
        corrupted = injector.corrupt_many(clean_items)

        clamp = ClampOperator(REGION)
        dedup = DeduplicateOperator(min_gap=0.0)
        outlier = OutlierFilterOperator(window=80, z_threshold=4.0, min_history=15)
        dedup.subscribe_to(clamp.output)
        outlier.subscribe_to(dedup.output)
        sink = CollectingSink().attach(outlier.output)
        for item in corrupted:
            clamp.accept(item)

        true_mean = float(np.mean([item.value for item in clean_items]))
        corrupted_mean = float(np.mean([item.value for item in corrupted]))
        cleaned_mean = float(np.mean([item.value for item in sink.items]))
        # The cleaning chain removes most of the bias the gross outliers add.
        assert abs(cleaned_mean - true_mean) <= abs(corrupted_mean - true_mean)
        assert abs(cleaned_mean - true_mean) < 0.5
        # Positions stay inside the deployment region after clamping.
        assert all(REGION.contains(i.x, i.y, closed=True) for i in sink.items)
        # The filter keeps the overwhelming majority of genuine readings.
        assert len(sink) > 0.85 * len(corrupted)

    def test_gps_noise_moves_some_tuples_across_cells(self):
        """GPS errors re-map some tuples to neighbouring cells; the engine's
        map phase (fabricator) routes them by reported coordinates, so the
        error model composes with the pipeline without crashes."""
        world = build_rain_temperature_world(sensor_count=200, seed=311)
        engine = CraqrEngine(default_engine_config(seed=312), world)
        handle = engine.register_query(
            AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 8.0)
        )
        engine.run(5)
        items = handle.results()
        injector = ErrorInjector(
            gps=GpsNoiseModel(0.6, region=REGION), rng=np.random.default_rng(313)
        )
        corrupted = injector.corrupt_many(items)
        moved = sum(
            1
            for before, after in zip(items, corrupted)
            if engine.grid.locate(before.x, before.y).key
            != engine.grid.locate(after.x, after.y).key
        )
        assert moved > 0
        assert moved < len(items)
