"""Equivalence tests for continuous views (ISSUE 5 acceptance).

Three guarantees are pinned down here:

* **incremental == from-scratch** — every view aggregate equals a
  recomputation from the raw cursor output of the same seeded run (plain
  numpy for the order-independent aggregates; the declared fold/merge
  semantics for the order-sensitive ones, applied to the raw tuples);
* **columnar == object** — the two engine paths produce byte-compatible
  frames for the same seed;
* **window boundary semantics** — a tuple timestamped exactly on a
  tumbling/sliding boundary lands in exactly one frame, whether the
  delivery chunks are object lists (the object engine path's buffer form)
  or columnar batches (the columnar path's).
"""

import numpy as np
import pytest

from repro.config import BudgetConfig, EngineConfig
from repro.core.engine import CraqrEngine
from repro.core.query import AcquisitionalQuery
from repro.geometry import Grid, Rectangle, RectRegion
from repro.storage import QueryResultBuffer
from repro.streams import SensorTuple, TupleBatch
from repro.sensing import RainField, SensingWorld, TemperatureField, WorldConfig
from repro.views import ContinuousView, ViewSpec, get_aggregate

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)

AGGREGATES = ["COUNT", "SUM", "AVG", "MIN", "MAX", "P50", "P90"]


def make_engine(columnar=True, seed=7):
    world = SensingWorld(WorldConfig(region=REGION, sensor_count=150, seed=42))
    world.register_field(RainField(REGION, band_width=1.2, period=40.0))
    world.register_field(
        TemperatureField(REGION, heat_islands=[(1.0, 1.0, 3.0, 0.5)])
    )
    config = EngineConfig(
        grid_cells=16,
        seed=seed,
        budget=BudgetConfig(initial=30, delta=5, limit=300),
        columnar=columnar,
    )
    return CraqrEngine(config, world)


def run_with_views(columnar, batches=6, attribute="temp", spec_kwargs=None):
    """Run a seeded engine with one view per aggregate; return frames + raw."""
    engine = make_engine(columnar=columnar)
    handle = engine.register_query(
        AcquisitionalQuery(
            attribute, RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=20.0
        )
    )
    spec_kwargs = spec_kwargs or {"window": 2.0, "group_by": "cell"}
    views = {
        name: handle.view(ViewSpec(aggregate=name, **spec_kwargs))
        for name in AGGREGATES
    }
    cursor = handle.cursor()
    raw = []
    for _ in range(batches):
        engine.run_batch()
        raw.extend(cursor.fetch())
    return engine, views, raw


def frame_rows(frame):
    """A frame's rows as comparable (key, value, count) triples."""
    return [
        (frame.keys[i], float(frame.values[i]), int(frame.counts[i]))
        for i in range(frame.groups)
    ]


class TestIncrementalEqualsRecompute:
    def group_key(self, engine, spec, item):
        if spec.group_by == "cell":
            cell = engine.grid.locate(item.x, item.y)
            return cell.key
        if spec.group_by == "attribute":
            return item.attribute
        return "*"

    @pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "object"])
    def test_all_aggregates_match_from_scratch_recompute(self, columnar):
        engine, views, raw = run_with_views(columnar)
        for name, view in views.items():
            aggregate = get_aggregate(name)
            spec = view.spec
            for frame in view.frames():
                in_window = [
                    item
                    for item in raw
                    if frame.window_start <= item.t < frame.window_end
                ]
                by_group = {}
                for item in in_window:
                    by_group.setdefault(
                        self.group_key(engine, spec, item), []
                    ).append(item)
                assert sorted(by_group) == list(frame.keys), (name, frame)
                for i, key in enumerate(frame.keys):
                    items = by_group[key]
                    values = np.array([float(item.value) for item in items])
                    assert int(frame.counts[i]) == len(items)
                    got = float(frame.values[i])
                    if name == "COUNT":
                        assert got == float(len(items))
                    elif name == "MIN":
                        assert got == values.min()
                    elif name == "MAX":
                        assert got == values.max()
                    elif name in ("P50", "P90"):
                        # Small windows: the sketch never compacted, so the
                        # frame value is the exact nearest-rank percentile.
                        q = int(name[1:]) / 100.0
                        rank = max(1, int(np.ceil(q * len(values))))
                        assert got == np.sort(values)[rank - 1]
                    else:  # SUM / AVG: recompute through the declared
                        # fold/merge semantics in raw delivery order.
                        state = aggregate.fold(
                            aggregate.new_state(), values, len(items)
                        )
                        assert got == pytest.approx(
                            aggregate.result(state), rel=1e-12
                        )
                        reference = (
                            values.sum() if name == "SUM" else values.mean()
                        )
                        assert got == pytest.approx(reference, rel=1e-9)

    def test_sliding_frames_recompute_over_overlaps(self):
        engine, views, raw = run_with_views(
            True, spec_kwargs={"window": 2.0, "slide": 1.0, "group_by": "region"}
        )
        count_view = views["COUNT"]
        frames = count_view.frames()
        assert len(frames) >= 4
        for frame in frames:
            expected = sum(
                1 for item in raw if frame.window_start <= item.t < frame.window_end
            )
            assert frame.tuples == expected


class TestColumnarObjectByteCompatibility:
    def test_frames_identical_across_engine_paths(self):
        _, columnar_views, _ = run_with_views(True)
        _, object_views, _ = run_with_views(False)
        for name in AGGREGATES:
            a_frames = columnar_views[name].frames()
            b_frames = object_views[name].frames()
            assert len(a_frames) == len(b_frames) > 0, name
            for a, b in zip(a_frames, b_frames):
                assert (a.window_start, a.window_end) == (b.window_start, b.window_end)
                assert frame_rows(a) == frame_rows(b), (name, a.frame_index)


class TestBoundarySemanticsAcrossDeliveryForms:
    """A tuple exactly on a window boundary lands in exactly one frame,
    for both buffer chunk representations the engine paths produce."""

    def make_view(self, spec):
        return ContinuousView(
            spec,
            name="V",
            query_id=1,
            query_label="Q",
            grid=Grid(REGION, 2),
            batch_duration=1.0,
        )

    def tuples(self):
        return [
            SensorTuple(tuple_id=i, attribute="rain", t=t, x=0.5, y=0.5, value=1.0)
            for i, t in enumerate([0.5, 1.0, 1.5])  # 1.0 is exactly on the boundary
        ]

    def deliver(self, buffer, items, *, columnar):
        if columnar:
            buffer.extend_batch(TupleBatch.from_tuples(items))
        else:
            for item in items:
                buffer.append(item)
        buffer.end_batch()

    @pytest.mark.parametrize("columnar", [True, False], ids=["columnar", "object"])
    @pytest.mark.parametrize(
        "spec_kwargs",
        [{"window": 1.0}, {"window": 2.0, "slide": 1.0}],
        ids=["tumbling", "sliding"],
    )
    def test_boundary_tuple_in_exactly_one_pane(self, columnar, spec_kwargs):
        buffer = QueryResultBuffer(1, requested_rate=10.0, region_area=4.0)
        view = self.make_view(ViewSpec(aggregate="COUNT", **spec_kwargs))
        view.attach(buffer.subscribe(view.on_delivery))
        self.deliver(buffer, self.tuples(), columnar=columnar)
        frames = view.advance_to(3.0)
        if "slide" in spec_kwargs:
            # Sliding [0,2) and [1,3): t=1.0 is in both windows but in
            # exactly one *pane*; [0,2) holds {0.5, 1.0, 1.5}, [1,3) holds
            # {1.0, 1.5}.
            assert [f.tuples for f in frames] == [3, 2]
        else:
            # Tumbling [0,1), [1,2), [2,3): t=1.0 only in the second.
            assert [f.tuples for f in frames] == [1, 2, 0]

    def test_both_forms_produce_identical_frames(self):
        results = []
        for columnar in (True, False):
            buffer = QueryResultBuffer(1, requested_rate=10.0, region_area=4.0)
            view = self.make_view(
                ViewSpec(aggregate="AVG", window=1.0, group_by="cell")
            )
            view.attach(buffer.subscribe(view.on_delivery))
            self.deliver(buffer, self.tuples(), columnar=columnar)
            view.advance_to(2.0)
            results.append([frame_rows(f) for f in view.buffer.frames()])
        assert results[0] == results[1]
