"""Integration tests: full CrAQR pipeline end to end."""

import pytest

from repro import AcquisitionalQuery, CraqrEngine, parse_queries
from repro.baselines import NaivePerQueryEngine
from repro.geometry import Rectangle
from repro.pointprocess import assess_homogeneity
from repro.query import AttributeCatalog
from repro.workloads import (
    build_hotspot_world,
    build_rain_temperature_world,
    default_engine_config,
    fig2_queries,
    overlapping_query_workload,
)


@pytest.fixture(scope="module")
def engine_with_queries():
    """A shared engine run once for the read-only assertions below."""
    world = build_rain_temperature_world(sensor_count=250, seed=21)
    engine = CraqrEngine(default_engine_config(seed=22), world)
    rain = engine.register_query(
        AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 10.0, name="rain-monitor")
    )
    temp = engine.register_query(
        AcquisitionalQuery("temp", Rectangle(1, 1, 3, 3), 6.0, name="temp-monitor")
    )
    engine.run(20)
    return engine, rain, temp


class TestEndToEnd:
    def test_achieved_rates_close_to_requested(self, engine_with_queries):
        _, rain, temp = engine_with_queries
        rain_rate = rain.achieved_rate(last_batches=10)
        temp_rate = temp.achieved_rate(last_batches=10)
        assert rain_rate.achieved_rate == pytest.approx(10.0, rel=0.35)
        assert temp_rate.achieved_rate == pytest.approx(6.0, rel=0.35)

    def test_results_have_values_and_locations(self, engine_with_queries):
        _, rain, temp = engine_with_queries
        assert all(isinstance(item.value, bool) for item in rain.results())
        assert all(isinstance(item.value, float) for item in temp.results())
        for item in rain.results():
            assert Rectangle(0, 0, 2, 2).contains(item.x, item.y, closed=True)

    def test_delivered_stream_is_approximately_homogeneous(self, engine_with_queries):
        engine, rain, _ = engine_with_queries
        batch = rain.buffer.to_event_batch()
        duration = engine.batches_run * engine.config.batch_duration
        report = assess_homogeneity(
            batch, Rectangle(0, 0, 2, 2), duration, target_rate=10.0
        )
        # "Approximately homogeneous": low dispersion of quadrat counts and a
        # mild index of dispersion.  (A strict CSR test over ~800 points is
        # powerful enough to flag the small residual unevenness left by
        # per-cell intensity estimation, so we bound the effect size instead.)
        assert report.cv < 0.4
        assert report.rate_relative_error < 0.2
        dispersion_index = report.chi_square.statistic / report.chi_square.degrees_of_freedom
        assert dispersion_index < 5.0

    def test_engine_accounting_consistent(self, engine_with_queries):
        engine, rain, temp = engine_with_queries
        assert engine.total_tuples_delivered() == (
            rain.buffer.total_tuples + temp.buffer.total_tuples
        )
        assert engine.total_requests_sent() > 0
        assert engine.total_tuples_acquired() <= engine.total_requests_sent()

    def test_planner_invariants_hold_after_running(self, engine_with_queries):
        engine, _, _ = engine_with_queries
        engine.planner.check_invariants()


class TestDeclarativeFrontEnd:
    def test_parse_register_run(self):
        world = build_rain_temperature_world(sensor_count=150, seed=31)
        engine = CraqrEngine(default_engine_config(seed=32), world)
        catalog = AttributeCatalog.default()
        statements = parse_queries(
            "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 10 PER KM2 PER MIN AS Storm;"
            "ACQUIRE temp FROM RECT(2, 2, 4, 4) AT RATE 5 PER KM2 PER MIN AS Heat"
        )
        handles = []
        for statement in statements:
            catalog.validate_attribute(statement.attribute)
            handles.append(engine.register_query(statement.to_query()))
        engine.run(6)
        for handle in handles:
            assert handle.buffer.total_tuples > 0
        assert handles[0].query.label == "Storm"


class TestFig2Scenario:
    def test_three_query_topology_processes_all_queries(self):
        from repro.geometry import Grid
        from repro.config import BudgetConfig, EngineConfig
        from tests.conftest import make_world

        region = Rectangle(0, 0, 3, 3)
        world = make_world(region, sensor_count=220, seed=41)
        config = EngineConfig(
            grid_cells=9,
            batch_duration=1.0,
            budget=BudgetConfig(initial=80, delta=10, limit=500, floor=20),
            seed=42,
        )
        engine = CraqrEngine(config, world)
        grid = engine.grid
        q1, q2, q3 = fig2_queries(grid)
        handles = [engine.register_query(q) for q in (q1, q2, q3)]
        stats = engine.planner_stats()
        # Q1 occupies 4 cells, Q2 one cell, Q3 two cells; Q2 and Q3 do not
        # share cells with Q1's block in this layout, so 7 cells materialise.
        assert stats.materialized_cells == 7
        engine.run(12)
        rates = [h.achieved_rate(last_batches=6).achieved_rate for h in handles]
        assert rates[0] > rates[1] > rates[2]
        for handle, requested in zip(handles, (30.0, 20.0, 10.0)):
            assert rates[handles.index(handle)] == pytest.approx(requested, rel=0.5)


class TestSharingVersusNaive:
    def test_shared_engine_sends_fewer_requests_than_naive(self):
        config = default_engine_config(seed=51)
        queries = None

        def build_queries(grid):
            return overlapping_query_workload(grid, 6, base_rate=15.0, seed=52)

        shared_world = build_rain_temperature_world(sensor_count=200, seed=53)
        shared = CraqrEngine(config, shared_world)
        queries = build_queries(shared.grid)
        for query in queries:
            shared.register_query(query)
        shared.run(4)

        naive_world = build_rain_temperature_world(sensor_count=200, seed=53)
        naive = NaivePerQueryEngine(config, naive_world)
        for query in queries:
            naive.register_query(query.with_rate(query.rate))
        naive.run(4)

        assert shared.total_requests_sent() < naive.total_requests_sent()


class TestSkewMitigation:
    def test_hotspot_world_still_yields_balanced_streams(self):
        world = build_hotspot_world(sensor_count=300, seed=61)
        world.advance(30.0)  # let sensors gather around the hotspots
        engine = CraqrEngine(default_engine_config(seed=62), world)
        handle = engine.register_query(
            AcquisitionalQuery("temp", Rectangle(0, 0, 4, 4), 4.0)
        )
        engine.run(15)
        batch = handle.buffer.to_event_batch()
        report = assess_homogeneity(
            batch, Rectangle(0, 0, 4, 4), 15.0, target_rate=4.0, nx=2, ny=2
        )
        # The raw sensor distribution is heavily skewed, but the delivered
        # stream spreads over the region: dispersion stays moderate.
        assert report.cv < 0.8
