"""Seeded end-to-end equivalence of the columnar and object engine paths.

The columnar fast path (``EngineConfig.columnar=True``) must be a pure
performance switch: for any seed, both paths send the same requests, draw
the same sensor responses, retain the same tuples through every PMAT chain
and deliver byte-identical tuple sets to every query.
"""

import numpy as np
import pytest

from repro.config import BudgetConfig, EngineConfig
from repro.core.engine import CraqrEngine
from repro.core.query import AcquisitionalQuery
from repro.geometry import Rectangle, RectRegion
from repro.sensing import (
    AlwaysRespond,
    BernoulliParticipation,
    FlatIncentive,
    RainField,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


def make_world(seed=42, participation=None):
    world = SensingWorld(
        WorldConfig(region=REGION, sensor_count=150, seed=seed),
        participation_factory=participation,
    )
    world.register_field(RainField(REGION, band_width=1.2, period=40.0))
    world.register_field(TemperatureField(REGION, heat_islands=[(1.0, 1.0, 3.0, 0.5)]))
    return world


def run_engine(columnar, *, batches=4, participation=None, incentive=None):
    config = EngineConfig(
        grid_cells=16,
        seed=7,
        budget=BudgetConfig(initial=30, delta=5, limit=300),
        columnar=columnar,
    )
    engine = CraqrEngine(config, make_world(participation=participation), incentive=incentive)
    handles = [
        engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 2.0, 2.0), rate=25.0)
        ),
        engine.register_query(
            # Partial cell overlaps force Partition taps into the chains.
            AcquisitionalQuery("temp", RectRegion.from_bounds(0.5, 0.5, 3.5, 2.5), rate=15.0)
        ),
        engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(1.0, 1.0, 3.0, 3.0), rate=10.0)
        ),
    ]
    reports = engine.run(batches)
    return engine, handles, reports


def sorted_results(handle):
    return sorted(handle.results(), key=lambda item: item.tuple_id)


def assert_engines_equivalent(columnar_run, object_run):
    engine_col, handles_col, reports_col = columnar_run
    engine_obj, handles_obj, reports_obj = object_run
    for handle_col, handle_obj in zip(handles_col, handles_obj):
        assert sorted_results(handle_col) == sorted_results(handle_obj)
    assert engine_col.total_requests_sent() == engine_obj.total_requests_sent()
    assert engine_col.total_tuples_acquired() == engine_obj.total_tuples_acquired()
    assert engine_col.total_tuples_delivered() == engine_obj.total_tuples_delivered()
    for report_col, report_obj in zip(reports_col, reports_obj):
        assert report_col.handler.requests_sent == report_obj.handler.requests_sent
        assert report_col.handler.responses_received == report_obj.handler.responses_received
        assert report_col.handler.per_cell_requests == report_obj.handler.per_cell_requests
        assert report_col.handler.per_cell_responses == report_obj.handler.per_cell_responses
        assert report_col.fabrication.tuples_in == report_obj.fabrication.tuples_in
        assert report_col.fabrication.tuples_routed == report_obj.fabrication.tuples_routed
        assert report_col.fabrication.tuples_delivered == report_obj.fabrication.tuples_delivered
        assert report_col.fabrication.violations == report_obj.fabrication.violations
        assert [d.__dict__ for d in report_col.budget_decisions] == [
            d.__dict__ for d in report_obj.budget_decisions
        ]


class TestEngineEquivalence:
    def test_columnar_and_object_paths_deliver_identical_tuples(self):
        assert_engines_equivalent(run_engine(True), run_engine(False))

    def test_equivalence_with_non_batch_safe_participation(self):
        # BernoulliParticipation draws randomness per decision, so the
        # columnar handler must fall back to per-request sensor calls —
        # and still match the object path exactly.
        participation = lambda sensor_id: BernoulliParticipation(0.6, mean_latency=0.05)
        assert_engines_equivalent(
            run_engine(True, participation=participation),
            run_engine(False, participation=participation),
        )

    def test_equivalence_with_incentives(self):
        col = run_engine(True, incentive=FlatIncentive(0.25))
        obj = run_engine(False, incentive=FlatIncentive(0.25))
        assert_engines_equivalent(col, obj)
        assert col[2][0].handler.incentive_spent == pytest.approx(
            obj[2][0].handler.incentive_spent
        )

    def test_columnar_delivery_is_batched(self):
        engine, handles, reports = run_engine(True, batches=2)
        # One deliver call per (query, cell, batch): totals still add up.
        delivered = sum(report.fabrication.tuples_delivered for report in reports)
        assert delivered == engine.total_tuples_delivered()
        assert delivered == sum(len(handle.results()) for handle in handles)

    def test_results_survive_query_deletion(self):
        engine, handles, _ = run_engine(True, batches=2)
        kept = handles[0].results()
        handles[0].delete()
        engine.run_batch()
        assert handles[0].results() == kept


class TestReportsView:
    def test_reports_is_live_o1_view(self):
        engine, _, _ = run_engine(True, batches=2)
        view = engine.reports
        assert len(view) == 2
        assert engine.reports is view  # no per-access copy
        engine.run_batch()
        assert len(view) == 3  # live view tracks new batches
        assert view[-1].batch_index == 2
        with pytest.raises(TypeError):
            view[0] = None  # read-only
