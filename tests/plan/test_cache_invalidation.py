"""The plan cache must recompile O(changed cells), never O(all cells).

Each test snapshots the live ``(topology identity, rebuild counter, chain
identity)`` triple for every materialised chain before a DDL churn op,
predicts from the *post-op* snapshot exactly which chains the planner's
incremental replanning invalidated, and asserts the cache's lifetime
``compiles`` counter moved by exactly that number on the next batch —
no more (storm-proof), no less (no stale programs).
"""

import pytest

from recovery_harness import SECOND_QUERY, make_engine, run_to


def chain_state(planner):
    """Identity snapshot per (cell, attribute): what the cache keys validity on."""
    state = {}
    for key in planner.materialized_cells:
        topology = planner.cell_topology(key)
        for attribute in topology.attributes:
            state[(key, attribute)] = (
                id(topology),
                topology.rebuilds,
                id(topology.chain(attribute)),
            )
    return state


def predicted_recompiles(before, after):
    """Chains that are new or whose validity triple changed across the op."""
    return sum(1 for key, triple in after.items() if before.get(key) != triple)


@pytest.fixture
def engine():
    # Two overlapping rain queries plus the harness view; warmed up so the
    # cache holds a valid program for every chain before each churn op.
    eng = make_engine()
    eng.execute("ACQUIRE rain FROM RECT(0, 0, 1.5, 1) AT RATE 4 PER KM2 PER MIN AS Edge")
    return run_to(eng, 3)


def churn(engine, statement):
    """Run one DDL op between batches and return (predicted, actual) compiles."""
    before = chain_state(engine.planner)
    compiles_before = engine.plan_cache.compiles
    if statement is not None:
        engine.execute(statement)
    after = chain_state(engine.planner)
    run_to(engine, engine.batches_run + 1)
    actual = engine.plan_cache.compiles - compiles_before
    return predicted_recompiles(before, after), actual


class TestIncrementalInvalidation:
    def test_steady_state_recompiles_nothing(self, engine):
        predicted, actual = churn(engine, None)
        assert (predicted, actual) == (0, 0)
        assert engine.plan_cache.reuses > 0

    def test_alter_rate_recompiles_only_touched_cells(self, engine):
        total = len(chain_state(engine.planner))
        predicted, actual = churn(
            engine, "ALTER Edge SET RATE 2 PER KM2 PER MIN"
        )
        # Edge rides 2 cells; the storm query's other cells keep their
        # programs (strictly fewer recompiles than chains).
        assert actual == predicted
        assert 0 < actual < total

    def test_alter_region_recompiles_only_touched_cells(self, engine):
        total = len(chain_state(engine.planner))
        predicted, actual = churn(
            engine, "ALTER Edge SET REGION RECT(1, 0, 3, 1)"
        )
        assert actual == predicted
        assert 0 < actual < total

    def test_stop_prunes_and_recompiles_only_shrunk_cells(self, engine):
        entries_before = len(engine.plan_cache)
        predicted, actual = churn(engine, "STOP Edge")
        assert actual == predicted
        # Cells Edge rode alone are dropped from the cache outright.
        assert len(engine.plan_cache) <= entries_before

    def test_new_query_compiles_only_its_new_cells(self, engine):
        predicted, actual = churn(engine, SECOND_QUERY)
        assert actual == predicted
        assert actual > 0

    def test_pause_resume_touches_no_topology(self, engine):
        # Pausing is delivery-time suppression — zero rebuilds, zero
        # recompiles, and resuming is equally free.
        handle = engine.query("Edge")
        before = chain_state(engine.planner)
        compiles_before = engine.plan_cache.compiles
        handle.pause()
        run_to(engine, engine.batches_run + 1)
        handle.resume()
        run_to(engine, engine.batches_run + 1)
        assert chain_state(engine.planner) == before
        assert engine.plan_cache.compiles == compiles_before


class TestChurnStorm:
    def test_storm_of_ddl_stays_linear_in_touched_cells(self, engine):
        """A sustained ALTER storm never triggers whole-grid recompiles."""
        storm = [
            "ALTER Edge SET RATE 2 PER KM2 PER MIN",
            "ALTER Storm SET RATE 6 PER KM2 PER MIN",
            "ALTER Edge SET REGION RECT(0.5, 0.5, 2, 1.5)",
            "ALTER Edge SET RATE 3 PER KM2 PER MIN",
            "ALTER Storm SET RATE 8 PER KM2 PER MIN",
            "ALTER Edge SET REGION RECT(0, 0, 1.5, 1)",
        ]
        for statement in storm:
            predicted, actual = churn(engine, statement)
            assert actual == predicted, statement
        # After the storm settles, steady state is all-reuse again.
        predicted, actual = churn(engine, None)
        assert (predicted, actual) == (0, 0)
