"""Golden tests for the per-operator plan IR and the lowered graph.

Every PMAT operator describes its compiled kernel through ``lower_ir()``;
these goldens pin the exact descriptor dicts (names, rates, RNG draw
shapes, containment predicates) so an accidental change to the lowering —
or to the operator parameters the compiler bakes into programs — fails
loudly.  The graph-structure tests pin what ``build_plan_graph`` produces
for a known two-query topology: node kinds, sharing sets, gather wiring,
merge fan-in and the view sort/fold split.
"""

import pytest

from repro.config import BudgetConfig, EngineConfig
from repro.core import CraqrEngine
from repro.plan import build_plan_graph, optimize
from repro.sensing import (
    AlwaysRespond,
    RainField,
    RandomWaypointMobility,
    SensingWorld,
    WorldConfig,
)
from repro.geometry import Rectangle

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)

#: Storm covers cells (0,0),(1,0),(0,1),(1,1) fully; Edge overlaps (0,0)
#: fully and (1,0) partially, so exactly one Partition operator exists.
STORM = "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 8 AS Storm"
EDGE = "ACQUIRE rain FROM RECT(0, 0, 1.5, 1) AT RATE 4 AS Edge"


def make_world(seed=7):
    world = SensingWorld(
        WorldConfig(region=REGION, sensor_count=60, seed=seed),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.3, pause=0.2),
        participation_factory=lambda sensor_id: AlwaysRespond(),
    )
    world.register_field(RainField(REGION, band_width=1.2, period=50.0))
    return world


@pytest.fixture
def engine():
    config = EngineConfig(
        grid_cells=16,
        batch_duration=1.0,
        budget=BudgetConfig(initial=40, delta=10, limit=400, violation_threshold=5.0),
        seed=42,
    )
    eng = CraqrEngine(config, make_world())
    eng.execute(STORM)
    eng.execute(EDGE)
    return eng


def chain_at(engine, key, attribute="rain"):
    return engine.planner.cell_topology(key).chain(attribute)


class TestOperatorIRGoldens:
    def test_flatten_ir(self, engine):
        chain = chain_at(engine, (0, 0))
        assert chain.flatten.lower_ir() == {
            "kind": "flatten-mask",
            "symbol": "F",
            "name": "F:rain@(0, 0)",
            "target_rate": 10.0,  # 1.25 headroom over the highest rate (8)
            "batch_duration": 1.0,
            "estimator": "mle",
            "rng_draws": "random(n)",
        }

    def test_flatten_ir_online_estimator(self):
        config = EngineConfig(
            grid_cells=16,
            batch_duration=1.0,
            budget=BudgetConfig(initial=40, delta=10, limit=400, violation_threshold=5.0),
            seed=42,
            online_estimation=True,
        )
        eng = CraqrEngine(config, make_world())
        eng.execute(STORM)
        ir = chain_at(eng, (0, 0)).flatten.lower_ir()
        assert ir["estimator"] == "online-sgd"

    def test_thin_ir(self, engine):
        chain = chain_at(engine, (0, 0))
        levels = chain.levels
        assert [level.rate for level in levels] == [8.0, 4.0]
        assert levels[0].thin.lower_ir() == {
            "kind": "thin-mask",
            "symbol": "T",
            "name": "T:rain@(0, 0)#0",
            "rate_in": 10.0,
            "rate_out": 8.0,
            "retention_probability": 0.8,
            "rng_draws": "random(m)",
        }
        second = levels[1].thin.lower_ir()
        assert second["rate_in"] == 8.0
        assert second["rate_out"] == 4.0
        assert second["retention_probability"] == 0.5

    def test_partition_ir(self, engine):
        # Edge's tap in cell (1, 0): the overlap [1, 1.5] x [0, 1].
        chain = chain_at(engine, (1, 0))
        taps = chain.levels[1].taps
        assert len(taps) == 1 and taps[0].partition is not None
        assert taps[0].partition.lower_ir() == {
            "kind": "partition-mask",
            "symbol": "P",
            "name": "P:Edge@(1, 0)#1",
            "regions": 1,
            "keep_rest": False,
            "predicate": ((1.0, 0.0, 1.5, 1.0),),
            "rng_draws": "none",
        }

    def test_union_ir(self, engine):
        storm_id = engine.query("Storm").query_id
        ir = engine.planner.union_operator(storm_id).lower_ir()
        assert ir == {
            "kind": "union",
            "symbol": "U",
            "name": "U:Storm",
            "rate": 8.0,
            "rng_draws": "none",
        }

    def test_chain_ir_listing_order(self, engine):
        # Flatten first, then per level thin followed by its partitions.
        descriptors = chain_at(engine, (1, 0)).lower_ir()
        assert [d["kind"] for d in descriptors] == [
            "flatten-mask",
            "thin-mask",
            "thin-mask",
            "partition-mask",
        ]


class TestGraphStructure:
    def test_lowered_graph_shape(self, engine):
        graph = build_plan_graph(engine.planner)
        kinds = {}
        for node in graph.nodes:
            kinds[node.kind] = kinds.get(node.kind, 0) + 1
        # 4 materialised cells, one rain chain each; Storm taps every cell,
        # Edge taps (0,0) and (1,0) (one behind a partition mask).
        assert kinds["source"] == 4
        assert kinds["estimate"] == 4
        # Masks: 4 flatten + 6 thin (two levels in (0,0)/(1,0), one in the
        # Storm-only cells) + 1 partition.
        assert kinds["mask"] == 11
        assert kinds["gather"] == 6
        assert kinds["union"] == 2
        assert kinds["sink"] == 2

    def test_sharing_sets(self, engine):
        graph = build_plan_graph(engine.planner)
        storm_id = engine.query("Storm").query_id
        edge_id = engine.query("Edge").query_id
        shared_sources = [
            node
            for node in graph.nodes_of_kind("source")
            if node.queries == frozenset({storm_id, edge_id})
        ]
        # The two cells both queries ride share source (and chain) nodes.
        assert len(shared_sources) == 2
        for node in graph.nodes_of_kind("gather"):
            assert len(node.queries) == 1  # gathers are per-tap

    def test_union_fan_in_and_gather_wiring(self, engine):
        graph = build_plan_graph(engine.planner)
        unions = {node.label: node for node in graph.nodes_of_kind("union")}
        assert len(unions["U:Storm"].inputs) == 4
        assert len(unions["U:Edge"].inputs) == 2
        for node in graph.nodes_of_kind("gather"):
            source, mask = node.inputs
            assert graph.node(source).kind == "source"
            assert graph.node(mask).kind == "mask"

    def test_view_sort_sharing(self, engine):
        engine.execute("CREATE VIEW A ON Storm AS AVG(value) GROUP BY CELL WINDOW 2")
        engine.execute("CREATE VIEW B ON Storm AS MAX(value) GROUP BY CELL WINDOW 4 SLIDE 2")
        engine.execute("CREATE VIEW C ON Storm AS COUNT(*) WINDOW 2")
        graph = build_plan_graph(engine.planner, engine._views.values())
        # A and B share (slide=2, cell); C sorts alone (slide=2, region).
        assert len(graph.nodes_of_kind("view-sort")) == 2
        assert len(graph.nodes_of_kind("view-sink")) == 3

    def test_optimize_annotations(self, engine):
        graph = optimize(build_plan_graph(engine.planner))
        # One fused kernel per chain, covering every mask node.
        assert len(graph.kernels) == 4
        masked = {i for kernel in graph.kernels for i in kernel.node_ids}
        assert masked == {n.node_id for n in graph.nodes_of_kind("mask")}
        assert graph.shared_cost_saved > 0.0
        union = next(
            n for n in graph.nodes_of_kind("union") if n.label == "U:Storm"
        )
        assert union.details["fan_in"] == 4
        assert union.details["tree_depth"] == 2
        assert union.details["tree_operators"] == 3
