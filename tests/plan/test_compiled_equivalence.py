"""The compiled path's byte-identity contract, pinned across the matrix.

``EngineConfig.compile_plans`` (default on) must be purely an execution
strategy: for every mode combination — strict / fast-sim RNGs, columnar
on / off, the full flaky-crowd fault plan + mitigation bundle active, and
restore-from-checkpoint — the compiled fused kernels must serve exactly
the bytes the interpreted per-operator path serves.  The digests also pin
against the recovery suite's goldens, proving the default flip to
compiled plans changed nothing observable.
"""

from dataclasses import replace

import pytest

from recovery_harness import (
    engine_digest,
    make_engine,
    restore_latest_fresh,
    run_to,
)
from test_snapshot_roundtrip import GOLDEN_FAST_SIM, GOLDEN_STRICT


def make_engine_compiling(compile_plans, **kwargs):
    """The recovery harness's fully loaded engine, with the flag forced."""
    engine = make_engine(**kwargs)
    if engine.config.compile_plans != compile_plans:
        engine._config = replace(engine.config, compile_plans=compile_plans)
    return engine


class TestCompiledInterpretedEquivalence:
    @pytest.mark.parametrize("vectorized", [False, True], ids=["strict", "fast-sim"])
    def test_digest_matrix(self, vectorized):
        compiled = run_to(make_engine_compiling(True, vectorized=vectorized), 8)
        interpreted = run_to(make_engine_compiling(False, vectorized=vectorized), 8)
        golden = GOLDEN_FAST_SIM if vectorized else GOLDEN_STRICT
        assert engine_digest(compiled) == golden
        assert engine_digest(interpreted) == golden
        # The compiled run actually compiled (and reused) programs; the
        # interpreted run never touched the plan machinery.
        assert compiled.plan_cache is not None
        assert compiled.plan_cache.compiles > 0
        assert compiled.plan_cache.reuses > 0
        assert interpreted.plan_cache is None

    def test_object_path_ignores_the_flag(self):
        # columnar=False has no batches to compile; both flag values run
        # the object path and still hit the shared golden.
        engine = run_to(make_engine_compiling(True, columnar=False), 8)
        assert engine_digest(engine) == GOLDEN_STRICT
        assert engine.plan_cache is None

    def test_store_discarded_falls_back_to_interpreted(self, tmp_path):
        from repro.config import BudgetConfig, EngineConfig
        from repro.core import CraqrEngine
        from recovery_harness import make_world, simulate_fresh_process

        def build(store_discarded):
            simulate_fresh_process()
            config = EngineConfig(
                grid_cells=16,
                batch_duration=1.0,
                budget=BudgetConfig(
                    initial=40, delta=10, limit=400, violation_threshold=5.0
                ),
                seed=42,
                store_discarded=store_discarded,
            )
            engine = CraqrEngine(config, make_world())
            engine.execute(
                "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 8 PER KM2 PER MIN AS Storm"
            )
            return run_to(engine, 4)

        recording = build(True)
        plain = build(False)
        # Discard recording needs the dropped tuples materialised, so the
        # compiled path stands down — and the streams still agree.
        assert recording.plan_cache is None
        assert plain.plan_cache is not None
        assert recording.discarded_store.total_discarded > 0
        assert engine_digest(recording) == engine_digest(plain)


class TestRestoreEquivalence:
    def test_restored_compiled_run_hits_the_golden(self, tmp_path):
        # Run A: uninterrupted to 8. Run B: crash after 5, restore from the
        # batch-4 checkpoint, continue to 8. Both compiled, both golden.
        run_to(make_engine_compiling(True, checkpoint_dir=tmp_path, every=2), 5)
        restored = restore_latest_fresh(tmp_path)
        # The plan cache is derived state: never checkpointed, rebuilt
        # lazily on the first batch after restore.
        assert restored.plan_cache is None
        run_to(restored, 8)
        assert restored.plan_cache is not None
        assert restored.plan_cache.compiles > 0
        assert engine_digest(restored) == GOLDEN_STRICT

    def test_cross_mode_restore(self, tmp_path):
        # A checkpoint taken by a compiled engine restores into an
        # interpreted continuation (and vice versa) with identical bytes:
        # nothing about the execution strategy leaks into the snapshot.
        run_to(make_engine_compiling(True, checkpoint_dir=tmp_path, every=2), 5)
        as_interpreted = restore_latest_fresh(tmp_path)
        as_interpreted._config = replace(
            as_interpreted.config, compile_plans=False
        )
        run_to(as_interpreted, 8)
        assert as_interpreted.plan_cache is None
        assert engine_digest(as_interpreted) == GOLDEN_STRICT


class TestSharedViewSorts:
    def test_shared_sort_cache_is_byte_identical(self):
        def build(compile_plans):
            engine = make_engine_compiling(compile_plans)
            # Three more views on the same query: two share the default
            # view's (slide=2, cell) signature, one sorts alone.
            engine.execute(
                "CREATE VIEW RainMax ON Storm AS MAX(value) GROUP BY CELL WINDOW 2"
            )
            engine.execute(
                "CREATE VIEW RainSum ON Storm AS SUM(value) GROUP BY CELL WINDOW 4 SLIDE 2"
            )
            engine.execute("CREATE VIEW RainCount ON Storm AS COUNT(*) WINDOW 2")
            return run_to(engine, 8)

        compiled = build(True)
        interpreted = build(False)
        assert engine_digest(compiled) == engine_digest(interpreted)
        view = compiled._views["Rain"]
        cache = view._shared_sort
        assert cache is not None
        # All four views on Storm share one cache object; the three views
        # with the (slide=2, cell/region) signatures produced actual reuse.
        assert compiled._views["RainMax"]._shared_sort is cache
        assert compiled._views["RainCount"]._shared_sort is cache
        assert cache.hits > 0
        # The interpreted run installs no cache on views created after the
        # flag flipped off (the harness's default view predates the flip).
        assert interpreted._views["RainMax"]._shared_sort is None
        assert interpreted._views["RainCount"]._shared_sort is None

    def test_views_created_after_restore_share_the_cache(self, tmp_path):
        def drive(engine):
            run_to(engine, 6)
            engine.execute(
                "CREATE VIEW Late ON Storm AS MAX(value) GROUP BY CELL WINDOW 2"
            )
            return run_to(engine, 8)

        run_to(make_engine_compiling(True, checkpoint_dir=tmp_path, every=2), 5)
        restored = restore_latest_fresh(tmp_path)
        drive(restored)
        assert restored._views["Late"]._shared_sort is (
            restored._views["Rain"]._shared_sort
        )
        uninterrupted = drive(make_engine_compiling(True))
        assert engine_digest(restored) == engine_digest(uninterrupted)
