"""``EXPLAIN <query|view>`` — the plan made visible through the DDL.

The statement parses like the rest of the session DDL, executes against a
live engine, and renders the optimized dataflow graph: every node with its
inputs, the fused kernels, the merge-stage choice (flat vs tree), the
seed-era cost-model estimate and the optimizer's sharing notes.
"""

from dataclasses import replace

import pytest

from repro.query import ExplainStatement, parse_statements
from repro.errors import QueryError

from recovery_harness import make_engine, run_to


@pytest.fixture
def engine():
    return run_to(make_engine(), 2)


class TestParsing:
    def test_explain_parses_to_statement(self):
        (stmt,) = parse_statements("EXPLAIN Storm")
        assert stmt == ExplainStatement(name="Storm")

    def test_explain_is_case_insensitive_and_batchable(self):
        stmts = parse_statements("explain Storm; EXPLAIN Rain")
        assert [s.name for s in stmts] == ["Storm", "Rain"]

    def test_explain_requires_a_name(self):
        with pytest.raises(QueryError, match="query or view name"):
            parse_statements("EXPLAIN")


class TestRendering:
    def test_query_target_shows_the_full_plan(self, engine):
        text = engine.execute("EXPLAIN Storm")
        assert isinstance(text, str)
        assert text.startswith("EXPLAIN query 'Storm'")
        assert "execution mode: compiled (fused kernels)" in text
        # The dataflow section lists every operator kind in the chain.
        for label in (
            "source:rain@(0, 0)",
            "F:rain@(0, 0)",
            "T:rain@(0, 0)#0",
            "gather:q1@(0, 0)",
            "U:Storm",
            "buffer:Storm",
        ):
            assert label in text
        assert "fused kernels (4):" in text
        assert "merge stage: flat union over 4 per-cell streams" in text
        assert "tree alternative (fan-in 2): depth 2, 3 union operators" in text
        assert "cost estimate (steady-state, seed cost model):" in text
        assert "keep-mask fusion: 4 chains -> 4 fused kernels" in text

    def test_view_target_scopes_to_that_view(self, engine):
        engine.execute("CREATE VIEW Other ON Storm AS COUNT(*) WINDOW 4")
        text = engine.execute("EXPLAIN Rain")
        assert text.startswith("EXPLAIN view 'Rain' on query 'Storm'")
        assert "view:Rain" in text
        # The sibling view's sink is pruned from this view's plan.
        assert "view:Other" not in text
        assert "sort:q1/slide=2" in text

    def test_interpreted_mode_is_reported(self, engine):
        engine._config = replace(engine.config, compile_plans=False)
        text = engine.execute("EXPLAIN Storm")
        assert "execution mode: interpreted (per-operator reference path)" in text

    def test_unknown_name_is_a_clear_error(self, engine):
        with pytest.raises(QueryError, match="matches no registered query"):
            engine.execute("EXPLAIN Nope")


class TestReplIntegration:
    def test_repl_prints_the_plan(self, engine):
        from repro.cli import _execute_repl_statement
        from repro.query import AttributeCatalog

        (stmt,) = parse_statements("EXPLAIN Storm")
        lines = []
        _execute_repl_statement(engine, AttributeCatalog(), stmt, lines.append)
        out = "\n".join(lines)
        assert "EXPLAIN query 'Storm'" in out
        assert "fused kernels" in out

    def test_repl_help_mentions_explain(self):
        from repro.cli import _REPL_HELP

        assert "EXPLAIN <query|view>" in _REPL_HELP
