"""Path setup for the plan-compiler suite.

The equivalence matrix reuses the recovery suite's fully loaded workload
builders (flaky crowd + mitigation + view) and its ``engine_digest``
byte-identity oracle, so the recovery harness directory joins the path.
"""

from __future__ import annotations

import pathlib
import sys

_RECOVERY_DIR = pathlib.Path(__file__).resolve().parent.parent / "recovery"
if str(_RECOVERY_DIR) not in sys.path:
    sys.path.insert(0, str(_RECOVERY_DIR))
