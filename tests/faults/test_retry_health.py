"""Retry budgeting, pay-on-accept incentives and sensor-health round-trips.

The retry contract is exact, not statistical: a cell's budget bounds its
*lifetime* request count for the round across all waves, and with a retry
policy configured the incentive ledger holds exactly one payment per
accepted response.  The health monitor's quarantine / probation cycle is
driven here directly with synthetic waves, then end-to-end through a
handler whose crowd contains sensors a fault plan has broken.
"""

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    HealthConfig,
    ResilienceConfig,
    RetryPolicy,
    SensorHealthMonitor,
)
from repro.geometry import Grid, Rectangle
from repro.sensing import (
    BernoulliParticipation,
    FlatIncentive,
    RainField,
    RandomWaypointMobility,
    RequestResponseHandler,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


def make_world(*, vectorized=False, sensor_count=600, seed=31, probability=0.8):
    world = SensingWorld(
        WorldConfig(
            region=REGION,
            sensor_count=sensor_count,
            seed=seed,
            vectorized_rng=vectorized,
        ),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.4),
        participation_factory=lambda i: BernoulliParticipation(
            probability, mean_latency=0.05
        ),
    )
    world.register_field(RainField(REGION))
    world.register_field(TemperatureField(REGION))
    return world


def make_handler(world, *, budget=40, incentive=None, faults=None, resilience=None):
    grid = Grid(REGION, side=4)
    from repro.faults import FaultInjector

    injector = (
        FaultInjector(faults, world.state_arrays) if faults is not None else None
    )
    health = (
        SensorHealthMonitor(resilience.health, world.state_arrays)
        if resilience is not None and resilience.health is not None
        else None
    )
    return RequestResponseHandler(
        world,
        grid,
        default_budget=budget,
        incentive=incentive,
        faults=injector,
        resilience=resilience,
        health=health,
    )


def run_rounds(handler, world, attribute, rounds=4, duration=1.0):
    cells = list(handler.grid.cells())
    reports = []
    for _ in range(rounds):
        _, report = handler.acquire({attribute: cells}, duration=duration)
        world.advance(duration)
        reports.append(report)
    return reports


DROPPY = FaultPlan(seed=5, drop_probability=0.5)
RETRYING = ResilienceConfig(
    deadline=0.4,
    retry=RetryPolicy(max_attempts=3, reserve_fraction=0.25),
    health=None,
)


@pytest.mark.parametrize("vectorized", [False, True])
class TestRetryBudgetExactness:
    def test_budget_bounds_requests_across_waves(self, vectorized):
        world = make_world(vectorized=vectorized)
        handler = make_handler(world, budget=40, faults=DROPPY, resilience=RETRYING)
        reports = run_rounds(handler, world, "temp")
        assert sum(r.retries_sent for r in reports) > 0
        for report in reports:
            for pair, sent in report.per_cell_requests.items():
                assert sent <= handler.budget_for(*pair)

    def test_incentives_paid_only_for_accepted_responses(self, vectorized):
        world = make_world(vectorized=vectorized)
        incentive = FlatIncentive(0.25)
        handler = make_handler(
            world, budget=40, incentive=incentive,
            faults=DROPPY, resilience=RETRYING,
        )
        reports = run_rounds(handler, world, "temp")
        accepted = sum(r.responses_received for r in reports)
        assert incentive.payments == accepted
        assert incentive.total_spent == pytest.approx(0.25 * accepted)

    def test_reserve_never_swallows_the_whole_budget(self, vectorized):
        world = make_world(vectorized=vectorized, probability=0.95)
        # With a tiny budget, floor(budget * fraction) clamps to budget - 1
        # at most, so the first wave always sends at least one request.
        handler = make_handler(
            world,
            budget=2,
            faults=FaultPlan(seed=6, drop_probability=0.9),
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2, reserve_fraction=0.9),
                health=None,
            ),
        )
        reports = run_rounds(handler, world, "temp", rounds=2)
        for report in reports:
            for pair, sent in report.per_cell_requests.items():
                assert 1 <= sent <= handler.budget_for(*pair)


class _SoAShim:
    """Reliability/quarantine columns without a full sensing world."""

    def __init__(self, count):
        self.reliability = np.ones(count)
        self.quarantined = np.zeros(count, dtype=bool)
        self.sensor_ids = np.arange(count)

    def __len__(self):
        return len(self.sensor_ids)


class TestQuarantineRoundTrips:
    CONFIG = HealthConfig(
        ewma_alpha=0.5,
        failure_threshold=0.3,
        min_requests=4,
        quarantine_batches=2,
        probation=True,
        probation_reliability=0.5,
        recovery_threshold=0.6,
        stuck_repeats=3,
    )

    def _fail_rounds(self, monitor, rows, rounds):
        rows = np.asarray(rows)
        for _ in range(rounds):
            monitor.observe(rows, np.zeros(len(rows), dtype=bool))
            monitor.commit_round()

    def test_failure_quarantine_then_probation_release(self):
        state = _SoAShim(8)
        monitor = SensorHealthMonitor(self.CONFIG, state)
        self._fail_rounds(monitor, [0, 1], 4)
        assert state.quarantined[[0, 1]].all()
        assert not state.quarantined[2:].any()
        assert monitor.summary().quarantine_events == 2
        # Serve out the quarantine term: commits without contact.
        monitor.commit_round()
        monitor.commit_round()
        assert not state.quarantined[[0, 1]].any()
        summary = monitor.summary()
        assert summary.released == 2
        assert summary.on_probation == 2
        assert state.reliability[0] == pytest.approx(0.5)

    def test_probation_recovery_clears_the_flag(self):
        state = _SoAShim(4)
        monitor = SensorHealthMonitor(self.CONFIG, state)
        self._fail_rounds(monitor, [0], 4)
        monitor.commit_round()
        monitor.commit_round()
        assert monitor.summary().on_probation == 1
        # A clean round folds 1.0 into the EWMA: 0.5*0.5 + 0.5*1.0 = 0.75.
        monitor.observe(np.array([0]), np.ones(1, dtype=bool))
        monitor.commit_round()
        assert monitor.summary().on_probation == 0
        assert not state.quarantined[0]

    def test_disabled_probation_is_a_permanent_sentence(self):
        config = HealthConfig(
            ewma_alpha=0.5,
            failure_threshold=0.3,
            min_requests=4,
            quarantine_batches=1,
            probation=False,
        )
        state = _SoAShim(4)
        monitor = SensorHealthMonitor(config, state)
        self._fail_rounds(monitor, [0], 4)
        assert state.quarantined[0]
        for _ in range(6):
            monitor.commit_round()
        assert state.quarantined[0]
        assert monitor.summary().released == 0

    def test_stuck_readings_trigger_quarantine(self):
        state = _SoAShim(4)
        monitor = SensorHealthMonitor(self.CONFIG, state)
        rows = np.array([0])
        for _ in range(4):
            monitor.observe(rows, np.ones(1, dtype=bool))
            monitor.observe_values("temp", rows, np.array([21.5]))
            monitor.commit_round()
        assert state.quarantined[0]
        assert monitor.summary().stuck_quarantines == 1
        # Boolean streams never feed the detector.
        monitor.observe_values("rain", np.array([1]), np.array([True, True])[:1])
        assert not state.quarantined[1]

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_quarantined_sensors_leave_candidate_populations(self, vectorized):
        world = make_world(vectorized=vectorized, sensor_count=400, probability=0.95)
        handler = make_handler(
            world,
            budget=30,
            resilience=ResilienceConfig(health=HealthConfig(min_requests=1)),
        )
        state = world.state_arrays
        healthy = set(state.sensor_ids[:5].tolist())
        state.quarantined[:] = True
        state.quarantined[:5] = False
        tuples_by_cell, report = handler.acquire(
            {"temp": list(handler.grid.cells())}, duration=1.0
        )
        assert report.requests_sent > 0
        responders = {
            item.sensor_id
            for items in tuples_by_cell.values()
            for item in items
        }
        assert responders  # the healthy remnant still serves the query
        assert responders <= healthy
