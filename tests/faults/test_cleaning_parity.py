"""Cleaning-operator parity on fault-corrupted streams.

The error-mitigation operators are the engine's last line of defence
against an injected fault plan, so their object and columnar paths must
agree *exactly* on what they discard or repair when the stream is heavy
with injected outliers — a drift between the two accounting paths would
silently skew every downstream rate estimate.
"""

import numpy as np

from repro.core.pmat import ClampOperator, OutlierFilterOperator
from repro.faults import FaultPlan
from repro.geometry import Rectangle
from repro.streams import CollectingSink, TupleBatch
from tests.faults.test_retry_health import make_handler, make_world

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


def corrupted_stream(*, rounds=3):
    """Tuples acquired under a plan spiking one response in four."""
    plan = FaultPlan(seed=13, outlier_probability=0.25, outlier_scale=60.0)
    world = make_world(vectorized=False, sensor_count=800, seed=37)
    handler = make_handler(world, budget=50, faults=plan)
    items = []
    for _ in range(rounds):
        tuples_by_cell, _ = handler.acquire(
            {"temp": list(handler.grid.cells())}, duration=1.0
        )
        for cell_items in tuples_by_cell.values():
            items.extend(cell_items)
        world.advance(1.0)
    assert handler.faults.outliers_injected > 100
    return items


def object_path(operator, items):
    sink = CollectingSink().attach(operator.outputs[0])
    for item in items:
        operator.accept(item)
    operator.flush()
    return list(sink.items)


class TestOutlierFilterParity:
    def test_discard_accounting_matches_under_heavy_outliers(self):
        items = corrupted_stream()
        object_op = OutlierFilterOperator(window=50, z_threshold=4.0)
        columnar_op = OutlierFilterOperator(window=50, z_threshold=4.0)
        kept_objects = object_path(object_op, items)
        kept_batch = columnar_op.process_batch(TupleBatch.from_tuples(items))
        # The injected spikes actually exercise the filter...
        assert object_op.dropped > 0
        # ...and both paths discard the same tuples, not just the same count.
        assert object_op.dropped == columnar_op.dropped
        assert [item.tuple_id for item in kept_objects] == [
            int(i) for i in kept_batch.tuple_id
        ]
        assert len(items) - len(kept_objects) == object_op.dropped


class TestClampParity:
    def test_clamp_accounting_matches_on_displaced_tuples(self):
        items = corrupted_stream(rounds=1)
        # Displace a deterministic subset out of the region, mimicking the
        # gross GPS errors the clamp exists for.
        displaced = [
            item if i % 3 else type(item)(
                tuple_id=item.tuple_id,
                attribute=item.attribute,
                t=item.t,
                x=item.x + 10.0,
                y=item.y - 10.0,
                value=item.value,
                sensor_id=item.sensor_id,
            )
            for i, item in enumerate(items)
        ]
        object_op = ClampOperator(REGION)
        columnar_op = ClampOperator(REGION)
        clamped_objects = object_path(object_op, displaced)
        clamped_batch = columnar_op.process_batch(TupleBatch.from_tuples(displaced))
        assert object_op.clamped > 0
        assert object_op.clamped == columnar_op.clamped
        assert np.allclose(
            [item.x for item in clamped_objects], clamped_batch.x
        )
        assert np.allclose(
            [item.y for item in clamped_objects], clamped_batch.y
        )
        # Every surviving coordinate is back inside the deployment region.
        assert clamped_batch.x.min() >= REGION.x_min
        assert clamped_batch.x.max() <= REGION.x_max
