"""Fault injection: stream isolation, reproducibility and path parity.

The load-bearing contract is **stream isolation**: the injector owns a
private generator, so an engine with no :class:`FaultPlan` configured is
seeded byte-identical to a build where the fault subsystem does not exist
(pinned here by a golden stream hash), and a given plan seed replays the
same fault history regardless of the crowd.  Under faults the strict
object and columnar paths share one wave implementation and therefore stay
byte-identical to each other.
"""

import hashlib
from dataclasses import replace

import numpy as np
import pytest

from repro.core import CraqrEngine
from repro.faults import FaultInjector, FaultPlan
from repro.workloads import (
    build_rain_temperature_world,
    default_engine_config,
    default_resilience_config,
    flaky_crowd_plan,
)

#: sha256 of the delivered streams of the reference two-query strict run,
#: computed before the fault subsystem existed.  A fault-free engine must
#: reproduce it bit for bit on both the object and the columnar path.
GOLDEN_STREAM_HASH = "e66d8d1a2aa03e095b57e592301f5ba1c88ee75b6112a8bd96c3fadebbe12b5c"


def run_reference_engine(*, columnar, faults=None, resilience=None):
    world = build_rain_temperature_world(sensor_count=120, seed=11)
    config = replace(
        default_engine_config(seed=7),
        columnar=columnar,
        faults=faults,
        resilience=resilience,
    )
    engine = CraqrEngine(config, world)
    h1 = engine.execute(
        "ACQUIRE rain FROM RECT(0,0,2.5,2.5) AT RATE 8 PER KM2 PER MIN AS Storm"
    )
    h2 = engine.execute(
        "ACQUIRE temp FROM RECT(1,1,4,4) AT RATE 6 PER KM2 PER MIN AS Heat"
    )
    engine.run(8)
    return engine, h1, h2


def stream_hash(*handles):
    digest = hashlib.sha256()
    for handle in handles:
        for item in handle.results():
            digest.update(
                repr(
                    (
                        item.tuple_id,
                        item.attribute,
                        round(item.t, 9),
                        round(item.x, 9),
                        round(item.y, 9),
                        item.value,
                        item.sensor_id,
                    )
                ).encode()
            )
    return digest.hexdigest()


class _StateShim:
    """Just enough of SensorStateArrays for a standalone injector."""

    def __init__(self, count):
        self._count = count

    def __len__(self):
        return self._count


class TestNoFaultByteIdentity:
    @pytest.mark.parametrize("columnar", [False, True])
    def test_fault_free_engine_matches_golden_stream(self, columnar):
        _, h1, h2 = run_reference_engine(columnar=columnar)
        assert stream_hash(h1, h2) == GOLDEN_STREAM_HASH


class TestSeededReproducibility:
    def test_same_plan_seed_replays_the_same_fault_history(self):
        plan = flaky_crowd_plan(seed=23)
        resilience = default_resilience_config()
        runs = []
        for _ in range(2):
            engine, h1, h2 = run_reference_engine(
                columnar=False, faults=plan, resilience=resilience
            )
            injector = engine.fault_injector
            report = engine.reports[-1].handler
            runs.append(
                (
                    stream_hash(h1, h2),
                    injector.requests_seen,
                    injector.drops_injected,
                    injector.outliers_injected,
                    injector.stuck_replays,
                    injector.latencies_inflated,
                    report.timeouts,
                    report.retries_sent,
                )
            )
        assert runs[0] == runs[1]

    def test_faults_actually_fire(self):
        engine, _, _ = run_reference_engine(
            columnar=False,
            faults=flaky_crowd_plan(seed=23),
            resilience=default_resilience_config(),
        )
        injector = engine.fault_injector
        assert injector.drops_injected > 0
        assert injector.outliers_injected > 0
        assert injector.latencies_inflated > 0
        totals = [r.handler for r in engine.reports]
        assert sum(r.timeouts for r in totals) > 0
        assert sum(r.retries_sent for r in totals) > 0


class TestObjectColumnarParityUnderFaults:
    def test_strict_paths_stay_byte_identical_under_faults(self):
        plan = flaky_crowd_plan(seed=23)
        resilience = default_resilience_config()
        object_engine, oh1, oh2 = run_reference_engine(
            columnar=False, faults=plan, resilience=resilience
        )
        columnar_engine, ch1, ch2 = run_reference_engine(
            columnar=True, faults=plan, resilience=resilience
        )
        assert stream_hash(oh1, oh2) == stream_hash(ch1, ch2)
        for object_report, columnar_report in zip(
            (r.handler for r in object_engine.reports),
            (r.handler for r in columnar_engine.reports),
        ):
            assert object_report.requests_sent == columnar_report.requests_sent
            assert object_report.responses_received == columnar_report.responses_received
            assert object_report.timeouts == columnar_report.timeouts
            assert object_report.drops_injected == columnar_report.drops_injected
            assert object_report.retries_sent == columnar_report.retries_sent
            assert object_report.per_cell_requests == columnar_report.per_cell_requests
            assert object_report.per_cell_responses == columnar_report.per_cell_responses
            assert object_report.per_cell_timeouts == columnar_report.per_cell_timeouts
            assert object_report.per_cell_drops == columnar_report.per_cell_drops
            assert object_report.per_cell_retries == columnar_report.per_cell_retries


class TestInjectorUnits:
    def _wave(self, injector, attribute, values, *, rows=None, times=None):
        n = len(values)
        rows = np.arange(n) if rows is None else np.asarray(rows)
        times = np.zeros(n) if times is None else np.asarray(times)
        return injector.apply_round(
            attribute,
            rows=rows,
            request_times=times,
            segments=np.zeros(n, dtype=np.int64),
            cell_keys=((0, 0),),
            responded=np.ones(n, dtype=bool),
            latencies=np.full(n, 0.1),
            values=np.asarray(values),
        )

    def test_stuck_sensor_replays_its_first_value(self):
        plan = FaultPlan(seed=1, stuck_fraction=1.0)
        injector = FaultInjector(plan, _StateShim(4))
        assert injector.stuck_rows.tolist() == [0, 1, 2, 3]
        first = self._wave(injector, "temp", [1.0, 2.0, 3.0, 4.0])
        # The first wave only seeds the replay values.
        assert first.values.tolist() == [1.0, 2.0, 3.0, 4.0]
        assert injector.stuck_replays == 0
        second = self._wave(injector, "temp", [9.0, 9.0, 9.0, 9.0])
        assert second.values.tolist() == [1.0, 2.0, 3.0, 4.0]
        assert injector.stuck_replays == 4
        # Replay state is per attribute: a fresh attribute seeds anew.
        other = self._wave(injector, "rain", [True, False, True, False])
        assert other.values.tolist() == [True, False, True, False]

    def test_outliers_spike_floats_only(self):
        plan = FaultPlan(seed=2, outlier_probability=1.0, outlier_scale=100.0)
        injector = FaultInjector(plan, _StateShim(8))
        floats = self._wave(injector, "temp", np.full(8, 20.0))
        assert np.all(np.abs(floats.values - 20.0) == 100.0)
        assert injector.outliers_injected == 8
        bools = self._wave(injector, "rain", np.zeros(8, dtype=bool))
        assert bools.values.dtype.kind == "b"
        assert injector.outliers_injected == 8  # unchanged

    def test_clock_skew_is_bounded(self):
        plan = FaultPlan(seed=3, clock_skew_max=0.25)
        injector = FaultInjector(plan, _StateShim(64))
        outcome = self._wave(injector, "temp", np.linspace(0.0, 1.0, 64))
        assert outcome.skew is not None
        assert np.all(np.abs(outcome.skew) <= 0.25)

    def test_outage_drops_only_inside_window_and_cells(self):
        from repro.faults import CellOutage

        plan = FaultPlan(
            seed=4,
            outages=(CellOutage(start=1.0, end=2.0, cells=((0, 0),)),),
        )
        injector = FaultInjector(plan, _StateShim(6))
        n = 6
        outcome = injector.apply_round(
            "temp",
            rows=np.arange(n),
            request_times=np.array([0.5, 1.5, 1.5, 1.5, 2.5, 1.5]),
            segments=np.array([0, 0, 0, 0, 0, 1]),
            cell_keys=((0, 0), (1, 1)),
            responded=np.ones(n, dtype=bool),
            latencies=np.full(n, 0.1),
            values=np.full(n, 20.0),
        )
        # Only requests 1..3 target the dead cell inside the window.
        assert outcome.dropped.tolist() == [False, True, True, True, False, False]
