"""Strict vs fast-sim statistical equivalence per fault model.

The strict path draws faults per cell wave, the fused fast-sim path once
per attribute wave, so their injector streams diverge — the contract is
distributional: for the same plan, the injected drop rate, timeout rate
and corruption counters agree within sampling tolerance over a few
thousand requests.
"""

import numpy as np
import pytest

from repro.faults import BurstDropModel, FaultPlan, ResilienceConfig
from tests.faults.test_retry_health import make_handler, make_world, run_rounds


def fault_rates(*, vectorized, faults, resilience=None, rounds=6):
    world = make_world(vectorized=vectorized, sensor_count=1500, seed=41)
    handler = make_handler(world, budget=60, faults=faults, resilience=resilience)
    reports = run_rounds(handler, world, "temp", rounds=rounds)
    injector = handler.faults
    requests = sum(r.requests_sent for r in reports)
    responses = sum(r.responses_received for r in reports)
    timeouts = sum(r.timeouts for r in reports)
    return {
        "requests": requests,
        "response_rate": responses / requests,
        "drop_rate": injector.drops_injected / injector.requests_seen,
        "timeout_rate": timeouts / requests,
        "outlier_rate": injector.outliers_injected / injector.requests_seen,
        "inflation_rate": injector.latencies_inflated / injector.requests_seen,
    }


def assert_close(strict, fused, key, abs_tol):
    assert strict[key] == pytest.approx(fused[key], abs=abs_tol), key


class TestStrictFusedEquivalence:
    def test_iid_drops(self):
        plan = FaultPlan(seed=7, drop_probability=0.3)
        strict = fault_rates(vectorized=False, faults=plan)
        fused = fault_rates(vectorized=True, faults=plan)
        # Participation is Bernoulli(0.8), so drops / requests ~ 0.8 * 0.3.
        for stats in (strict, fused):
            assert stats["drop_rate"] == pytest.approx(0.24, abs=0.03)
        assert_close(strict, fused, "drop_rate", 0.03)
        assert_close(strict, fused, "response_rate", 0.04)

    def test_bursty_drops(self):
        plan = FaultPlan(
            seed=8,
            burst=BurstDropModel(
                enter_probability=0.1, exit_probability=0.4, drop_probability=0.9
            ),
        )
        strict = fault_rates(vectorized=False, faults=plan)
        fused = fault_rates(vectorized=True, faults=plan)
        assert strict["drop_rate"] > 0.05
        assert_close(strict, fused, "drop_rate", 0.05)

    def test_latency_inflation_and_deadline_timeouts(self):
        plan = FaultPlan(
            seed=9, latency_inflation_probability=0.2, latency_inflation_factor=20.0
        )
        resilience = ResilienceConfig(deadline=0.5, health=None)
        strict = fault_rates(vectorized=False, faults=plan, resilience=resilience)
        fused = fault_rates(vectorized=True, faults=plan, resilience=resilience)
        # An inflated response at factor 20 essentially always misses the
        # deadline: timeouts / requests ~ participation * inflation rate.
        for stats in (strict, fused):
            assert stats["inflation_rate"] == pytest.approx(0.2 * 0.8, abs=0.03)
            assert stats["timeout_rate"] > 0.08
        assert_close(strict, fused, "timeout_rate", 0.04)
        assert_close(strict, fused, "response_rate", 0.04)

    def test_outlier_injection(self):
        plan = FaultPlan(seed=10, outlier_probability=0.15, outlier_scale=40.0)
        strict = fault_rates(vectorized=False, faults=plan)
        fused = fault_rates(vectorized=True, faults=plan)
        for stats in (strict, fused):
            assert stats["outlier_rate"] == pytest.approx(0.15 * 0.8, abs=0.03)
        assert_close(strict, fused, "outlier_rate", 0.03)

    def test_stuck_fraction_designation_is_plan_seeded(self):
        plan = FaultPlan(seed=11, stuck_fraction=0.25)
        strict_world = make_world(vectorized=False, sensor_count=1500, seed=41)
        fused_world = make_world(vectorized=True, sensor_count=1500, seed=42)
        strict_handler = make_handler(strict_world, faults=plan)
        fused_handler = make_handler(fused_world, faults=plan)
        # Same plan seed, same crowd size -> the same stuck designation,
        # independent of the crowd seed and RNG mode.
        assert np.array_equal(
            strict_handler.faults.stuck_rows, fused_handler.faults.stuck_rows
        )
        assert len(strict_handler.faults.stuck_rows) == pytest.approx(
            0.25 * 1500, abs=60
        )
