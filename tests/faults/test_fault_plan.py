"""Validation of the declarative fault / resilience configuration."""

import pytest

from repro.errors import CraqrError
from repro.faults import (
    BurstDropModel,
    CellOutage,
    FaultPlan,
    HealthConfig,
    ResilienceConfig,
    RetryPolicy,
)


class TestFaultPlanValidation:
    def test_probabilities_must_be_in_unit_interval(self):
        for name in (
            "drop_probability",
            "stuck_fraction",
            "outlier_probability",
            "latency_inflation_probability",
        ):
            with pytest.raises(CraqrError):
                FaultPlan(**{name: 1.5})
            with pytest.raises(CraqrError):
                FaultPlan(**{name: -0.1})

    def test_scale_and_factor_bounds(self):
        with pytest.raises(CraqrError):
            FaultPlan(outlier_scale=-1.0)
        with pytest.raises(CraqrError):
            FaultPlan(latency_inflation_factor=0.5)
        with pytest.raises(CraqrError):
            FaultPlan(clock_skew_max=-0.01)

    def test_drops_responses_reflects_all_drop_sources(self):
        assert not FaultPlan().drops_responses
        assert FaultPlan(drop_probability=0.1).drops_responses
        assert FaultPlan(
            burst=BurstDropModel(enter_probability=0.1, exit_probability=0.5)
        ).drops_responses
        assert FaultPlan(outages=(CellOutage(start=1.0, end=2.0),)).drops_responses
        # Corruption-only plans do not drop anything.
        assert not FaultPlan(outlier_probability=0.5, stuck_fraction=0.2).drops_responses

    def test_burst_model_rejects_never_ending_bursts(self):
        with pytest.raises(CraqrError):
            BurstDropModel(enter_probability=0.1, exit_probability=0.0)
        # An all-zero chain is inert but legal.
        BurstDropModel(enter_probability=0.0, exit_probability=0.0)

    def test_outage_window_and_coverage(self):
        with pytest.raises(CraqrError):
            CellOutage(start=2.0, end=2.0)
        outage = CellOutage(start=0.0, end=5.0, cells=((0, 0), (1, 1)))
        assert outage.covers((0, 0))
        assert not outage.covers((2, 2))
        assert CellOutage(start=0.0, end=1.0).covers((3, 3))  # None == whole region


class TestResilienceValidation:
    def test_retry_policy_bounds(self):
        with pytest.raises(CraqrError):
            RetryPolicy(max_attempts=1)
        with pytest.raises(CraqrError):
            RetryPolicy(reserve_fraction=0.0)
        with pytest.raises(CraqrError):
            RetryPolicy(reserve_fraction=1.0)

    def test_health_config_bounds(self):
        with pytest.raises(CraqrError):
            HealthConfig(ewma_alpha=0.0)
        with pytest.raises(CraqrError):
            HealthConfig(failure_threshold=0.0)
        with pytest.raises(CraqrError):
            HealthConfig(min_requests=0)
        with pytest.raises(CraqrError):
            HealthConfig(stuck_repeats=1)
        with pytest.raises(CraqrError):
            # Recovery must sit strictly above failure.
            HealthConfig(failure_threshold=0.5, recovery_threshold=0.4)

    def test_resilience_config_bounds(self):
        with pytest.raises(CraqrError):
            ResilienceConfig(deadline=0.0)
        with pytest.raises(CraqrError):
            ResilienceConfig(degraded_response_rate=1.0)
        with pytest.raises(CraqrError):
            ResilienceConfig(degraded_alpha=0.0)
        # Deadline-only mitigation (no retry, no health) is a legal bundle.
        bundle = ResilienceConfig(deadline=0.5, health=None)
        assert bundle.retry is None and bundle.health is None
