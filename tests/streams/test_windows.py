"""Unit tests for batch, tumbling and sliding windows."""

import pytest

from repro.errors import StreamError
from repro.streams import BatchWindow, SensorTuple, SlidingWindow, TumblingWindow


def make_tuple(t, tuple_id=0):
    return SensorTuple(tuple_id=tuple_id, attribute="rain", t=t, x=0.0, y=0.0)


class TestBatchWindow:
    def test_rejects_bad_size(self):
        with pytest.raises(StreamError):
            BatchWindow(0)

    def test_emits_when_full(self):
        window = BatchWindow(3)
        assert window.add(make_tuple(1.0)) is None
        assert window.add(make_tuple(2.0)) is None
        batch = window.add(make_tuple(3.0))
        assert batch is not None and len(batch) == 3
        assert window.pending == 0

    def test_flush_partial(self):
        window = BatchWindow(5)
        window.add(make_tuple(1.0))
        window.add(make_tuple(2.0))
        assert len(window.flush()) == 2
        assert window.pending == 0

    def test_flush_empty_emits_nothing(self):
        # Regression: an empty flush used to emit a spurious empty batch.
        window = BatchWindow(2)
        assert window.flush() is None
        window.add(make_tuple(1.0))
        emitted = window.flush()
        assert emitted is not None and len(emitted) == 1
        assert window.flush() is None


class TestTumblingWindow:
    def test_rejects_bad_duration(self):
        with pytest.raises(StreamError):
            TumblingWindow(0.0)

    def test_emits_on_window_boundary(self):
        window = TumblingWindow(1.0)
        assert window.add(make_tuple(0.2)) is None
        assert window.add(make_tuple(0.8)) is None
        emitted = window.add(make_tuple(1.1))
        assert emitted is not None and len(emitted) == 2
        assert window.pending == 1

    def test_long_gap_advances_multiple_windows(self):
        window = TumblingWindow(1.0)
        window.add(make_tuple(0.5))
        window.add(make_tuple(5.5))
        assert window.window_start == pytest.approx(5.0)

    def test_flush_advances_window(self):
        window = TumblingWindow(2.0)
        window.add(make_tuple(0.5))
        batch = window.flush()
        assert len(batch) == 1
        assert window.window_start == pytest.approx(2.0)

    def test_empty_flush_emits_nothing_and_does_not_drift(self):
        # Regression: flushing an empty window used to emit a spurious
        # empty batch and advance the window past data yet to arrive.
        window = TumblingWindow(2.0)
        assert window.flush() is None
        assert window.window_start == pytest.approx(0.0)
        window.add(make_tuple(0.5))
        assert len(window.flush()) == 1
        assert window.flush() is None
        assert window.window_start == pytest.approx(2.0)

    def test_gap_over_empty_window_emits_nothing(self):
        # Regression: a tuple arriving after an empty window used to
        # emit that window as a spurious empty batch.
        window = TumblingWindow(1.0)
        window.add(make_tuple(0.5))
        emitted = window.add(make_tuple(1.5))
        assert emitted is not None and len(emitted) == 1
        assert len(window.flush()) == 1  # close [1, 2); [2, 3) is now open, empty
        assert window.add(make_tuple(3.5)) is None  # [2, 3) closes empty: no emission
        assert window.window_start == pytest.approx(3.0)

    def test_boundary_tuple_lands_in_exactly_one_window(self):
        # A tuple timestamped exactly on a boundary opens the next
        # window; it is never also counted in the closing one.
        window = TumblingWindow(1.0)
        window.add(make_tuple(0.5))
        emitted = window.add(make_tuple(1.0))
        assert emitted is not None and [item.t for item in emitted] == [0.5]
        assert window.pending == 1
        assert window.window_start == pytest.approx(1.0)

    def test_late_tuple_joins_open_window(self):
        window = TumblingWindow(1.0)
        window.add(make_tuple(0.9))
        window.add(make_tuple(0.1))
        assert window.pending == 2


class TestSlidingWindow:
    def test_rejects_bad_duration(self):
        with pytest.raises(StreamError):
            SlidingWindow(0.0)

    def test_keeps_recent_tuples(self):
        window = SlidingWindow(1.0)
        window.add(make_tuple(0.0))
        window.add(make_tuple(0.5))
        window.add(make_tuple(1.2))
        times = [item.t for item in window.contents()]
        assert times == [0.5, 1.2]
        assert len(window) == 2

    def test_all_within_duration_are_kept(self):
        window = SlidingWindow(10.0)
        for i in range(5):
            window.add(make_tuple(float(i)))
        assert len(window) == 5

    def test_contents_in_arrival_order(self):
        window = SlidingWindow(10.0)
        for t in (1.0, 2.0, 3.0):
            window.add(make_tuple(t))
        assert [item.t for item in window.contents()] == [1.0, 2.0, 3.0]
