"""Unit tests for stream operators, topologies and the routing engine."""

import pytest

from repro.errors import StreamError
from repro.geometry import Rectangle
from repro.pointprocess import EventBatch, HomogeneousMDPP
import numpy as np

from repro.streams import (
    BatchSource,
    CallbackSink,
    CollectingSink,
    CountingSink,
    FilterOperator,
    IterableSource,
    MapOperator,
    PassThroughOperator,
    SensorTuple,
    StreamEngine,
    StreamTopology,
)


def make_tuple(tuple_id=0, attribute="rain", t=1.0, x=0.5, y=0.5, value=None):
    return SensorTuple(tuple_id=tuple_id, attribute=attribute, t=t, x=x, y=y, value=value)


class TestBasicOperators:
    def test_pass_through_forwards(self):
        op = PassThroughOperator()
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple())
        assert len(sink) == 1
        assert op.tuples_in == 1 and op.tuples_out == 1

    def test_filter_keeps_matching(self):
        op = FilterOperator(lambda item: item.attribute == "rain")
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple(attribute="rain"))
        op.accept(make_tuple(attribute="temp"))
        assert len(sink) == 1
        assert sink.items[0].attribute == "rain"

    def test_map_transforms(self):
        op = MapOperator(lambda item: item.with_value(42))
        sink = CollectingSink().attach(op.output)
        op.accept(make_tuple(value=None))
        assert sink.items[0].value == 42

    def test_operator_names_are_unique(self):
        a = PassThroughOperator()
        b = PassThroughOperator()
        assert a.name != b.name
        assert a.operator_id != b.operator_id

    def test_emit_to_missing_output_raises(self):
        op = PassThroughOperator()
        with pytest.raises(StreamError):
            op.emit(make_tuple(), output_index=3)

    def test_describe_contains_symbol(self):
        assert "I" in PassThroughOperator().describe()


class TestSinks:
    def test_collecting_sink(self):
        sink = CollectingSink()
        sink(make_tuple(t=1.0))
        sink(make_tuple(t=2.0))
        assert len(sink) == 2
        sink.clear()
        assert len(sink) == 0

    def test_collecting_sink_to_event_batch(self):
        sink = CollectingSink()
        sink(make_tuple(t=1.0, x=0.1, y=0.2))
        batch = sink.to_event_batch()
        assert len(batch) == 1
        assert batch.t[0] == 1.0

    def test_counting_sink(self):
        sink = CountingSink()
        sink(make_tuple(t=5.0))
        assert sink.count == 1
        assert sink.last_timestamp == 5.0

    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink(make_tuple())
        assert sink.count == 1
        assert len(seen) == 1


class TestSources:
    def test_iterable_source(self):
        items = [make_tuple(tuple_id=i) for i in range(4)]
        source = IterableSource(items)
        sink = CollectingSink().attach(source.output)
        assert source.run() == 4
        assert len(sink) == 4

    def test_iterable_source_rejects_non_tuples(self):
        source = IterableSource(["not a tuple"])
        with pytest.raises(StreamError):
            source.run()

    def test_batch_source_converts_events(self):
        batch = HomogeneousMDPP(50.0, Rectangle(0, 0, 1, 1)).sample(
            1.0, rng=np.random.default_rng(0)
        )
        source = BatchSource("temp", value_fn=lambda t, x, y: 20.0)
        sink = CollectingSink().attach(source.output)
        pushed = source.push_batch(batch)
        assert pushed == len(batch)
        assert all(item.attribute == "temp" for item in sink.items)
        assert all(item.value == 20.0 for item in sink.items)
        # Tuples arrive in time order.
        times = [item.t for item in sink.items]
        assert times == sorted(times)

    def test_batch_source_requires_attribute(self):
        with pytest.raises(StreamError):
            BatchSource("")

    def test_batch_source_empty_batch(self):
        source = BatchSource("rain")
        assert source.push_batch(EventBatch.empty()) == 0


class TestStreamTopology:
    def test_chain_construction_and_injection(self):
        topology = StreamTopology("cell")
        first = topology.add_operator(PassThroughOperator("a"))
        second = topology.add_operator(PassThroughOperator("b"), upstream=first.output)
        sink = CollectingSink().attach(second.output)
        topology.inject(make_tuple())
        assert len(sink) == 1
        assert len(topology) == 2

    def test_duplicate_operator_rejected(self):
        topology = StreamTopology("cell")
        op = PassThroughOperator("dup")
        topology.add_operator(op)
        with pytest.raises(StreamError):
            topology.add_operator(op)

    def test_foreign_upstream_rejected(self):
        topology = StreamTopology("cell")
        other = StreamTopology("other")
        foreign = other.add_operator(PassThroughOperator("x"))
        with pytest.raises(StreamError):
            topology.add_operator(PassThroughOperator("y"), upstream=foreign.output)

    def test_branching_points_detected(self):
        topology = StreamTopology("cell")
        root = topology.add_operator(PassThroughOperator("root"))
        topology.add_operator(PassThroughOperator("left"), upstream=root.output)
        topology.add_operator(PassThroughOperator("right"), upstream=root.output)
        points = topology.branching_points()
        assert len(points) == 1
        assert points[0].fan_out == 2

    def test_chain_from_entry_stops_at_branch(self):
        topology = StreamTopology("cell")
        a = topology.add_operator(PassThroughOperator("a"))
        b = topology.add_operator(PassThroughOperator("b"), upstream=a.output)
        topology.add_operator(PassThroughOperator("c"), upstream=b.output)
        topology.add_operator(PassThroughOperator("d"), upstream=b.output)
        chain = [op.name for op in topology.chain_from_entry()]
        assert chain == ["a", "b"]

    def test_remove_leaf_operator(self):
        topology = StreamTopology("cell")
        a = topology.add_operator(PassThroughOperator("a"))
        topology.add_operator(PassThroughOperator("b"), upstream=a.output)
        topology.remove_operator("b")
        assert not topology.has_operator("b")

    def test_remove_operator_with_consumers_rejected(self):
        topology = StreamTopology("cell")
        a = topology.add_operator(PassThroughOperator("a"))
        topology.add_operator(PassThroughOperator("b"), upstream=a.output)
        with pytest.raises(StreamError):
            topology.remove_operator("a")

    def test_rewire(self):
        topology = StreamTopology("cell")
        a = topology.add_operator(PassThroughOperator("a"))
        b = topology.add_operator(PassThroughOperator("b"))
        c = topology.add_operator(PassThroughOperator("c"), upstream=a.output)
        topology.rewire("c", b.output)
        sink = CollectingSink().attach(c.output)
        # Tuples now reach c through b, not a.
        b.accept(make_tuple())
        assert len(sink) == 1

    def test_describe_mentions_operators(self):
        topology = StreamTopology("cell")
        topology.add_operator(PassThroughOperator("visible"))
        assert "visible" in topology.describe()

    def test_unknown_operator_lookup_raises(self):
        with pytest.raises(StreamError):
            StreamTopology("cell").operator("missing")


class TestStreamEngine:
    def make_topology(self, name):
        topology = StreamTopology(name)
        op = topology.add_operator(PassThroughOperator(f"{name}-op"))
        sink = CollectingSink().attach(op.output)
        return topology, sink

    def test_routing_by_key(self):
        engine = StreamEngine(lambda item: item.attribute)
        rain_topo, rain_sink = self.make_topology("rain")
        engine.register("rain", rain_topo)
        assert engine.route(make_tuple(attribute="rain"))
        assert not engine.route(make_tuple(attribute="temp"))
        assert len(rain_sink) == 1
        assert engine.routed == 1
        assert engine.unrouted == 1

    def test_route_many(self):
        engine = StreamEngine(lambda item: item.attribute)
        topo, _ = self.make_topology("rain")
        engine.register("rain", topo)
        routed, unrouted = engine.route_many(
            [make_tuple(attribute="rain"), make_tuple(attribute="temp")]
        )
        assert (routed, unrouted) == (1, 1)

    def test_get_or_create(self):
        engine = StreamEngine(lambda item: item.attribute)
        topo, _ = self.make_topology("rain")
        created = engine.get_or_create("rain", lambda: topo)
        assert created is topo
        again = engine.get_or_create("rain", lambda: StreamTopology("other"))
        assert again is topo

    def test_duplicate_register_rejected(self):
        engine = StreamEngine(lambda item: item.attribute)
        topo, _ = self.make_topology("rain")
        engine.register("rain", topo)
        with pytest.raises(StreamError):
            engine.register("rain", topo)

    def test_unregister(self):
        engine = StreamEngine(lambda item: item.attribute)
        topo, _ = self.make_topology("rain")
        engine.register("rain", topo)
        assert engine.unregister("rain") is topo
        with pytest.raises(StreamError):
            engine.unregister("rain")

    def test_contains_and_len(self):
        engine = StreamEngine(lambda item: item.attribute)
        topo, _ = self.make_topology("rain")
        engine.register("rain", topo)
        assert "rain" in engine
        assert len(engine) == 1
