"""Unit tests for SensorTuple and Stream."""

import pytest

from repro.errors import StreamError
from repro.geometry import SpacePoint, SpaceTimePoint
from repro.streams import SensorTuple, Stream, make_tuple_id_allocator


def make_tuple(tuple_id=0, attribute="rain", t=1.0, x=0.5, y=0.5, value=True):
    return SensorTuple(tuple_id=tuple_id, attribute=attribute, t=t, x=x, y=y, value=value)


class TestTupleIdAllocator:
    def test_monotonic_ids(self):
        allocate = make_tuple_id_allocator()
        assert [allocate() for _ in range(3)] == [0, 1, 2]

    def test_custom_start(self):
        allocate = make_tuple_id_allocator(100)
        assert allocate() == 100

    def test_independent_allocators(self):
        a = make_tuple_id_allocator()
        b = make_tuple_id_allocator()
        a()
        assert b() == 0


class TestSensorTuple:
    def test_location_and_space_time(self):
        item = make_tuple(t=2.0, x=1.0, y=3.0)
        assert item.location == SpacePoint(1.0, 3.0)
        assert item.space_time == SpaceTimePoint(2.0, 1.0, 3.0)

    def test_as_row_matches_paper_order(self):
        item = make_tuple(t=2.0, x=1.0, y=3.0, value=False)
        assert item.as_row() == (2.0, 1.0, 3.0, False)

    def test_with_value(self):
        item = make_tuple(value=True)
        assert item.with_value(False).value is False
        assert item.value is True

    def test_with_attribute(self):
        assert make_tuple().with_attribute("temp").attribute == "temp"

    def test_shifted(self):
        shifted = make_tuple(t=1.0, x=2.0, y=3.0).shifted(dt=1.0, dx=-1.0, dy=0.5)
        assert (shifted.t, shifted.x, shifted.y) == (2.0, 1.0, 3.5)

    def test_metadata_defaults_to_empty_dict(self):
        assert make_tuple().metadata == {}

    def test_equality_ignores_metadata(self):
        a = SensorTuple(1, "rain", 0.0, 0.0, 0.0, metadata={"a": 1})
        b = SensorTuple(1, "rain", 0.0, 0.0, 0.0, metadata={"b": 2})
        assert a == b


class TestStream:
    def test_requires_name(self):
        with pytest.raises(StreamError):
            Stream("")

    def test_push_forwards_to_subscribers(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        item = make_tuple()
        stream.push(item)
        assert received == [item]

    def test_multiple_subscribers_all_receive(self):
        stream = Stream("s")
        first, second = [], []
        stream.subscribe(first.append)
        stream.subscribe(second.append)
        stream.push(make_tuple())
        assert len(first) == len(second) == 1

    def test_push_many(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        count = stream.push_many(make_tuple(tuple_id=i) for i in range(5))
        assert count == 5
        assert len(received) == 5

    def test_stats_track_counts_and_timestamps(self):
        stream = Stream("s")
        stream.push(make_tuple(t=1.0))
        stream.push(make_tuple(t=4.0))
        assert stream.stats.tuples_pushed == 2
        assert stream.stats.first_timestamp == 1.0
        assert stream.stats.last_timestamp == 4.0
        assert stream.stats.observed_duration == pytest.approx(3.0)

    def test_unsubscribe(self):
        stream = Stream("s")
        received = []
        stream.subscribe(received.append)
        stream.unsubscribe(received.append)
        stream.push(make_tuple())
        assert received == []

    def test_unsubscribe_unknown_raises(self):
        stream = Stream("s")
        with pytest.raises(StreamError):
            stream.unsubscribe(lambda item: None)

    def test_closed_stream_rejects_push_and_subscribe(self):
        stream = Stream("s")
        stream.close()
        assert stream.is_closed
        with pytest.raises(StreamError):
            stream.push(make_tuple())
        with pytest.raises(StreamError):
            stream.subscribe(lambda item: None)

    def test_subscriber_count(self):
        stream = Stream("s")
        assert stream.subscriber_count == 0
        stream.subscribe(lambda item: None)
        assert stream.subscriber_count == 1
