"""The shared columnar codec: round-trips, error surface, call counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.streams import TupleBatch
from repro.streams import codec
from repro.streams.codec import (
    codec_call_counts,
    decode_tuple_batch,
    decode_view_frame,
    encode_tuple_batch,
    encode_view_frame,
    pack_column,
    rebuild_tuple_batch,
    reduce_tuple_batch,
    reset_codec_call_counts,
    unpack_column,
)
from repro.views.frames import ViewFrame


def make_batch(n: int = 5, **kwargs) -> TupleBatch:
    return TupleBatch(
        "rain",
        t=np.linspace(0.0, 1.0, n),
        x=np.arange(n, dtype=float),
        y=np.arange(n, dtype=float) * 2,
        value=np.linspace(-1.0, 1.0, n),
        sensor_id=np.arange(n, dtype=np.int64),
        tuple_id=np.arange(100, 100 + n, dtype=np.int64),
        **kwargs,
    )


def assert_batches_equal(a: TupleBatch, b: TupleBatch) -> None:
    assert a.attribute == b.attribute
    assert len(a) == len(b)
    for name in ("t", "x", "y", "value", "sensor_id", "tuple_id"):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype
        np.testing.assert_array_equal(left, right)
    assert a.meta == b.meta
    assert set(a.extra) == set(b.extra)
    for name in a.extra:
        np.testing.assert_array_equal(a.extra[name], b.extra[name])


class TestPackColumn:
    @pytest.mark.parametrize(
        "array",
        [
            np.arange(6, dtype=np.float64),
            np.arange(6, dtype=np.int64),
            np.arange(6, dtype=np.int32),
            np.array([True, False, True]),
            np.array([], dtype=np.float64),
            np.arange(12, dtype=np.float64).reshape(3, 4),
        ],
        ids=["f64", "i64", "i32", "bool", "empty", "2d"],
    )
    def test_round_trip_preserves_dtype_shape_values(self, array):
        got = unpack_column(pack_column(array))
        assert got.dtype == array.dtype
        assert got.shape == array.shape
        np.testing.assert_array_equal(got, array)
        assert got.flags.writeable

    def test_non_contiguous_columns_pack_correctly(self):
        base = np.arange(20, dtype=np.float64)
        strided = base[::2]
        assert not strided.flags.c_contiguous or strided.base is not None
        got = unpack_column(pack_column(strided))
        np.testing.assert_array_equal(got, strided)

    def test_fortran_order_round_trips(self):
        array = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
        got = unpack_column(pack_column(array))
        np.testing.assert_array_equal(got, array)

    def test_object_columns_pass_through_unpacked(self):
        column = np.empty(2, dtype=object)
        column[:] = [(0, 1), None]
        assert pack_column(column) is column
        assert unpack_column(column) is column


class TestReduceForm:
    def test_reduce_rebuild_round_trip(self):
        meta = {"batch_index": 7, "cell": (2, 3)}
        batch = make_batch(
            4,
            meta=meta,
            extra={"retries": np.arange(4, dtype=np.int64)},
        )
        rebuild, args = reduce_tuple_batch(batch)
        assert rebuild is rebuild_tuple_batch
        assert_batches_equal(rebuild(*args), batch)

    def test_snapshot_uses_the_shared_codec(self):
        # Satellite 1: the checkpoint pickler's private helpers are the
        # codec functions — old checkpoints referencing the snapshot
        # aliases rebuild through the exact same code.
        from repro.recovery import snapshot

        assert snapshot._pack_column is codec.pack_column
        assert snapshot._unpack_column is codec.unpack_column
        assert snapshot._reduce_tuple_batch is codec.reduce_tuple_batch
        assert snapshot._rebuild_tuple_batch is codec.rebuild_tuple_batch


class TestTupleBatchWire:
    def test_plain_batch_round_trips(self):
        batch = make_batch(8)
        assert_batches_equal(decode_tuple_batch(encode_tuple_batch(batch)), batch)

    def test_empty_batch_round_trips(self):
        batch = make_batch(0)
        got = decode_tuple_batch(encode_tuple_batch(batch))
        assert len(got) == 0
        assert_batches_equal(got, batch)

    def test_object_value_column_round_trips(self):
        # Human-sensed attributes deliver object values: bools, strings,
        # None — the restricted-JSON path must carry them all.
        values = np.empty(4, dtype=object)
        values[:] = [True, "heavy", None, 0.5]
        batch = make_batch(4)
        batch.value = values
        got = decode_tuple_batch(encode_tuple_batch(batch))
        assert got.value.dtype == np.dtype(object)
        assert list(got.value) == [True, "heavy", None, 0.5]

    def test_meta_with_tuples_and_nested_dicts_round_trips(self):
        meta = {
            "cell": (2, 3),
            "nested": {"pairs": [(0, 1), (1, 2)], "label": "Storm"},
            "counts": [1, 2, 3],
        }
        batch = make_batch(3, meta=meta)
        got = decode_tuple_batch(encode_tuple_batch(batch))
        assert got.meta == meta
        assert isinstance(got.meta["cell"], tuple)
        assert isinstance(got.meta["nested"]["pairs"][0], tuple)

    def test_extra_columns_round_trip_binary_and_object(self):
        flags = np.empty(3, dtype=object)
        flags[:] = ["retry", None, "ok"]
        batch = make_batch(
            3,
            extra={"lat": np.array([0.1, 0.2, 0.3]), "flag": flags},
        )
        got = decode_tuple_batch(encode_tuple_batch(batch))
        assert_batches_equal(got, batch)

    def test_uncarryable_object_raises_stream_error(self):
        class Opaque:
            pass

        values = np.empty(1, dtype=object)
        values[:] = [Opaque()]
        batch = make_batch(1)
        batch.value = values
        with pytest.raises(StreamError, match="cannot carry"):
            encode_tuple_batch(batch)

    def test_non_string_dict_keys_rejected(self):
        batch = make_batch(1, meta={"bad": {1: "x"}})
        with pytest.raises(StreamError, match="string-keyed"):
            encode_tuple_batch(batch)

    def test_wrong_kind_rejected(self):
        frame = make_view_frame(0)
        with pytest.raises(StreamError, match="expected 'tuple-batch'"):
            decode_tuple_batch(encode_view_frame(frame))

    def test_truncated_payload_rejected(self):
        data = encode_tuple_batch(make_batch(6))
        with pytest.raises(StreamError, match="truncated"):
            decode_tuple_batch(data[:-8])

    def test_garbage_rejected(self):
        with pytest.raises(StreamError):
            decode_tuple_batch(b"\x00")
        with pytest.raises(StreamError):
            decode_tuple_batch(b"\x00\x00\x00\x02{}")


def make_view_frame(index: int, *, tuple_keys: bool = True) -> ViewFrame:
    keys = np.empty(3, dtype=object)
    if tuple_keys:
        keys[:] = [(0, 0), (0, 1), (1, 1)]
    else:
        keys[:] = ["rain", "temp", "*"]
    return ViewFrame(
        frame_index=index,
        window_start=2.0 * index,
        window_end=2.0 * index + 2.0,
        keys=keys,
        values=np.array([0.5, -1.25, 3.75]),
        counts=np.array([4, 0, 9], dtype=np.int64),
    )


class TestViewFrameWire:
    def test_cell_keyed_frame_round_trips(self):
        frame = make_view_frame(5)
        got = decode_view_frame(encode_view_frame(frame))
        assert got.frame_index == 5
        assert got.window_start == 10.0 and got.window_end == 12.0
        assert [tuple(k) for k in got.keys] == [(0, 0), (0, 1), (1, 1)]
        assert all(isinstance(k, tuple) for k in got.keys)
        np.testing.assert_array_equal(got.values, frame.values)
        np.testing.assert_array_equal(got.counts, frame.counts)
        assert got.counts.dtype == np.int64

    def test_string_keyed_frame_round_trips(self):
        frame = make_view_frame(0, tuple_keys=False)
        got = decode_view_frame(encode_view_frame(frame))
        assert list(got.keys) == ["rain", "temp", "*"]

    def test_empty_frame_round_trips(self):
        frame = ViewFrame(
            frame_index=2,
            window_start=4.0,
            window_end=6.0,
            keys=np.empty(0, dtype=object),
            values=np.empty(0, dtype=np.float64),
            counts=np.empty(0, dtype=np.int64),
        )
        got = decode_view_frame(encode_view_frame(frame))
        assert got.is_empty and got.frame_index == 2

    def test_encoding_is_deterministic(self):
        frame = make_view_frame(1)
        assert encode_view_frame(frame) == encode_view_frame(frame)


class TestCallCounters:
    def test_counters_track_each_encoder(self):
        reset_codec_call_counts()
        encode_tuple_batch(make_batch(2))
        encode_view_frame(make_view_frame(0))
        encode_view_frame(make_view_frame(1))
        counts = codec_call_counts()
        assert counts == {"tuple_batch": 1, "view_frame": 2}
        # The getter hands out a copy, not the live dict.
        counts["view_frame"] = 99
        assert codec_call_counts()["view_frame"] == 2
        reset_codec_call_counts()
        assert codec_call_counts() == {"tuple_batch": 0, "view_frame": 0}
