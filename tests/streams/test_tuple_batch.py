"""Unit tests for the columnar :class:`TupleBatch` representation."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.streams import (
    NO_SENSOR_ID,
    MapOperator,
    SensorTuple,
    Stream,
    TupleBatch,
)


def make_tuples(n=10, attribute="rain"):
    return [
        SensorTuple(
            tuple_id=i,
            attribute=attribute,
            t=float(i) * 0.1,
            x=float(i) * 0.01,
            y=1.0 - float(i) * 0.01,
            value=bool(i % 2),
            sensor_id=i % 3,
            metadata={"cell": (0, 0), "incentive": 0.5},
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_from_tuples_to_tuples_is_identity(self):
        items = make_tuples()
        batch = TupleBatch.from_tuples(items)
        assert len(batch) == len(items)
        materialised = batch.to_tuples()
        assert materialised == items
        # Metadata survives too (SensorTuple equality ignores it).
        assert [it.metadata for it in materialised] == [it.metadata for it in items]

    def test_values_are_python_scalars_after_round_trip(self):
        items = make_tuples()
        out = TupleBatch.from_tuples(items).to_tuples()
        assert all(isinstance(item.value, bool) for item in out)
        assert all(isinstance(item.t, float) for item in out)

    def test_missing_sensor_id_round_trips_as_none(self):
        item = SensorTuple(tuple_id=1, attribute="a", t=0.0, x=0.0, y=0.0, sensor_id=None)
        batch = TupleBatch.from_tuples([item])
        assert batch.sensor_id[0] == NO_SENSOR_ID
        assert batch.to_tuples()[0].sensor_id is None

    def test_mixed_attributes_rejected(self):
        items = make_tuples(3, "rain") + make_tuples(3, "temp")
        with pytest.raises(StreamError):
            TupleBatch.from_tuples(items)

    def test_empty(self):
        batch = TupleBatch.empty("rain")
        assert batch.is_empty
        assert len(batch) == 0
        assert batch.to_tuples() == []


class TestTransforms:
    def test_select_by_mask(self):
        batch = TupleBatch.from_tuples(make_tuples(10))
        mask = np.asarray(batch.value, dtype=bool)
        kept = batch.select(mask)
        assert len(kept) == 5
        assert all(item.value for item in kept.to_tuples())
        # Extra columns are sliced along with the main ones.
        assert all(it.metadata["incentive"] == 0.5 for it in kept.to_tuples())

    def test_sorted_by_time(self):
        items = list(reversed(make_tuples(10)))
        batch = TupleBatch.from_tuples(items).sorted_by_time()
        assert list(batch.t) == sorted(batch.t)
        assert batch.to_tuples() == sorted(items, key=lambda it: it.t)

    def test_concatenate(self):
        a = TupleBatch.from_tuples(make_tuples(4))
        b = TupleBatch.from_tuples(make_tuples(6))
        merged = TupleBatch.concatenate([a, b])
        assert len(merged) == 10
        assert merged.attribute == "rain"

    def test_concatenate_preserves_agreed_meta_and_partial_extras(self):
        a = TupleBatch.from_tuples(make_tuples(3)).with_meta(source="handler", round=1)
        b = TupleBatch.from_tuples(make_tuples(2)).with_meta(source="handler", round=2)
        marks = np.empty(3, dtype=object)
        marks[:] = ["m0", "m1", "m2"]
        a.extra["mark"] = marks
        merged = TupleBatch.concatenate([a, b])
        # Meta entries every part agrees on survive; disagreeing ones drop.
        assert merged.meta == {"source": "handler"}
        # A column only some parts carry is padded with None, not dropped.
        assert list(merged.extra["mark"]) == ["m0", "m1", "m2", None, None]
        materialised = merged.to_tuples()
        assert materialised[0].metadata["mark"] == "m0"
        assert "mark" not in materialised[4].metadata

    def test_concatenate_rejects_mixed_attributes(self):
        a = TupleBatch.from_tuples(make_tuples(2, "rain"))
        b = TupleBatch.from_tuples(make_tuples(2, "temp"))
        with pytest.raises(StreamError):
            TupleBatch.concatenate([a, b])

    def test_shifted(self):
        batch = TupleBatch.from_tuples(make_tuples(3)).shifted(dt=1.0, dx=0.5)
        assert batch.t[0] == pytest.approx(1.0)
        assert batch.x[1] == pytest.approx(0.51)

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(StreamError):
            TupleBatch(
                "a",
                np.zeros(3),
                np.zeros(2),
                np.zeros(3),
                np.zeros(3),
                np.zeros(3, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
            )


class TestGenericOperatorFallback:
    def test_process_batch_fallback_matches_object_path(self):
        # MapOperator has no native batch path: the StreamOperator fallback
        # must run each tuple through process() and re-batch the output.
        items = make_tuples(8)
        operator = MapOperator(lambda it: it.shifted(dt=2.0))
        out = operator.process_batch(TupleBatch.from_tuples(items))
        assert [it.t for it in out.to_tuples()] == [it.t + 2.0 for it in items]
        assert operator.tuples_in == 8
        assert operator.tuples_out == 8

    def test_process_batch_fallback_flushes_buffering_operators(self):
        # An operator that buffers in process() and emits on flush() (the
        # Flatten pattern) must not lose its batch through the shim.
        from repro.streams import StreamOperator

        class BufferingOperator(StreamOperator):
            def __init__(self):
                super().__init__("buffering")
                self._held = []

            def process(self, item):
                self._held.append(item)

            def flush(self):
                for item in self._held:
                    self.emit(item)
                self._held = []

        operator = BufferingOperator()
        out = operator.process_batch(TupleBatch.from_tuples(make_tuples(6)))
        assert len(out) == 6

    def test_process_batch_fallback_does_not_leak_to_subscribers(self):
        # Downstream subscribers must not see the tuples a second time; the
        # caller forwards the returned batch instead.
        operator = MapOperator(lambda it: it)
        seen = []
        operator.output.subscribe(seen.append)
        out = operator.process_batch(TupleBatch.from_tuples(make_tuples(5)))
        assert len(out) == 5
        assert seen == []
        # The real output stream is restored afterwards.
        operator.accept(make_tuples(1)[0])
        assert len(seen) == 1
