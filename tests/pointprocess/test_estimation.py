"""Unit tests for intensity parameter estimation (MLE, least squares, SGD)."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.geometry import Rectangle
from repro.pointprocess import (
    EventBatch,
    HomogeneousMDPP,
    InhomogeneousMDPP,
    LinearIntensity,
    OnlineIntensityEstimator,
    fit_linear_intensity_least_squares,
    fit_linear_intensity_mle,
)

REGION = Rectangle(0.0, 0.0, 1.0, 1.0)
DURATION = 4.0


def simulate(theta, seed=0, duration=DURATION):
    intensity = LinearIntensity.from_theta(theta).validated_on(REGION, 0.0, duration)
    process = InhomogeneousMDPP(intensity, REGION)
    return process.sample(duration, rng=np.random.default_rng(seed)), intensity


class TestLeastSquares:
    def test_recovers_constant_rate(self):
        batch = HomogeneousMDPP(80.0, REGION).sample(
            DURATION, rng=np.random.default_rng(1)
        )
        result = fit_linear_intensity_least_squares(batch, REGION, 0.0, DURATION)
        mean_rate = result.intensity.mean_rate(REGION, 0.0, DURATION)
        assert mean_rate == pytest.approx(80.0, rel=0.25)

    def test_detects_spatial_gradient_direction(self):
        batch, _ = simulate((10.0, 0.0, 60.0, 0.0), seed=2)
        result = fit_linear_intensity_least_squares(batch, REGION, 0.0, DURATION)
        assert result.theta[2] > 10.0      # strong positive x slope
        assert abs(result.theta[3]) < 30.0  # and a much weaker y slope

    def test_empty_batch_raises(self):
        with pytest.raises(EstimationError):
            fit_linear_intensity_least_squares(EventBatch.empty(), REGION, 0.0, 1.0)

    def test_invalid_window_raises(self):
        batch = EventBatch.from_rows([(0.1, 0.1, 0.1)])
        with pytest.raises(EstimationError):
            fit_linear_intensity_least_squares(batch, REGION, 1.0, 1.0)

    def test_converged_flag_set(self):
        batch, _ = simulate((30.0, 0.0, 10.0, 10.0), seed=3)
        assert fit_linear_intensity_least_squares(batch, REGION, 0.0, DURATION).converged


class TestMLE:
    def test_recovers_constant_rate(self):
        batch = HomogeneousMDPP(60.0, REGION).sample(
            DURATION, rng=np.random.default_rng(4)
        )
        result = fit_linear_intensity_mle(batch, REGION, 0.0, DURATION)
        mean_rate = result.intensity.mean_rate(REGION, 0.0, DURATION)
        assert mean_rate == pytest.approx(60.0, rel=0.2)

    def test_recovers_gradient_parameters(self):
        true_theta = (20.0, 0.0, 40.0, -10.0)
        batch, _ = simulate(true_theta, seed=5)
        result = fit_linear_intensity_mle(batch, REGION, 0.0, DURATION)
        # The x slope should clearly dominate the y slope and point upward.
        assert result.theta[2] > 15.0
        assert result.theta[2] > result.theta[3]

    def test_log_likelihood_improves_over_initial_guess(self):
        batch, intensity = simulate((15.0, 0.0, 30.0, 20.0), seed=6)
        flat_start = (len(batch) / (REGION.area * DURATION), 0.0, 0.0, 0.0)
        fitted = fit_linear_intensity_mle(
            batch, REGION, 0.0, DURATION, initial_theta=flat_start
        )
        from repro.pointprocess.estimation import _log_likelihood

        assert fitted.log_likelihood >= _log_likelihood(
            flat_start, batch, __import__("repro").geometry.RectRegion(REGION), 0.0, DURATION
        ) - 1e-6

    def test_expected_count_preserved(self):
        # MLE of a Poisson intensity matches the observed count in expectation;
        # check the fitted integral is close to the actual number of events.
        batch, _ = simulate((25.0, 0.0, 20.0, 10.0), seed=7)
        result = fit_linear_intensity_mle(batch, REGION, 0.0, DURATION)
        fitted_count = result.intensity.integral(REGION, 0.0, DURATION)
        assert fitted_count == pytest.approx(len(batch), rel=0.15)

    def test_empty_batch_raises(self):
        with pytest.raises(EstimationError):
            fit_linear_intensity_mle(EventBatch.empty(), REGION, 0.0, 1.0)

    def test_bad_initial_theta_raises(self):
        batch, _ = simulate((25.0, 0.0, 20.0, 10.0), seed=8)
        with pytest.raises(EstimationError):
            fit_linear_intensity_mle(batch, REGION, 0.0, DURATION, initial_theta=(1.0, 2.0))

    def test_invalid_window_raises(self):
        batch = EventBatch.from_rows([(0.1, 0.1, 0.1)] * 5)
        with pytest.raises(EstimationError):
            fit_linear_intensity_mle(batch, REGION, 2.0, 1.0)


class TestOnlineEstimator:
    def test_rejects_bad_parameters(self):
        with pytest.raises(EstimationError):
            OnlineIntensityEstimator(REGION, 0.0)
        with pytest.raises(EstimationError):
            OnlineIntensityEstimator(REGION, 1.0, learning_rate=0.0)
        with pytest.raises(EstimationError):
            OnlineIntensityEstimator(REGION, 1.0, initial_theta=(1.0, 2.0))

    def test_updates_counter(self):
        estimator = OnlineIntensityEstimator(REGION, 1.0)
        batch = HomogeneousMDPP(30.0, REGION).sample(1.0, rng=np.random.default_rng(9))
        estimator.observe_batch(batch)
        assert estimator.updates == len(batch)

    def test_empty_batch_is_noop(self):
        estimator = OnlineIntensityEstimator(REGION, 1.0)
        estimator.observe_batch(EventBatch.empty())
        assert estimator.updates == 0

    def test_tracks_gradient_direction(self):
        # Feed several batches from a process with a strong x gradient; the
        # online estimate should end up with a clearly positive x slope.
        intensity = LinearIntensity(5.0, 0.0, 50.0, 0.0)
        process = InhomogeneousMDPP(intensity, REGION)
        estimator = OnlineIntensityEstimator(
            REGION, 1.0, learning_rate=0.5, expected_events_per_window=30.0
        )
        rng = np.random.default_rng(10)
        for _ in range(20):
            estimator.observe_batch(process.sample(1.0, rng=rng))
        assert estimator.theta[2] > estimator.theta[3]
        assert estimator.theta[2] > 0.0

    def test_stays_stable_on_stationary_process_at_large_times(self):
        # Regression: observe_batch used to anchor the compensator window at
        # t=0 forever, so batches starting at large simulation times pushed
        # an ever-growing bias into the time-slope gradient (theta_t blew up
        # to ~50 and the predicted rate to ~5e4 in this exact setup).  With
        # the window anchored at the batch's own start the estimate stays
        # pinned to the true constant rate.
        rate = 40.0
        estimator = OnlineIntensityEstimator(
            REGION, 1.0, expected_events_per_window=rate
        )
        rng = np.random.default_rng(12)
        process = HomogeneousMDPP(rate, REGION)
        offset = 1000.0
        for k in range(40):
            batch = process.sample(1.0, rng=rng)
            shifted = EventBatch(batch.t + offset + k, batch.x, batch.y)
            estimator.observe_batch(shifted)
        predicted = estimator.intensity.rate_at(offset + 40.0, 0.5, 0.5)
        assert predicted == pytest.approx(rate, rel=0.25)
        assert abs(estimator.theta[1]) < 1.0  # no runaway time slope

    def test_result_snapshot(self):
        estimator = OnlineIntensityEstimator(REGION, 1.0)
        batch = HomogeneousMDPP(20.0, REGION).sample(1.0, rng=np.random.default_rng(11))
        estimator.observe_batch(batch)
        result = estimator.result()
        assert result.converged
        assert result.iterations == estimator.updates
        assert isinstance(result.intensity, LinearIntensity)
