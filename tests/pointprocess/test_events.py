"""Unit tests for EventBatch."""

import numpy as np
import pytest

from repro.errors import PointProcessError
from repro.geometry import Rectangle, RectRegion, SpaceTimePoint
from repro.pointprocess import EventBatch


class TestConstruction:
    def test_empty_batch(self):
        batch = EventBatch.empty()
        assert len(batch) == 0
        assert batch.is_empty

    def test_from_points(self):
        points = [SpaceTimePoint(1.0, 0.1, 0.2), SpaceTimePoint(2.0, 0.3, 0.4)]
        batch = EventBatch.from_points(points)
        assert len(batch) == 2
        assert batch.points() == points

    def test_from_points_empty_iterable(self):
        assert EventBatch.from_points([]).is_empty

    def test_from_rows(self):
        batch = EventBatch.from_rows([(1.0, 2.0, 3.0), (4.0, 5.0, 6.0)])
        assert batch.t.tolist() == [1.0, 4.0]
        assert batch.x.tolist() == [2.0, 5.0]
        assert batch.y.tolist() == [3.0, 6.0]

    def test_from_bad_rows_raises(self):
        with pytest.raises(PointProcessError):
            EventBatch.from_rows([(1.0, 2.0)])

    def test_mismatched_array_lengths_raise(self):
        with pytest.raises(PointProcessError):
            EventBatch(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_non_1d_arrays_raise(self):
        with pytest.raises(PointProcessError):
            EventBatch(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)))

    def test_concatenate(self):
        a = EventBatch.from_rows([(1.0, 0.0, 0.0)])
        b = EventBatch.from_rows([(2.0, 1.0, 1.0), (3.0, 2.0, 2.0)])
        merged = EventBatch.concatenate([a, b])
        assert len(merged) == 3

    def test_concatenate_with_empties(self):
        a = EventBatch.empty()
        b = EventBatch.from_rows([(2.0, 1.0, 1.0)])
        assert len(EventBatch.concatenate([a, b, a])) == 1
        assert EventBatch.concatenate([a, a]).is_empty


class TestSelectionsAndViews:
    @pytest.fixture
    def batch(self):
        return EventBatch.from_rows(
            [(3.0, 0.5, 0.5), (1.0, 0.1, 0.9), (2.0, 0.9, 0.1), (4.0, 1.5, 1.5)]
        )

    def test_sorted_by_time(self, batch):
        ordered = batch.sorted_by_time()
        assert ordered.t.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_getitem_int_and_slice(self, batch):
        single = batch[1]
        assert len(single) == 1
        assert single.t[0] == 1.0
        assert len(batch[:2]) == 2

    def test_select_mask(self, batch):
        mask = batch.t > 2.0
        assert len(batch.select(mask)) == 2

    def test_select_bad_mask_raises(self, batch):
        with pytest.raises(PointProcessError):
            batch.select(np.array([True, False]))

    def test_restrict_to_region(self, batch):
        region = RectRegion(Rectangle(0, 0, 1, 1))
        restricted = batch.restrict_to_region(region)
        assert len(restricted) == 3

    def test_restrict_to_time(self, batch):
        assert len(batch.restrict_to_time(1.0, 3.0)) == 2

    def test_restrict_to_invalid_window_raises(self, batch):
        with pytest.raises(PointProcessError):
            batch.restrict_to_time(2.0, 2.0)

    def test_shifted(self, batch):
        shifted = batch.shifted(dt=1.0, dx=-0.1, dy=0.2)
        assert shifted.t.tolist() == [4.0, 2.0, 3.0, 5.0]
        assert shifted.x[0] == pytest.approx(0.4)
        assert shifted.y[0] == pytest.approx(0.7)

    def test_as_array_shape(self, batch):
        assert batch.as_array().shape == (4, 3)

    def test_iteration_yields_points(self, batch):
        points = list(batch)
        assert all(isinstance(p, SpaceTimePoint) for p in points)
        assert len(points) == 4


class TestSummaries:
    def test_time_span_and_duration(self):
        batch = EventBatch.from_rows([(1.0, 0, 0), (5.0, 0, 0), (3.0, 0, 0)])
        assert batch.time_span() == (1.0, 5.0)
        assert batch.duration() == pytest.approx(4.0)

    def test_empty_time_span(self):
        assert EventBatch.empty().time_span() == (0.0, 0.0)
        assert EventBatch.empty().duration() == 0.0
