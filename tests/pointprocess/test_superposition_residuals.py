"""Unit tests for superposition and residual analysis."""

import numpy as np
import pytest

from repro.errors import PointProcessError
from repro.geometry import Rectangle
from repro.pointprocess import (
    ConstantIntensity,
    EventBatch,
    HomogeneousMDPP,
    LinearIntensity,
    InhomogeneousMDPP,
    rescaled_time_residuals,
    residual_ks_statistic,
    superpose,
)
from repro.pointprocess.superposition import superpose_processes

REGION = Rectangle(0.0, 0.0, 1.0, 1.0)


class TestSuperposeBatches:
    def test_merges_and_orders_by_time(self):
        a = EventBatch.from_rows([(3.0, 0.1, 0.1), (1.0, 0.2, 0.2)])
        b = EventBatch.from_rows([(2.0, 0.3, 0.3)])
        merged = superpose([a, b])
        assert merged.t.tolist() == [1.0, 2.0, 3.0]

    def test_preserves_total_count(self, rng):
        a = HomogeneousMDPP(50.0, REGION).sample(1.0, rng=rng)
        b = HomogeneousMDPP(70.0, REGION).sample(1.0, rng=rng)
        assert len(superpose([a, b])) == len(a) + len(b)

    def test_empty_inputs(self):
        assert superpose([EventBatch.empty(), EventBatch.empty()]).is_empty

    def test_summed_rate(self):
        rng = np.random.default_rng(0)
        a = HomogeneousMDPP(100.0, REGION).sample(2.0, rng=rng)
        b = HomogeneousMDPP(150.0, REGION).sample(2.0, rng=rng)
        merged = superpose([a, b])
        rate = len(merged) / (REGION.area * 2.0)
        assert rate == pytest.approx(250.0, rel=0.15)


class TestSuperposeProcesses:
    def test_union_of_adjacent_equal_rate(self):
        a = HomogeneousMDPP(5.0, Rectangle(0, 0, 1, 1))
        b = HomogeneousMDPP(5.0, Rectangle(1, 0, 2, 1))
        combined = superpose_processes([a, b])
        assert combined.rate == 5.0
        assert combined.region.area == pytest.approx(2.0)

    def test_rejects_mismatched_rates(self):
        a = HomogeneousMDPP(5.0, Rectangle(0, 0, 1, 1))
        b = HomogeneousMDPP(6.0, Rectangle(1, 0, 2, 1))
        with pytest.raises(PointProcessError):
            superpose_processes([a, b])

    def test_rejects_empty_list(self):
        with pytest.raises(PointProcessError):
            superpose_processes([])


class TestResiduals:
    def test_constant_intensity_residuals_are_exponential(self):
        rng = np.random.default_rng(1)
        process = HomogeneousMDPP(200.0, REGION)
        batch = process.sample(5.0, rng=rng)
        residuals = rescaled_time_residuals(batch, ConstantIntensity(200.0), REGION)
        statistic, p_value = residual_ks_statistic(residuals)
        assert p_value > 0.001
        assert residuals.mean() == pytest.approx(1.0, rel=0.2)

    def test_wrong_model_gives_worse_fit(self):
        rng = np.random.default_rng(2)
        intensity = LinearIntensity(10.0, 900.0, 0.0, 0.0)  # strongly increasing in time
        process = InhomogeneousMDPP(intensity, REGION)
        batch = process.sample(1.0, rng=rng)
        good = rescaled_time_residuals(batch, intensity, REGION)
        bad = rescaled_time_residuals(
            batch, ConstantIntensity(max(len(batch), 1)), REGION
        )
        good_stat, _ = residual_ks_statistic(good)
        bad_stat, _ = residual_ks_statistic(bad)
        assert good_stat < bad_stat

    def test_empty_batch(self):
        residuals = rescaled_time_residuals(EventBatch.empty(), ConstantIntensity(1.0), REGION)
        assert residuals.size == 0
        assert residual_ks_statistic(residuals) == (0.0, 1.0)

    def test_invalid_steps(self):
        batch = EventBatch.from_rows([(0.5, 0.5, 0.5)])
        with pytest.raises(PointProcessError):
            rescaled_time_residuals(batch, ConstantIntensity(1.0), REGION, steps=1)
