"""Unit tests for homogeneous and inhomogeneous MDPP simulation."""

import numpy as np
import pytest

from repro.errors import PointProcessError
from repro.geometry import CompositeRegion, Rectangle, RectRegion
from repro.pointprocess import (
    ConstantIntensity,
    GaussianHotspotIntensity,
    HomogeneousMDPP,
    InhomogeneousMDPP,
    LinearIntensity,
    empirical_rate,
)

REGION = Rectangle(0.0, 0.0, 2.0, 2.0)


class TestHomogeneousMDPP:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(PointProcessError):
            HomogeneousMDPP(0.0, REGION)

    def test_expected_count(self):
        process = HomogeneousMDPP(5.0, REGION)
        assert process.expected_count(3.0) == pytest.approx(5.0 * 4.0 * 3.0)

    def test_expected_count_invalid_duration(self):
        with pytest.raises(PointProcessError):
            HomogeneousMDPP(5.0, REGION).expected_count(0.0)

    def test_sample_count_close_to_expectation(self, rng):
        process = HomogeneousMDPP(20.0, REGION)
        batch = process.sample(5.0, rng=rng)
        expected = process.expected_count(5.0)
        assert abs(len(batch) - expected) < 5 * np.sqrt(expected)

    def test_sample_within_region_and_window(self, rng):
        process = HomogeneousMDPP(10.0, REGION)
        batch = process.sample(2.0, t_start=1.0, rng=rng)
        assert np.all(batch.x >= 0.0) and np.all(batch.x <= 2.0)
        assert np.all(batch.y >= 0.0) and np.all(batch.y <= 2.0)
        assert np.all(batch.t >= 1.0) and np.all(batch.t < 3.0)

    def test_sample_sorted_by_time(self, rng):
        batch = HomogeneousMDPP(30.0, REGION).sample(1.0, rng=rng)
        assert np.all(np.diff(batch.t) >= 0.0)

    def test_sample_with_fixed_count(self, rng):
        batch = HomogeneousMDPP(1.0, REGION).sample(1.0, rng=rng, count=17)
        assert len(batch) == 17

    def test_sample_with_negative_count_raises(self, rng):
        with pytest.raises(PointProcessError):
            HomogeneousMDPP(1.0, REGION).sample(1.0, rng=rng, count=-1)

    def test_sample_reproducible_with_seed(self):
        process = HomogeneousMDPP(10.0, REGION)
        a = process.sample(1.0, rng=np.random.default_rng(3))
        b = process.sample(1.0, rng=np.random.default_rng(3))
        assert np.array_equal(a.t, b.t)
        assert np.array_equal(a.x, b.x)

    def test_sample_on_composite_region(self, rng):
        region = CompositeRegion((Rectangle(0, 0, 1, 1), Rectangle(2, 0, 3, 1)))
        process = HomogeneousMDPP(50.0, region)
        batch = process.sample(1.0, rng=rng)
        assert len(batch) > 0
        for x, y in zip(batch.x, batch.y):
            assert region.contains(float(x), float(y), closed=True)

    def test_intensity_property(self):
        assert isinstance(HomogeneousMDPP(2.0, REGION).intensity, ConstantIntensity)

    def test_thinned_model(self):
        process = HomogeneousMDPP(10.0, REGION)
        assert process.thinned(4.0).rate == 4.0
        with pytest.raises(PointProcessError):
            process.thinned(10.0)
        with pytest.raises(PointProcessError):
            process.thinned(0.0)

    def test_restricted_model(self):
        process = HomogeneousMDPP(10.0, REGION)
        sub = process.restricted(RectRegion(Rectangle(0, 0, 1, 1)))
        assert sub.rate == 10.0
        assert sub.region.area == pytest.approx(1.0)

    def test_restricted_outside_raises(self):
        process = HomogeneousMDPP(10.0, REGION)
        with pytest.raises(PointProcessError):
            process.restricted(RectRegion(Rectangle(0, 0, 5, 5)))

    def test_unioned_model(self):
        a = HomogeneousMDPP(5.0, Rectangle(0, 0, 1, 1))
        b = HomogeneousMDPP(5.0, Rectangle(1, 0, 2, 1))
        combined = a.unioned(b)
        assert combined.rate == 5.0
        assert combined.region.area == pytest.approx(2.0)

    def test_unioned_requires_equal_rates(self):
        a = HomogeneousMDPP(5.0, Rectangle(0, 0, 1, 1))
        b = HomogeneousMDPP(6.0, Rectangle(1, 0, 2, 1))
        with pytest.raises(PointProcessError):
            a.unioned(b)


class TestInhomogeneousMDPP:
    def test_expected_count_linear(self):
        intensity = LinearIntensity(10.0, 0.0, 0.0, 0.0)
        process = InhomogeneousMDPP(intensity, REGION)
        assert process.expected_count(1.0) == pytest.approx(40.0)

    def test_mean_rate(self):
        intensity = LinearIntensity(10.0, 0.0, 0.0, 0.0)
        process = InhomogeneousMDPP(intensity, REGION)
        assert process.mean_rate(2.0) == pytest.approx(10.0)

    def test_sample_count_close_to_expectation(self, rng):
        intensity = LinearIntensity(5.0, 0.0, 10.0, 5.0)
        process = InhomogeneousMDPP(intensity, REGION)
        batch = process.sample(3.0, rng=rng)
        expected = process.expected_count(3.0)
        assert abs(len(batch) - expected) < 5 * np.sqrt(expected)

    def test_sample_respects_spatial_gradient(self, rng):
        # A strong x-gradient should put most events in the right half.
        intensity = LinearIntensity(1.0, 0.0, 50.0, 0.0)
        process = InhomogeneousMDPP(intensity, REGION)
        batch = process.sample(3.0, rng=rng)
        right = int(np.count_nonzero(batch.x > 1.0))
        left = len(batch) - right
        assert right > 2 * left

    def test_hotspot_concentration(self, rng):
        intensity = GaussianHotspotIntensity(1.0, ((0.5, 0.5, 200.0, 0.15),))
        process = InhomogeneousMDPP(intensity, REGION)
        batch = process.sample(2.0, rng=rng)
        near = int(
            np.count_nonzero((np.abs(batch.x - 0.5) < 0.5) & (np.abs(batch.y - 0.5) < 0.5))
        )
        assert near > len(batch) * 0.5

    def test_sample_invalid_duration(self, rng):
        process = InhomogeneousMDPP(ConstantIntensity(1.0), REGION)
        with pytest.raises(PointProcessError):
            process.sample(0.0, rng=rng)

    def test_restricted(self):
        process = InhomogeneousMDPP(ConstantIntensity(5.0), REGION)
        sub = process.restricted(RectRegion(Rectangle(0, 0, 1, 1)))
        assert sub.region.area == pytest.approx(1.0)

    def test_restricted_outside_raises(self):
        process = InhomogeneousMDPP(ConstantIntensity(5.0), REGION)
        with pytest.raises(PointProcessError):
            process.restricted(RectRegion(Rectangle(0, 0, 9, 9)))

    def test_on_rectangle_constructor(self):
        process = InhomogeneousMDPP.on_rectangle(ConstantIntensity(5.0), REGION)
        assert process.region.area == pytest.approx(4.0)

    def test_constant_intensity_sample_rate(self, rng):
        process = InhomogeneousMDPP(ConstantIntensity(25.0), REGION)
        batch = process.sample(4.0, rng=rng)
        observed = empirical_rate(batch, REGION, 4.0)
        assert observed == pytest.approx(25.0, rel=0.15)
