"""Unit tests for conditional intensity models."""

import numpy as np
import pytest

from repro.errors import PointProcessError
from repro.geometry import Rectangle, RectRegion
from repro.pointprocess import (
    ConstantIntensity,
    GaussianHotspotIntensity,
    LinearIntensity,
    LogLinearIntensity,
    PiecewiseConstantIntensity,
    SeparableIntensity,
)

REGION = Rectangle(0.0, 0.0, 1.0, 1.0)


class TestConstantIntensity:
    def test_rate_is_constant(self):
        model = ConstantIntensity(5.0)
        values = model.rate(np.array([0.0, 1.0]), np.array([0.0, 0.5]), np.array([0.0, 0.5]))
        assert values.tolist() == [5.0, 5.0]

    def test_rejects_non_positive(self):
        with pytest.raises(PointProcessError):
            ConstantIntensity(0.0)

    def test_integral_closed_form(self):
        model = ConstantIntensity(3.0)
        assert model.integral(REGION, 0.0, 2.0) == pytest.approx(6.0)

    def test_mean_rate(self):
        assert ConstantIntensity(3.0).mean_rate(REGION, 0.0, 2.0) == pytest.approx(3.0)

    def test_max_rate(self):
        assert ConstantIntensity(7.0).max_rate(REGION, 0.0, 1.0) == 7.0

    def test_invalid_window_raises(self):
        with pytest.raises(PointProcessError):
            ConstantIntensity(1.0).integral(REGION, 1.0, 1.0)


class TestLinearIntensity:
    def test_matches_eq1(self):
        model = LinearIntensity(1.0, 2.0, 3.0, 4.0)
        assert model.rate_at(1.0, 1.0, 1.0) == pytest.approx(10.0)

    def test_theta_property(self):
        assert LinearIntensity(1, 2, 3, 4).theta == (1, 2, 3, 4)

    def test_from_theta_roundtrip(self):
        model = LinearIntensity.from_theta([5.0, 0.1, 0.2, 0.3])
        assert model.theta == (5.0, 0.1, 0.2, 0.3)

    def test_from_theta_wrong_length(self):
        with pytest.raises(PointProcessError):
            LinearIntensity.from_theta([1.0, 2.0])

    def test_clamps_at_floor(self):
        model = LinearIntensity(-10.0, 0.0, 0.0, 0.0)
        assert model.rate_at(0.0, 0.0, 0.0) == pytest.approx(model.min_rate)

    def test_max_rate_over_corners(self):
        model = LinearIntensity(1.0, 1.0, 1.0, 1.0)
        assert model.max_rate(REGION, 0.0, 2.0) == pytest.approx(1.0 + 2.0 + 1.0 + 1.0)

    def test_min_rate_on_window(self):
        model = LinearIntensity(1.0, 1.0, 1.0, 1.0)
        assert model.min_rate_on(REGION, 0.0, 2.0) == pytest.approx(1.0)

    def test_validated_on_accepts_positive(self):
        model = LinearIntensity(1.0, 0.0, 0.5, 0.5)
        assert model.validated_on(REGION, 0.0, 1.0) is model

    def test_validated_on_rejects_non_positive(self):
        model = LinearIntensity(0.1, -1.0, 0.0, 0.0)
        with pytest.raises(PointProcessError):
            model.validated_on(REGION, 0.0, 1.0)

    def test_integral_closed_form(self):
        model = LinearIntensity(2.0, 0.5, 1.0, 1.5)
        closed = model.integral(REGION, 0.0, 1.0)
        # The affine integral equals the midpoint value times the volume:
        # theta0 + theta1*0.5 + theta2*0.5 + theta3*0.5 over a unit volume.
        expected = 2.0 + 0.25 + 0.5 + 0.75
        assert closed == pytest.approx(expected)

    def test_vectorised_rate(self):
        model = LinearIntensity(1.0, 1.0, 0.0, 0.0)
        values = model.rate(np.array([0.0, 1.0, 2.0]), np.zeros(3), np.zeros(3))
        assert values.tolist() == [1.0, 2.0, 3.0]


class TestLogLinearIntensity:
    def test_always_positive(self):
        model = LogLinearIntensity(-5.0, -1.0, -1.0, -1.0)
        assert model.rate_at(10.0, 10.0, 10.0) > 0.0

    def test_value(self):
        model = LogLinearIntensity(0.0, 0.0, 0.0, 0.0)
        assert model.rate_at(1.0, 2.0, 3.0) == pytest.approx(1.0)

    def test_max_rate_at_corner(self):
        model = LogLinearIntensity(0.0, 1.0, 1.0, 1.0)
        assert model.max_rate(REGION, 0.0, 1.0) == pytest.approx(np.exp(3.0))


class TestSeparableIntensity:
    def test_product_form(self):
        model = SeparableIntensity(
            base=2.0,
            temporal=lambda t: np.ones_like(t) * 0.5,
            spatial=lambda x, y: np.ones_like(x) * 3.0,
            temporal_max=0.5,
            spatial_max=3.0,
        )
        assert model.rate_at(0.0, 0.0, 0.0) == pytest.approx(3.0)
        assert model.max_rate(REGION, 0.0, 1.0) == pytest.approx(3.0)

    def test_rejects_bad_base(self):
        with pytest.raises(PointProcessError):
            SeparableIntensity(base=0.0, temporal=lambda t: t, spatial=lambda x, y: x)

    def test_negative_product_clamped_to_zero(self):
        model = SeparableIntensity(
            base=1.0,
            temporal=lambda t: -np.ones_like(t),
            spatial=lambda x, y: np.ones_like(x),
        )
        assert model.rate_at(0.0, 0.0, 0.0) == 0.0


class TestPiecewiseConstantIntensity:
    def test_cell_lookup(self):
        model = PiecewiseConstantIntensity(REGION, ((1.0, 2.0), (3.0, 4.0)))
        # values[r][q]: bottom-left is 1, bottom-right 2, top-left 3, top-right 4
        assert model.rate_at(0.0, 0.25, 0.25) == 1.0
        assert model.rate_at(0.0, 0.75, 0.25) == 2.0
        assert model.rate_at(0.0, 0.25, 0.75) == 3.0
        assert model.rate_at(0.0, 0.75, 0.75) == 4.0

    def test_max_rate(self):
        model = PiecewiseConstantIntensity(REGION, ((1.0, 2.0), (3.0, 4.0)))
        assert model.max_rate(REGION, 0.0, 1.0) == 4.0

    def test_shape(self):
        model = PiecewiseConstantIntensity(REGION, ((1.0, 2.0, 3.0),))
        assert model.shape == (1, 3)

    def test_rejects_ragged_rows(self):
        with pytest.raises(PointProcessError):
            PiecewiseConstantIntensity(REGION, ((1.0, 2.0), (3.0,)))

    def test_rejects_negative_values(self):
        with pytest.raises(PointProcessError):
            PiecewiseConstantIntensity(REGION, ((-1.0,),))


class TestGaussianHotspotIntensity:
    def test_peak_at_hotspot(self):
        model = GaussianHotspotIntensity(1.0, ((0.5, 0.5, 10.0, 0.1),))
        assert model.rate_at(0.0, 0.5, 0.5) == pytest.approx(11.0)
        assert model.rate_at(0.0, 0.0, 0.0) < 2.0

    def test_max_rate_upper_bound(self):
        model = GaussianHotspotIntensity(1.0, ((0.5, 0.5, 10.0, 0.1), (0.2, 0.2, 5.0, 0.2)))
        bound = model.max_rate(REGION, 0.0, 1.0)
        xs = np.linspace(0, 1, 21)
        tt, xx, yy = np.meshgrid(np.zeros(1), xs, xs, indexing="ij")
        assert bound >= model.rate(tt.ravel(), xx.ravel(), yy.ravel()).max()

    def test_rejects_all_zero(self):
        with pytest.raises(PointProcessError):
            GaussianHotspotIntensity(0.0, ())

    def test_rejects_bad_hotspot(self):
        with pytest.raises(PointProcessError):
            GaussianHotspotIntensity(1.0, ((0.5, 0.5, 1.0, 0.0),))

    def test_integral_positive(self):
        model = GaussianHotspotIntensity(1.0, ((0.5, 0.5, 10.0, 0.1),))
        assert model.integral(REGION, 0.0, 1.0, resolution=15) > 1.0
