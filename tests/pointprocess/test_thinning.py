"""Unit tests for thinning and flattening (Eq. 3)."""

import numpy as np
import pytest

from repro.errors import PointProcessError
from repro.geometry import Rectangle
from repro.pointprocess import (
    ConstantIntensity,
    EventBatch,
    HomogeneousMDPP,
    InhomogeneousMDPP,
    LinearIntensity,
    flatten_events,
    thin_events,
    thin_to_rate,
)

REGION = Rectangle(0.0, 0.0, 1.0, 1.0)


def make_homogeneous_batch(rate, duration, seed=0):
    return HomogeneousMDPP(rate, REGION).sample(duration, rng=np.random.default_rng(seed))


class TestThinEvents:
    def test_probability_bounds(self, rng):
        batch = make_homogeneous_batch(100.0, 1.0)
        with pytest.raises(PointProcessError):
            thin_events(batch, 0.0, rng=rng)
        with pytest.raises(PointProcessError):
            thin_events(batch, 1.5, rng=rng)

    def test_probability_one_keeps_everything(self, rng):
        batch = make_homogeneous_batch(100.0, 1.0)
        result = thin_events(batch, 1.0, rng=rng)
        assert result.retained_count == len(batch)
        assert result.discarded_count == 0

    def test_partition_of_input(self, rng):
        batch = make_homogeneous_batch(200.0, 1.0)
        result = thin_events(batch, 0.4, rng=rng)
        assert result.retained_count + result.discarded_count == len(batch)
        assert result.input_count == len(batch)

    def test_keep_mask_alignment(self, rng):
        batch = make_homogeneous_batch(50.0, 1.0)
        result = thin_events(batch, 0.5, rng=rng)
        assert result.keep_mask.shape == (len(batch),)
        assert int(result.keep_mask.sum()) == result.retained_count

    def test_empty_batch(self, rng):
        result = thin_events(EventBatch.empty(), 0.5, rng=rng)
        assert result.retained_count == 0
        assert result.discarded_count == 0

    def test_expected_fraction(self):
        batch = make_homogeneous_batch(2000.0, 1.0, seed=1)
        result = thin_events(batch, 0.3, rng=np.random.default_rng(2))
        fraction = result.retained_count / len(batch)
        assert fraction == pytest.approx(0.3, abs=0.05)

    def test_no_violations_reported(self, rng):
        batch = make_homogeneous_batch(100.0, 1.0)
        assert thin_events(batch, 0.5, rng=rng).violation_percent == 0.0


class TestThinToRate:
    def test_rate_validation(self, rng):
        batch = make_homogeneous_batch(100.0, 1.0)
        with pytest.raises(PointProcessError):
            thin_to_rate(batch, 0.0, 1.0, rng=rng)
        with pytest.raises(PointProcessError):
            thin_to_rate(batch, 10.0, 10.0, rng=rng)
        with pytest.raises(PointProcessError):
            thin_to_rate(batch, 10.0, 12.0, rng=rng)

    def test_produces_desired_rate(self):
        rate_in, rate_out, duration = 1000.0, 300.0, 1.0
        batch = make_homogeneous_batch(rate_in, duration, seed=5)
        result = thin_to_rate(batch, rate_in, rate_out, rng=np.random.default_rng(6))
        achieved = result.retained_count / (REGION.area * duration)
        assert achieved == pytest.approx(rate_out, rel=0.15)

    def test_retention_probability_used(self, rng):
        batch = make_homogeneous_batch(100.0, 1.0)
        result = thin_to_rate(batch, 100.0, 25.0, rng=rng)
        assert np.allclose(result.retain_probability, 0.25)


class TestFlattenEvents:
    def test_rejects_non_positive_target(self, rng):
        batch = make_homogeneous_batch(100.0, 1.0)
        with pytest.raises(PointProcessError):
            flatten_events(batch, ConstantIntensity(100.0), 0.0, rng=rng)

    def test_empty_batch(self, rng):
        result = flatten_events(EventBatch.empty(), ConstantIntensity(1.0), 10.0, rng=rng)
        assert result.retained_count == 0
        assert result.violation_percent == 0.0

    def test_rejects_zero_intensity_at_event(self, rng):
        batch = EventBatch.from_rows([(0.5, 0.5, 0.5)])
        zero_like = LinearIntensity(0.0, 0.0, 0.0, 0.0, min_rate=0.0)
        with pytest.raises(PointProcessError):
            flatten_events(batch, zero_like, 1.0, rng=rng)

    def test_expected_retained_count_matches_target(self):
        # Eq. (3): sum of retaining probabilities equals the target count.
        intensity = LinearIntensity(5.0, 0.0, 40.0, 20.0)
        process = InhomogeneousMDPP(intensity, REGION)
        batch = process.sample(4.0, rng=np.random.default_rng(7))
        target = 60.0
        result = flatten_events(batch, intensity, target, rng=np.random.default_rng(8))
        assert result.violation_percent == 0.0
        assert result.retained_count == pytest.approx(target, rel=0.25)

    def test_violations_reported_when_target_too_high(self, rng):
        intensity = ConstantIntensity(10.0)
        batch = HomogeneousMDPP(10.0, REGION).sample(1.0, rng=np.random.default_rng(9))
        # Ask for far more events than the batch holds.
        result = flatten_events(batch, intensity, 10.0 * len(batch), rng=rng)
        assert result.violation_percent == 100.0
        assert result.retained_count == len(batch)

    def test_flattening_reduces_spatial_skew(self):
        # Strong x-gradient: before flattening the right half dominates;
        # after flattening the halves should be roughly balanced.
        intensity = LinearIntensity(2.0, 0.0, 60.0, 0.0)
        process = InhomogeneousMDPP(intensity, REGION)
        batch = process.sample(8.0, rng=np.random.default_rng(10))
        right_before = int(np.count_nonzero(batch.x > 0.5))
        left_before = len(batch) - right_before
        assert right_before > 2 * left_before
        result = flatten_events(batch, intensity, 150.0, rng=np.random.default_rng(11))
        kept = result.retained
        right_after = int(np.count_nonzero(kept.x > 0.5))
        left_after = len(kept) - right_after
        assert abs(right_after - left_after) < 0.35 * len(kept)

    def test_retain_probability_inverse_to_intensity(self, rng):
        intensity = LinearIntensity(1.0, 0.0, 10.0, 0.0)
        batch = EventBatch.from_rows([(0.0, 0.05, 0.5), (0.0, 0.95, 0.5)])
        result = flatten_events(batch, intensity, 1.0, rng=rng)
        # The low-intensity (left) event must have the higher probability.
        assert result.retain_probability[0] > result.retain_probability[1]

    def test_probabilities_clipped_to_one(self, rng):
        intensity = ConstantIntensity(5.0)
        batch = make_homogeneous_batch(5.0, 1.0, seed=12)
        result = flatten_events(batch, intensity, 10.0 * len(batch), rng=rng)
        assert np.all(result.retain_probability <= 1.0)
