"""Unit tests for point-process statistics and homogeneity diagnostics."""

import numpy as np
import pytest

from repro.errors import PointProcessError
from repro.geometry import Rectangle
from repro.pointprocess import (
    EventBatch,
    GaussianHotspotIntensity,
    HomogeneousMDPP,
    InhomogeneousMDPP,
    assess_homogeneity,
    coefficient_of_variation,
    empirical_rate,
    ks_uniformity_test,
    quadrat_chi_square_test,
    quadrat_counts,
    ripley_k,
)

REGION = Rectangle(0.0, 0.0, 1.0, 1.0)


def homogeneous_batch(rate=200.0, duration=1.0, seed=0):
    return HomogeneousMDPP(rate, REGION).sample(duration, rng=np.random.default_rng(seed))


def clustered_batch(duration=1.0, seed=0):
    intensity = GaussianHotspotIntensity(2.0, ((0.3, 0.3, 600.0, 0.06),))
    return InhomogeneousMDPP(intensity, REGION).sample(
        duration, rng=np.random.default_rng(seed)
    )


class TestEmpiricalRate:
    def test_counts_per_volume(self):
        batch = EventBatch.from_rows([(0.1, 0.5, 0.5)] * 10)
        assert empirical_rate(batch, REGION, 2.0) == pytest.approx(5.0)

    def test_invalid_duration(self):
        with pytest.raises(PointProcessError):
            empirical_rate(EventBatch.empty(), REGION, 0.0)

    def test_simulated_process_matches_rate(self):
        batch = homogeneous_batch(rate=300.0, duration=2.0, seed=1)
        assert empirical_rate(batch, REGION, 2.0) == pytest.approx(300.0, rel=0.1)


class TestQuadratCounts:
    def test_total_preserved(self):
        batch = homogeneous_batch(seed=2)
        counts = quadrat_counts(batch, REGION, 4, 4)
        assert counts.sum() == len(batch)
        assert counts.shape == (4, 4)

    def test_empty_batch(self):
        counts = quadrat_counts(EventBatch.empty(), REGION, 3, 3)
        assert counts.sum() == 0

    def test_invalid_grid(self):
        with pytest.raises(PointProcessError):
            quadrat_counts(EventBatch.empty(), REGION, 0, 3)

    def test_known_placement(self):
        batch = EventBatch.from_rows([(0.0, 0.1, 0.1), (0.0, 0.9, 0.9)])
        counts = quadrat_counts(batch, REGION, 2, 2)
        assert counts[0, 0] == 1
        assert counts[1, 1] == 1


class TestChiSquare:
    def test_homogeneous_not_rejected(self):
        batch = homogeneous_batch(rate=500.0, seed=3)
        result = quadrat_chi_square_test(batch, REGION, 4, 4)
        assert not result.rejects_homogeneity(alpha=0.001)

    def test_clustered_rejected(self):
        batch = clustered_batch(seed=4)
        result = quadrat_chi_square_test(batch, REGION, 4, 4)
        assert result.rejects_homogeneity(alpha=0.01)

    def test_empty_batch_gives_pvalue_one(self):
        result = quadrat_chi_square_test(EventBatch.empty(), REGION)
        assert result.p_value == 1.0

    def test_degrees_of_freedom(self):
        result = quadrat_chi_square_test(homogeneous_batch(seed=5), REGION, 3, 5)
        assert result.degrees_of_freedom == 14


class TestCoefficientOfVariation:
    def test_homogeneous_has_low_cv(self):
        assert coefficient_of_variation(homogeneous_batch(rate=800.0, seed=6), REGION) < 0.5

    def test_clustered_has_high_cv(self):
        assert coefficient_of_variation(clustered_batch(seed=7), REGION) > 1.0

    def test_empty_batch_is_zero(self):
        assert coefficient_of_variation(EventBatch.empty(), REGION) == 0.0


class TestKSUniformity:
    def test_homogeneous_passes(self):
        batch = homogeneous_batch(rate=400.0, seed=8)
        p_t, p_x, p_y = ks_uniformity_test(batch, REGION, 1.0)
        assert min(p_t, p_x, p_y) > 0.001

    def test_clustered_fails_in_space(self):
        batch = clustered_batch(seed=9)
        _, p_x, p_y = ks_uniformity_test(batch, REGION, 1.0)
        assert min(p_x, p_y) < 0.01

    def test_empty_batch_returns_ones(self):
        assert ks_uniformity_test(EventBatch.empty(), REGION, 1.0) == (1.0, 1.0, 1.0)


class TestRipleyK:
    def test_poisson_reference(self):
        batch = homogeneous_batch(rate=500.0, seed=10)
        radii = np.array([0.05, 0.1])
        k = ripley_k(batch, REGION, radii)
        reference = np.pi * radii ** 2
        # Without edge correction K is biased low; just require the same order.
        assert np.all(k > 0.2 * reference)
        assert np.all(k < 3.0 * reference)

    def test_clustered_exceeds_poisson(self):
        clustered = clustered_batch(seed=11)
        uniform = homogeneous_batch(rate=len(clustered), seed=12)
        radius = np.array([0.05])
        assert ripley_k(clustered, REGION, radius)[0] > ripley_k(uniform, REGION, radius)[0]

    def test_tiny_batch_returns_zeros(self):
        batch = EventBatch.from_rows([(0.0, 0.5, 0.5)])
        assert ripley_k(batch, REGION, np.array([0.1])).tolist() == [0.0]


class TestAssessHomogeneity:
    def test_report_for_homogeneous_process(self):
        batch = homogeneous_batch(rate=300.0, seed=13)
        report = assess_homogeneity(batch, REGION, 1.0, target_rate=300.0)
        assert report.is_approximately_homogeneous()
        assert report.meets_rate(tolerance=0.15)
        assert report.rate_relative_error < 0.15

    def test_report_for_clustered_process(self):
        batch = clustered_batch(seed=14)
        report = assess_homogeneity(batch, REGION, 1.0, target_rate=50.0)
        assert not report.is_approximately_homogeneous()

    def test_report_without_target(self):
        report = assess_homogeneity(homogeneous_batch(seed=15), REGION, 1.0)
        assert np.isnan(report.target_rate)
        assert not report.meets_rate()
