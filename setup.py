"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so
that legacy editable installs (``python setup.py develop`` or
``pip install -e .`` on environments without the ``wheel`` package) keep
working in offline environments.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CrAQR: crowdsensed data acquisition using multi-dimensional point "
        "processes (ICDE Workshops 2015 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
)
