"""The serving layer, end to end: DDL over the wire, frames, reconnect.

One :class:`~repro.serve.Server` owns a live engine over the simulated
city; this script plays a dashboard client against it:

* open a TCP connection, say hello, and register a rain query plus a
  per-cell AVG view with one ``execute`` script,
* subscribe to the view and consume closed-window frames as push events
  while asking the server to advance batches,
* "crash" — drop the socket mid-stream, keeping only the resume token
  from the last frame that was safely processed,
* reconnect and resume from the token: the stream continues exactly
  once, no frame lost, no frame repeated,
* pull the raw tuple stream once with a cursor fetch, then resume the
  cursor from its token to read only what arrived since.

Run with::

    PYTHONPATH=src python examples/serve_client_demo.py
"""

from repro.core import CraqrEngine
from repro.serve import ServeClient, ServeConfig, serve_in_thread
from repro.streams.codec import decode_tuple_batch, decode_view_frame
from repro.workloads import build_rain_temperature_world, default_engine_config


def frame_line(frame) -> str:
    cells = ", ".join(
        f"{key}={value:.2f}" for key, value in zip(frame.keys, frame.values)
    )
    return (
        f"  frame {frame.frame_index}  [{frame.window_start:3.0f}, "
        f"{frame.window_end:3.0f})  {cells if cells else '(empty window)'}"
    )


def read_frames(client: ServeClient, count: int):
    """Read exactly ``count`` frame push events; return (frames, last token)."""
    frames, token = [], None
    while len(frames) < count:
        header, payload = client.next_event(timeout=30)
        if header.get("event") != "frame":
            continue
        frames.append(decode_view_frame(payload))
        token = header["token"]  # resumes *after* this frame
    return frames, token


def main() -> None:
    engine = CraqrEngine(
        default_engine_config(seed=21), build_rain_temperature_world(seed=19)
    )
    server, (host, port), stop = serve_in_thread(engine, ServeConfig())
    print(f"server up on {host}:{port}")

    try:
        client = ServeClient(host, port)
        hello = client.hello()
        print(f"hello: protocol {hello['protocol']}, {hello['batches_run']} batches run")

        print("\n== DDL over the wire ==")
        for result in client.execute(
            "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 12 PER KM2 PER MIN AS Storm; "
            "CREATE VIEW Tiles ON Storm AS AVG(value) GROUP BY CELL WINDOW 2; "
            "SHOW QUERIES",
            mode="text",
        ):
            if "text" in result:  # SHOW/EXPLAIN render as the repl's tables
                print(result["text"])
            elif result["kind"] == "query":
                q = result["query"]
                print(f"registered {q['label']}: {q['attribute']} at rate {q['rate']}")
            elif result["kind"] == "view":
                v = result["view"]
                print(f"created view {v['name']} on {v['on']}: {v['spec']}")

        print("\n== subscribe and stream frames ==")
        client.subscribe(view="Tiles", policy="skip")
        client.run(6)  # window 2 -> frames 0, 1, 2
        frames, token = read_frames(client, 3)
        for frame in frames:
            print(frame_line(frame))

        print("\n== simulated crash: dropping the socket ==")
        client.close()  # no unsubscribe, no goodbye — just gone

        print("== reconnect, resume from the saved token ==")
        client = ServeClient(host, port)
        client.subscribe(view="Tiles", token=token)
        client.run(4)  # frames 3, 4 — the token already covers 0..2
        frames, token = read_frames(client, 2)
        for frame in frames:
            print(frame_line(frame))
        print("  (exactly once: resumed at frame 3, nothing lost or repeated)")

        print("\n== pull the raw tuple stream ==")
        header, payload = client.fetch(query="Storm")
        batch = decode_tuple_batch(payload)
        print(f"  full history: {len(batch)} tuples; cursor token saved")
        client.run(2)
        header, payload = client.fetch(query="Storm", token=header["token"])
        print(f"  resumed fetch: {len(decode_tuple_batch(payload))} new tuples only")

        print(f"\nserver totals: {server.batches_served} batches served over the wire")
        client.shutdown()
        client.close()
    finally:
        stop()
    print("server stopped")


if __name__ == "__main__":
    main()
