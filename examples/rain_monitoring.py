"""Rain monitoring: the paper's human-sensed running example, end to end.

A moving rain front crosses the city while humans answer "is it raining
around you?" prompts.  Two rain queries with different regions and rates run
simultaneously; the script shows that

* both queries receive streams at (approximately) their requested rates even
  though human response behaviour is unreliable, and
* the fabricated boolean streams track the ground-truth rain front: the
  fraction of positive reports rises when the front crosses each region.

Run with::

    python examples/rain_monitoring.py
"""

from repro import AcquisitionalQuery, CraqrEngine
from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.workloads import build_rain_temperature_world, default_engine_config

#: Number of one-minute acquisition batches to simulate.
BATCHES = 30


def positive_fraction(items) -> float:
    """Share of tuples reporting rain=True."""
    if not items:
        return 0.0
    return sum(1 for item in items if item.value) / len(items)


def main() -> None:
    world = build_rain_temperature_world(sensor_count=350, seed=23)
    engine = CraqrEngine(default_engine_config(seed=29), world)

    west = engine.register_query(
        AcquisitionalQuery("rain", Rectangle(0.0, 0.0, 2.0, 4.0), 8.0, name="west-rain")
    )
    east = engine.register_query(
        AcquisitionalQuery("rain", Rectangle(2.0, 0.0, 4.0, 4.0), 4.0, name="east-rain")
    )

    table = ResultTable(
        "rain monitoring (per 5-batch window)",
        ["window", "west rate", "west %raining", "east rate", "east %raining"],
    )

    for batch_index in range(BATCHES):
        engine.run_batch()
        if (batch_index + 1) % 5 == 0:
            west_rate = west.achieved_rate(last_batches=5).achieved_rate
            east_rate = east.achieved_rate(last_batches=5).achieved_rate
            west_recent = [i for i in west.results() if i.t >= batch_index - 4]
            east_recent = [i for i in east.results() if i.t >= batch_index - 4]
            table.add_row(
                f"{batch_index - 3:02d}-{batch_index + 1:02d}",
                round(west_rate, 2),
                round(100 * positive_fraction(west_recent), 1),
                round(east_rate, 2),
                round(100 * positive_fraction(east_recent), 1),
            )

    table.print()

    print("\nrequested rates: west 8 /km^2/min, east 4 /km^2/min")
    print(
        "achieved (last 10 batches): "
        f"west {west.achieved_rate(last_batches=10).achieved_rate:.2f}, "
        f"east {east.achieved_rate(last_batches=10).achieved_rate:.2f}"
    )
    print(
        "budget currently allocated to the west region cells:",
        [
            engine.handler.budget_for("rain", key)
            for key in engine.planner.cells_for_query(west.query_id)
        ],
    )


if __name__ == "__main__":
    main()
