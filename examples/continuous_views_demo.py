"""Continuous views: serve dashboards from frames, not raw tuples.

A rain query runs over a simulated city while three continuous views are
maintained incrementally on its delivery stream:

* a per-cell average rain intensity over a tumbling 5-unit window (the
  "map tiles" a dashboard would colour),
* a whole-region P90 over a sliding 10-unit window emitting every 2 units
  (the "headline percentile" ticker), and
* a per-cell tuple count (coverage monitoring).

The script then exercises the session lifecycle the frames must survive:
an ``ALTER SET REGION`` (vacated cells stop appearing, new ones appear),
a pause/resume (windows covering the pause close as empty frames), and a
``DROP VIEW``.

Run with::

    PYTHONPATH=src python examples/continuous_views_demo.py
"""

from repro import CraqrEngine
from repro.metrics import ResultTable
from repro.workloads import build_rain_temperature_world, default_engine_config


def frame_line(frame) -> str:
    cells = ", ".join(
        f"{key}={value:.2f}"
        for key, value in zip(frame.keys, frame.values)
    )
    return (
        f"  [{frame.window_start:4.0f}, {frame.window_end:4.0f})  "
        f"{frame.tuples:4d} tuples  {cells if cells else '(empty window)'}"
    )


def main() -> None:
    engine = CraqrEngine(
        default_engine_config(seed=21), build_rain_temperature_world(seed=19)
    )
    engine.execute(
        "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 15 PER KM2 PER MIN AS Storm"
    )
    tiles = engine.execute(
        "CREATE VIEW RainTiles ON Storm AS AVG(value) GROUP BY CELL WINDOW 5"
    )
    headline = engine.execute(
        "CREATE VIEW RainP90 ON Storm AS P90(value) WINDOW 10 SLIDE 2"
    )
    engine.execute("CREATE VIEW Coverage ON Storm AS COUNT(*) GROUP BY CELL WINDOW 5")

    tile_cursor = tiles.frame_cursor()
    headline_cursor = headline.frame_cursor()

    print("== warm-up: 10 batches ==")
    engine.run(10)
    for frame in tile_cursor.fetch():
        print("tiles ", frame_line(frame))
    for frame in headline_cursor.fetch():
        print("P90   ", frame_line(frame))

    print("\n== ALTER Storm SET REGION RECT(1, 1, 3, 3); 10 more batches ==")
    engine.execute("ALTER Storm SET REGION RECT(1, 1, 3, 3)")
    engine.run(10)
    for frame in tile_cursor.fetch():
        print("tiles ", frame_line(frame))

    print("\n== pause 5 batches (windows close empty), resume 5 ==")
    storm = engine.query("Storm")
    storm.pause()
    engine.run(5)
    storm.resume()
    engine.run(5)
    for frame in tile_cursor.fetch():
        print("tiles ", frame_line(frame))

    print("\n== SHOW VIEWS ==")
    table = ResultTable(
        "views", ["view", "aggregate", "frames", "tuples", "last close"]
    )
    for info in engine.execute("SHOW VIEWS"):
        table.add_row(
            info.name,
            f"{info.aggregate} / {info.group_by}",
            info.frames_emitted,
            info.tuples_total,
            info.last_window_end,
        )
    print(table.render())

    dropped = engine.execute("DROP VIEW Coverage")
    print(
        f"\ndropped {dropped.name}: {dropped.buffer.frames_emitted} frames "
        f"remain readable; views left: "
        f"{[info.name for info in engine.execute('SHOW VIEWS')]}"
    )


if __name__ == "__main__":
    main()
