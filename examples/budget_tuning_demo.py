"""Budget tuning demo: the N_v feedback loop of Section V in action.

A demanding query is registered in a sparsely crowded region, so the initial
budget cannot satisfy its rate.  The script traces, batch by batch, the rate
violations the Flatten operators report and the budget adjustments the tuner
makes, then (as the paper suggests) switches on incentives when the budget
saturates at its limit.

Run with::

    python examples/budget_tuning_demo.py
"""

from repro import AcquisitionalQuery, CraqrEngine
from repro.config import BudgetConfig, EngineConfig
from repro.geometry import Rectangle
from repro.metrics import ResultTable, ViolationTracker
from repro.sensing import FlatIncentive, LinearIncentiveResponse
from repro.workloads import build_rain_temperature_world

#: Batches to run in each phase of the demo.
PHASE_BATCHES = 15


def run_phase(engine, handle, tracker, table, label, batches, incentive_controller=None):
    """Run one phase and append one table row per batch."""
    for _ in range(batches):
        report = engine.run_batch()
        tracker.record(report.fabrication.violations)
        cell_key = engine.planner.cells_for_query(handle.query_id)[0]
        violation = report.fabrication.violations.get(("rain", cell_key), 0.0)
        if incentive_controller is not None:
            incentive_controller.adjust(violation, engine.config.budget.violation_threshold)
        table.add_row(
            label,
            report.batch_index,
            round(violation, 1),
            engine.handler.budget_for("rain", cell_key),
            round(handle.achieved_rate(last_batches=1).achieved_rate, 2),
            round(incentive_controller.scheme.payment, 2) if incentive_controller else 0.0,
        )


def main() -> None:
    # A sparse crowd: only 120 sensors in 16 km^2, and a demanding query.
    world = build_rain_temperature_world(
        sensor_count=120, seed=83, response_probability=0.35
    )
    incentive = FlatIncentive(0.0)
    config = EngineConfig(
        grid_cells=16,
        batch_duration=1.0,
        budget=BudgetConfig(initial=30, delta=15, limit=240, floor=15, violation_threshold=5.0),
        seed=89,
    )
    engine = CraqrEngine(config, world, incentive=incentive)
    handle = engine.register_query(
        AcquisitionalQuery("rain", Rectangle(1.0, 1.0, 2.0, 2.0), 25.0, name="demanding")
    )

    tracker = ViolationTracker()
    table = ResultTable(
        "budget tuning trace",
        ["phase", "batch", "N_v %", "budget", "achieved rate", "incentive"],
    )

    print("phase 1: pure budget feedback (no incentives)")
    run_phase(engine, handle, tracker, table, "budget-only", PHASE_BATCHES)

    saturated = engine.budget_tuner.saturated_pairs
    print("saturated (attribute, cell) pairs after phase 1:", saturated or "none")
    print("phase 2: budget limit reached -> offer incentives as the paper's "
          "Section VI suggests")
    controller = LinearIncentiveResponse(incentive, step=0.25, max_payment=2.0)
    run_phase(engine, handle, tracker, table, "with-incentives", PHASE_BATCHES, controller)

    table.print()

    print("\nmean violation over the whole run:", round(tracker.overall_mean(), 1), "%")
    print("final budget:",
          engine.handler.budget_for("rain", engine.planner.cells_for_query(handle.query_id)[0]))
    print("total incentive spent:", round(incentive.total_spent, 1))
    print("achieved rate (last 5 batches):",
          round(handle.achieved_rate(last_batches=5).achieved_rate, 2),
          "/km^2/min for a requested 25.0")


if __name__ == "__main__":
    main()
