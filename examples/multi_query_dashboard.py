"""Multi-query dashboard: many concurrent acquisitional queries, one crowd.

Simulates a small "city operations" dashboard: a dozen queries over
overlapping regions and both attributes are registered at once, then queries
come and go while the engine keeps running.  The script reports

* per-query achieved vs requested rates,
* how many acquisition requests the shared CrAQR topologies needed compared
  with the naive process-each-query-from-scratch strategy (the paper's
  multi-query optimisation motivation), and
* the planner's operator counts before and after query churn.

Run with::

    python examples/multi_query_dashboard.py
"""

from repro import CraqrEngine
from repro.baselines import NaivePerQueryEngine
from repro.metrics import CostReport, ResultTable
from repro.workloads import (
    build_rain_temperature_world,
    default_engine_config,
    random_query_workload,
)

#: Number of concurrent queries on the dashboard.
QUERY_COUNT = 12

#: Batches to run before and after the churn step.
WARMUP_BATCHES = 10
POST_CHURN_BATCHES = 8


def main() -> None:
    config = default_engine_config(seed=61)
    world = build_rain_temperature_world(sensor_count=400, seed=59)
    engine = CraqrEngine(config, world)

    queries = random_query_workload(
        engine.grid, QUERY_COUNT, rate_range=(4.0, 20.0), seed=67
    )
    handles = [engine.register_query(query) for query in queries]
    print(f"registered {len(handles)} queries; planner state: {engine.planner_stats()}")

    engine.run(WARMUP_BATCHES)
    # Snapshot the shared engine's cost after the warm-up period so the later
    # comparison against the naive strategy covers the same number of batches.
    shared_requests_warmup = engine.total_requests_sent()
    shared_responses_warmup = engine.total_tuples_acquired()
    shared_delivered_warmup = engine.total_tuples_delivered()

    table = ResultTable(
        "dashboard after warm-up",
        ["query", "attribute", "area km^2", "requested", "achieved", "rel. error"],
    )
    for handle in handles:
        estimate = handle.achieved_rate(last_batches=5)
        table.add_row(
            handle.query.label,
            handle.query.attribute,
            round(handle.query.region.area, 1),
            round(estimate.requested_rate, 2),
            round(estimate.achieved_rate, 2),
            round(estimate.relative_error, 2),
        )
    table.print()

    # --- Query churn: retire a third of the dashboard, add two new queries.
    retired = handles[::3]
    for handle in retired:
        handle.delete()
    extra = random_query_workload(engine.grid, 2, rate_range=(6.0, 12.0), seed=71)
    handles = [h for h in handles if h.is_active()] + [
        engine.register_query(query) for query in extra
    ]
    print(f"\nafter churn ({len(retired)} deleted, {len(extra)} added): "
          f"{engine.planner_stats()}")
    engine.run(POST_CHURN_BATCHES)

    # --- Cost comparison against the naive per-query strategy.
    naive_world = build_rain_temperature_world(sensor_count=400, seed=59)
    naive = NaivePerQueryEngine(config, naive_world)
    for query in queries:
        naive.register_query(query.with_rate(query.rate))
    naive.run(WARMUP_BATCHES)

    shared_cost = CostReport(
        requests=shared_requests_warmup,
        responses=shared_responses_warmup,
        incentive_spent=0.0,
    )
    naive_cost = CostReport(
        requests=naive.total_requests_sent(),
        responses=naive.total_responses_received(),
        incentive_spent=0.0,
    )
    comparison = ResultTable(
        f"shared CrAQR topologies vs naive per-query acquisition ({WARMUP_BATCHES} batches)",
        ["strategy", "requests", "responses", "delivered", "cost / delivered tuple"],
    )
    comparison.add_row(
        "CrAQR (shared)",
        shared_requests_warmup,
        shared_responses_warmup,
        shared_delivered_warmup,
        round(shared_cost.per_delivered_tuple(shared_delivered_warmup), 3),
    )
    comparison.add_row(
        "naive per-query",
        naive.total_requests_sent(),
        naive.total_responses_received(),
        naive.total_tuples_delivered(),
        round(naive_cost.per_delivered_tuple(naive.total_tuples_delivered()), 3),
    )
    comparison.print()
    ratio = naive_cost.per_delivered_tuple(naive.total_tuples_delivered()) / max(
        shared_cost.per_delivered_tuple(shared_delivered_warmup), 1e-9
    )
    print(f"\nnaive per-query acquisition pays {ratio:.2f}x more per delivered tuple "
          f"than the shared CrAQR topologies")


if __name__ == "__main__":
    main()
