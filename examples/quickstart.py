"""Quickstart: acquire one crowdsensed stream at a fixed spatio-temporal rate.

This is the paper's example query Q1 made executable:

    Q1: Acquire the attribute rain from region R' at the rate of 10 /km^2/min.

The script builds a simulated city of mobile sensors, registers the query
with the CrAQR engine, runs a few acquisition batches and prints the achieved
rate next to the requested one.

Run with::

    python examples/quickstart.py
"""

from repro import AcquisitionalQuery, CraqrEngine, RateSpec
from repro.geometry import Rectangle
from repro.workloads import build_rain_temperature_world, default_engine_config


def main() -> None:
    # A 4 km x 4 km city with 300 mobile sensors (humans with smartphones).
    world = build_rain_temperature_world(sensor_count=300, seed=11)
    engine = CraqrEngine(default_engine_config(seed=7), world)

    # The paper's Q1: rain over a 2 km x 2 km sub-region at 10 /km^2/min.
    query = AcquisitionalQuery(
        attribute="rain",
        region=Rectangle(0.0, 0.0, 2.0, 2.0),
        rate=RateSpec(10.0, area_unit="km2", time_unit="min"),
        name="Q1-rain",
    )
    handle = engine.register_query(query)

    print(f"registered {query.label}: {query.attribute} over "
          f"{query.region.area:.0f} km^2 at {query.rate:g} /km^2/min")
    print("running 20 one-minute acquisition batches...\n")

    for batch_index in range(20):
        report = engine.run_batch()
        achieved = handle.achieved_rate(last_batches=1)
        print(
            f"batch {batch_index:2d}: "
            f"requests={report.handler.requests_sent:4d}  "
            f"responses={report.handler.responses_received:4d}  "
            f"delivered={report.fabrication.delivered_per_query.get(query.query_id, 0):3d}  "
            f"rate={achieved.achieved_rate:5.1f} /km^2/min"
        )

    overall = handle.achieved_rate()
    steady = handle.achieved_rate(last_batches=10)
    print("\nrequested rate :", f"{query.rate:.1f} /km^2/min")
    print("achieved (all batches)  :", f"{overall.achieved_rate:.2f} /km^2/min")
    print("achieved (last 10)      :", f"{steady.achieved_rate:.2f} /km^2/min")
    print("total acquisition requests sent:", engine.total_requests_sent())
    print("total tuples delivered to the query:", handle.buffer.total_tuples)

    sample = handle.results()[:5]
    print("\nfirst tuples of the fabricated stream (t, x, y, rain):")
    for item in sample:
        print(f"  ({item.t:6.2f}, {item.x:5.2f}, {item.y:5.2f}, {item.value})")


if __name__ == "__main__":
    main()
