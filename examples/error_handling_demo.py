"""Error handling demo: GPS/sensor/judgment errors and their mitigation.

Section VI of the paper lists error handling as future work: "Errors can be
introduced by sampling constraints, GPS errors, sensors inaccuracies, or
errors in human judgment."  This demo fabricates a clean temperature stream
with CrAQR, corrupts it with the error models of ``repro.sensing.errors``
and then repairs it with the cleaning operators of
``repro.core.pmat.cleaning``, reporting how much of the induced error each
mitigation step removes.

Run with::

    python examples/error_handling_demo.py
"""

import numpy as np

from repro import AcquisitionalQuery, CraqrEngine
from repro.core.pmat import ClampOperator, OutlierFilterOperator
from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.sensing import ErrorInjector, GpsNoiseModel, ValueErrorModel
from repro.streams import CollectingSink
from repro.workloads import build_rain_temperature_world, default_engine_config

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)
BATCHES = 12


def value_error(items, reference_mean):
    """Mean absolute deviation of reported values from the clean mean."""
    if not items:
        return float("nan")
    return float(np.mean([abs(item.value - reference_mean) for item in items]))


def main() -> None:
    # 1. Fabricate a clean city-wide temperature stream.
    world = build_rain_temperature_world(sensor_count=300, seed=97)
    engine = CraqrEngine(default_engine_config(seed=101), world)
    handle = engine.register_query(
        AcquisitionalQuery("temp", REGION, 5.0, name="city-temp")
    )
    engine.run(BATCHES)
    clean = handle.results()
    clean_mean = float(np.mean([item.value for item in clean]))
    print(f"fabricated {len(clean)} temperature tuples; clean mean = {clean_mean:.2f} deg C")

    # 2. Corrupt the stream: 400 m GPS noise, sensor noise and gross outliers.
    injector = ErrorInjector(
        gps=GpsNoiseModel(0.4, region=REGION),
        value=ValueErrorModel(noise_std=0.3, outlier_probability=0.05, outlier_scale=50.0),
        rng=np.random.default_rng(103),
    )
    corrupted = injector.corrupt_many(clean)
    outside = sum(1 for item in corrupted if not REGION.contains(item.x, item.y, closed=True))

    # 3. Repair it with the cleaning operators.
    clamp = ClampOperator(REGION)
    outlier = OutlierFilterOperator(window=80, z_threshold=4.0, min_history=15)
    outlier.subscribe_to(clamp.output)
    cleaned_sink = CollectingSink().attach(outlier.output)
    for item in corrupted:
        clamp.accept(item)
    cleaned = cleaned_sink.items

    table = ResultTable(
        "error handling: value error and positional validity at each stage",
        ["stage", "tuples", "mean |value error| (deg C)", "tuples outside region"],
    )
    table.add_row("clean (ground truth stream)", len(clean), round(value_error(clean, clean_mean), 3), 0)
    table.add_row(
        "corrupted (GPS + noise + outliers)",
        len(corrupted),
        round(value_error(corrupted, clean_mean), 3),
        outside,
    )
    table.add_row(
        "cleaned (clamp + robust outlier filter)",
        len(cleaned),
        round(value_error(cleaned, clean_mean), 3),
        sum(1 for item in cleaned if not REGION.contains(item.x, item.y, closed=True)),
    )
    table.print()

    print(
        f"\noutlier filter dropped {outlier.dropped} gross outliers; "
        f"clamp fixed {clamp.clamped} out-of-region positions"
    )
    print("the cleaned stream keeps",
          f"{100.0 * len(cleaned) / len(corrupted):.1f}% of the corrupted tuples")


if __name__ == "__main__":
    main()
