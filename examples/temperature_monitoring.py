"""Ambient temperature monitoring: the sensor-sensed running example.

The city has two urban heat islands.  A temperature query is registered via
the declarative query language, the engine fabricates its stream, and the
script aggregates the delivered readings into a coarse temperature map that
clearly shows the heat islands — demonstrating that the fixed-rate stream is
dense enough everywhere for downstream inference, despite the skewed sensor
distribution.

Run with::

    python examples/temperature_monitoring.py
"""

import numpy as np

from repro import CraqrEngine, parse_query
from repro.query import AttributeCatalog
from repro.workloads import build_rain_temperature_world, default_engine_config

#: Number of one-minute acquisition batches to simulate.
BATCHES = 25

#: Side of the coarse output temperature map.
MAP_SIDE = 4


def main() -> None:
    world = build_rain_temperature_world(sensor_count=320, seed=37)
    engine = CraqrEngine(default_engine_config(seed=41), world)
    catalog = AttributeCatalog.default()

    statement = parse_query(
        "ACQUIRE temp FROM RECT(0, 0, 4, 4) AT RATE 6 PER KM2 PER MIN AS CityTemp"
    )
    catalog.validate_attribute(statement.attribute)
    handle = engine.register_query(statement.to_query())
    print("registered:", handle.query.label, "rate", handle.query.rate, "/km^2/min")

    engine.run(BATCHES)

    estimate = handle.achieved_rate(last_batches=10)
    print(f"achieved rate over the last 10 batches: {estimate.achieved_rate:.2f} /km^2/min "
          f"(requested {estimate.requested_rate:.2f})")

    # Aggregate the delivered readings into a MAP_SIDE x MAP_SIDE temperature map.
    region = world.region
    sums = np.zeros((MAP_SIDE, MAP_SIDE))
    counts = np.zeros((MAP_SIDE, MAP_SIDE), dtype=int)
    for item in handle.results():
        q = min(int((item.x - region.x_min) / region.width * MAP_SIDE), MAP_SIDE - 1)
        r = min(int((item.y - region.y_min) / region.height * MAP_SIDE), MAP_SIDE - 1)
        sums[r, q] += float(item.value)
        counts[r, q] += 1

    print("\nmean reported temperature per 1 km x 1 km block (deg C), north at the top:")
    for r in reversed(range(MAP_SIDE)):
        cells = []
        for q in range(MAP_SIDE):
            if counts[r, q] == 0:
                cells.append("   -- ")
            else:
                cells.append(f"{sums[r, q] / counts[r, q]:6.1f}")
        print("  " + " ".join(cells))

    print("\nreadings per block (shows the acquired stream covers the whole region):")
    for r in reversed(range(MAP_SIDE)):
        print("  " + " ".join(f"{counts[r, q]:6d}" for q in range(MAP_SIDE)))

    ground_truth = world.field_for("temp")
    print("\nground-truth mean temperature at the two heat-island centres vs the corner:")
    for label, (x, y) in [
        ("island A", (region.width * 0.3, region.height * 0.3)),
        ("island B", (region.width * 0.75, region.height * 0.6)),
        ("corner", (region.width * 0.02, region.height * 0.02)),
    ]:
        print(f"  {label:9s} {ground_truth.mean_value(world.now, x, y):6.1f} deg C")


if __name__ == "__main__":
    main()
