"""E14: the vectorised sensing world vs the per-object simulation.

Two measurements:

* ``SensingWorld.advance`` throughput per mobility model at 1k / 10k / 100k
  sensors — strict mode (the per-sensor object path) against fast-sim mode
  (``vectorized_rng=True``, one ``step_batch`` kernel per model group per
  movement step).  ISSUE 2's acceptance bar is a >= 15x speedup for
  RandomWaypoint at 10k sensors.
* Engine end-to-end: a fully vectorised engine (columnar pipeline + fast-sim
  world) against the fully object-at-a-time engine (object path + strict
  world).  ISSUE 2 asks for >= 3x, up from the ~1.4x the columnar pipeline
  alone achieved while the world simulation dominated the wall clock.

Results are persisted to ``BENCH_world.json`` via ``record_world_metric`` so
the simulation perf trajectory is tracked across PRs.
"""

import time

import numpy as np

from repro.config import BudgetConfig, EngineConfig
from repro.core.engine import CraqrEngine
from repro.core.query import AcquisitionalQuery
from repro.geometry import Rectangle, RectRegion
from repro.metrics import ResultTable
from repro.sensing import (
    GaussMarkovMobility,
    HotspotMobility,
    RainField,
    RandomWalkMobility,
    RandomWaypointMobility,
    SensingWorld,
    StationaryMobility,
    WorldConfig,
)

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)

MOBILITY_FACTORIES = {
    "stationary": lambda r: StationaryMobility(r),
    "walk": lambda r: RandomWalkMobility(r),
    "waypoint": lambda r: RandomWaypointMobility(r),
    "gauss_markov": lambda r: GaussMarkovMobility(r),
    "hotspot": lambda r: HotspotMobility(r, [(1.0, 1.0, 1.0), (3.0, 3.0, 2.0)]),
}

SENSOR_COUNTS = (1_000, 10_000, 100_000)

#: Simulated duration per measurement; shorter at 100k so the strict
#: (per-object) side keeps the whole benchmark CI-friendly.
ADVANCE_DURATION = {1_000: 1.0, 10_000: 1.0, 100_000: 0.2}

#: Timing repetitions (minimum taken) per sensor count: scheduler noise on a
#: shared runner lands on one window, not both; a single pass suffices at
#: 100k where the ratio is recorded but not asserted.
ADVANCE_REPEATS = {1_000: 2, 10_000: 3, 100_000: 1}

#: ISSUE 2 acceptance: fast-sim advance speedup at 10k waypoint sensors.
REQUIRED_ADVANCE_SPEEDUP = 15.0

#: ISSUE 2 acceptance: fully vectorised engine vs fully object engine.
REQUIRED_ENGINE_SPEEDUP = 3.0


def make_world(factory, sensor_count, *, vectorized, seed=41):
    return SensingWorld(
        WorldConfig(
            region=REGION,
            sensor_count=sensor_count,
            seed=seed,
            vectorized_rng=vectorized,
        ),
        mobility_factory=factory,
    )


def time_advance(world, duration, repeats=1):
    world.advance(world.config.movement_step)  # warm-up sub-step
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        world.advance(duration)
        best = min(best, time.perf_counter() - start)
    return best


def test_world_advance_throughput(record_table, record_world_metric):
    table = ResultTable(
        "E14 - SensingWorld.advance: strict (object) vs fast-sim (SoA kernels)",
        ["model", "sensors", "object s-steps/s", "fast-sim s-steps/s", "speedup"],
    )
    speedups = {}
    for name, factory in MOBILITY_FACTORIES.items():
        for count in SENSOR_COUNTS:
            duration = ADVANCE_DURATION[count]
            strict = make_world(factory, count, vectorized=False)
            fast = make_world(factory, count, vectorized=True)
            sub_steps = round(duration / strict.config.movement_step)
            sensor_steps = count * sub_steps
            repeats = ADVANCE_REPEATS[count]
            strict_elapsed = time_advance(strict, duration, repeats)
            fast_elapsed = time_advance(fast, duration, repeats)
            speedup = strict_elapsed / fast_elapsed
            speedups[(name, count)] = speedup
            table.add_row(
                name,
                count,
                int(sensor_steps / strict_elapsed),
                int(sensor_steps / fast_elapsed),
                f"{speedup:.1f}x",
            )
            record_world_metric(
                f"world_advance_speedup_{name}_{count}",
                speedup,
                unit="x",
                detail={
                    "object_sensor_steps_per_second": sensor_steps / strict_elapsed,
                    "fast_sim_sensor_steps_per_second": sensor_steps / fast_elapsed,
                    "simulated_duration": duration,
                },
            )
    record_table("E14_world_advance", table)

    # The acceptance bar is defined at 10k sensors; the 1k and 100k rows are
    # recorded for the trajectory but not asserted (at 100k the short
    # simulated duration makes the ratio sensitive to scheduler noise).
    assert speedups[("waypoint", 10_000)] >= REQUIRED_ADVANCE_SPEEDUP, (
        f"fast-sim advance only {speedups[('waypoint', 10_000)]:.1f}x faster "
        f"at 10k waypoint sensors"
    )


def test_fast_sim_engine_end_to_end(record_world_metric):
    """The fully vectorised engine vs the fully object-at-a-time engine."""

    def run(*, columnar, vectorized):
        world = SensingWorld(
            WorldConfig(
                region=REGION, sensor_count=10_000, seed=11, vectorized_rng=vectorized
            )
        )
        world.register_field(RainField(REGION))
        config = EngineConfig(
            grid_cells=16,
            seed=5,
            budget=BudgetConfig(initial=200, delta=10, limit=400),
            columnar=columnar,
        )
        engine = CraqrEngine(config, world)
        assert engine.fast_sim == vectorized
        engine.register_query(
            AcquisitionalQuery(
                "rain", RectRegion.from_bounds(0.0, 0.0, 4.0, 4.0), rate=100.0
            )
        )
        start = time.perf_counter()
        engine.run(3)
        return time.perf_counter() - start, engine.total_tuples_delivered()

    run(columnar=True, vectorized=True)  # warm-up
    object_elapsed, object_delivered = run(columnar=False, vectorized=False)
    fast_elapsed, fast_delivered = run(columnar=True, vectorized=True)
    speedup = object_elapsed / fast_elapsed
    # Different RNG contracts deliver different (statistically equivalent)
    # tuple populations; the workload size must still be comparable.
    assert fast_delivered > 0.5 * object_delivered
    record_world_metric(
        "world_engine_speedup",
        speedup,
        unit="x",
        detail={
            "object_seconds": object_elapsed,
            "fast_sim_seconds": fast_elapsed,
            "object_delivered": int(object_delivered),
            "fast_sim_delivered": int(fast_delivered),
        },
    )
    assert speedup >= REQUIRED_ENGINE_SPEEDUP, (
        f"fully vectorised engine only {speedup:.1f}x faster end-to-end"
    )
