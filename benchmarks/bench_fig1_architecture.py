"""E1 (Fig. 1): the CrAQR architecture end to end.

Reproduces the paper's architecture figure as an executable scenario: mobile
sensors -> request/response handler -> crowdsensed stream fabricator ->
acquired crowdsensed streams, driven by query input.  The table reports, for
each pipeline stage, the volume flowing through it, which is the figure's
data-flow story in numbers.  The benchmark measures the cost of one full
acquisition batch through the whole architecture.
"""

import pytest

from repro import AcquisitionalQuery, CraqrEngine
from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.workloads import build_rain_temperature_world, default_engine_config

BATCHES = 12


def build_engine():
    world = build_rain_temperature_world(sensor_count=250, seed=101)
    engine = CraqrEngine(default_engine_config(seed=103), world)
    engine.register_query(
        AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), 10.0, name="rain-Q")
    )
    engine.register_query(
        AcquisitionalQuery("temp", Rectangle(1, 1, 3, 3), 6.0, name="temp-Q")
    )
    return engine


def run_architecture(engine, batches=BATCHES):
    for _ in range(batches):
        engine.run_batch()
    return engine


def test_fig1_architecture_flow(benchmark, record_table):
    engine = build_engine()
    run_architecture(engine)

    # Benchmark one additional batch through the full pipeline.
    benchmark(engine.run_batch)

    handles = engine.query_handles()
    table = ResultTable(
        "E1 / Fig.1 - data flow through the CrAQR architecture",
        ["stage", "quantity", "value"],
    )
    table.add_row("mobile sensors", "sensors in region R", engine.world.config.sensor_count)
    table.add_row("query input", "registered acquisitional queries", len(handles))
    table.add_row("request/response handler", "acquisition requests sent", engine.total_requests_sent())
    table.add_row("request/response handler", "responses (raw tuples) collected", engine.total_tuples_acquired())
    table.add_row("stream fabricator", "materialised grid-cell topologies", engine.planner_stats().materialized_cells)
    table.add_row("stream fabricator", "PMAT operators", engine.planner_stats().pmat_operators)
    table.add_row("acquired streams", "tuples delivered to queries", engine.total_tuples_delivered())
    for handle in handles:
        estimate = handle.achieved_rate(last_batches=6)
        table.add_row(
            "acquired streams",
            f"{handle.query.label} achieved vs requested rate",
            f"{estimate.achieved_rate:.2f} / {estimate.requested_rate:.2f}",
        )
    record_table("E1_fig1_architecture", table)

    # Shape checks: the pipeline narrows monotonically (requests >= responses
    # >= deliveries) and each query gets within 35% of its requested rate.
    assert engine.total_requests_sent() >= engine.total_tuples_acquired()
    assert engine.total_tuples_acquired() >= engine.total_tuples_delivered() > 0
    for handle in handles:
        estimate = handle.achieved_rate(last_batches=6)
        assert estimate.relative_error < 0.35
