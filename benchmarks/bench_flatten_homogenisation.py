"""E3 (Eq. 3 / Flatten claim): Flatten homogenises an inhomogeneous MDPP.

The paper claims the Flatten operator converts an inhomogeneous MDPP into an
*approximately homogeneous* point process at a requested rate lambda-bar and
reports the percent rate violation N_v.  The sweep generates inhomogeneous
batches from the paper's linear conditional intensity (Eq. 1) with
increasingly strong spatial gradients, flattens them at several target
rates, and reports: the achieved rate, the quadrat chi-square dispersion
before and after flattening, and N_v.  The benchmark measures the per-batch
cost of the flatten kernel itself.
"""

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.pointprocess import (
    InhomogeneousMDPP,
    LinearIntensity,
    coefficient_of_variation,
    flatten_events,
    quadrat_chi_square_test,
)

REGION = Rectangle(0.0, 0.0, 1.0, 1.0)
DURATION = 4.0

#: (label, theta) pairs: increasing spatial skew of the generating intensity.
GRADIENTS = [
    ("mild skew", (60.0, 0.0, 40.0, 20.0)),
    ("strong skew", (30.0, 0.0, 120.0, 60.0)),
    ("extreme skew", (10.0, 0.0, 250.0, 120.0)),
]

#: Target rates (per unit area and time) to flatten to.
TARGET_RATES = [10.0, 25.0, 50.0]


def run_flatten_sweep(seed=211):
    rows = []
    rng = np.random.default_rng(seed)
    for label, theta in GRADIENTS:
        intensity = LinearIntensity.from_theta(theta).validated_on(REGION, 0.0, DURATION)
        batch = InhomogeneousMDPP(intensity, REGION).sample(DURATION, rng=rng)
        dispersion_before = quadrat_chi_square_test(batch, REGION, 4, 4).statistic
        cv_before = coefficient_of_variation(batch, REGION)
        for target in TARGET_RATES:
            result = flatten_events(
                batch, intensity, target * REGION.area * DURATION, rng=rng
            )
            retained = result.retained
            achieved = len(retained) / (REGION.area * DURATION)
            dispersion_after = quadrat_chi_square_test(retained, REGION, 4, 4).statistic
            cv_after = coefficient_of_variation(retained, REGION)
            rows.append(
                {
                    "gradient": label,
                    "target": target,
                    "input_rate": len(batch) / (REGION.area * DURATION),
                    "achieved": achieved,
                    "cv_before": cv_before,
                    "cv_after": cv_after,
                    "chi2_before": dispersion_before,
                    "chi2_after": dispersion_after,
                    "violations": result.violation_percent,
                }
            )
    return rows


def test_flatten_homogenisation(benchmark, record_table):
    rows = run_flatten_sweep()

    # Benchmark the flatten kernel on the strongest-skew batch.
    intensity = LinearIntensity.from_theta(GRADIENTS[-1][1])
    rng = np.random.default_rng(223)
    batch = InhomogeneousMDPP(intensity, REGION).sample(DURATION, rng=rng)
    benchmark(
        flatten_events, batch, intensity, 25.0 * REGION.area * DURATION, rng=rng
    )

    table = ResultTable(
        "E3 - Flatten: inhomogeneous MDPP (Eq.1) -> approximately homogeneous at lambda-bar",
        [
            "input intensity",
            "input rate",
            "target rate",
            "achieved rate",
            "CV before",
            "CV after",
            "chi2 before",
            "chi2 after",
            "N_v %",
        ],
    )
    for row in rows:
        table.add_row(
            row["gradient"],
            round(row["input_rate"], 1),
            row["target"],
            round(row["achieved"], 2),
            round(row["cv_before"], 2),
            round(row["cv_after"], 2),
            round(row["chi2_before"], 1),
            round(row["chi2_after"], 1),
            round(row["violations"], 1),
        )
    record_table("E3_flatten_homogenisation", table)

    for row in rows:
        reachable = row["target"] <= row["input_rate"]
        if reachable and row["violations"] == 0.0:
            # The requested rate is met within 30%.
            assert row["achieved"] == pytest.approx(row["target"], rel=0.30)
        # The flattened output never rejects homogeneity strongly
        # (index of dispersion stays moderate; 15 degrees of freedom here).
        assert row["chi2_after"] < 2.0 * 15
    # For the skewed inputs the dispersion statistic falls sharply: the
    # flattened process is far closer to CSR than the raw arrivals.
    skewed = [r for r in rows if r["gradient"] != "mild skew"]
    assert all(r["chi2_after"] < 0.6 * r["chi2_before"] for r in skewed)
