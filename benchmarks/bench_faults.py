"""E-faults: zero-fault overhead gate + fault-scenario throughput.

Two claims from ISSUE 6 are asserted here:

* **Zero-fault overhead <= 5%.**  With no :class:`FaultPlan` configured the
  fused fast-sim acquisition round must run within 5% of a build without
  the fault subsystem.  The plain-path body is shared verbatim and only a
  three-attribute ``_plain`` gate was added, so the baseline is recovered
  in-process by patching that gate to a constant — the measured delta IS
  the subsystem's entire cost on healthy runs.
* **Fault scenarios stay usable.**  The flaky-crowd and cell-outage
  scenarios (retries, quarantine bookkeeping, degradation tracking all
  active) must sustain a sane batch rate; their throughput is recorded to
  ``BENCH_scenarios.json`` so the mitigation stack's cost is tracked
  across PRs.
"""

import time

import pytest

from repro.core import CraqrEngine
from repro.geometry import Grid, Rectangle
from repro.metrics import ResultTable
from repro.sensing import (
    BernoulliParticipation,
    RainField,
    RandomWaypointMobility,
    RequestResponseHandler,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)
from repro.workloads import cell_outage_scenario, flaky_crowd_scenario

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)

#: Maximum tolerated slowdown of zero-fault fused rounds vs the patched-out
#: baseline (the ISSUE 6 acceptance bar).
MAX_ZERO_FAULT_OVERHEAD = 0.05

SENSORS = 10_000
ROUNDS = 30
REPEATS = 5


def make_fused_world(seed=1601):
    world = SensingWorld(
        WorldConfig(
            region=REGION, sensor_count=SENSORS, seed=seed, vectorized_rng=True
        ),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.4),
        participation_factory=lambda i: BernoulliParticipation(
            0.7, mean_latency=0.05
        ),
    )
    world.register_field(RainField(REGION))
    world.register_field(TemperatureField(REGION))
    return world


def run_fused_rounds(seed=1601):
    world = make_fused_world(seed)
    grid = Grid(REGION, side=8)
    handler = RequestResponseHandler(world, grid, default_budget=40)
    cells = list(grid.cells())
    start = time.perf_counter()
    for _ in range(ROUNDS):
        handler.acquire_batches({"rain": cells, "temp": cells}, duration=1.0)
        world.advance(1.0)
    return time.perf_counter() - start


class TestZeroFaultOverhead:
    def test_fused_round_overhead_within_five_percent(
        self, monkeypatch, record_scenario_metric, record_table
    ):
        # Remove the fault subsystem's only hot-path addition — the
        # `_plain` gate — to recover the pre-fault baseline in-process.
        # Measurements are interleaved (baseline, gated, baseline, ...) so
        # cache warm-up and machine drift hit both variants equally, and
        # each variant keeps its best time.
        plain_gate = RequestResponseHandler._plain
        patched_gate = property(lambda self: True)
        gated = baseline = float("inf")
        run_fused_rounds()  # warm-up, discarded
        for _ in range(REPEATS):
            monkeypatch.setattr(RequestResponseHandler, "_plain", patched_gate)
            baseline = min(baseline, run_fused_rounds())
            monkeypatch.setattr(RequestResponseHandler, "_plain", plain_gate)
            gated = min(gated, run_fused_rounds())
        overhead = gated / baseline - 1.0
        table = ResultTable(
            "zero-fault fused overhead",
            ["variant", "seconds", "rounds/s"],
        )
        table.add_row("with fault gate", round(gated, 4), round(ROUNDS / gated, 1))
        table.add_row("gate patched out", round(baseline, 4), round(ROUNDS / baseline, 1))
        record_table("fault_zero_overhead", table)
        record_scenario_metric(
            "zero_fault_fused_overhead",
            overhead,
            unit="fraction",
            detail={"sensors": SENSORS, "rounds": ROUNDS, "cells": 64},
        )
        assert overhead <= MAX_ZERO_FAULT_OVERHEAD


class TestFaultScenarioThroughput:
    @pytest.mark.parametrize(
        "name, factory, query, batches",
        [
            (
                "flaky_crowd",
                flaky_crowd_scenario,
                "ACQUIRE temp FROM RECT(0,0,4,4) AT RATE 8 PER KM2 PER MIN AS Heat",
                10,
            ),
            (
                "cell_outage",
                cell_outage_scenario,
                "ACQUIRE temp FROM RECT(0,0,2,2) AT RATE 10 PER KM2 PER MIN AS Quad",
                16,
            ),
        ],
    )
    def test_scenario_batch_throughput(
        self, name, factory, query, batches, record_scenario_metric
    ):
        scenario = factory()
        engine = CraqrEngine(scenario.config, scenario.world)
        engine.execute(query)
        start = time.perf_counter()
        engine.run(batches)
        elapsed = time.perf_counter() - start
        per_second = batches / elapsed
        delivered = engine.total_tuples_delivered()
        record_scenario_metric(
            f"{name}_batches_per_s",
            per_second,
            unit="batches/s",
            detail={
                "batches": batches,
                "tuples_delivered": delivered,
                "retries": sum(r.handler.retries_sent for r in engine.reports),
                "timeouts": sum(r.handler.timeouts for r in engine.reports),
                "quarantined": engine.health_monitor.summary().quarantined,
            },
        )
        # The mitigation stack must not make interactive use impossible.
        assert per_second > 2.0
        assert delivered > 0
