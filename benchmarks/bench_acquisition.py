"""E15: fused attribute-level acquisition vs the per-cell fast-sim round.

PR 2 vectorised acquisition *within* a cell (``acquire_cell_batch`` samples
one cell population per call); this benchmark measures the PR 3 fusion that
serves **all** cells of an attribute with one bucketing pass, one
participation draw, one latency draw and one ``field.values`` call
(``acquire_attribute_batch``).

Two measurements:

* Fused vs per-cell fast-sim round at 1k / 10k / 100k sensors over a
  64-cell grid with one attribute.  ISSUE 3's acceptance bar is a >= 3x
  speedup at 10k sensors.
* A ``FatigueParticipation`` crowd (the stateful model that used to force
  the exact per-sensor fallback) running fast-sim acquisition through the
  participation vector-state protocol, compared to the per-sensor exact
  round it used to require.  The benchmark also *proves* the fallback was
  not taken: only the per-sensor path journals observations into sensor
  memory.

Results are persisted to ``BENCH_world.json`` via ``record_world_metric`` so
the acquisition perf trajectory is tracked across PRs.
"""

import time

from repro.geometry import Grid, Rectangle
from repro.metrics import ResultTable
from repro.sensing import (
    BernoulliParticipation,
    FatigueParticipation,
    RainField,
    RandomWaypointMobility,
    RequestResponseHandler,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)
GRID_SIDE = 8  # 64 cells, the ISSUE 3 acceptance geometry
BUDGET = 100
ROUNDS = 3

SENSOR_COUNTS = (1_000, 10_000, 100_000)

#: ISSUE 3 acceptance: fused vs per-cell fast-sim at 10k sensors / 64 cells.
REQUIRED_FUSED_SPEEDUP = 3.0

#: ISSUE 4 acceptance: a multi-attribute round sharing one set of padded
#: candidate/key matrices across attributes (the per-round cache) must beat
#: rebuilding them per attribute.  Measured ~1.15-1.27x at 50k sensors;
#: asserted with generous slack because CI runners time two ~5 ms blocks.
MULTI_ATTRIBUTE_SENSORS = 50_000
MULTI_ATTRIBUTE_COUNT = 4
REQUIRED_CACHE_SPEEDUP = 1.04


def make_world(sensor_count, *, vectorized=True, participation=None, seed=23):
    world = SensingWorld(
        WorldConfig(
            region=REGION,
            sensor_count=sensor_count,
            seed=seed,
            vectorized_rng=vectorized,
        ),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.4),
        participation_factory=participation
        or (lambda i: BernoulliParticipation(0.6, mean_latency=0.1)),
    )
    world.register_field(RainField(REGION))
    return world


def time_rounds(handler, cells, run_round, rounds=ROUNDS):
    """Best wall-clock of ``rounds`` acquisition rounds (no world advance)."""
    run_round(handler, cells)  # warm-up
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_round(handler, cells)
        best = min(best, time.perf_counter() - start)
    return best


def per_cell_round(handler, cells):
    for cell in cells:
        handler.acquire_cell_batch("rain", cell, duration=1.0)


def fused_round(handler, cells):
    handler.acquire_attribute_batch("rain", cells, duration=1.0)


def test_fused_attribute_acquisition_throughput(record_table, record_world_metric):
    table = ResultTable(
        "E15 - acquisition round: per-cell fast-sim vs fused attribute-level",
        ["sensors", "cells", "per-cell ms/round", "fused ms/round", "speedup"],
    )
    grid = Grid(REGION, side=GRID_SIDE)
    cells = list(grid.cells())
    speedups = {}
    for count in SENSOR_COUNTS:
        cellwise_world = make_world(count)
        fused_world = make_world(count)
        cellwise_handler = RequestResponseHandler(
            cellwise_world, grid, default_budget=BUDGET
        )
        fused_handler = RequestResponseHandler(
            fused_world, grid, default_budget=BUDGET
        )
        cellwise_elapsed = time_rounds(cellwise_handler, cells, per_cell_round)
        fused_elapsed = time_rounds(fused_handler, cells, fused_round)
        speedup = cellwise_elapsed / fused_elapsed
        speedups[count] = speedup
        table.add_row(
            count,
            len(cells),
            f"{cellwise_elapsed * 1e3:.2f}",
            f"{fused_elapsed * 1e3:.2f}",
            f"{speedup:.1f}x",
        )
        record_world_metric(
            f"acquisition_fused_speedup_{count}",
            speedup,
            unit="x",
            detail={
                "per_cell_seconds_per_round": cellwise_elapsed,
                "fused_seconds_per_round": fused_elapsed,
                "cells": len(cells),
                "budget_per_cell": BUDGET,
            },
        )
    record_table("E15_fused_acquisition", table)

    assert speedups[10_000] >= REQUIRED_FUSED_SPEEDUP, (
        f"fused attribute-level round only {speedups[10_000]:.1f}x faster than "
        f"the per-cell fast-sim round at 10k sensors / {len(cells)} cells"
    )


def make_multi_attribute_world(sensor_count, *, seed=23):
    """A fast-sim world serving several attributes over one crowd."""
    from repro.sensing import ConstantField

    world = make_world(sensor_count, seed=seed)
    world.register_field(TemperatureField(REGION))
    world.register_field(ConstantField(constant=1013.0, attribute="pressure"))
    world.register_field(ConstantField(constant=0.4, attribute="humidity"))
    return world


def test_multi_attribute_round_shares_candidate_matrices(
    record_table, record_world_metric
):
    """PR 4: the per-round candidate/key-matrix cache across attributes.

    ``acquire_batches`` hands every attribute of a fused round one shared
    ``round_cache``: the first attribute builds the padded candidate rows /
    key template (and the resolved cell plan), the rest only redraw random
    keys.  The uncached baseline is the same fused round with the bucketing
    shared (the PR 3 state of the art) but the matrices rebuilt per
    attribute.
    """
    attributes = ["rain", "temp", "pressure", "humidity"][:MULTI_ATTRIBUTE_COUNT]
    grid = Grid(REGION, side=GRID_SIDE)
    cells = list(grid.cells())
    attribute_cells = {attribute: cells for attribute in attributes}

    cached_world = make_multi_attribute_world(MULTI_ATTRIBUTE_SENSORS)
    cached_handler = RequestResponseHandler(cached_world, grid, default_budget=BUDGET)

    def cached_round(handler, cells):
        handler.acquire_batches(attribute_cells, duration=1.0)

    uncached_world = make_multi_attribute_world(MULTI_ATTRIBUTE_SENSORS)
    uncached_handler = RequestResponseHandler(
        uncached_world, grid, default_budget=BUDGET
    )

    def uncached_round(handler, cells):
        bucketing = handler._bucket_sensors()
        for attribute in attributes:
            handler.acquire_attribute_batch(
                attribute, cells, duration=1.0, bucketing=bucketing
            )

    # Interleave the two measurements so a load spike hits both sides
    # rather than biasing one; best-of over the interleaved repeats.
    cached_round(cached_handler, cells)  # warm-up
    uncached_round(uncached_handler, cells)
    cached_elapsed = uncached_elapsed = float("inf")
    for _ in range(9):
        start = time.perf_counter()
        uncached_round(uncached_handler, cells)
        uncached_elapsed = min(uncached_elapsed, time.perf_counter() - start)
        start = time.perf_counter()
        cached_round(cached_handler, cells)
        cached_elapsed = min(cached_elapsed, time.perf_counter() - start)
    speedup = uncached_elapsed / cached_elapsed

    table = ResultTable(
        "E16 - multi-attribute round: shared vs per-attribute candidate matrices",
        ["sensors", "cells", "attributes", "per-attr ms", "shared ms", "speedup"],
    )
    table.add_row(
        MULTI_ATTRIBUTE_SENSORS,
        len(cells),
        len(attributes),
        f"{uncached_elapsed * 1e3:.2f}",
        f"{cached_elapsed * 1e3:.2f}",
        f"{speedup:.2f}x",
    )
    record_table("E16_candidate_matrix_cache", table)
    record_world_metric(
        "acquisition_candidate_matrix_cache_speedup",
        speedup,
        unit="x",
        detail={
            "sensors": MULTI_ATTRIBUTE_SENSORS,
            "cells": len(cells),
            "attributes": len(attributes),
            "uncached_seconds_per_round": uncached_elapsed,
            "cached_seconds_per_round": cached_elapsed,
        },
    )
    assert speedup >= REQUIRED_CACHE_SPEEDUP, (
        f"sharing the padded candidate/key matrices across a "
        f"{len(attributes)}-attribute round is only {speedup:.2f}x faster "
        f"than rebuilding them per attribute (bar {REQUIRED_CACHE_SPEEDUP}x)"
    )


def test_fatigue_crowd_runs_fast_sim_without_fallback(record_world_metric):
    """Stateful participation through the vector-state protocol, measured."""
    participation = lambda i: FatigueParticipation(
        0.7, fatigue_per_request=0.05, recovery_per_time=0.01
    )
    grid = Grid(REGION, side=GRID_SIDE)
    cells = list(grid.cells())

    # The old behaviour: fatigue forced the exact per-sensor round (still
    # reachable as the strict per-cell path, which is what fast-sim fell
    # back to before the vector-state protocol).
    exact_world = make_world(10_000, vectorized=False, participation=participation)
    exact_handler = RequestResponseHandler(exact_world, grid, default_budget=BUDGET)
    exact_elapsed = time_rounds(exact_handler, cells, per_cell_round)

    fused_world = make_world(10_000, vectorized=True, participation=participation)
    fused_handler = RequestResponseHandler(fused_world, grid, default_budget=BUDGET)
    fused_elapsed = time_rounds(fused_handler, cells, fused_round)

    # Only the per-sensor fallback journals into sensor memory: empty
    # journals prove the whole crowd took the vectorised path.
    assert fused_handler.total_responses > 0
    assert all(not sensor.memory for sensor in fused_world.sensors)

    speedup = exact_elapsed / fused_elapsed
    record_world_metric(
        "acquisition_fatigue_vector_state_speedup",
        speedup,
        unit="x",
        detail={
            "per_sensor_exact_seconds_per_round": exact_elapsed,
            "fused_vector_state_seconds_per_round": fused_elapsed,
            "sensors": 10_000,
            "cells": len(cells),
        },
    )
    assert speedup >= REQUIRED_FUSED_SPEEDUP
