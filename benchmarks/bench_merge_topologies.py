"""A1 (ablation, Section VI "Alternative topologies"): flat vs tree merge.

The paper's default merge phase (Fig. 2c) unions every per-cell partial
stream of a query with one U-operator; Section VI suggests tree-like
topologies as an alternative.  This ablation merges an increasing number of
per-cell partial streams with (a) a single flat Union and (b) binary and
4-ary Union trees, and reports operator counts, tree depth and merge
throughput.  The shape: all variants deliver the same tuples; the tree uses
more operators but bounds each operator's fan-in (the property a distributed
placement needs), with a modest throughput cost in this single-process
setting.  The benchmark times the binary-tree merge at the largest width.
"""

import time

import numpy as np
import pytest

from repro.core import TreeMergeBuilder, UnionOperator, merge_depth, operator_count
from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.pointprocess import HomogeneousMDPP
from repro.streams import CountingSink, SensorTuple, Stream

CELL_COUNTS = [4, 16, 64]
TUPLES_PER_CELL = 500
RATE = float(TUPLES_PER_CELL)


def make_cell_streams(count, seed=1201):
    """One source stream per grid cell plus the tuples each will push."""
    rng = np.random.default_rng(seed)
    streams = [Stream(f"cell{i}") for i in range(count)]
    payloads = []
    for i in range(count):
        batch = HomogeneousMDPP(RATE, Rectangle(0, 0, 1, 1)).sample(
            1.0, rng=rng, count=TUPLES_PER_CELL
        )
        payloads.append(
            [
                SensorTuple(tuple_id=i * 100000 + j, attribute="rain", t=float(t), x=float(x), y=float(y))
                for j, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y))
            ]
        )
    return streams, payloads


def run_flat(streams, payloads):
    union = UnionOperator(name="U-flat", rng=np.random.default_rng(0))
    sink = CountingSink().attach(union.output)
    for stream in streams:
        union.attach_input(stream)
    start = time.perf_counter()
    for stream, items in zip(streams, payloads):
        for item in items:
            stream.push(item)
    elapsed = time.perf_counter() - start
    return sink.count, elapsed, 1, 1


def run_tree(streams, payloads, fan_in):
    tree = TreeMergeBuilder(fan_in=fan_in, rng=np.random.default_rng(1)).build(streams)
    sink = CountingSink().attach(tree.output)
    start = time.perf_counter()
    for stream, items in zip(streams, payloads):
        for item in items:
            stream.push(item)
    elapsed = time.perf_counter() - start
    return sink.count, elapsed, tree.operator_count, tree.depth


def test_merge_topologies(benchmark, record_table):
    table = ResultTable(
        "A1 - merge phase: flat Union vs Union trees (tuples per cell = 500)",
        [
            "cells",
            "variant",
            "U operators",
            "depth",
            "tuples delivered",
            "merge throughput (tuples/s)",
        ],
    )
    for count in CELL_COUNTS:
        expected = count * TUPLES_PER_CELL
        for variant, runner in (
            ("flat (fan-in = cells)", lambda s, p: run_flat(s, p)),
            ("binary tree", lambda s, p: run_tree(s, p, 2)),
            ("4-ary tree", lambda s, p: run_tree(s, p, 4)),
        ):
            streams, payloads = make_cell_streams(count)
            delivered, elapsed, operators, depth = runner(streams, payloads)
            table.add_row(
                count,
                variant,
                operators,
                depth,
                delivered,
                int(delivered / elapsed),
            )
            # Correctness: every variant delivers every tuple exactly once.
            assert delivered == expected
        # Structural claims: the binary tree over k cells uses k-1 operators
        # and log2(k) levels, while the flat merge is a single operator.
        assert operator_count(count, 2) == count - 1
        assert merge_depth(count, 2) == int(np.ceil(np.log2(count)))
    record_table("A1_merge_topologies", table)

    # Benchmark the binary-tree merge at the largest width.
    def run_largest():
        streams, payloads = make_cell_streams(CELL_COUNTS[-1])
        return run_tree(streams, payloads, 2)[0]

    delivered = benchmark(run_largest)
    assert delivered == CELL_COUNTS[-1] * TUPLES_PER_CELL
