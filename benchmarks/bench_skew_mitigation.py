"""E8 (skew motivation, Section I): CrAQR delivers fixed-rate streams despite skew.

The paper's opening claim: crowdsensed data has a highly skewed
spatio-temporal distribution caused by sensor mobility, and systems should
"mitigate this effect by acquiring crowdsensed [data] at a fixed
spatio-temporal rate".  The experiment runs the same city-wide temperature
query against (a) a world with roughly uniform sensor coverage and (b) a
world whose sensors cluster around two hotspots, and also against a
uniform-random-sampling baseline that ignores skew.  Reported per setting:
the skew of the sensor population, the skew of the raw acquired tuples, and
the skew of the delivered stream (coefficient of variation over a 4x4
quadrat grid), plus the achieved rate.  The shape: raw skew is much higher
in the hotspot world, but CrAQR's delivered-stream skew stays low and the
rate stays at the requested value, while the uniform-sampling baseline
inherits the raw skew.  The benchmark measures a full batch in the hotspot
world.
"""

import numpy as np
import pytest

from repro import AcquisitionalQuery, CraqrEngine
from repro.baselines import UniformSamplingAcquirer
from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.pointprocess import EventBatch, coefficient_of_variation
from repro.workloads import build_hotspot_world, build_uniform_world, default_engine_config

REGION = Rectangle(0, 0, 4, 4)
RATE = 4.0
BATCHES = 12
WARMUP_TIME = 30.0


def cv_of_tuples(items, region=REGION):
    batch = EventBatch.from_rows([(it.t, it.x, it.y) for it in items])
    return coefficient_of_variation(batch, region, 4, 4)


def run_setting(world_builder, seed):
    world = world_builder(sensor_count=350, seed=seed)
    world.advance(WARMUP_TIME)  # let mobility shape the sensor distribution
    sensor_cv = float(
        np.std(world.density_snapshot(4, 4)) / np.mean(world.density_snapshot(4, 4))
    )
    engine = CraqrEngine(default_engine_config(seed=seed + 1), world)
    handle = engine.register_query(AcquisitionalQuery("temp", REGION, RATE, name="citywide"))

    raw_tuples = []
    for _ in range(BATCHES):
        report = engine.run_batch()
        raw_tuples.append(report.handler.responses_received)
    delivered = handle.results()
    # Raw acquired tuples: re-acquire one batch directly from the handler to
    # measure the skew of what arrives before flattening.
    raw_batch, _ = engine.handler.acquire(engine.planner.attribute_cells(), duration=1.0)
    raw_items = [item for items in raw_batch.values() for item in items]

    baseline = UniformSamplingAcquirer(np.random.default_rng(seed + 2))
    baseline_kept = baseline.sample_to_rate(raw_items, RATE, REGION.area, 1.0)

    return {
        "engine": engine,
        "handle": handle,
        "sensor_cv": sensor_cv,
        "raw_cv": cv_of_tuples(raw_items),
        "delivered_cv": cv_of_tuples(delivered),
        "baseline_cv": cv_of_tuples(baseline_kept),
        "achieved": handle.achieved_rate(last_batches=6).achieved_rate,
    }


def test_skew_mitigation(benchmark, record_table):
    uniform = run_setting(build_uniform_world, seed=701)
    hotspot = run_setting(build_hotspot_world, seed=751)

    table = ResultTable(
        "E8 - spatial skew (quadrat CV) of sensors, raw arrivals and delivered streams",
        [
            "world",
            "sensor CV",
            "raw acquired CV",
            "CrAQR delivered CV",
            "uniform-sampling CV",
            "achieved rate (target 4)",
        ],
    )
    for label, result in (("uniform mobility", uniform), ("hotspot mobility", hotspot)):
        table.add_row(
            label,
            round(result["sensor_cv"], 2),
            round(result["raw_cv"], 2),
            round(result["delivered_cv"], 2),
            round(result["baseline_cv"], 2),
            round(result["achieved"], 2),
        )
    record_table("E8_skew_mitigation", table)

    # Shape checks:
    # (1) the hotspot world really is skewed (sensors and raw arrivals);
    assert hotspot["sensor_cv"] > 2.0 * uniform["sensor_cv"]
    assert hotspot["raw_cv"] > uniform["raw_cv"]
    # (2) CrAQR's delivered stream removes most of that skew;
    assert hotspot["delivered_cv"] < 0.5 * hotspot["raw_cv"]
    assert hotspot["delivered_cv"] < 0.5
    # (3) the uniform-sampling baseline keeps the skew of the raw arrivals;
    assert hotspot["baseline_cv"] > 1.5 * hotspot["delivered_cv"]
    # (4) the requested rate is met in both worlds.
    assert uniform["achieved"] == pytest.approx(RATE, rel=0.3)
    assert hotspot["achieved"] == pytest.approx(RATE, rel=0.3)

    benchmark(hotspot["engine"].run_batch)
