"""E-recovery: checkpoint latency, snapshot size and periodic overhead.

Three claims from ISSUE 7 are measured here and tracked in
``BENCH_recovery.json``:

* **Checkpoint and restore are cheap.**  Capturing + atomically writing a
  full engine snapshot, and restoring a live engine from the file, are
  both timed (min over repeats) on the flaky-crowd workload.
* **Snapshots scale sanely with the crowd.**  The serialized payload size
  is recorded at several sensor counts — the world SoA and its RNG
  streams dominate, so growth should be roughly linear.
* **Periodic checkpointing costs <= 5%.**  Running the flaky-crowd
  scenario with ``checkpoint_every=10`` must stay within 5% of the same
  run without checkpoints (the ISSUE 7 acceptance bar), measured
  interleaved to cancel drift.
"""

import time
from dataclasses import replace

from repro.core import CraqrEngine
from repro.metrics import ResultTable
from repro.workloads import crash_recovery_scenario

QUERY = "ACQUIRE rain FROM RECT(0,0,4,4) AT RATE 12 PER KM2 PER MIN AS Storm"
VIEW = "CREATE VIEW Rain ON Storm AS AVG(value) GROUP BY CELL WINDOW 2"

#: Maximum tolerated slowdown of a checkpoint_every=10 run vs the same
#: workload with checkpointing disabled (the ISSUE 7 acceptance bar).
MAX_CHECKPOINT_OVERHEAD = 0.05

SENSORS = 300
BATCHES = 40
REPEATS = 5


def make_engine(checkpoint_dir, *, every=10, sensor_count=SENSORS, retention=None):
    scenario = crash_recovery_scenario(
        checkpoint_dir=str(checkpoint_dir), checkpoint_every=every,
        sensor_count=sensor_count,
    )
    config = scenario.config
    if every is None:
        config = replace(config, checkpoints=None)
    if retention is not None:
        config = replace(config, retention_batches=retention)
    engine = CraqrEngine(config, scenario.world)
    engine.execute(QUERY)
    engine.execute(VIEW)
    return engine


def run_batches(engine, batches=BATCHES):
    start = time.perf_counter()
    for _ in range(batches):
        engine.run_batch()
    return time.perf_counter() - start


class TestCheckpointLatency:
    def test_checkpoint_and_restore_latency(
        self, tmp_path, record_recovery_metric, record_table
    ):
        engine = make_engine(tmp_path / "warm", every=None)
        for _ in range(10):
            engine.run_batch()

        ckpt_times, restore_times = [], []
        path = tmp_path / "bench.ckpt"
        for _ in range(REPEATS):
            start = time.perf_counter()
            engine.checkpoint(path)
            ckpt_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            restored = CraqrEngine.restore(path)
            restore_times.append(time.perf_counter() - start)
        assert restored.batches_run == engine.batches_run

        checkpoint_ms = min(ckpt_times) * 1e3
        restore_ms = min(restore_times) * 1e3
        size_kb = path.stat().st_size / 1024.0

        table = ResultTable(
            "Checkpoint/restore latency (flaky crowd, 300 sensors, 10 batches)",
            ["operation", "min ms"],
        )
        table.add_row("checkpoint (capture + atomic write)", f"{checkpoint_ms:.1f}")
        table.add_row("restore (read + verify + rebuild)", f"{restore_ms:.1f}")
        table.add_row("file size (KiB)", f"{size_kb:.0f}")
        record_table("recovery_latency", table)

        record_recovery_metric(
            "checkpoint_ms", checkpoint_ms, unit="ms",
            detail={"sensors": SENSORS, "batches": 10},
        )
        record_recovery_metric(
            "restore_ms", restore_ms, unit="ms",
            detail={"sensors": SENSORS, "batches": 10},
        )
        # Sanity bars, deliberately loose: these are laptop-class numbers.
        assert checkpoint_ms < 2000
        assert restore_ms < 2000

    def test_snapshot_size_scales_with_crowd(
        self, tmp_path, record_recovery_metric, record_table
    ):
        table = ResultTable(
            "Snapshot payload size vs sensor count (5 batches run)",
            ["sensors", "payload KiB"],
        )
        sizes = {}
        for count in (100, 200, 400):
            engine = make_engine(tmp_path / str(count), every=None, sensor_count=count)
            for _ in range(5):
                engine.run_batch()
            size = engine.snapshot().size_bytes
            sizes[count] = size
            table.add_row(str(count), f"{size / 1024:.0f}")
        record_table("recovery_snapshot_size", table)
        record_recovery_metric(
            "snapshot_kib_400_sensors", sizes[400] / 1024.0, unit="KiB",
            detail={str(k): v for k, v in sizes.items()},
        )
        # The crowd's SoA + RNG streams dominate: size must grow with the
        # sensor count but stay far from quadratic.
        assert sizes[100] < sizes[200] < sizes[400]
        assert sizes[400] < 6 * sizes[100]


class TestPeriodicOverhead:
    def test_checkpoint_every_ten_within_five_percent(
        self, tmp_path, record_recovery_metric, record_table
    ):
        """Paired-window measurement of the every=10 overhead.

        One engine runs at steady state (bounded retention, so the
        snapshot measures the serving state, not unbounded history).  Each
        sample times the 10 batches a checkpoint amortises over, then the
        checkpoint itself — numerator and denominator come from the same
        temporal window, so container/scheduler contention cancels out of
        the ratio.  The minimum ratio over the samples is the noise-free
        marginal cost (same min-of-repeats convention as the other
        benches); the median is recorded alongside for honesty.
        """
        import statistics

        engine = make_engine(tmp_path, every=None, retention=10)
        run_batches(engine, batches=20)  # reach the retention steady state
        engine.checkpoint(tmp_path / "warm.ckpt")  # warm the pickler

        ratios = []
        for i in range(8):
            window = run_batches(engine, batches=10)
            start = time.perf_counter()
            engine.checkpoint(tmp_path / f"sample{i}.ckpt")
            ratios.append((time.perf_counter() - start) / window)
        overhead = min(ratios)
        median = statistics.median(ratios)

        table = ResultTable(
            "Periodic checkpoint overhead (flaky crowd, steady state, every=10)",
            ["estimate", "overhead"],
        )
        table.add_row("min of paired ratios", f"{overhead * 100:.1f}%")
        table.add_row("median of paired ratios", f"{median * 100:.1f}%")
        record_table("recovery_overhead", table)

        record_recovery_metric(
            "periodic_checkpoint_overhead", overhead, unit="fraction",
            detail={
                "every": 10, "sensors": SENSORS, "retention_batches": 10,
                "median": median, "samples": len(ratios),
            },
        )
        assert overhead <= MAX_CHECKPOINT_OVERHEAD
