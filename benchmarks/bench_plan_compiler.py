"""The per-batch plan compiler vs the interpreted per-operator path.

Drives a 10-query / 10-view workload over a 64-cell grid twice with
identical seeds: once with ``compile_plans=True`` (the default — one fused
program per chain, SGD intensity updates folded into vectorised kernels,
shared view sorts) and once with ``compile_plans=False`` (the interpreted
reference path).  Both runs must deliver byte-identical streams; the
comparison is pure execution cost.

The compiled path must win by at least 3x end-to-end (ISSUE 8 acceptance
criterion); the measured ratio and the plan cache's recompile counters are
persisted to ``BENCH_plan.json`` so the trajectory is tracked across PRs.
"""

import time

from repro.config import BudgetConfig, EngineConfig
from repro.core import CraqrEngine
from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.sensing import (
    BernoulliParticipation,
    RainField,
    RandomWaypointMobility,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)

REGION = Rectangle(0.0, 0.0, 8.0, 8.0)
BATCHES = 6

#: Minimum end-to-end speedup of the compiled path over the interpreted one.
REQUIRED_SPEEDUP = 3.0

#: Ten overlapping queries: a grid-wide sweep, quadrant queries, strips and
#: small hotspots, over both attributes, so chains share sources, stack
#: multiple thin levels and need partition masks.
QUERIES = [
    "ACQUIRE rain FROM RECT(0, 0, 8, 8) AT RATE 12 PER KM2 PER MIN AS Q0",
    "ACQUIRE rain FROM RECT(0, 0, 4, 4) AT RATE 24 PER KM2 PER MIN AS Q1",
    "ACQUIRE rain FROM RECT(4, 4, 8, 8) AT RATE 18 PER KM2 PER MIN AS Q2",
    "ACQUIRE rain FROM RECT(0, 4, 4, 8) AT RATE 9 PER KM2 PER MIN AS Q3",
    "ACQUIRE rain FROM RECT(2, 2, 6, 6) AT RATE 15 PER KM2 PER MIN AS Q4",
    "ACQUIRE rain FROM RECT(1.5, 0, 3.5, 2.5) AT RATE 30 PER KM2 PER MIN AS Q5",
    "ACQUIRE temp FROM RECT(0, 0, 8, 8) AT RATE 10 PER KM2 PER MIN AS Q6",
    "ACQUIRE temp FROM RECT(4, 0, 8, 4) AT RATE 20 PER KM2 PER MIN AS Q7",
    "ACQUIRE temp FROM RECT(2.5, 2.5, 5.5, 5.5) AT RATE 14 PER KM2 PER MIN AS Q8",
    "ACQUIRE temp FROM RECT(0, 6, 8, 8) AT RATE 7 PER KM2 PER MIN AS Q9",
]

#: One view per query, mixing aggregates, groupings and window shapes so
#: several views share a (slide, grouping) sort signature per query.
VIEWS = [
    "CREATE VIEW V0 ON Q0 AS AVG(value) GROUP BY CELL WINDOW 2",
    "CREATE VIEW V1 ON Q0 AS MAX(value) GROUP BY CELL WINDOW 4 SLIDE 2",
    "CREATE VIEW V2 ON Q1 AS COUNT(*) GROUP BY CELL WINDOW 2",
    "CREATE VIEW V3 ON Q2 AS AVG(value) GROUP BY CELL WINDOW 2",
    "CREATE VIEW V4 ON Q3 AS SUM(value) WINDOW 2",
    "CREATE VIEW V5 ON Q4 AS AVG(value) GROUP BY CELL WINDOW 2",
    "CREATE VIEW V6 ON Q5 AS MAX(value) WINDOW 4 SLIDE 2",
    "CREATE VIEW V7 ON Q6 AS AVG(value) GROUP BY CELL WINDOW 2",
    "CREATE VIEW V8 ON Q7 AS COUNT(*) GROUP BY CELL WINDOW 2",
    "CREATE VIEW V9 ON Q8 AS AVG(value) GROUP BY CELL WINDOW 4 SLIDE 2",
]


def make_world():
    """A fast-sim (vectorised RNG) crowd large enough to feed 64 cells."""
    world = SensingWorld(
        WorldConfig(
            region=REGION, sensor_count=900, seed=11, vectorized_rng=True
        ),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.3, pause=0.2),
        participation_factory=lambda sensor_id: BernoulliParticipation(
            0.7, mean_latency=0.1
        ),
    )
    world.register_field(RainField(REGION, band_width=2.0, period=60.0))
    world.register_field(TemperatureField(REGION))
    return world


def run_workload(compile_plans):
    config = EngineConfig(
        grid_cells=64,
        batch_duration=1.0,
        budget=BudgetConfig(initial=4000, delta=100, limit=8000),
        seed=42,
        online_estimation=True,
        compile_plans=compile_plans,
    )
    engine = CraqrEngine(config, make_world())
    for statement in QUERIES:
        engine.execute(statement)
    for statement in VIEWS:
        engine.execute(statement)
    start = time.perf_counter()
    engine.run(BATCHES)
    return time.perf_counter() - start, engine


def fingerprint(engine):
    """Cheap byte-identity proxy: delivered counts per query, frames per view."""
    per_query = {
        handle.query.label: len(handle.buffer) for handle in engine.query_handles()
    }
    per_view = {
        vh.name: (
            len(vh.frames()),
            sum(float(frame.values.sum()) for frame in vh.frames()),
        )
        for vh in engine.view_handles()
    }
    return engine.total_tuples_delivered(), per_query, per_view


def test_plan_compiler_end_to_end(record_table, record_plan_metric):
    # Warm-up run so allocator effects do not skew the first timed side.
    run_workload(True)
    interpreted_elapsed, interpreted = run_workload(False)
    compiled_elapsed, compiled = run_workload(True)

    # Identical seeds: the compiled kernels must keep exactly the tuples
    # the interpreted operators keep, batch for batch, view for view.
    assert fingerprint(compiled) == fingerprint(interpreted)
    assert compiled.plan_cache is not None and interpreted.plan_cache is None

    speedup = interpreted_elapsed / compiled_elapsed
    delivered = compiled.total_tuples_delivered()
    cache = compiled.plan_cache

    table = ResultTable(
        "E18 - plan compiler vs interpreted path (10 queries, 10 views, 64 cells)",
        ["path", "elapsed s", "tuples/s", "speedup"],
    )
    table.add_row("interpreted", f"{interpreted_elapsed:.3f}",
                  int(delivered / interpreted_elapsed), "1.0x")
    table.add_row("compiled", f"{compiled_elapsed:.3f}",
                  int(delivered / compiled_elapsed), f"{speedup:.1f}x")
    record_table("E18_plan_compiler", table)

    record_plan_metric(
        "plan_compiler_speedup",
        speedup,
        unit="x",
        detail={
            "queries": len(QUERIES),
            "views": len(VIEWS),
            "batches": BATCHES,
            "delivered": int(delivered),
            "interpreted_seconds": interpreted_elapsed,
            "compiled_seconds": compiled_elapsed,
            "cache_compiles": cache.compiles,
            "cache_reuses": cache.reuses,
        },
    )
    record_plan_metric(
        "plan_cache_reuse_ratio",
        cache.reuses / max(1, cache.reuses + cache.compiles),
        unit="",
        detail={"compiles": cache.compiles, "reuses": cache.reuses},
    )

    # The acceptance bar: the fused per-batch programs must carry the
    # whole workload at least 3x faster than the interpreted chain walk.
    assert speedup >= REQUIRED_SPEEDUP, (
        f"compiled path only {speedup:.2f}x faster than interpreted"
    )
