"""A2 (ablation, Section IV / DESIGN.md §6): the grid-granularity trade-off.

The grid parameter ``h`` "controls the granularity at which queries can be
processed".  A coarse grid materialises few per-cell chains and keeps the
per-cell minimum budgets low, but queries that do not align with cell
boundaries force the handler to acquire whole cells and the Partition
operator to throw part of that data away (geometric over-acquisition).  A
fine grid tracks query boundaries closely at the price of more chains, more
per-cell bookkeeping and a larger total budget floor.

The sweep evaluates a workload of non-aligned queries on grids of side 2..8
with the cost model of ``repro.core.optimizer`` and reports the advisor's
recommendation; a live engine run on the recommended grid confirms the
workload is served at its requested rates there.  The benchmark times one
full advisor recommendation.
"""

import pytest

from repro import CraqrEngine
from repro.core import AcquisitionalQuery, GridGranularityAdvisor
from repro.geometry import Grid, Rectangle
from repro.metrics import ResultTable
from repro.workloads import build_rain_temperature_world, default_engine_config

REGION = Rectangle(0, 0, 4, 4)
CANDIDATE_SIDES = [2, 3, 4, 6, 8]
RESPONSE_PROBABILITY = 0.6

#: Queries deliberately not aligned with any candidate grid, but each large
#: enough (area > 4 km^2) to satisfy the minimum-area rule even on the
#: coarsest 2x2 grid, so the same workload is admissible everywhere.
WORKLOAD = [
    ("rain", Rectangle(0.3, 0.3, 2.4, 2.4), 12.0),
    ("rain", Rectangle(1.6, 1.7, 3.8, 3.9), 10.0),
    ("temp", Rectangle(0.2, 1.5, 2.3, 3.7), 8.0),
    ("temp", Rectangle(1.4, 0.2, 3.7, 2.2), 8.0),
]


def make_queries():
    return [AcquisitionalQuery(attr, rect, rate) for attr, rect, rate in WORKLOAD]


def test_grid_granularity(benchmark, record_table):
    queries = make_queries()
    advisor = GridGranularityAdvisor(REGION, response_probability=RESPONSE_PROBABILITY)

    table = ResultTable(
        "A2 - grid granularity: predicted per-batch cost and over-acquisition",
        ["grid side", "cells h", "predicted cost", "mean over-acquisition", "chains materialised"],
    )
    predictions = {}
    for side in CANDIDATE_SIDES:
        cost, over = advisor.evaluate(queries, side)
        grid = Grid(REGION, side)
        chains = sum(len(grid.overlapping_cells(q.region)) for q in queries)
        predictions[side] = (cost, over, chains)
        table.add_row(side, side * side, round(cost, 1), round(over, 3), chains)
    recommendation = advisor.recommend(
        queries, candidate_sides=CANDIDATE_SIDES, max_over_acquisition=0.4
    )
    table.add_row(
        f"-> recommended: {recommendation.side}",
        recommendation.grid_cells,
        round(recommendation.total_cost, 1),
        round(recommendation.mean_over_acquisition, 3),
        "-",
    )
    record_table("A2_grid_granularity_prediction", table)

    # Live check: the recommended grid serves the workload at its rates.
    world = build_rain_temperature_world(
        sensor_count=320, seed=1307, response_probability=RESPONSE_PROBABILITY
    )
    config = default_engine_config(grid_cells=recommendation.grid_cells, seed=1309)
    engine = CraqrEngine(config, world)
    handles = [engine.register_query(query) for query in make_queries()]
    engine.run(10)
    live = ResultTable(
        f"A2 - live run on the recommended {recommendation.side}x{recommendation.side} grid",
        ["query", "requested rate", "achieved rate (last 5)"],
    )
    for handle in handles:
        estimate = handle.achieved_rate(last_batches=5)
        live.add_row(handle.query.label, round(estimate.requested_rate, 1), round(estimate.achieved_rate, 1))
        assert estimate.relative_error < 0.4
    record_table("A2_grid_granularity_live", live)

    # Shape checks on the predictions:
    # (1) geometric over-acquisition shrinks as the grid refines, and the
    #     number of materialised chains grows;
    overs = [predictions[side][1] for side in CANDIDATE_SIDES]
    chains = [predictions[side][2] for side in CANDIDATE_SIDES]
    assert overs[0] > overs[-1]
    assert chains[-1] > chains[0]
    # (2) the advisor's pick satisfies its tolerance and is one of the
    #     candidates with acceptable waste.
    assert recommendation.mean_over_acquisition <= 0.4
    assert recommendation.side in CANDIDATE_SIDES

    benchmark(advisor.recommend, queries, candidate_sides=CANDIDATE_SIDES)
