"""E6 (Budget tuning, Section V): N_v feedback keeps violations under control.

A demanding query starts with a deliberately insufficient budget.  The trace
shows the per-batch rate-violation feedback, the budget trajectory (+/-
delta-beta) and the achieved rate; the paper's claims to check are that the
budget climbs while violations exceed the threshold, that violations drop
below the threshold once the budget is sufficient, and that an impossible
rate drives the budget to its limit and is flagged (accept the feasible rate
or pay more).  An oracle controller that knows the response probability is
included as the ablation upper bound.  The benchmark measures the cost of a
full engine batch including the tuning step.
"""

import pytest

from repro import AcquisitionalQuery, CraqrEngine
from repro.baselines import OracleBudgetController
from repro.config import BudgetConfig, EngineConfig
from repro.geometry import Rectangle
from repro.metrics import ResultTable, ViolationTracker
from repro.workloads import build_rain_temperature_world

RESPONSE_PROBABILITY = 0.5
BATCHES = 24


def build_engine(initial_budget=20, limit=300, seed=503):
    world = build_rain_temperature_world(
        sensor_count=320, seed=501, response_probability=RESPONSE_PROBABILITY
    )
    config = EngineConfig(
        grid_cells=16,
        batch_duration=1.0,
        budget=BudgetConfig(
            initial=initial_budget, delta=10, limit=limit, floor=10, violation_threshold=5.0
        ),
        seed=seed,
    )
    return CraqrEngine(config, world)


def run_feedback_trace(engine, handle, batches=BATCHES):
    tracker = ViolationTracker()
    cell = engine.planner.cells_for_query(handle.query_id)[0]
    trace = []
    for _ in range(batches):
        report = engine.run_batch()
        tracker.record(report.fabrication.violations)
        trace.append(
            {
                "batch": report.batch_index,
                "violation": report.fabrication.violations.get(("rain", cell), 0.0),
                "budget": engine.handler.budget_for("rain", cell),
                "rate": handle.achieved_rate(last_batches=1).achieved_rate,
            }
        )
    return trace, tracker, cell


def test_budget_tuning_convergence(benchmark, record_table):
    # --- feasible query: the budget climbs until violations stay below the
    # threshold, then hovers there.
    engine = build_engine()
    handle = engine.register_query(
        AcquisitionalQuery("rain", Rectangle(1, 1, 2, 2), 20.0, name="feasible")
    )
    trace, tracker, cell = run_feedback_trace(engine, handle)
    benchmark(engine.run_batch)

    table = ResultTable(
        "E6 - budget tuning trace (feasible rate 20 /km^2/min, threshold 5%)",
        ["batch", "N_v %", "budget beta", "achieved rate"],
    )
    for row in trace:
        table.add_row(row["batch"], round(row["violation"], 1), row["budget"], round(row["rate"], 1))
    record_table("E6_budget_tuning_trace", table)

    first_budget = trace[0]["budget"]
    peak_budget = max(row["budget"] for row in trace)
    assert peak_budget > first_budget, "the budget must grow while violations persist"
    assert tracker.converged(("rain", cell), threshold=25.0, window=5), (
        "violations must settle once the budget suffices"
    )
    late_rate = handle.achieved_rate(last_batches=6).achieved_rate
    assert late_rate == pytest.approx(20.0, rel=0.35)

    # --- infeasible query: the budget saturates at the limit and the pair is
    # flagged so the user can accept the feasible rate or pay more.
    capped = build_engine(initial_budget=20, limit=60, seed=509)
    demanding = capped.register_query(
        AcquisitionalQuery("rain", Rectangle(1, 1, 2, 2), 200.0, name="infeasible")
    )
    capped.run(12)
    saturation = ResultTable(
        "E6 - infeasible rate: budget saturates at its limit",
        ["requested rate", "budget limit", "final budget", "saturated pairs", "achieved rate"],
    )
    cell2 = capped.planner.cells_for_query(demanding.query_id)[0]
    saturation.add_row(
        200.0,
        60,
        capped.handler.budget_for("rain", cell2),
        len(capped.budget_tuner.saturated_pairs),
        round(demanding.achieved_rate(last_batches=6).achieved_rate, 1),
    )
    record_table("E6_budget_saturation", saturation)
    assert capped.handler.budget_for("rain", cell2) == 60
    assert ("rain", cell2) in capped.budget_tuner.saturated_pairs

    # --- ablation: the oracle controller reaches a sufficient budget in one
    # step; the feedback loop needs several batches to get there.
    oracle_engine = build_engine(initial_budget=20, seed=511)
    oracle_handle = oracle_engine.register_query(
        AcquisitionalQuery("rain", Rectangle(1, 1, 2, 2), 20.0, name="oracle")
    )
    oracle_cell = oracle_engine.planner.cells_for_query(oracle_handle.query_id)[0]
    oracle = OracleBudgetController(
        oracle_engine.world, oracle_engine.handler, response_probability=RESPONSE_PROBABILITY
    )
    oracle_budget = oracle.apply("rain", oracle_engine.grid.cell(*oracle_cell), 20.0, 1.0)
    oracle_engine.run(6)
    ablation = ResultTable(
        "E6 - ablation: feedback tuner vs oracle budget",
        ["controller", "budget after setup", "batches to rate within 20%", "rate (last 3)"],
    )
    batches_to_converge = next(
        (i + 1 for i, row in enumerate(trace) if abs(row["rate"] - 20.0) / 20.0 <= 0.2),
        len(trace),
    )
    ablation.add_row("feedback (+/- delta-beta)", peak_budget, batches_to_converge,
                     round(handle.achieved_rate(last_batches=3).achieved_rate, 1))
    ablation.add_row("oracle (ground truth)", oracle_budget, 1,
                     round(oracle_handle.achieved_rate(last_batches=3).achieved_rate, 1))
    record_table("E6_budget_ablation", ablation)
    assert oracle_handle.achieved_rate(last_batches=3).achieved_rate == pytest.approx(20.0, rel=0.35)
