"""E2 (Fig. 2): the query-processing topology for Q1, Q2, Q3.

Reproduces the paper's worked example: three queries (rain at the highest
rate, temp at a middle rate, temp at the lowest rate; Q3 only partially
overlaps its grid cells) inserted into the hashmap of per-cell execution
topologies.  The table reports the structure the figure draws — which cells
are materialised, which operators each cell holds, where the branching
points are — and the benchmark measures the map/process/merge cost of one
batch through that exact topology.
"""

import numpy as np
import pytest

from repro.config import BudgetConfig, EngineConfig
from repro.core import CraqrEngine
from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.sensing import (
    AlwaysRespond,
    RainField,
    RandomWaypointMobility,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)
from repro.workloads import fig2_queries

BATCHES = 10


def build_fig2_engine():
    region = Rectangle(0, 0, 3, 3)
    world = SensingWorld(
        WorldConfig(region=region, sensor_count=240, seed=111),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.3),
        participation_factory=lambda sensor_id: AlwaysRespond(),
    )
    world.register_field(RainField(region))
    world.register_field(TemperatureField(region))
    config = EngineConfig(
        grid_cells=9,
        batch_duration=1.0,
        budget=BudgetConfig(initial=70, delta=10, limit=400, floor=25),
        seed=113,
    )
    engine = CraqrEngine(config, world)
    queries = fig2_queries(engine.grid)
    handles = [engine.register_query(query) for query in queries]
    return engine, queries, handles


def test_fig2_topology_structure_and_rates(benchmark, record_table):
    engine, queries, handles = build_fig2_engine()
    q1, q2, q3 = queries

    # --- structure table (the content of Fig. 2b)
    table = ResultTable(
        "E2 / Fig.2 - per-cell execution topologies for Q1(rain), Q2(temp), Q3(temp)",
        ["grid cell", "attribute", "operators (F/T/P)", "branching points", "queries tapping"],
    )
    planner = engine.planner
    for key in sorted(planner.materialized_cells):
        topology = planner.cell_topology(key)
        for attribute in topology.attributes:
            chain = topology.chain(attribute)
            partitions = sum(
                1 for level in chain.levels for tap in level.taps if tap.partition is not None
            )
            ops = f"1F + {len(chain.levels)}T + {partitions}P"
            branching = len(topology.stream_topology.branching_points())
            tapping = sorted(
                {tap.query_id for level in chain.levels for tap in level.taps}
            )
            labels = [q.label for q in queries if q.query_id in tapping]
            table.add_row(str(key), attribute, ops, branching, ",".join(labels))

    # --- run the scenario and benchmark one batch through it
    for _ in range(BATCHES):
        engine.run_batch()
    benchmark(engine.run_batch)

    rates = ResultTable(
        "E2 / Fig.2 - fabricated stream rates (lambda1 > lambda2 > lambda3)",
        ["query", "attribute", "requested", "achieved (last 5)"],
    )
    achieved = []
    for handle in handles:
        estimate = handle.achieved_rate(last_batches=5)
        achieved.append(estimate.achieved_rate)
        rates.add_row(
            handle.query.label,
            handle.query.attribute,
            round(estimate.requested_rate, 2),
            round(estimate.achieved_rate, 2),
        )
    record_table("E2_fig2_topology_structure", table)
    record_table("E2_fig2_topology_rates", rates)

    # Shape checks mirroring the figure:
    stats = engine.planner_stats()
    # 4 cells for Q1 + 1 cell for Q2 + 2 cells for Q3 (no overlap between them).
    assert stats.materialized_cells == 7
    # Q3 partially overlaps its cells -> P-operators exist; Q1/Q2 need none.
    q3_cells = planner.cells_for_query(q3.query_id)
    for key in q3_cells:
        chain = planner.cell_topology(key).chain("temp")
        assert any(tap.partition is not None for level in chain.levels for tap in level.taps)
    # The requested ordering lambda1 > lambda2 > lambda3 survives fabrication.
    assert achieved[0] > achieved[1] > achieved[2]
    planner.check_invariants()
