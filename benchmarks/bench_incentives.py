"""E11 (Section VI extension): incentives as an alternative to budget escalation.

The paper's first listed extension: when rate violations persist, "another
alternative is to offer more incentive to the mobile sensors to respond".
Two experiments:

1. An incentive-elasticity sweep: the same acquisition round is run with
   increasing per-request payments; the response rate climbs along the
   saturating elasticity curve.
2. A strategy comparison on a crowd with *fatigue* (repeatedly pinging the
   same few participants has diminishing returns): escalating the request
   budget vs paying incentives vs doing both, all serving the same demanding
   query.  The shape: with fatigue, incentives recover more of the requested
   rate per unit of total cost than raw budget escalation.

The benchmark measures one acquisition round with incentives attached.
"""

import pytest

from repro import AcquisitionalQuery, CraqrEngine
from repro.config import BudgetConfig, EngineConfig
from repro.geometry import Grid, Rectangle
from repro.metrics import CostReport, ResultTable
from repro.sensing import (
    FatigueParticipation,
    FlatIncentive,
    RainField,
    RandomWaypointMobility,
    RequestResponseHandler,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)

REGION = Rectangle(0, 0, 4, 4)
PAYMENTS = [0.0, 0.25, 0.5, 1.0, 2.0]
BATCHES = 12


def build_fatigued_world(seed):
    world = SensingWorld(
        WorldConfig(region=REGION, sensor_count=200, seed=seed),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.3),
        participation_factory=lambda sensor_id: FatigueParticipation(
            base_probability=0.55,
            fatigue_per_request=0.04,
            recovery_per_time=0.01,
            min_probability=0.08,
        ),
    )
    world.register_field(RainField(REGION))
    world.register_field(TemperatureField(REGION))
    return world


def elasticity_sweep(record_table):
    """Response rate of one acquisition round as a function of the payment."""
    table = ResultTable(
        "E11a - incentive elasticity: response rate vs per-request payment",
        ["payment", "requests", "responses", "response rate", "incentive spent"],
    )
    rates = []
    for payment in PAYMENTS:
        world = build_fatigued_world(seed=1001)
        grid = Grid(REGION, side=4)
        handler = RequestResponseHandler(
            world, grid, default_budget=60, incentive=FlatIncentive(payment)
        )
        _, report = handler.acquire(
            {"rain": grid.cells()}, duration=1.0
        )
        rates.append(report.response_rate)
        table.add_row(
            payment,
            report.requests_sent,
            report.responses_received,
            round(report.response_rate, 3),
            round(report.incentive_spent, 1),
        )
    record_table("E11a_incentive_elasticity", table)
    return rates


def run_strategy(strategy, seed=1013):
    """Run the demanding-query scenario under one acquisition strategy."""
    world = build_fatigued_world(seed)
    budget_limit = 90 if strategy == "budget-capped + incentives" else 400
    incentive = FlatIncentive(1.0) if "incentive" in strategy else None
    config = EngineConfig(
        grid_cells=16,
        batch_duration=1.0,
        budget=BudgetConfig(initial=60, delta=15, limit=budget_limit, floor=30,
                            violation_threshold=5.0),
        seed=seed + 1,
    )
    engine = CraqrEngine(config, world, incentive=incentive)
    handle = engine.register_query(
        AcquisitionalQuery("rain", Rectangle(1, 1, 3, 3), 15.0, name=strategy)
    )
    engine.run(BATCHES)
    incentive_spent = incentive.total_spent if incentive is not None else 0.0
    cost = CostReport(
        requests=engine.total_requests_sent(),
        responses=engine.total_tuples_acquired(),
        incentive_spent=incentive_spent,
    )
    achieved = handle.achieved_rate(last_batches=6).achieved_rate
    return {
        "strategy": strategy,
        "achieved": achieved,
        "requests": engine.total_requests_sent(),
        "incentive": incentive_spent,
        "cost_per_tuple": cost.per_delivered_tuple(engine.total_tuples_delivered()),
        "rate_fraction": achieved / 15.0,
    }


def test_incentives(benchmark, record_table):
    rates = elasticity_sweep(record_table)
    # The elasticity curve is monotone (within noise) and saturating.
    assert rates[-1] > rates[0] * 1.5
    assert rates[-1] <= 1.0
    assert rates[-1] - rates[-2] < rates[1] - rates[0] + 0.1

    strategies = ["budget escalation only", "budget-capped + incentives"]
    results = [run_strategy(s) for s in strategies]
    table = ResultTable(
        "E11b - serving a demanding query on a fatigued crowd (rate 15 /km^2/min)",
        ["strategy", "achieved rate", "requests sent", "incentive spent", "cost per delivered tuple"],
    )
    for row in results:
        table.add_row(
            row["strategy"],
            round(row["achieved"], 2),
            row["requests"],
            round(row["incentive"], 1),
            round(row["cost_per_tuple"], 3),
        )
    record_table("E11b_incentive_vs_budget", table)

    budget_only, with_incentives = results
    # Incentives let a much smaller request budget reach at least as much of
    # the requested rate (fatigue makes extra requests keep paying less).
    assert with_incentives["requests"] < budget_only["requests"]
    assert with_incentives["achieved"] >= 0.9 * budget_only["achieved"]

    # Benchmark one acquisition round with incentives attached.
    world = build_fatigued_world(seed=1031)
    grid = Grid(REGION, side=4)
    handler = RequestResponseHandler(
        world, grid, default_budget=60, incentive=FlatIncentive(0.5)
    )
    benchmark(handler.acquire, {"rain": grid.cells()}, duration=1.0)
