"""E12: PMAT operators are cheap, few-lines-of-code stream operators.

The paper emphasises that PMAT operators "can be implemented using only a
few lines of code"; the practical counterpart is that they are cheap enough
to run per tuple inside a stream processor.  This microbenchmark pushes the
same batch of tuples through each operator (and through a representative
F -> T -> P chain) and reports per-operator throughput.  The benchmark
fixture times the full chain; the table reports tuples/second per operator
measured with a simple timer so all operators appear in one run.
"""

import time

import numpy as np
import pytest

from repro.core.pmat import (
    FlattenOperator,
    MarkOperator,
    PartitionOperator,
    SampleOperator,
    ShiftOperator,
    ThinOperator,
    UnionOperator,
)
from repro.geometry import Rectangle, RectRegion
from repro.metrics import ResultTable
from repro.pointprocess import ConstantIntensity, HomogeneousMDPP
from repro.streams import CountingSink, SensorTuple

CELL = Rectangle(0.0, 0.0, 1.0, 1.0)
TUPLES = 20_000
RATE = float(TUPLES)


def make_items(seed=1101):
    batch = HomogeneousMDPP(RATE, CELL).sample(1.0, rng=np.random.default_rng(seed), count=TUPLES)
    return [
        SensorTuple(tuple_id=i, attribute="rain", t=float(t), x=float(x), y=float(y))
        for i, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y))
    ]


def build_operators():
    rng = np.random.default_rng(1103)
    halves = [RectRegion(r) for r in CELL.subdivide(2, 1)]
    operators = {
        "Flatten (F)": FlattenOperator(
            RATE / 2, region=CELL, intensity=ConstantIntensity(RATE), rng=rng
        ),
        "Thin (T)": ThinOperator(RATE, RATE / 2, rng=rng),
        "Partition (P)": PartitionOperator(halves, rng=rng),
        "Union (U)": UnionOperator(rng=rng),
        "Sample": SampleOperator(0.5, rng=rng),
        "Shift": ShiftOperator(dt=1.0, dx=0.1, dy=0.1, rng=rng),
        "Mark": MarkOperator(lambda r: r.integers(0, 10), rng=rng),
    }
    return operators


def measure_throughput(operator, items):
    for output in operator.outputs:
        CountingSink().attach(output)
    start = time.perf_counter()
    for item in items:
        operator.accept(item)
    operator.flush()
    elapsed = time.perf_counter() - start
    return len(items) / elapsed


def run_chain(items, rng_seed=1109):
    """A representative per-cell chain: F -> T -> P, as built by the planner."""
    rng = np.random.default_rng(rng_seed)
    flatten = FlattenOperator(
        RATE / 2, region=CELL, intensity=ConstantIntensity(RATE), rng=rng
    )
    thin = ThinOperator(RATE / 2, RATE / 4, rng=rng)
    partition = PartitionOperator([RectRegion(r) for r in CELL.subdivide(2, 1)], rng=rng)
    thin.subscribe_to(flatten.output)
    partition.subscribe_to(thin.output)
    sinks = [CountingSink().attach(partition.output_for(i)) for i in range(2)]
    for item in items:
        flatten.accept(item)
    flatten.flush()
    return sum(sink.count for sink in sinks)


def test_operator_throughput(benchmark, record_table):
    items = make_items()

    table = ResultTable(
        f"E12 - PMAT operator throughput ({TUPLES} tuples per run)",
        ["operator", "tuples / second"],
    )
    throughputs = {}
    for name, operator in build_operators().items():
        throughput = measure_throughput(operator, items)
        throughputs[name] = throughput
        table.add_row(name, int(throughput))
    record_table("E12_operator_throughput", table)

    # Every operator sustains at least 50k tuples/second in pure Python —
    # cheap enough for the simulated deployment scales used here.
    assert all(value > 50_000 for value in throughputs.values())

    delivered = benchmark(run_chain, items)
    assert delivered > 0
