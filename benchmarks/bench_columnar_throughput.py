"""E13: the columnar fast path vs the per-tuple object path.

Pushes identical tuple populations through a representative per-cell chain
(F -> T -> P, as the planner builds it) twice: once tuple-by-tuple through
the object path and once as one :class:`TupleBatch` through the operators'
``process_batch`` methods.  Both runs are seeded identically, so they retain
exactly the same tuples — the comparison is pure execution cost.

The columnar path must win by at least 5x from 10k tuples per batch
(ISSUE 1 acceptance criterion); the measured ratios are also persisted to
``BENCH_columnar.json`` so the perf trajectory is tracked across PRs.
"""

import time

import numpy as np
import pytest

from repro.core.pmat import FlattenOperator, PartitionOperator, ThinOperator
from repro.geometry import Rectangle, RectRegion
from repro.metrics import ResultTable
from repro.pointprocess import ConstantIntensity, HomogeneousMDPP
from repro.streams import CountingSink, SensorTuple, TupleBatch

CELL = Rectangle(0.0, 0.0, 1.0, 1.0)
BATCH_SIZES = (1_000, 10_000, 100_000)

#: Minimum columnar speedup required at 10k+ tuples per batch.
REQUIRED_SPEEDUP = 5.0


def make_population(n, seed=1301):
    events = HomogeneousMDPP(float(n), CELL).sample(
        1.0, rng=np.random.default_rng(seed), count=n
    )
    items = [
        SensorTuple(
            tuple_id=i, attribute="rain", t=float(t), x=float(x), y=float(y),
            value=True, sensor_id=i % 64,
        )
        for i, (t, x, y) in enumerate(zip(events.t, events.x, events.y))
    ]
    return items, TupleBatch.from_tuples(items)


def build_chain(n, seed=1303):
    """The planner's canonical per-cell chain: F -> T -> P."""
    rate = float(n)
    rng = np.random.default_rng(seed)
    spawn = lambda: np.random.default_rng(rng.integers(0, 2 ** 63 - 1))
    flatten = FlattenOperator(
        rate / 2, region=CELL, intensity=ConstantIntensity(rate), rng=spawn()
    )
    thin = ThinOperator(rate / 2, rate / 4, rng=spawn())
    partition = PartitionOperator(
        [RectRegion(r) for r in CELL.subdivide(2, 1)], rng=spawn()
    )
    return flatten, thin, partition


def run_object_path(n, items):
    flatten, thin, partition = build_chain(n)
    thin.subscribe_to(flatten.output)
    partition.subscribe_to(thin.output)
    sinks = [CountingSink().attach(partition.output_for(i)) for i in range(2)]
    start = time.perf_counter()
    for item in items:
        flatten.accept(item)
    flatten.flush()
    elapsed = time.perf_counter() - start
    return elapsed, sum(sink.count for sink in sinks)


def run_columnar_path(n, batch):
    flatten, thin, partition = build_chain(n)
    start = time.perf_counter()
    out = partition.process_batch_multi(thin.process_batch(flatten.process_batch(batch)))
    elapsed = time.perf_counter() - start
    return elapsed, sum(len(part) for part in out)


def test_columnar_throughput(record_table, record_metric):
    table = ResultTable(
        "E13 - columnar vs object path (F -> T -> P chain)",
        ["batch size", "object t/s", "columnar t/s", "speedup"],
    )
    speedups = {}
    for n in BATCH_SIZES:
        items, batch = make_population(n)
        # Warm-up pass so allocator/jit-ish effects do not skew either side.
        run_columnar_path(n, batch)
        object_elapsed, object_delivered = run_object_path(n, items)
        columnar_elapsed, columnar_delivered = run_columnar_path(n, batch)
        # Seeded identically: both paths must keep the same tuples.
        assert object_delivered == columnar_delivered
        speedup = object_elapsed / columnar_elapsed
        speedups[n] = speedup
        table.add_row(
            n,
            int(n / object_elapsed),
            int(n / columnar_elapsed),
            f"{speedup:.1f}x",
        )
        record_metric(
            f"columnar_chain_speedup_{n}",
            speedup,
            unit="x",
            detail={
                "object_tuples_per_second": n / object_elapsed,
                "columnar_tuples_per_second": n / columnar_elapsed,
                "delivered": int(columnar_delivered),
            },
        )
    record_table("E13_columnar_throughput", table)

    # The acceptance bar: >= 5x at 10k tuples per batch and beyond.
    for n in BATCH_SIZES:
        if n >= 10_000:
            assert speedups[n] >= REQUIRED_SPEEDUP, (
                f"columnar path only {speedups[n]:.1f}x faster at {n} tuples"
            )


def test_columnar_end_to_end_smoke(record_metric):
    """Engine-level smoke: a columnar engine run beats the object run."""
    from repro.config import BudgetConfig, EngineConfig
    from repro.core.engine import CraqrEngine
    from repro.core.query import AcquisitionalQuery
    from repro.sensing import RainField, SensingWorld, WorldConfig

    region = Rectangle(0.0, 0.0, 4.0, 4.0)

    def run(columnar):
        world = SensingWorld(WorldConfig(region=region, sensor_count=400, seed=11))
        world.register_field(RainField(region))
        config = EngineConfig(
            grid_cells=16,
            seed=5,
            budget=BudgetConfig(initial=200, delta=10, limit=400),
            columnar=columnar,
        )
        engine = CraqrEngine(config, world)
        engine.register_query(
            AcquisitionalQuery("rain", RectRegion.from_bounds(0.0, 0.0, 4.0, 4.0), rate=100.0)
        )
        start = time.perf_counter()
        engine.run(3)
        return time.perf_counter() - start, engine.total_tuples_delivered()

    object_elapsed, object_delivered = run(False)
    columnar_elapsed, columnar_delivered = run(True)
    assert columnar_delivered == object_delivered
    record_metric(
        "columnar_engine_speedup",
        object_elapsed / columnar_elapsed,
        unit="x",
        detail={"delivered": int(columnar_delivered)},
    )
    # The engine includes simulation cost (sensor movement) on both sides,
    # so the bar here is just "not meaningfully slower" — with a noise
    # margin so a scheduler hiccup on a loaded CI runner cannot fail it.
    assert columnar_elapsed <= object_elapsed * 1.25
