"""E10 (Section V): query insertion/deletion maintains the topology invariants
and touches only the affected grid cells.

The paper describes incremental query insertion and deletion over the
hashmap of per-cell topologies (sorted T-operators, merge rule for
consecutive T's, dropping hashmap keys that become empty).  The churn
experiment registers increasingly large query workloads, then deletes half
of them, and reports: materialised cells, PMAT operator counts, cells
touched by the last insertion (which should track the query's own footprint,
not the total number of queries), and whether the structural invariants hold
throughout.  The benchmark measures a single insert+delete round trip on a
loaded planner.
"""

import numpy as np
import pytest

from repro.core import AcquisitionalQuery, QueryPlanner
from repro.geometry import Grid, Rectangle, RectRegion
from repro.metrics import ResultTable
from repro.workloads import random_query_workload

GRID = Grid(Rectangle(0, 0, 8, 8), side=8)
WORKLOAD_SIZES = [10, 25, 50, 100, 200]


def build_planner(seed=901):
    return QueryPlanner(GRID, rng=np.random.default_rng(seed))


def run_churn(count, seed=907):
    planner = build_planner(seed)
    queries = random_query_workload(
        GRID, count, max_cells_per_side=2, seed=seed + count
    )
    touched_per_insert = []
    for query in queries:
        touched = planner.insert_query(query)
        touched_per_insert.append(len(touched))
        planner.check_invariants()
    stats_after_insert = planner.stats()

    for query in queries[: count // 2]:
        planner.delete_query(query.query_id)
    planner.check_invariants()
    stats_after_delete = planner.stats()
    return {
        "count": count,
        "mean_touched": float(np.mean(touched_per_insert)),
        "max_touched": max(touched_per_insert),
        "cells_after_insert": stats_after_insert.materialized_cells,
        "operators_after_insert": stats_after_insert.pmat_operators,
        "cells_after_delete": stats_after_delete.materialized_cells,
        "operators_after_delete": stats_after_delete.pmat_operators,
    }


def test_query_churn(benchmark, record_table):
    rows = [run_churn(count) for count in WORKLOAD_SIZES]

    table = ResultTable(
        "E10 - query churn: insert N queries, delete N/2 (8x8 grid)",
        [
            "queries",
            "mean cells touched per insert",
            "max cells touched per insert",
            "cells after inserts",
            "PMAT ops after inserts",
            "cells after deletes",
            "PMAT ops after deletes",
        ],
    )
    for row in rows:
        table.add_row(
            row["count"],
            round(row["mean_touched"], 2),
            row["max_touched"],
            row["cells_after_insert"],
            row["operators_after_insert"],
            row["cells_after_delete"],
            row["operators_after_delete"],
        )
    record_table("E10_query_churn", table)

    # Shape checks:
    # (1) an insertion touches only the query's own footprint (<= 4 cells for
    #     2x2-cell queries), independent of how many queries already exist;
    assert all(row["max_touched"] <= 4 for row in rows)
    # (2) the number of materialised cells never exceeds the grid size, while
    #     operator counts grow with the workload;
    assert all(row["cells_after_insert"] <= GRID.cell_count for row in rows)
    assert rows[-1]["operators_after_insert"] > rows[0]["operators_after_insert"]
    # (3) deleting queries shrinks the topology.
    assert all(
        row["operators_after_delete"] < row["operators_after_insert"] for row in rows
    )

    # Benchmark one insert + delete round trip on a planner loaded with the
    # largest workload.
    planner = build_planner(seed=911)
    for query in random_query_workload(GRID, 200, max_cells_per_side=2, seed=913):
        planner.insert_query(query)
    probe_region = RectRegion(Rectangle(3.0, 3.0, 5.0, 5.0))

    def insert_delete_round_trip():
        query = AcquisitionalQuery("rain", probe_region, 12.0)
        planner.insert_query(query)
        planner.delete_query(query.query_id)

    benchmark(insert_delete_round_trip)
