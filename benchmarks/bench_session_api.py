"""E17: the session consumption surface — cursor reads are O(new tuples).

ISSUE 4's acceptance bar: ``QueryHandle.cursor()`` read cost must be
independent of how much history the buffer holds.  The old consumption
surface (``handle.results()``) copies the whole retained history on every
poll, so a monitoring loop over a long-running query pays O(history) per
read; a cursor only walks the chunks appended since its previous read.

Measured here at the storage layer (the unit the guarantee lives in):

* a buffer is grown to H and then 10·H tuples of columnar history;
* at each size, the cost of a cursor read draining a fixed-size increment
  of fresh batches is measured (best of several repeats);
* the ratio of the two read costs must stay flat (bar ``MAX_RATIO``, with
  generous slack for CI timer noise — the O(history) baseline measured
  alongside grows ~10x);
* for contrast, the cost of a ``results()`` poll at both sizes is recorded
  (it is the O(history) baseline and must grow superlinearly in the same
  experiment, proving the measurement can tell the difference).

Results land in ``BENCH_session.json`` via ``record_session_metric`` so the
session-surface trajectory is tracked across PRs.
"""

import time

import numpy as np

from repro.metrics import ResultTable
from repro.storage import QueryResultBuffer

#: Tuples per delivered chunk (one chunk per (query, cell, batch) delivery).
CHUNK_TUPLES = 50

#: Chunks per measured incremental read.
READ_CHUNKS = 40

#: History sizes (in chunks) the cursor read cost is compared across.
BASE_CHUNKS = 2_000
GROWN_CHUNKS = 20_000

#: Acceptance: cursor read cost at 10x history / cost at 1x history.  Flat
#: in theory (~1.0, measured ~0.97-1.01); the bar leaves generous room for
#: allocator and timer noise on loaded CI runners — the O(history)
#: ``results()`` baseline measured alongside grows >10x, so even the slack
#: bar separates the complexity classes decisively.
MAX_RATIO = 3.0

#: Repeats per measurement (best-of, to shed scheduler noise).
REPEATS = 7


def make_chunk(start: int) -> "np.ndarray":
    ids = np.arange(start, start + CHUNK_TUPLES, dtype=np.int64)
    from repro.streams import TupleBatch

    return TupleBatch(
        "rain",
        ids * 0.25,
        ids * 0.1,
        ids * 0.2,
        np.ones(CHUNK_TUPLES),
        ids,
        ids,
    )


def grow_buffer(buffer: QueryResultBuffer, chunks: int, start: int) -> int:
    """Deliver ``chunks`` chunk-batches; returns the next tuple id."""
    for _ in range(chunks):
        buffer.extend_batch(make_chunk(start))
        buffer.end_batch()
        start += CHUNK_TUPLES
    return start


def timed_cursor_read(buffer: QueryResultBuffer, start: int):
    """Best-of-REPEATS cost of a cursor draining READ_CHUNKS fresh chunks."""
    cursor = buffer.cursor(tail=True)
    best = float("inf")
    for _ in range(REPEATS):
        start = grow_buffer(buffer, READ_CHUNKS, start)
        begin = time.perf_counter()
        batch = cursor.fetch_batch()
        best = min(best, time.perf_counter() - begin)
        assert len(batch) == READ_CHUNKS * CHUNK_TUPLES
    return best, start


def timed_results_poll(buffer: QueryResultBuffer) -> float:
    """Best-of-REPEATS cost of one whole-history ``items()`` poll."""
    buffer.items()  # materialise once so repeats measure the copy, not conversion
    best = float("inf")
    for _ in range(REPEATS):
        begin = time.perf_counter()
        items = buffer.items()
        best = min(best, time.perf_counter() - begin)
        assert len(items) == len(buffer)
    return best


def test_cursor_read_cost_is_independent_of_history(
    record_table, record_session_metric
):
    buffer = QueryResultBuffer(1, requested_rate=10.0, region_area=4.0)
    next_id = grow_buffer(buffer, BASE_CHUNKS, 0)
    base_read, next_id = timed_cursor_read(buffer, next_id)
    base_poll = timed_results_poll(buffer)
    base_size = len(buffer)

    next_id = grow_buffer(buffer, GROWN_CHUNKS - BASE_CHUNKS - REPEATS * READ_CHUNKS, next_id)
    grown_read, next_id = timed_cursor_read(buffer, next_id)
    grown_poll = timed_results_poll(buffer)
    grown_size = len(buffer)

    ratio = grown_read / base_read
    poll_ratio = grown_poll / base_poll

    table = ResultTable(
        "E17 - session reads: resumable cursor vs whole-history poll",
        ["history tuples", "cursor read ms", "results() poll ms"],
    )
    table.add_row(base_size, f"{base_read * 1e3:.3f}", f"{base_poll * 1e3:.2f}")
    table.add_row(grown_size, f"{grown_read * 1e3:.3f}", f"{grown_poll * 1e3:.2f}")
    table.add_row("ratio", f"{ratio:.2f}x", f"{poll_ratio:.2f}x")
    record_table("E17_session_cursor_reads", table)

    record_session_metric(
        "cursor_read_cost_ratio_10x_history",
        ratio,
        unit="x",
        detail={
            "base_history_tuples": base_size,
            "grown_history_tuples": grown_size,
            "read_tuples": READ_CHUNKS * CHUNK_TUPLES,
            "base_read_seconds": base_read,
            "grown_read_seconds": grown_read,
        },
    )
    record_session_metric(
        "results_poll_cost_ratio_10x_history",
        poll_ratio,
        unit="x",
        detail={
            "base_poll_seconds": base_poll,
            "grown_poll_seconds": grown_poll,
        },
    )

    assert ratio <= MAX_RATIO, (
        f"cursor read of {READ_CHUNKS * CHUNK_TUPLES} fresh tuples got "
        f"{ratio:.2f}x slower when history grew "
        f"{grown_size / base_size:.0f}x (bar {MAX_RATIO}x): reads are not "
        f"O(new tuples)"
    )
    # The whole-history poll IS O(history): it must visibly grow in the very
    # same experiment, or the timing is too noisy to conclude anything.
    assert poll_ratio >= 3.0, (
        f"results() poll only grew {poll_ratio:.2f}x over 10x history; the "
        f"measurement lacks the resolution to support the cursor assertion"
    )


def test_retention_bounds_buffer_memory(record_session_metric):
    """A retained window keeps the buffer flat while totals stay exact."""
    retention = 50
    buffer = QueryResultBuffer(
        2, requested_rate=10.0, region_area=4.0, retention_batches=retention
    )
    next_id = 0
    sizes = []
    for _ in range(10):
        next_id = grow_buffer(buffer, 100, next_id)
        sizes.append(len(buffer))
    assert len(set(sizes)) == 1, f"retained size drifted: {sizes}"
    assert sizes[0] == retention * CHUNK_TUPLES
    assert buffer.total_tuples == next_id
    assert buffer.batches_completed == 1000
    estimate = buffer.rate_over_batches(1.0)
    assert estimate.tuples == next_id
    record_session_metric(
        "retention_steady_state_tuples",
        sizes[0],
        unit="tuples",
        detail={"retention_batches": retention, "batches_run": 1000},
    )
