"""E19: the serving layer — serialize-once fan-out, stalled-client isolation.

ISSUE 9's acceptance bars, measured at the layer each guarantee lives in:

* **serialize-once fan-out at >= 1k concurrent view subscribers** — the
  :class:`~repro.serve.FrameFanout` is driven with 10 and with 1000
  bounded subscriber queues (no sockets: the fan-out is deliberately
  asyncio-free so its cost model is directly benchable).  The codec call
  counters must show exactly ONE ``encode_view_frame`` per published
  frame at either scale, and the per-frame publish cost must stay flat in
  the subscriber count: growing the audience 100x may only grow the
  per-frame cost by ``MAX_FANOUT_RATIO`` (the residual is the bytes-
  reference append per queue, not re-serialization).
* **a stalled client never touches the engine's batch cadence** — one
  real server (``serve_in_thread``) runs ``STALL_BATCHES`` engine batches
  with a subscriber that stops reading its socket entirely (``skip``
  policy, tiny queue), and again with no subscriber at all.  The engine's
  in-``run_batch`` time (``Server.batch_seconds``) per batch must agree
  within ``MAX_STALL_OVERHEAD`` — the serving layer sheds load into the
  bounded queue instead of backpressuring the engine.

Results land in ``BENCH_serve.json`` via ``record_serve_metric`` so the
fan-out trajectory is tracked across PRs.
"""

import time

import numpy as np

from repro.config import BudgetConfig, EngineConfig
from repro.core import CraqrEngine
from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.sensing import (
    AlwaysRespond,
    RainField,
    RandomWaypointMobility,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)
from repro.serve import ServeClient, ServeConfig, serve_in_thread
from repro.serve.fanout import FrameFanout, SubscriberQueue
from repro.streams.codec import codec_call_counts, reset_codec_call_counts
from repro.views.frames import ViewFrame, ViewFrameBuffer

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)

#: Subscriber-count scales of the fan-out comparison (the acceptance bar
#: requires the large scale to be >= 1000 concurrent subscribers).
SMALL_FANOUT = 10
LARGE_FANOUT = 1_000

#: Frames published per fan-out round.
FANOUT_FRAMES = 50

#: Groups per synthetic frame (typical GROUP BY CELL output size).
FRAME_GROUPS = 16

#: Acceptance: per-frame publish cost at 1000 subscribers over the cost
#: at 10 — a 100x audience may not re-serialize (that would be ~100x).
MAX_FANOUT_RATIO = 30.0

#: Engine batches driven under the stalled subscriber and the baseline.
STALL_BATCHES = 30

#: Acceptance: |stalled - baseline| / baseline of per-batch engine time.
MAX_STALL_OVERHEAD = 0.05

#: Repeats per measurement (best-of, to shed scheduler noise).
REPEATS = 3


def make_frame(index: int, rng) -> ViewFrame:
    keys = np.empty(FRAME_GROUPS, dtype=object)
    keys[:] = [(g % 4, g // 4) for g in range(FRAME_GROUPS)]
    return ViewFrame(
        frame_index=index,
        window_start=2.0 * index,
        window_end=2.0 * index + 2.0,
        keys=keys,
        values=rng.random(FRAME_GROUPS),
        counts=rng.integers(1, 40, FRAME_GROUPS).astype(np.int64),
    )


def publish_round(subscribers: int, rng) -> tuple:
    """One fan-out round; returns (seconds, encode_calls, events_delivered)."""
    buffer = ViewFrameBuffer()
    fanout = FrameFanout()
    queues = [
        SubscriberQueue(capacity=FANOUT_FRAMES + 1) for _ in range(subscribers)
    ]
    for queue in queues:
        fanout.subscribe_view("Rain", buffer, queue)
    for i in range(FANOUT_FRAMES):
        buffer.append(make_frame(i, rng))
    reset_codec_call_counts()
    started = time.perf_counter()
    events = fanout.publish()
    elapsed = time.perf_counter() - started
    encodes = codec_call_counts()["view_frame"]
    delivered = sum(len(q) for q in queues)
    assert events == FANOUT_FRAMES
    assert delivered == FANOUT_FRAMES * subscribers
    return elapsed, encodes, delivered


def make_engine() -> CraqrEngine:
    world = SensingWorld(
        WorldConfig(region=REGION, sensor_count=120, seed=11),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.25, pause=0.5),
        participation_factory=lambda sensor_id: AlwaysRespond(),
    )
    world.register_field(RainField(REGION, band_width=1.2, period=60.0))
    world.register_field(TemperatureField(REGION))
    config = EngineConfig(
        grid_cells=16, seed=7, budget=BudgetConfig(initial=40, delta=5, limit=400)
    )
    engine = CraqrEngine(config, world)
    engine.execute(
        "ACQUIRE rain FROM RECT(0, 0, 4, 4) AT RATE 10 PER KM2 PER MIN AS Storm"
    )
    engine.execute("CREATE VIEW Rain ON Storm AS AVG(value) GROUP BY CELL WINDOW 2")
    return engine


def drive_batches(*, stalled_subscriber: bool) -> float:
    """Engine seconds per batch behind a live server; optionally stalled.

    The stalled subscriber opens a real socket, subscribes with a tiny
    ``skip`` queue and then never reads again; the driver connection keeps
    requesting batches either way.
    """
    engine = make_engine()
    server, (host, port), stop = serve_in_thread(engine, ServeConfig())
    stalled = None
    try:
        if stalled_subscriber:
            stalled = ServeClient(host, port)
            stalled.subscribe(view="Rain", policy="skip", queue_events=2)
            stalled.subscribe(query="Storm", policy="skip", queue_events=2)
            # From here on the stalled client never touches its socket.
        with ServeClient(host, port, timeout=120) as driver:
            for _ in range(STALL_BATCHES):
                driver.run(1)
        assert server.batches_served == STALL_BATCHES
        return server.batch_seconds / server.batches_served
    finally:
        if stalled is not None:
            stalled.close()
        stop()


def test_fanout_is_serialize_once_and_flat_in_subscribers(
    record_serve_metric, record_table
):
    rng = np.random.default_rng(12345)
    small = min(publish_round(SMALL_FANOUT, rng)[0] for _ in range(REPEATS))
    large = min(publish_round(LARGE_FANOUT, rng)[0] for _ in range(REPEATS))
    _, encodes_small, _ = publish_round(SMALL_FANOUT, rng)
    _, encodes_large, delivered = publish_round(LARGE_FANOUT, rng)

    # Serialize-once, asserted through the codec call counters: one
    # encode per frame regardless of audience size.
    assert encodes_small == FANOUT_FRAMES
    assert encodes_large == FANOUT_FRAMES

    per_frame_small = small / FANOUT_FRAMES
    per_frame_large = large / FANOUT_FRAMES
    ratio = per_frame_large / per_frame_small
    assert ratio <= MAX_FANOUT_RATIO, (
        f"per-frame publish cost grew {ratio:.1f}x when the audience grew "
        f"{LARGE_FANOUT // SMALL_FANOUT}x — fan-out is re-serializing "
        f"(bar: {MAX_FANOUT_RATIO}x)"
    )

    table = ResultTable(
        "serialize-once fan-out (50 frames per round)",
        ["subscribers", "encodes", "events", "per-frame us", "ratio"],
    )
    table.add_row(SMALL_FANOUT, encodes_small, FANOUT_FRAMES * SMALL_FANOUT,
                  round(per_frame_small * 1e6, 2), 1.0)
    table.add_row(LARGE_FANOUT, encodes_large, delivered,
                  round(per_frame_large * 1e6, 2), round(ratio, 2))
    record_table("serve_fanout", table)

    record_serve_metric(
        "fanout_encodes_per_frame_1k_subs",
        encodes_large / FANOUT_FRAMES,
        unit="calls/frame",
        detail={"subscribers": LARGE_FANOUT, "frames": FANOUT_FRAMES},
    )
    record_serve_metric(
        "fanout_per_frame_cost_ratio_1k_vs_10",
        ratio,
        unit="x",
        detail={
            "per_frame_us_10": per_frame_small * 1e6,
            "per_frame_us_1000": per_frame_large * 1e6,
            "bar": MAX_FANOUT_RATIO,
        },
    )


def test_stalled_client_leaves_batch_cadence_alone(record_serve_metric, record_table):
    drive_batches(stalled_subscriber=False)  # warm-up: prime caches/allocator
    baselines, stalleds = [], []
    for _ in range(REPEATS):  # interleaved, so drift hits both conditions
        baselines.append(drive_batches(stalled_subscriber=False))
        stalleds.append(drive_batches(stalled_subscriber=True))
    baseline = min(baselines)
    stalled = min(stalleds)
    overhead = abs(stalled - baseline) / baseline
    assert overhead <= MAX_STALL_OVERHEAD, (
        f"engine batch time moved {overhead * 100:.1f}% under a stalled "
        f"subscriber (baseline {baseline * 1e3:.3f} ms, stalled "
        f"{stalled * 1e3:.3f} ms; bar: {MAX_STALL_OVERHEAD * 100:.0f}%)"
    )

    table = ResultTable(
        f"stalled-client isolation ({STALL_BATCHES} batches, best of {REPEATS})",
        ["condition", "ms/batch"],
    )
    table.add_row("no subscriber", round(baseline * 1e3, 3))
    table.add_row("stalled subscriber", round(stalled * 1e3, 3))
    record_table("serve_stalled_client", table)

    record_serve_metric(
        "stalled_client_batch_overhead_pct",
        overhead * 100,
        unit="%",
        detail={
            "baseline_ms_per_batch": baseline * 1e3,
            "stalled_ms_per_batch": stalled * 1e3,
            "batches": STALL_BATCHES,
            "bar_pct": MAX_STALL_OVERHEAD * 100,
        },
    )
