"""E7 (multi-query sharing, Section III): shared topologies beat naive re-acquisition.

The paper motivates CrAQR's shared execution topologies by the cost of the
naive strategy: "processing each query from scratch (i.e., individually), is
not cost effective especially for the human-sensed attributes.  This is
because the data acquired for a particular attribute will not be re-used
across queries."

The sweep registers 1..16 queries over the same region (maximum sharing
opportunity) with both the shared CrAQR engine and the naive per-query
engine, runs the same number of batches, and compares acquisition requests
and cost per delivered tuple.  The shape to reproduce: naive cost grows
linearly with the number of queries while the shared cost stays nearly
flat, so the advantage grows with query count.  The benchmark measures a
shared-engine batch with the largest query count.
"""

import pytest

from repro import CraqrEngine
from repro.baselines import NaivePerQueryEngine
from repro.metrics import CostReport, ResultTable
from repro.workloads import (
    build_rain_temperature_world,
    default_engine_config,
    overlapping_query_workload,
)

QUERY_COUNTS = [1, 2, 4, 8, 16]
BATCHES = 4
WORLD_SEED = 601


def run_shared(queries, config):
    world = build_rain_temperature_world(sensor_count=300, seed=WORLD_SEED)
    engine = CraqrEngine(config, world)
    for query in queries:
        engine.register_query(query)
    engine.run(BATCHES)
    return engine


def run_naive(queries, config):
    world = build_rain_temperature_world(sensor_count=300, seed=WORLD_SEED)
    engine = NaivePerQueryEngine(config, world)
    for query in queries:
        engine.register_query(query.with_rate(query.rate))
    engine.run(BATCHES)
    return engine


def test_multi_query_sharing_sweep(benchmark, record_table):
    config = default_engine_config(seed=607)
    table = ResultTable(
        "E7 - shared CrAQR topologies vs naive per-query acquisition "
        f"({BATCHES} batches, fully overlapping rain queries)",
        [
            "queries",
            "shared requests",
            "naive requests",
            "request ratio (naive/shared)",
            "shared cost/tuple",
            "naive cost/tuple",
        ],
    )

    rows = []
    last_queries = None
    for count in QUERY_COUNTS:
        queries = overlapping_query_workload(
            CraqrEngine(config, build_rain_temperature_world(sensor_count=10, seed=1)).grid,
            count,
            base_rate=15.0,
            overlap_cells=2,
            seed=611 + count,
        )
        last_queries = queries
        shared = run_shared(queries, config)
        naive = run_naive(queries, config)
        shared_cost = CostReport(
            requests=shared.total_requests_sent(),
            responses=shared.total_tuples_acquired(),
            incentive_spent=0.0,
        ).per_delivered_tuple(shared.total_tuples_delivered())
        naive_cost = CostReport(
            requests=naive.total_requests_sent(),
            responses=naive.total_responses_received(),
            incentive_spent=0.0,
        ).per_delivered_tuple(naive.total_tuples_delivered())
        ratio = naive.total_requests_sent() / max(shared.total_requests_sent(), 1)
        rows.append(
            {
                "count": count,
                "shared_requests": shared.total_requests_sent(),
                "naive_requests": naive.total_requests_sent(),
                "ratio": ratio,
                "shared_cost": shared_cost,
                "naive_cost": naive_cost,
            }
        )
        table.add_row(
            count,
            shared.total_requests_sent(),
            naive.total_requests_sent(),
            round(ratio, 2),
            round(shared_cost, 3),
            round(naive_cost, 3),
        )
    record_table("E7_multi_query_sharing", table)

    # Shape checks: naive requests grow linearly with the query count while
    # shared requests stay within a small factor of the single-query cost, so
    # the ratio grows with the number of queries and clearly exceeds 1.
    assert rows[-1]["naive_requests"] > 10 * rows[0]["naive_requests"]
    assert rows[-1]["shared_requests"] < 3 * rows[0]["shared_requests"]
    assert rows[-1]["ratio"] > 4.0
    assert rows[-1]["ratio"] > rows[0]["ratio"]
    # With many queries the naive strategy also pays more per delivered tuple.
    assert rows[-1]["naive_cost"] > rows[-1]["shared_cost"]

    # Benchmark one shared batch at the largest query count.
    config_bench = default_engine_config(seed=617)
    shared = run_shared(last_queries, config_bench)
    benchmark(shared.run_batch)
