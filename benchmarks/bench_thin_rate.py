"""E4 (Thin claim): thinning produces a process with the desired lower rate.

The paper: "It can be shown that this simple procedure produces a point
process with the desired rate lambda2."  The sweep thins a homogeneous MDPP
of rate lambda1 to a range of lambda2 < lambda1 values and reports the
achieved rate and a homogeneity check of the surviving process.  The
benchmark measures the per-batch thinning cost.
"""

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.pointprocess import (
    HomogeneousMDPP,
    quadrat_chi_square_test,
    thin_to_rate,
)

REGION = Rectangle(0.0, 0.0, 1.0, 1.0)
DURATION = 5.0
RATE_IN = 400.0

#: Output / input rate ratios to sweep.
RATIOS = [0.8, 0.6, 0.4, 0.2, 0.1, 0.05]


def run_thin_sweep(seed=307):
    rng = np.random.default_rng(seed)
    batch = HomogeneousMDPP(RATE_IN, REGION).sample(DURATION, rng=rng)
    rows = []
    for ratio in RATIOS:
        rate_out = RATE_IN * ratio
        result = thin_to_rate(batch, RATE_IN, rate_out, rng=rng)
        achieved = result.retained_count / (REGION.area * DURATION)
        chi2 = quadrat_chi_square_test(result.retained, REGION, 4, 4)
        rows.append(
            {
                "rate_out": rate_out,
                "ratio": ratio,
                "achieved": achieved,
                "error": abs(achieved - rate_out) / rate_out,
                "p_value": chi2.p_value,
            }
        )
    return batch, rows


def test_thin_rate_sweep(benchmark, record_table):
    batch, rows = run_thin_sweep()
    rng = np.random.default_rng(311)
    benchmark(thin_to_rate, batch, RATE_IN, 0.3 * RATE_IN, rng=rng)

    table = ResultTable(
        f"E4 - Thin: lambda1={RATE_IN:g} -> lambda2 (desired vs achieved)",
        ["lambda2 desired", "lambda2 / lambda1", "achieved", "relative error", "CSR p-value"],
    )
    for row in rows:
        table.add_row(
            round(row["rate_out"], 1),
            row["ratio"],
            round(row["achieved"], 1),
            round(row["error"], 3),
            round(row["p_value"], 3),
        )
    record_table("E4_thin_rate", table)

    for row in rows:
        # The achieved rate tracks the desired rate (looser at tiny rates
        # where Poisson noise dominates) and the output stays homogeneous.
        tolerance = 0.15 if row["ratio"] >= 0.2 else 0.35
        assert row["error"] <= tolerance
        assert row["p_value"] > 0.001
