"""E9 (Section III-A): the conditional rate of Eq. (1) can be estimated.

The paper relies on being able to estimate the parameters theta of the
linear conditional intensity from acquired tuples — by maximum likelihood in
batch mode, and by online stochastic gradient descent over sliding windows.
The sweep simulates inhomogeneous MDPPs with known theta at increasing
observation durations (i.e. increasing sample sizes), fits both estimators,
and reports the error of the recovered intensity surface and of the implied
expected count.  The shape: errors shrink as the sample grows; the batch MLE
is more accurate than the online SGD estimate, which in turn tracks the true
gradient direction.  The benchmark measures one MLE fit.
"""

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.metrics import ResultTable
from repro.pointprocess import (
    InhomogeneousMDPP,
    LinearIntensity,
    OnlineIntensityEstimator,
    fit_linear_intensity_mle,
)

REGION = Rectangle(0.0, 0.0, 1.0, 1.0)
TRUE_THETA = (20.0, 0.0, 60.0, 30.0)
DURATIONS = [1.0, 2.0, 4.0, 8.0, 16.0]


def surface_rmse(fitted, truth, duration, resolution=8):
    """RMS error of the fitted intensity surface over the observation window."""
    t = np.linspace(0.0, duration, resolution)
    x = np.linspace(0.0, 1.0, resolution)
    y = np.linspace(0.0, 1.0, resolution)
    tt, xx, yy = np.meshgrid(t, x, y, indexing="ij")
    fitted_values = fitted.rate(tt.ravel(), xx.ravel(), yy.ravel())
    true_values = truth.rate(tt.ravel(), xx.ravel(), yy.ravel())
    return float(np.sqrt(np.mean((fitted_values - true_values) ** 2)))


def run_estimation_sweep(seed=801):
    truth = LinearIntensity.from_theta(TRUE_THETA)
    process = InhomogeneousMDPP(truth, REGION)
    rows = []
    for duration in DURATIONS:
        rng = np.random.default_rng(seed + int(duration))
        batch = process.sample(duration, rng=rng)
        mle = fit_linear_intensity_mle(batch, REGION, 0.0, duration)
        online = OnlineIntensityEstimator(
            REGION, 1.0, learning_rate=0.3, expected_events_per_window=len(batch) / duration
        )
        for window_start in np.arange(0.0, duration, 1.0):
            online.observe_batch(
                batch.restrict_to_time(window_start, window_start + 1.0),
                window_start=window_start,
            )
        mean_rate = truth.mean_rate(REGION, 0.0, duration)
        rows.append(
            {
                "duration": duration,
                "events": len(batch),
                "mle_rmse": surface_rmse(mle.intensity, truth, duration) / mean_rate,
                "sgd_rmse": surface_rmse(online.intensity, truth, duration) / mean_rate,
                "mle_count_error": abs(
                    mle.intensity.integral(REGION, 0.0, duration) - len(batch)
                ) / len(batch),
                "sgd_x_slope": online.theta[2],
                "mle_converged": mle.converged,
            }
        )
    return rows


def test_intensity_estimation(benchmark, record_table):
    rows = run_estimation_sweep()

    table = ResultTable(
        "E9 - estimating theta of Eq.(1): batch MLE vs online SGD "
        f"(true theta = {TRUE_THETA})",
        [
            "duration",
            "events",
            "MLE surface NRMSE",
            "SGD surface NRMSE",
            "MLE count error",
            "SGD x-slope (true 60)",
        ],
    )
    for row in rows:
        table.add_row(
            row["duration"],
            row["events"],
            round(row["mle_rmse"], 3),
            round(row["sgd_rmse"], 3),
            round(row["mle_count_error"], 3),
            round(row["sgd_x_slope"], 1),
        )
    record_table("E9_intensity_estimation", table)

    # Shape checks: the MLE improves with more data and ends up accurate;
    # the SGD estimate finds the dominant spatial gradient direction.
    assert all(row["mle_converged"] for row in rows)
    assert rows[-1]["mle_rmse"] < rows[0]["mle_rmse"]
    assert rows[-1]["mle_rmse"] < 0.15
    assert all(row["mle_count_error"] < 0.2 for row in rows)
    assert rows[-1]["sgd_x_slope"] > 0.0
    assert rows[-1]["mle_rmse"] <= rows[-1]["sgd_rmse"] + 0.05

    # Benchmark one MLE fit at the largest sample size.
    truth = LinearIntensity.from_theta(TRUE_THETA)
    batch = InhomogeneousMDPP(truth, REGION).sample(8.0, rng=np.random.default_rng(821))
    benchmark(fit_linear_intensity_mle, batch, REGION, 0.0, 8.0)
