"""E18: the continuous-view serving surface — incremental and O(new frames).

ISSUE 5's acceptance bars, measured at the layer each guarantee lives in:

* **incremental maintenance beats recompute-from-results by >= 10x at 10x
  retained history** — a view folds only each *new* batch into per-group
  partials; a dashboard recomputing the same windowed aggregate from the
  raw result history rescans everything it retained.  Both maintenance
  styles are timed over one fresh batch at H and at 10·H retained tuples:
  the incremental fold stays flat while the recompute grows ~10x, so the
  headroom at 10·H must clear ``MIN_SPEEDUP``.
* **frame reads stay O(new frames) while history grows 10x** — a
  ``FrameCursor`` read draining a fixed number of fresh frames is timed at
  H and 10·H retained frames; the ratio must stay under ``MAX_READ_RATIO``
  (the generous CI-noise bar used by the session benchmarks).

Results land in ``BENCH_views.json`` via ``record_view_metric`` so the
serving-surface trajectory is tracked across PRs.
"""

import time

import numpy as np

from repro.geometry import Grid, Rectangle
from repro.metrics import ResultTable
from repro.streams import TupleBatch
from repro.views import ContinuousView, ViewFrame, ViewFrameBuffer, ViewSpec

#: Tuples per delivered batch.
BATCH_TUPLES = 200

#: History sizes (in batches) the two maintenance styles are compared at.
BASE_BATCHES = 500
GROWN_BATCHES = 5_000

#: Acceptance: incremental fold vs recompute-from-history at 10x history.
MIN_SPEEDUP = 10.0

#: Frame-history sizes for the cursor-read comparison.
BASE_FRAMES = 2_000
GROWN_FRAMES = 20_000

#: Frames per measured incremental cursor read.
READ_FRAMES = 40

#: Acceptance: cursor read cost at 10x history / cost at 1x history.
MAX_READ_RATIO = 3.0

#: Repeats per measurement (best-of, to shed scheduler noise).
REPEATS = 7

REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


def make_batch(batch_index: int, rng) -> TupleBatch:
    n = BATCH_TUPLES
    ids = np.arange(batch_index * n, (batch_index + 1) * n, dtype=np.int64)
    return TupleBatch(
        "rain",
        batch_index + rng.random(n),  # timestamps inside the batch window
        rng.random(n) * 4.0,
        rng.random(n) * 4.0,
        rng.random(n),
        ids,
        ids,
    )


def make_view(window: float = 1.0) -> ContinuousView:
    return ContinuousView(
        ViewSpec(aggregate="AVG", window=window, group_by="cell"),
        name="bench",
        query_id=1,
        query_label="Q",
        grid=Grid(REGION, 4),
        batch_duration=1.0,
    )


def recompute_from_history(history, grid, window_start, window_end):
    """The dashboard-side baseline: one windowed AVG-per-cell recompute.

    ``history`` is the retained raw stream as concatenated columns — the
    cheapest possible whole-history representation (a real consumer would
    pay extra to even assemble it from ``results()``).  The recompute still
    must scan every retained tuple to find the window, then group it.
    """
    t, x, y, values = history
    mask = (t >= window_start) & (t < window_end)
    xs, ys, vals = x[mask], y[mask], values[mask]
    q, r = grid.cells_for_points(xs, ys)
    codes = r * grid.side + q
    order = np.argsort(codes, kind="stable")
    codes = codes[order]
    vals = vals[order]
    boundaries = np.flatnonzero(np.diff(codes)) + 1
    sums = np.add.reduceat(vals, np.concatenate(([0], boundaries))) if vals.size else np.empty(0)
    counts = np.diff(np.concatenate(([0], boundaries, [codes.size])))
    return sums / np.maximum(counts, 1)


def timed_incremental_fold(view, batch_index, rng):
    """Best-of-REPEATS cost of folding one fresh batch + closing its window."""
    best = float("inf")
    for _ in range(REPEATS):
        batch = make_batch(batch_index, rng)
        begin = time.perf_counter()
        view.on_delivery(batch)
        view.advance_to(float(batch_index + 1))
        best = min(best, time.perf_counter() - begin)
        batch_index += 1
    return best, batch_index


def timed_recompute(history, grid, window_start):
    best = float("inf")
    for _ in range(REPEATS):
        begin = time.perf_counter()
        recompute_from_history(history, grid, window_start, window_start + 1.0)
        best = min(best, time.perf_counter() - begin)
    return best


def test_incremental_maintenance_beats_recompute_at_10x_history(
    record_table, record_view_metric
):
    rng = np.random.default_rng(11)
    grid = Grid(REGION, 4)
    view = make_view()

    batches = []
    batch_index = 0
    while batch_index < BASE_BATCHES:
        batch = make_batch(batch_index, rng)
        batches.append(batch)
        view.on_delivery(batch)
        view.advance_to(float(batch_index + 1))
        batch_index += 1

    def history_columns():
        return (
            np.concatenate([b.t for b in batches]),
            np.concatenate([b.x for b in batches]),
            np.concatenate([b.y for b in batches]),
            np.concatenate([b.value for b in batches]),
        )

    base_fold, batch_index = timed_incremental_fold(view, batch_index, rng)
    base_recompute = timed_recompute(history_columns(), grid, float(BASE_BATCHES - 1))
    base_tuples = BASE_BATCHES * BATCH_TUPLES

    while batch_index < GROWN_BATCHES:
        batch = make_batch(batch_index, rng)
        batches.append(batch)
        view.on_delivery(batch)
        view.advance_to(float(batch_index + 1))
        batch_index += 1
    grown_fold, batch_index = timed_incremental_fold(view, batch_index, rng)
    grown_recompute = timed_recompute(history_columns(), grid, float(GROWN_BATCHES - 1))
    grown_tuples = GROWN_BATCHES * BATCH_TUPLES

    speedup = grown_recompute / grown_fold
    table = ResultTable(
        "E18a - view maintenance: incremental fold vs recompute-from-history",
        ["history tuples", "fold one batch (us)", "recompute window (us)", "speedup"],
    )
    table.add_row(
        base_tuples, round(base_fold * 1e6, 1), round(base_recompute * 1e6, 1),
        round(base_recompute / base_fold, 1),
    )
    table.add_row(
        grown_tuples, round(grown_fold * 1e6, 1), round(grown_recompute * 1e6, 1),
        round(speedup, 1),
    )
    record_table("e18a_view_incremental_maintenance", table)
    record_view_metric(
        "view_incremental_vs_recompute_speedup_10x_history",
        speedup,
        unit="x",
        detail={
            "base_history_tuples": base_tuples,
            "grown_history_tuples": grown_tuples,
            "fold_seconds": grown_fold,
            "recompute_seconds": grown_recompute,
            "frames_emitted": view.buffer.frames_emitted,
        },
    )
    # The incremental fold must not degrade with history (flat in theory).
    assert grown_fold < base_fold * MAX_READ_RATIO
    assert speedup >= MIN_SPEEDUP, (
        f"incremental maintenance is only {speedup:.1f}x faster than "
        f"recompute at 10x history (bar: {MIN_SPEEDUP}x)"
    )


def make_frame(index: int) -> ViewFrame:
    keys = np.empty(4, dtype=object)
    keys[:] = [(0, 0), (1, 0), (0, 1), (1, 1)]
    return ViewFrame(
        frame_index=index,
        window_start=float(index),
        window_end=float(index + 1),
        keys=keys,
        values=np.full(4, 0.5),
        counts=np.full(4, 50, dtype=np.int64),
    )


def grow_frames(buffer: ViewFrameBuffer, count: int, start: int) -> int:
    for index in range(start, start + count):
        buffer.append(make_frame(index))
    return start + count


def timed_frame_read(buffer: ViewFrameBuffer, start: int):
    """Best-of-REPEATS cost of a cursor draining READ_FRAMES fresh frames."""
    cursor = buffer.cursor(tail=True)
    best = float("inf")
    for _ in range(REPEATS):
        start = grow_frames(buffer, READ_FRAMES, start)
        begin = time.perf_counter()
        frames = cursor.fetch()
        best = min(best, time.perf_counter() - begin)
        assert len(frames) == READ_FRAMES
    return best, start


def test_frame_cursor_reads_stay_o_new_frames(record_table, record_view_metric):
    buffer = ViewFrameBuffer()
    next_index = grow_frames(buffer, BASE_FRAMES, 0)
    base_read, next_index = timed_frame_read(buffer, next_index)
    base_size = len(buffer)

    next_index = grow_frames(
        buffer, GROWN_FRAMES - BASE_FRAMES - REPEATS * READ_FRAMES, next_index
    )
    grown_read, next_index = timed_frame_read(buffer, next_index)
    grown_size = len(buffer)

    ratio = grown_read / base_read
    table = ResultTable(
        "E18b - frame reads: resumable cursor cost vs retained history",
        ["retained frames", "cursor read (us)", "ratio"],
    )
    table.add_row(base_size, round(base_read * 1e6, 1), 1.0)
    table.add_row(grown_size, round(grown_read * 1e6, 1), round(ratio, 2))
    record_table("e18b_view_frame_cursor", table)
    record_view_metric(
        "frame_cursor_read_cost_ratio_10x_history",
        ratio,
        unit="x",
        detail={
            "base_history_frames": base_size,
            "grown_history_frames": grown_size,
            "base_read_seconds": base_read,
            "grown_read_seconds": grown_read,
            "read_frames": READ_FRAMES,
        },
    )
    assert ratio < MAX_READ_RATIO, (
        f"frame cursor reads grew {ratio:.2f}x when history grew 10x "
        f"(bar: {MAX_READ_RATIO}x)"
    )
