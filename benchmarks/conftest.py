"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures or quantitative
claims (see DESIGN.md section 3 and EXPERIMENTS.md).  The reproduced tables
are printed to stdout and also written to ``benchmarks/results/`` so the
numbers quoted in EXPERIMENTS.md can be re-derived.

Scalar performance metrics recorded through the ``record_metric`` fixture
are additionally aggregated into ``BENCH_columnar.json`` at the repository
root at the end of the session, so the perf trajectory (e.g. the columnar
fast path's speedup) is tracked across PRs.
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Dict

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_columnar.json"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory the reproduced tables are written to."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Return a callable that prints a ResultTable and persists it to disk."""

    def _record(name: str, table) -> None:
        text = table.render()
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record


#: Session-wide accumulator behind the ``record_metric`` fixture.
_METRIC_STORE: Dict[str, dict] = {}


@pytest.fixture
def record_metric():
    """Return a callable recording one scalar benchmark metric.

    Metrics land in ``BENCH_columnar.json`` when the session ends (see
    :func:`pytest_sessionfinish` below).
    """

    def _record(name: str, value: float, *, unit: str = "", detail: dict = None) -> None:
        _METRIC_STORE[name] = {
            "value": float(value),
            "unit": unit,
            "detail": detail or {},
        }

    return _record


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus):
    store = _METRIC_STORE
    if not store or exitstatus != 0:
        # Never let a failed or interrupted run overwrite the tracked
        # cross-PR perf trajectory with partial numbers.
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):  # pragma: no cover - corrupt file
            existing = {}
    metrics = existing.get("metrics", {})
    metrics.update(store)
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "metrics": metrics,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
