"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures or quantitative
claims (see DESIGN.md section 3 and EXPERIMENTS.md).  The reproduced tables
are printed to stdout and also written to ``benchmarks/results/`` so the
numbers quoted in EXPERIMENTS.md can be re-derived.

Scalar performance metrics recorded through the ``record_metric`` fixture
are additionally aggregated into ``BENCH_columnar.json`` at the repository
root at the end of the session, so the perf trajectory (e.g. the columnar
fast path's speedup) is tracked across PRs; metrics from the sensing-world
benchmarks go through ``record_world_metric`` into ``BENCH_world.json``,
session-surface metrics through ``record_session_metric`` into
``BENCH_session.json``, continuous-view metrics through
``record_view_metric`` into ``BENCH_views.json``, fault-scenario
metrics through ``record_scenario_metric`` into ``BENCH_scenarios.json``,
checkpoint/restore metrics through ``record_recovery_metric`` into
``BENCH_recovery.json``, plan-compiler metrics through
``record_plan_metric`` into ``BENCH_plan.json`` and serving-layer
metrics through ``record_serve_metric`` into ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Dict

import pytest

from repro.recovery import atomic_write_text

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_columnar.json"
BENCH_WORLD_JSON = pathlib.Path(__file__).parent.parent / "BENCH_world.json"
BENCH_SESSION_JSON = pathlib.Path(__file__).parent.parent / "BENCH_session.json"
BENCH_VIEWS_JSON = pathlib.Path(__file__).parent.parent / "BENCH_views.json"
BENCH_SCENARIOS_JSON = pathlib.Path(__file__).parent.parent / "BENCH_scenarios.json"
BENCH_RECOVERY_JSON = pathlib.Path(__file__).parent.parent / "BENCH_recovery.json"
BENCH_PLAN_JSON = pathlib.Path(__file__).parent.parent / "BENCH_plan.json"
BENCH_SERVE_JSON = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory the reproduced tables are written to."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Return a callable that prints a ResultTable and persists it to disk."""

    def _record(name: str, table) -> None:
        text = table.render()
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record


#: Session-wide accumulators behind the ``record_metric`` fixtures.
_METRIC_STORE: Dict[str, dict] = {}
_WORLD_METRIC_STORE: Dict[str, dict] = {}
_SESSION_METRIC_STORE: Dict[str, dict] = {}
_VIEWS_METRIC_STORE: Dict[str, dict] = {}
_SCENARIO_METRIC_STORE: Dict[str, dict] = {}
_RECOVERY_METRIC_STORE: Dict[str, dict] = {}
_PLAN_METRIC_STORE: Dict[str, dict] = {}
_SERVE_METRIC_STORE: Dict[str, dict] = {}


def _make_recorder(store: Dict[str, dict]):
    def _record(name: str, value: float, *, unit: str = "", detail: dict = None) -> None:
        store[name] = {
            "value": float(value),
            "unit": unit,
            "detail": detail or {},
        }

    return _record


@pytest.fixture
def record_metric():
    """Return a callable recording one scalar benchmark metric.

    Metrics land in ``BENCH_columnar.json`` when the session ends (see
    :func:`pytest_sessionfinish` below).
    """
    return _make_recorder(_METRIC_STORE)


@pytest.fixture
def record_world_metric():
    """Like ``record_metric`` but routed to ``BENCH_world.json``.

    Used by the sensing-world benchmarks (``bench_world_advance.py``) so
    the simulation perf trajectory is tracked separately from the query
    pipeline's.
    """
    return _make_recorder(_WORLD_METRIC_STORE)


@pytest.fixture
def record_session_metric():
    """Like ``record_metric`` but routed to ``BENCH_session.json``.

    Used by the query-session benchmarks (``bench_session_api.py``) so the
    session-surface perf trajectory (cursor read cost, retention overhead)
    is tracked separately from the pipeline's and the simulator's.
    """
    return _make_recorder(_SESSION_METRIC_STORE)


@pytest.fixture
def record_view_metric():
    """Like ``record_metric`` but routed to ``BENCH_views.json``.

    Used by the continuous-view benchmarks (``bench_views.py``) so the
    serving-surface perf trajectory (incremental maintenance speedup,
    frame-cursor read cost) is tracked separately.
    """
    return _make_recorder(_VIEWS_METRIC_STORE)


@pytest.fixture
def record_scenario_metric():
    """Like ``record_metric`` but routed to ``BENCH_scenarios.json``.

    Used by the fault-injection benchmarks (``bench_faults.py``) so the
    fault-scenario throughput and the zero-fault overhead of the
    resilience stack are tracked separately from the healthy-path
    trajectories.
    """
    return _make_recorder(_SCENARIO_METRIC_STORE)


@pytest.fixture
def record_recovery_metric():
    """Like ``record_metric`` but routed to ``BENCH_recovery.json``.

    Used by the checkpoint/restore benchmarks (``bench_checkpoint.py``) so
    the recovery-path trajectory (snapshot latency, file size, periodic-
    checkpoint overhead) is tracked separately.
    """
    return _make_recorder(_RECOVERY_METRIC_STORE)


@pytest.fixture
def record_plan_metric():
    """Like ``record_metric`` but routed to ``BENCH_plan.json``.

    Used by the plan-compiler benchmarks (``bench_plan_compiler.py``) so
    the compiled-vs-interpreted speedup and the cache's recompile counts
    are tracked separately.
    """
    return _make_recorder(_PLAN_METRIC_STORE)


@pytest.fixture
def record_serve_metric():
    """Like ``record_metric`` but routed to ``BENCH_serve.json``.

    Used by the serving-layer benchmarks (``bench_serve.py``) so the
    fan-out trajectory (serialize-once encode counts, per-subscriber
    publish cost, stalled-client isolation) is tracked separately.
    """
    return _make_recorder(_SERVE_METRIC_STORE)


def _persist(path: pathlib.Path, store: Dict[str, dict]) -> None:
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (ValueError, OSError):  # pragma: no cover - corrupt file
            existing = {}
    metrics = existing.get("metrics", {})
    metrics.update(store)
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "metrics": metrics,
    }
    # The same temp-file + fsync + rename writer the checkpoint files use:
    # an interrupted benchmark session can never leave a torn BENCH_*.json
    # behind for the cross-PR trajectory tooling to choke on.
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus):
    if exitstatus != 0:
        # Never let a failed or interrupted run overwrite the tracked
        # cross-PR perf trajectory with partial numbers.
        return
    if _METRIC_STORE:
        _persist(BENCH_JSON, _METRIC_STORE)
    if _WORLD_METRIC_STORE:
        _persist(BENCH_WORLD_JSON, _WORLD_METRIC_STORE)
    if _SESSION_METRIC_STORE:
        _persist(BENCH_SESSION_JSON, _SESSION_METRIC_STORE)
    if _VIEWS_METRIC_STORE:
        _persist(BENCH_VIEWS_JSON, _VIEWS_METRIC_STORE)
    if _SCENARIO_METRIC_STORE:
        _persist(BENCH_SCENARIOS_JSON, _SCENARIO_METRIC_STORE)
    if _RECOVERY_METRIC_STORE:
        _persist(BENCH_RECOVERY_JSON, _RECOVERY_METRIC_STORE)
    if _PLAN_METRIC_STORE:
        _persist(BENCH_PLAN_JSON, _PLAN_METRIC_STORE)
    if _SERVE_METRIC_STORE:
        _persist(BENCH_SERVE_JSON, _SERVE_METRIC_STORE)
