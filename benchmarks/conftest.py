"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures or quantitative
claims (see DESIGN.md section 3 and EXPERIMENTS.md).  The reproduced tables
are printed to stdout and also written to ``benchmarks/results/`` so the
numbers quoted in EXPERIMENTS.md can be re-derived.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory the reproduced tables are written to."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Return a callable that prints a ResultTable and persists it to disk."""

    def _record(name: str, table) -> None:
        text = table.render()
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record
