"""E5 (Partition / Union claims): rates are preserved by P and U.

The paper: Partition splits a process into processes "of the same rate" on
disjoint sub-regions; Union merges equal-rate processes on adjacent regions
into one process on the union region.  The sweep partitions a homogeneous
process into k sub-regions and unions it back, checking the rate is
preserved at every step (and that a Partition->Union round trip loses no
tuples).  The benchmark measures the per-tuple routing cost of Partition.
"""

import numpy as np
import pytest

from repro.core.pmat import PartitionOperator, UnionOperator
from repro.geometry import Rectangle, RectRegion
from repro.metrics import ResultTable
from repro.pointprocess import HomogeneousMDPP
from repro.streams import CollectingSink, SensorTuple

REGION = Rectangle(0.0, 0.0, 2.0, 1.0)
RATE = 150.0
DURATION = 4.0

#: Numbers of vertical slices to partition the region into.
PARTITION_COUNTS = [2, 3, 4, 6, 8]


def make_tuples(seed=401):
    batch = HomogeneousMDPP(RATE, REGION).sample(DURATION, rng=np.random.default_rng(seed))
    return [
        SensorTuple(tuple_id=i, attribute="rain", t=float(t), x=float(x), y=float(y))
        for i, (t, x, y) in enumerate(zip(batch.t, batch.x, batch.y))
    ]


def run_partition_union(items, parts, seed=409):
    rng = np.random.default_rng(seed)
    slices = [RectRegion(r) for r in REGION.subdivide(parts, 1)]
    partition = PartitionOperator(slices, rng=rng)
    union = UnionOperator(slices, rate=RATE, rng=rng)
    slice_sinks = [CollectingSink().attach(partition.output_for(i)) for i in range(parts)]
    for i in range(parts):
        union.attach_input(partition.output_for(i))
    merged = CollectingSink().attach(union.output)
    for item in items:
        partition.accept(item)
    per_slice_rates = [
        len(sink) / (region.area * DURATION) for sink, region in zip(slice_sinks, slices)
    ]
    merged_rate = len(merged) / (union.region.area * DURATION)
    return per_slice_rates, merged_rate, len(merged)


def test_partition_union_rate_preservation(benchmark, record_table):
    items = make_tuples()
    input_rate = len(items) / (REGION.area * DURATION)

    table = ResultTable(
        "E5 - Partition/Union: rate preserved on sub-regions and on the union",
        [
            "sub-regions",
            "input rate",
            "min slice rate",
            "max slice rate",
            "union rate",
            "tuples lost",
        ],
    )
    for parts in PARTITION_COUNTS:
        per_slice, merged_rate, merged_count = run_partition_union(items, parts)
        table.add_row(
            parts,
            round(input_rate, 1),
            round(min(per_slice), 1),
            round(max(per_slice), 1),
            round(merged_rate, 1),
            len(items) - merged_count,
        )
        # Every slice sees (statistically) the same rate as the input and the
        # round trip through U recovers every tuple and the original rate.
        for slice_rate in per_slice:
            assert slice_rate == pytest.approx(input_rate, rel=0.25)
        assert merged_rate == pytest.approx(input_rate, rel=0.05)
        assert merged_count == len(items)
    record_table("E5_partition_union", table)

    # Benchmark the per-batch routing cost of an 8-way Partition.
    slices = [RectRegion(r) for r in REGION.subdivide(8, 1)]

    def route_all():
        partition = PartitionOperator(slices, rng=np.random.default_rng(0))
        for item in items:
            partition.accept(item)

    benchmark(route_all)
