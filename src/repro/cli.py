"""Command-line interface for the CrAQR reproduction.

Lets a user run acquisitional queries against one of the stock simulated
scenarios without writing Python::

    python -m repro.cli run \
        --scenario rain-temperature --batches 20 \
        --query "ACQUIRE rain FROM RECT(0,0,2,2) AT RATE 10 PER KM2 PER MIN AS Storm" \
        --query "ACQUIRE temp FROM RECT(1,1,3,3) AT RATE 6 PER KM2 PER MIN AS Heat"

    python -m repro.cli scenarios           # list available scenarios
    python -m repro.cli attributes          # list the attribute catalog

The ``run`` sub-command prints, per query, the requested and achieved rates
and (optionally, ``--show-samples``) the first tuples of each fabricated
stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .core import CraqrEngine
from .errors import CraqrError
from .metrics import ResultTable
from .query import AttributeCatalog, parse_queries
from .sensing import SensingWorld
from .workloads import (
    build_hotspot_world,
    build_rain_temperature_world,
    build_uniform_world,
    default_engine_config,
)

#: Scenario name -> (description, world builder).
SCENARIOS: Dict[str, tuple] = {
    "rain-temperature": (
        "4x4 km city, 300 random-waypoint sensors, rain front + heat islands",
        build_rain_temperature_world,
    ),
    "uniform": (
        "4x4 km city with roughly uniform sensor coverage",
        build_uniform_world,
    ),
    "hotspot": (
        "4x4 km city with sensors clustered around two hotspots (skew stress case)",
        build_hotspot_world,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="CrAQR: crowdsensed data acquisition using multi-dimensional point processes",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run acquisitional queries on a simulated scenario")
    run.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="rain-temperature",
        help="which simulated world to acquire from",
    )
    run.add_argument(
        "--query",
        action="append",
        dest="queries",
        required=True,
        help="a declarative ACQUIRE statement (repeatable)",
    )
    run.add_argument("--batches", type=int, default=20, help="acquisition batches to run")
    run.add_argument("--sensors", type=int, default=300, help="number of mobile sensors")
    run.add_argument("--grid-cells", type=int, default=16, help="grid cells h (perfect square)")
    run.add_argument("--seed", type=int, default=7, help="random seed")
    run.add_argument(
        "--show-samples",
        type=int,
        default=0,
        metavar="N",
        help="print the first N tuples of each fabricated stream",
    )

    subparsers.add_parser("scenarios", help="list the available simulated scenarios")
    subparsers.add_parser("attributes", help="list the attribute catalog")
    return parser


def _command_scenarios(out: Callable[[str], None]) -> int:
    table = ResultTable("available scenarios", ["name", "description"])
    for name, (description, _) in sorted(SCENARIOS.items()):
        table.add_row(name, description)
    out(table.render())
    return 0


def _command_attributes(out: Callable[[str], None]) -> int:
    catalog = AttributeCatalog.default()
    table = ResultTable("attribute catalog", ["attribute", "kind", "value type", "description"])
    for name in catalog.names():
        info = catalog.get(name)
        table.add_row(name, info.kind.value, info.value_type.__name__, info.description)
    out(table.render())
    return 0


def _command_run(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    description, builder = SCENARIOS[args.scenario]
    out(f"scenario '{args.scenario}': {description}")
    world: SensingWorld = builder(sensor_count=args.sensors, seed=args.seed)
    config = default_engine_config(grid_cells=args.grid_cells, seed=args.seed + 1)
    engine = CraqrEngine(config, world)
    catalog = AttributeCatalog.default()

    statements = []
    for text in args.queries:
        statements.extend(parse_queries(text))
    handles = []
    for statement in statements:
        catalog.validate_attribute(statement.attribute)
        handles.append(engine.register_query(statement.to_query()))
    out(f"registered {len(handles)} queries; running {args.batches} batches ...")

    engine.run(args.batches)

    table = ResultTable(
        "acquired crowdsensed streams",
        ["query", "attribute", "area", "requested rate", "achieved rate", "tuples"],
    )
    for handle in handles:
        estimate = handle.achieved_rate()
        table.add_row(
            handle.query.label,
            handle.query.attribute,
            round(handle.query.region.area, 2),
            round(estimate.requested_rate, 2),
            round(estimate.achieved_rate, 2),
            handle.buffer.total_tuples,
        )
    out(table.render())
    out(
        f"requests sent: {engine.total_requests_sent()}   "
        f"raw tuples acquired: {engine.total_tuples_acquired()}   "
        f"tuples delivered: {engine.total_tuples_delivered()}"
    )
    if args.show_samples > 0:
        for handle in handles:
            out(f"\nfirst tuples of {handle.query.label} (t, x, y, value):")
            for item in handle.results()[: args.show_samples]:
                out(f"  ({item.t:8.2f}, {item.x:6.2f}, {item.y:6.2f}, {item.value})")
    return 0


def main(argv: Optional[Sequence[str]] = None, out: Callable[[str], None] = print) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "scenarios":
            return _command_scenarios(out)
        if args.command == "attributes":
            return _command_attributes(out)
        if args.command == "run":
            if args.batches <= 0:
                raise CraqrError("--batches must be positive")
            return _command_run(args, out)
        parser.error(f"unknown command {args.command!r}")
        return 2
    except CraqrError as exc:
        out(f"error: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
