"""Command-line interface for the CrAQR reproduction.

Lets a user run acquisitional queries against one of the stock simulated
scenarios without writing Python::

    python -m repro.cli run \
        --scenario rain-temperature --batches 20 \
        --query "ACQUIRE rain FROM RECT(0,0,2,2) AT RATE 10 PER KM2 PER MIN AS Storm" \
        --query "ACQUIRE temp FROM RECT(1,1,3,3) AT RATE 6 PER KM2 PER MIN AS Heat"

    python -m repro.cli scenarios           # list available scenarios
    python -m repro.cli attributes          # list the attribute catalog
    python -m repro.cli repl                # interactive live-engine session
    python -m repro.cli recover --checkpoint-dir ckpts --batches 5

The ``run`` sub-command prints, per query, the requested and achieved rates
and (optionally, ``--show-samples``) the first tuples of each fabricated
stream.  The ``repl`` sub-command keeps one engine alive and feeds it
statements line by line — ``ACQUIRE`` to register, ``run N`` to advance
batch windows, ``ALTER <name> SET RATE ...`` / ``SET REGION ...`` to
replan in flight, ``SHOW QUERIES`` for the session table, ``STOP <name>``
to deregister, and the continuous-view surface: ``CREATE VIEW Rainfall ON
Storm AS AVG(value) GROUP BY CELL WINDOW 5``, ``SHOW VIEWS``, ``frames
Rainfall`` to render the latest closed windows as a table, and ``DROP
VIEW Rainfall``.

Crash recovery: ``run``/``repl`` take ``--checkpoint-dir`` (plus
``--checkpoint-every N``) to write periodic crash-consistent checkpoints,
the repl's ``checkpoint``/``restore`` commands drive the same machinery by
hand, and ``recover`` restores the newest good checkpoint of an
interrupted run and continues it.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from dataclasses import replace as dataclass_replace
from typing import Callable, Dict, List, Optional, Sequence, TextIO

from .config import CheckpointConfig, EngineConfig
from .core import CraqrEngine, QueryHandle, QuerySessionInfo
from .errors import CraqrError
from .metrics import ResultTable
from .query import (
    AttributeCatalog,
    ParsedQuery,
    ShowViewsStatement,
    frames_table,
    health_table,
    parse_queries,
    parse_statements,
    sessions_table,
    views_table,
)
from .sensing import SensingWorld
from .views import ViewFrame, ViewHandle, ViewSessionInfo
from .workloads import (
    build_hotspot_world,
    build_rain_temperature_world,
    build_stationary_world,
    build_uniform_world,
    cell_outage_plan,
    default_engine_config,
    default_resilience_config,
    flaky_crowd_plan,
)

#: Scenario name -> (description, world builder).
SCENARIOS: Dict[str, tuple] = {
    "rain-temperature": (
        "4x4 km city, 300 random-waypoint sensors, rain front + heat islands",
        build_rain_temperature_world,
    ),
    "uniform": (
        "4x4 km city with roughly uniform sensor coverage",
        build_uniform_world,
    ),
    "hotspot": (
        "4x4 km city with sensors clustered around two hotspots (skew stress case)",
        build_hotspot_world,
    ),
    "flaky-crowd": (
        "rain + temperature city with an unreliable crowd (drops, stuck "
        "sensors, outliers, latency spikes) answered by retries + quarantine",
        build_rain_temperature_world,
    ),
    "cell-outage": (
        "stationary crowd whose lower-left cells go dark for a window; "
        "quarantine + probation re-admission drive post-outage recovery",
        build_stationary_world,
    ),
    "crash-recovery": (
        "the flaky crowd under periodic crash-consistent checkpoints; pair "
        "with --checkpoint-dir to survive (and recover from) process kills",
        build_rain_temperature_world,
    ),
}


def _scenario_engine_config(
    scenario: str,
    *,
    grid_cells: int,
    seed: int,
    retention_batches: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> EngineConfig:
    """The engine config for a named CLI scenario.

    The fault scenarios attach their :class:`~repro.faults.FaultPlan` and
    mitigation bundle on top of the shared defaults; the stock scenarios
    run fault-free (and therefore byte-identical to pre-fault builds).
    ``checkpoint_dir`` turns on periodic crash-consistent checkpoints for
    *any* scenario (``crash-recovery`` is the flaky crowd tuned for it).
    """
    config = default_engine_config(
        grid_cells=grid_cells, seed=seed, retention_batches=retention_batches
    )
    if scenario in ("flaky-crowd", "crash-recovery"):
        config = dataclass_replace(
            config,
            faults=flaky_crowd_plan(),
            resilience=default_resilience_config(),
        )
    elif scenario == "cell-outage":
        config = dataclass_replace(
            config,
            faults=cell_outage_plan(),
            resilience=default_resilience_config(),
        )
    if checkpoint_dir is not None:
        config = dataclass_replace(
            config,
            checkpoints=CheckpointConfig(
                directory=checkpoint_dir, every=checkpoint_every
            ),
        )
    return config


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="CrAQR: crowdsensed data acquisition using multi-dimensional point processes",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run acquisitional queries on a simulated scenario")
    run.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="rain-temperature",
        help="which simulated world to acquire from",
    )
    run.add_argument(
        "--query",
        action="append",
        dest="queries",
        required=True,
        help="a declarative ACQUIRE statement (repeatable)",
    )
    run.add_argument("--batches", type=int, default=20, help="acquisition batches to run")
    run.add_argument("--sensors", type=int, default=300, help="number of mobile sensors")
    run.add_argument("--grid-cells", type=int, default=16, help="grid cells h (perfect square)")
    run.add_argument("--seed", type=int, default=7, help="random seed")
    run.add_argument(
        "--show-samples",
        type=int,
        default=0,
        metavar="N",
        help="print the first N tuples of each fabricated stream",
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="write periodic crash-consistent checkpoints into this directory",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="N",
        help="checkpoint every N batches (with --checkpoint-dir; default 10)",
    )

    repl = subparsers.add_parser(
        "repl",
        help="interactive session: drive a live engine with ACQUIRE/ALTER/STOP/SHOW QUERIES",
    )
    repl.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="rain-temperature",
        help="which simulated world to acquire from",
    )
    repl.add_argument("--sensors", type=int, default=300, help="number of mobile sensors")
    repl.add_argument("--grid-cells", type=int, default=16, help="grid cells h (perfect square)")
    repl.add_argument("--seed", type=int, default=7, help="random seed")
    repl.add_argument(
        "--retention-batches",
        type=int,
        default=None,
        metavar="N",
        help="bound engine memory to the last N batches (default: keep everything)",
    )
    repl.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="write periodic crash-consistent checkpoints into this directory",
    )
    repl.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint every N batches (with --checkpoint-dir; "
        "default: only on the repl's 'checkpoint' command)",
    )

    recover = subparsers.add_parser(
        "recover",
        help="restore the newest good checkpoint and continue the run",
    )
    recover.add_argument(
        "--checkpoint-dir",
        required=True,
        metavar="DIR",
        help="directory holding the checkpoints of the interrupted run",
    )
    recover.add_argument(
        "--batches",
        type=int,
        default=0,
        metavar="N",
        help="batches to run after restoring (default 0: just report the state)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve a live engine over TCP/websocket: statements, cursor "
        "reads with resumable offsets, and push subscriptions",
    )
    serve.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="rain-temperature",
        help="which simulated world to acquire from",
    )
    serve.add_argument("--sensors", type=int, default=300, help="number of mobile sensors")
    serve.add_argument("--grid-cells", type=int, default=16, help="grid cells h (perfect square)")
    serve.add_argument("--seed", type=int, default=7, help="random seed")
    serve.add_argument("--host", default="127.0.0.1", help="address to bind (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default 0: pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--batch-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run one engine batch every SECONDS server-side "
        "(default: batches run only on client 'run' requests)",
    )
    serve.add_argument(
        "--backpressure",
        choices=("skip", "disconnect"),
        default="skip",
        help="default policy when a subscriber's queue fills: drop to "
        "latest and report the skipped count, or drop the client",
    )
    serve.add_argument(
        "--queue-events",
        type=int,
        default=64,
        metavar="N",
        help="default per-subscription send-queue capacity in events",
    )
    serve.add_argument(
        "--retention-batches",
        type=int,
        default=None,
        metavar="N",
        help="bound engine memory to the last N batches (default: keep everything)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="write periodic crash-consistent checkpoints into this directory",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint every N batches (with --checkpoint-dir; "
        "default: only on client 'checkpoint' requests)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run craqr-lint, the engine's static contract checker",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze (default: the installed "
        "repro package source)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline JSON path ('none' disables; default: nearest "
        "craqr-baseline.json above the scan root)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to cover exactly the current findings",
    )
    lint.add_argument(
        "--explain",
        action="store_true",
        help="list every rule code with its rationale and exit",
    )

    subparsers.add_parser("scenarios", help="list the available simulated scenarios")
    subparsers.add_parser("attributes", help="list the attribute catalog")
    return parser


def _command_lint(args, out: Callable[[str], None]) -> int:
    """Delegate to ``python -m repro.analysis`` with the same contract.

    Exit codes: 0 clean, 1 findings (new or stale-baseline), 2 usage error.
    """
    from .analysis.__main__ import main as analysis_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.explain:
        argv.append("--explain")
    return analysis_main(argv, out=out)


def _command_scenarios(out: Callable[[str], None]) -> int:
    table = ResultTable("available scenarios", ["name", "description"])
    for name, (description, _) in sorted(SCENARIOS.items()):
        table.add_row(name, description)
    out(table.render())
    return 0


def _command_attributes(out: Callable[[str], None]) -> int:
    catalog = AttributeCatalog.default()
    table = ResultTable("attribute catalog", ["attribute", "kind", "value type", "description"])
    for name in catalog.names():
        info = catalog.get(name)
        table.add_row(name, info.kind.value, info.value_type.__name__, info.description)
    out(table.render())
    return 0


def _command_run(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    description, builder = SCENARIOS[args.scenario]
    out(f"scenario '{args.scenario}': {description}")
    world: SensingWorld = builder(sensor_count=args.sensors, seed=args.seed)
    config = _scenario_engine_config(
        args.scenario,
        grid_cells=args.grid_cells,
        seed=args.seed + 1,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every if args.checkpoint_dir else None,
    )
    engine = CraqrEngine(config, world)
    catalog = AttributeCatalog.default()

    statements = []
    for text in args.queries:
        statements.extend(parse_queries(text))
    handles = []
    for statement in statements:
        catalog.validate_attribute(statement.attribute)
        handles.append(engine.register_query(statement.to_query()))
    out(f"registered {len(handles)} queries; running {args.batches} batches ...")

    engine.run(args.batches)

    table = ResultTable(
        "acquired crowdsensed streams",
        ["query", "attribute", "area", "requested rate", "achieved rate", "tuples"],
    )
    for handle in handles:
        estimate = handle.achieved_rate()
        table.add_row(
            handle.query.label,
            handle.query.attribute,
            round(handle.query.region.area, 2),
            round(estimate.requested_rate, 2),
            round(estimate.achieved_rate, 2),
            handle.buffer.total_tuples,
        )
    out(table.render())
    out(
        f"requests sent: {engine.total_requests_sent()}   "
        f"raw tuples acquired: {engine.total_tuples_acquired()}   "
        f"tuples delivered: {engine.total_tuples_delivered()}"
    )
    if args.show_samples > 0:
        for handle in handles:
            out(f"\nfirst tuples of {handle.query.label} (t, x, y, value):")
            for item in handle.results()[: args.show_samples]:
                out(f"  ({item.t:8.2f}, {item.x:6.2f}, {item.y:6.2f}, {item.value})")
    store = engine.checkpoint_store
    if store is not None:
        latest = store.latest_path()
        if latest is not None:
            out(
                f"checkpoints in {store.directory} (latest: {latest.name}); "
                f"resume with: python -m repro.cli recover "
                f"--checkpoint-dir {store.directory}"
            )
    return 0


def _command_recover(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    engine = CraqrEngine.restore_latest(args.checkpoint_dir)
    out(
        f"restored engine at batch {engine.batches_run} "
        f"({len(engine.query_handles())} queries, "
        f"{len(engine.view_handles())} views, "
        f"{engine.total_tuples_delivered()} tuples delivered so far)"
    )
    if args.batches > 0:
        engine.run(args.batches)
        out(f"ran {args.batches} more batch(es); {engine.batches_run} total")
    sessions = engine.sessions()
    if sessions:
        out(_sessions_table(sessions).render())
    views = engine.views()
    if views:
        out(_views_table(views).render())
    return 0


_REPL_HELP = """\
statements (case-insensitive keywords, ';'-separable):
  ACQUIRE <attr> FROM RECT(x0,y0,x1,y1) [AT] RATE <r> [PER KM2 [PER MIN]] [AS <name>]
  ALTER <name> SET RATE <r> [PER KM2 [PER MIN]]
  ALTER <name> SET REGION RECT(x0,y0,x1,y1)
  STOP <name>
  SHOW QUERIES
  CREATE VIEW <name> ON <query> AS <AGG>(value) [GROUP BY CELL|ATTRIBUTE] WINDOW <dur> [SLIDE <dur>]
  DROP VIEW <name>
  SHOW VIEWS
  EXPLAIN <query|view>
repl commands:
  run [N]          advance N batch windows (default 1)
  frames <view> [N]  show the last N frames of a view (default 5)
  health <query>   per-cell timeout/drop/retry stats + quarantined sensors
  checkpoint [path]  write a crash-consistent checkpoint (path optional with
                   --checkpoint-dir)
  restore <path>   replace the live engine with a checkpointed one
                   (<path> may be a checkpoint file or a checkpoint dir)
  help             this text
  quit/exit        leave the repl"""


# The repl's tables are the shared renders of repro.query.render — the
# serving layer's text mode shows the same bytes (see that module's docs).
_sessions_table = sessions_table
_views_table = views_table
_health_table = health_table
_frames_table = frames_table


def _statement_validator(catalog: AttributeCatalog) -> Callable:
    """The per-statement hook ``execute_script`` runs before executing."""

    def _validate(statement) -> None:
        if isinstance(statement, ParsedQuery):
            catalog.validate_attribute(statement.attribute)

    return _validate


def _narrate_statement_result(
    statement,
    result,
    out: Callable[[str], None],
) -> None:
    """Narrate one executed statement's result in the repl's voice."""
    if isinstance(result, str):  # EXPLAIN
        out(result)
    elif isinstance(result, list):  # SHOW QUERIES / SHOW VIEWS
        if isinstance(statement, ShowViewsStatement):
            out(_views_table(result).render())
        else:
            out(_sessions_table(result).render())
    elif isinstance(result, ViewHandle):
        if result.is_active():
            out(
                f"created view {result.name} on {result.query_label}: "
                f"{result.spec.describe()}"
            )
        else:
            # Frames stay readable through Python-level handles, but the
            # repl's `frames` command resolves registered names only — so
            # don't promise readability the repl can no longer deliver.
            out(
                f"dropped view {result.name} "
                f"after {result.buffer.frames_emitted} frames"
            )
    elif isinstance(result, QueryHandle):
        if isinstance(statement, ParsedQuery):
            out(
                f"registered {result.query.label}: {result.query.attribute} over "
                f"area {result.query.region.area:g} at rate {result.query.rate:g}"
            )
        elif result.is_active():
            out(
                f"altered {result.query.label}: rate {result.query.rate:g}, "
                f"area {result.query.region.area:g}"
            )
        else:
            out(
                f"stopped {result.query.label} "
                f"({result.buffer.total_tuples} tuples remain readable)"
            )


def _execute_repl_statement(
    engine: CraqrEngine,
    catalog: AttributeCatalog,
    statement,
    out: Callable[[str], None],
) -> None:
    """Run one parsed statement against the live engine and narrate it."""
    _statement_validator(catalog)(statement)
    _narrate_statement_result(statement, engine.execute(statement), out)


def _command_repl(
    args: argparse.Namespace,
    out: Callable[[str], None],
    in_stream: TextIO,
) -> int:
    description, builder = SCENARIOS[args.scenario]
    world: SensingWorld = builder(sensor_count=args.sensors, seed=args.seed)
    config = _scenario_engine_config(
        args.scenario,
        grid_cells=args.grid_cells,
        seed=args.seed + 1,
        retention_batches=args.retention_batches,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    engine = CraqrEngine(config, world)
    catalog = AttributeCatalog.default()
    out(f"scenario '{args.scenario}': {description}")
    out("CrAQR repl — type 'help' for statements, 'quit' to leave.")
    interactive = in_stream is sys.stdin and sys.stdin.isatty()
    while True:
        if interactive:
            sys.stdout.write("craqr> ")
            sys.stdout.flush()
        line = in_stream.readline()
        if not line:  # EOF
            break
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        lowered = line.lower()
        if lowered in ("quit", "exit"):
            break
        if lowered == "help":
            out(_REPL_HELP)
            continue
        if lowered == "run" or lowered.startswith("run "):
            try:
                batches = int(lowered[4:].strip() or "1")
                engine.run(batches)
                out(f"ran {batches} batch(es); {engine.batches_run} total")
            except ValueError:
                out(f"error: 'run' takes a batch count, got {line[4:].strip()!r}")
            except CraqrError as exc:
                out(f"error: {exc}")
            continue
        if lowered == "frames" or lowered.startswith("frames "):
            parts = line.split()
            try:
                if len(parts) < 2 or len(parts) > 3:
                    raise CraqrError("'frames' takes a view name and an optional count")
                count = int(parts[2]) if len(parts) == 3 else 5
                if count <= 0:
                    raise CraqrError("the frame count must be positive")
                handle = engine.view(parts[1])
                frames = handle.frames()[-count:]
                if not frames:
                    out(f"view {handle.name}: no frames closed yet")
                else:
                    out(_frames_table(handle, frames).render())
            except ValueError:
                out(f"error: 'frames' takes a count, got {parts[2]!r}")
            except CraqrError as exc:
                out(f"error: {exc}")
            continue
        if lowered == "checkpoint" or lowered.startswith("checkpoint "):
            parts = line.split()
            try:
                if len(parts) > 2:
                    raise CraqrError("'checkpoint' takes at most one path")
                path = engine.checkpoint(parts[1] if len(parts) == 2 else None)
                out(
                    f"checkpointed batch {engine.batches_run} to {path} "
                    f"({path.stat().st_size} bytes)"
                )
            except CraqrError as exc:
                out(f"error: {exc}")
            continue
        if lowered == "restore" or lowered.startswith("restore "):
            parts = line.split()
            try:
                if len(parts) != 2:
                    raise CraqrError(
                        "'restore' takes exactly one checkpoint file or directory"
                    )
                target = pathlib.Path(parts[1])
                if target.is_dir():
                    engine = CraqrEngine.restore_latest(target)
                else:
                    engine = CraqrEngine.restore(target)
                out(
                    f"restored engine at batch {engine.batches_run} "
                    f"({len(engine.query_handles())} queries, "
                    f"{len(engine.view_handles())} views)"
                )
            except CraqrError as exc:
                out(f"error: {exc}")
            continue
        if lowered == "health" or lowered.startswith("health "):
            parts = line.split()
            try:
                if len(parts) != 2:
                    raise CraqrError("'health' takes exactly one query name")
                handle = engine.query(parts[1])
                out(_health_table(engine, handle).render())
                monitor = engine.health_monitor
                if monitor is None:
                    out("sensor health monitoring is off (no ResilienceConfig)")
                else:
                    summary = monitor.summary()
                    ids = ", ".join(str(i) for i in summary.quarantined_sensor_ids[:12])
                    if summary.quarantined > 12:
                        ids += f", ... ({summary.quarantined - 12} more)"
                    out(
                        f"quarantined sensors: {summary.quarantined} "
                        f"({summary.on_probation} on probation, "
                        f"{summary.released} released so far)"
                        + (f" — ids: {ids}" if ids else "")
                    )
            except CraqrError as exc:
                out(f"error: {exc}")
            continue
        try:
            statements = parse_statements(line)
        except CraqrError as exc:
            out(f"error: {exc}")
            continue
        outcomes = engine.execute_script(
            statements, on_error="continue", validate=_statement_validator(catalog)
        )
        for outcome in outcomes:
            if outcome.ok:
                _narrate_statement_result(outcome.statement, outcome.result, out)
            else:
                out(f"error: {outcome.error}")
    out(
        f"bye: {engine.batches_run} batches run, "
        f"{engine.total_tuples_delivered()} tuples delivered"
    )
    return 0


def _command_serve(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """Serve one scenario engine until SIGINT/SIGTERM or a shutdown op."""
    import asyncio
    import contextlib
    import signal

    from .serve import ServeConfig, Server

    description, builder = SCENARIOS[args.scenario]
    world: SensingWorld = builder(sensor_count=args.sensors, seed=args.seed)
    config = _scenario_engine_config(
        args.scenario,
        grid_cells=args.grid_cells,
        seed=args.seed + 1,
        retention_batches=args.retention_batches,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    engine = CraqrEngine(config, world)
    server = Server(
        engine,
        ServeConfig(
            host=args.host,
            port=args.port,
            batch_interval=args.batch_interval,
            backpressure=args.backpressure,
            queue_events=args.queue_events,
        ),
    )

    async def _main() -> None:
        host, port = await server.start()
        out(f"scenario '{args.scenario}': {description}")
        cadence = (
            f"one batch every {args.batch_interval:g}s"
            if args.batch_interval
            else "client-driven batches"
        )
        out(f"serving craqr/1 on {host}:{port} ({cadence}); ctrl-c stops")
        # The smoke tests parse the banner from a subprocess pipe — make
        # sure it is visible before the first client connects.
        sys.stdout.flush()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(server.stop())
                )
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    out(
        f"serve done: {engine.batches_run} batches run, "
        f"{engine.total_tuples_delivered()} tuples delivered"
    )
    return 0


def main(
    argv: Optional[Sequence[str]] = None,
    out: Callable[[str], None] = print,
    in_stream: Optional[TextIO] = None,
) -> int:
    """CLI entry point; returns a process exit code.

    ``in_stream`` feeds the ``repl`` sub-command (defaults to stdin; tests
    pass a ``StringIO`` script).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "scenarios":
            return _command_scenarios(out)
        if args.command == "attributes":
            return _command_attributes(out)
        if args.command == "run":
            if args.batches <= 0:
                raise CraqrError("--batches must be positive")
            if args.checkpoint_every <= 0:
                raise CraqrError("--checkpoint-every must be positive")
            return _command_run(args, out)
        if args.command == "recover":
            if args.batches < 0:
                raise CraqrError("--batches must be non-negative")
            return _command_recover(args, out)
        if args.command == "repl":
            if args.retention_batches is not None and args.retention_batches <= 0:
                raise CraqrError("--retention-batches must be positive")
            if args.checkpoint_every is not None and args.checkpoint_every <= 0:
                raise CraqrError("--checkpoint-every must be positive")
            return _command_repl(args, out, in_stream if in_stream is not None else sys.stdin)
        if args.command == "lint":
            return _command_lint(args, out)
        if args.command == "serve":
            if args.retention_batches is not None and args.retention_batches <= 0:
                raise CraqrError("--retention-batches must be positive")
            if args.checkpoint_every is not None and args.checkpoint_every <= 0:
                raise CraqrError("--checkpoint-every must be positive")
            if args.queue_events <= 0:
                raise CraqrError("--queue-events must be positive")
            return _command_serve(args, out)
        parser.error(f"unknown command {args.command!r}")
        return 2
    except CraqrError as exc:
        out(f"error: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
