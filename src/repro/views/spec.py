"""Declarative specification of a continuous view.

A :class:`ViewSpec` describes a windowed aggregate over one live query's
delivered stream — the ``CREATE VIEW <name> ON <query> AS AGG(value)
[GROUP BY CELL|ATTRIBUTE] WINDOW <dur> [SLIDE <dur>]`` statement of the
query language, in object form:

* **aggregate** — a registered streaming aggregate name (``COUNT``,
  ``SUM``, ``AVG``, ``MIN``, ``MAX``, ``P1`` … ``P99``; see
  :mod:`repro.views.aggregates`);
* **grouping** — ``cell`` (one row per grid cell the window's tuples fall
  in), ``attribute`` (one row per attribute — a single-attribute query
  yields one row, but the grouping survives future multi-attribute
  streams) or ``region`` (one whole-region row);
* **window** — the frame length in sim-time units, and ``slide`` the
  emission period.  ``slide=None`` means tumbling (slide == window);
  sliding windows require ``window`` to be a whole multiple of ``slide``
  (the classic *panes* decomposition: every pane is folded once and a
  frame is the merge of ``window/slide`` panes, so maintenance stays
  incremental).  When the view is attached to an engine, both durations
  must additionally be whole multiples of the engine's batch duration —
  frame boundaries are aligned to batch boundaries, which is what makes a
  closed frame immutable (a tuple acquired in a later batch can never be
  timestamped before that batch's window start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ViewError
from .aggregates import get_aggregate

#: Valid ``group_by`` values.
GROUPINGS = ("cell", "attribute", "region")

#: Relative tolerance for the "whole multiple" duration checks.
_REL_TOL = 1e-9


def _is_multiple(value: float, base: float) -> bool:
    """Whether ``value`` is a whole positive multiple of ``base``."""
    if base <= 0 or value <= 0:
        return False
    ratio = value / base
    return abs(ratio - round(ratio)) <= _REL_TOL * max(1.0, ratio)


@dataclass(frozen=True)
class ViewSpec:
    """Declarative description of one continuous view (validated on creation)."""

    aggregate: str
    window: float
    slide: Optional[float] = None
    group_by: str = "region"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        get_aggregate(self.aggregate)  # raises ViewError on unknown names
        if self.window <= 0:
            raise ViewError("view window duration must be positive")
        if self.slide is not None:
            if self.slide <= 0:
                raise ViewError("view slide duration must be positive")
            if self.slide > self.window:
                raise ViewError(
                    f"slide ({self.slide}) must not exceed the window "
                    f"({self.window}); gaps between frames would drop tuples"
                )
            if not _is_multiple(self.window, self.slide):
                raise ViewError(
                    f"window ({self.window}) must be a whole multiple of the "
                    f"slide ({self.slide}) so sliding frames decompose into "
                    f"panes"
                )
        if self.group_by not in GROUPINGS:
            raise ViewError(
                f"unknown grouping {self.group_by!r}; expected one of {GROUPINGS}"
            )

    # ------------------------------------------------------------------
    @property
    def slide_duration(self) -> float:
        """The effective emission period (== window for tumbling views)."""
        return self.window if self.slide is None else self.slide

    @property
    def is_sliding(self) -> bool:
        """Whether frames overlap (slide < window)."""
        return self.slide is not None and self.slide < self.window

    @property
    def panes_per_window(self) -> int:
        """Number of slide-sized panes one frame merges (1 for tumbling)."""
        return int(round(self.window / self.slide_duration))

    def validate_alignment(self, batch_duration: float) -> Tuple[int, int]:
        """Check frame boundaries align to engine batch boundaries.

        Returns ``(slide_batches, window_batches)`` — the durations in
        whole engine batches — or raises :class:`ViewError` when either
        duration is not a whole multiple of ``batch_duration``.
        """
        if not _is_multiple(self.slide_duration, batch_duration):
            raise ViewError(
                f"view slide ({self.slide_duration}) must be a whole multiple "
                f"of the engine batch duration ({batch_duration}): frame "
                f"boundaries are aligned to batch boundaries"
            )
        if not _is_multiple(self.window, batch_duration):
            raise ViewError(
                f"view window ({self.window}) must be a whole multiple of the "
                f"engine batch duration ({batch_duration}): frame boundaries "
                f"are aligned to batch boundaries"
            )
        return (
            int(round(self.slide_duration / batch_duration)),
            int(round(self.window / batch_duration)),
        )

    def describe(self) -> str:
        """One-line human-readable form (used by SHOW VIEWS and the repl)."""
        parts = [f"{self.aggregate.upper()}(value)"]
        if self.group_by != "region":
            parts.append(f"GROUP BY {self.group_by.upper()}")
        parts.append(f"WINDOW {self.window:g}")
        if self.is_sliding:
            parts.append(f"SLIDE {self.slide:g}")
        return " ".join(parts)
