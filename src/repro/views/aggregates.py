"""Streaming aggregate functions for continuous views.

Every view maintains, per group and per window pane, one *partial state*
per :class:`Aggregate`.  The contract is the classic incremental-aggregation
triple plus vectorised folding:

* :meth:`Aggregate.new_state` — the identity partial;
* :meth:`Aggregate.fold` — absorb one group's batch slice of values (a
  contiguous numpy array; the view has already bucketed the delivered
  :class:`~repro.streams.TupleBatch` by (pane, group) with one lexsort, so
  ``fold`` only ever sees C-speed ufunc reductions, never a Python loop
  over tuples);
* :meth:`Aggregate.merge` — combine two partials (how a sliding window's
  panes become one frame);
* :meth:`Aggregate.result` — the frame-row value of a finished partial.

The built-ins are ``COUNT``, ``SUM``, ``AVG``, ``MIN``, ``MAX`` and the
percentile family ``P1`` … ``P99`` (mergeable deterministic
:class:`~repro.views.sketch.QuantileSketch` summaries; ``P50`` is the
median).  New aggregates register through :func:`register_aggregate` and are
immediately usable from ``CREATE VIEW ... AS <NAME>(value)`` — the parser
validates names against this registry at execution time.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import ViewError
from .sketch import QuantileSketch


class Aggregate:
    """Base class of streaming aggregate functions (see module docstring)."""

    #: Registry name (upper-case, as written in CREATE VIEW).
    name: str = ""

    #: Whether :meth:`fold` needs the numeric value column (COUNT does not,
    #: so it works over attributes whose values are not numeric).
    needs_values: bool = True

    def new_state(self):
        """The identity partial state."""
        raise NotImplementedError

    def fold(self, state, values: np.ndarray, count: int):
        """Absorb one group's batch slice; returns the updated state.

        ``values`` is the group's float64 value slice (empty for
        aggregates with ``needs_values = False``); ``count`` is the number
        of tuples in the slice (always provided, so COUNT never touches
        the value column).
        """
        raise NotImplementedError

    def merge(self, state, other):
        """Combine two partial states; returns the merged state."""
        raise NotImplementedError

    def result(self, state) -> float:
        """The frame-row value of a finished partial state."""
        raise NotImplementedError


class CountAggregate(Aggregate):
    """``COUNT`` — tuples per group (value-type agnostic)."""

    name = "COUNT"
    needs_values = False

    def new_state(self):
        return 0

    def fold(self, state, values, count):
        return state + count

    def merge(self, state, other):
        return state + other

    def result(self, state) -> float:
        return float(state)


class SumAggregate(Aggregate):
    """``SUM`` — sum of the value column per group."""

    name = "SUM"

    def new_state(self):
        return 0.0

    def fold(self, state, values, count):
        return state + float(values.sum())

    def merge(self, state, other):
        return state + other

    def result(self, state) -> float:
        return float(state)


class AvgAggregate(Aggregate):
    """``AVG`` — mean of the value column per group ((sum, count) partials)."""

    name = "AVG"

    def new_state(self):
        return (0.0, 0)

    def fold(self, state, values, count):
        total, n = state
        return (total + float(values.sum()), n + count)

    def merge(self, state, other):
        return (state[0] + other[0], state[1] + other[1])

    def result(self, state) -> float:
        total, n = state
        if n == 0:
            return float("nan")
        return total / n


class MinAggregate(Aggregate):
    """``MIN`` — minimum of the value column per group."""

    name = "MIN"

    def new_state(self):
        return float("inf")

    def fold(self, state, values, count):
        return min(state, float(values.min()))

    def merge(self, state, other):
        return min(state, other)

    def result(self, state) -> float:
        return float(state)


class MaxAggregate(Aggregate):
    """``MAX`` — maximum of the value column per group."""

    name = "MAX"

    def new_state(self):
        return float("-inf")

    def fold(self, state, values, count):
        return max(state, float(values.max()))

    def merge(self, state, other):
        return max(state, other)

    def result(self, state) -> float:
        return float(state)


class PercentileAggregate(Aggregate):
    """``P<nn>`` — streaming percentile via a deterministic quantile sketch."""

    def __init__(self, percent: int, *, capacity: Optional[int] = None) -> None:
        if not 1 <= percent <= 99:
            raise ViewError(f"percentile must be in [1, 99], got P{percent}")
        self.name = f"P{percent}"
        self._q = percent / 100.0
        self._capacity = capacity

    def new_state(self):
        if self._capacity is None:
            return QuantileSketch()
        return QuantileSketch(self._capacity)

    def fold(self, state, values, count):
        state.extend(values)
        return state

    def merge(self, state, other):
        return state.merge(other)

    def result(self, state) -> float:
        if state.count == 0:
            return float("nan")
        return state.quantile(self._q)


#: Factories of the registered aggregates, keyed by upper-case name.
_REGISTRY: Dict[str, Callable[[], Aggregate]] = {}

#: ``P50`` … ``P99``-style names resolved dynamically.
_PERCENTILE_RE = re.compile(r"^P(\d{1,2})$")


def register_aggregate(name: str, factory: Callable[[], Aggregate]) -> None:
    """Register (or replace) an aggregate under an upper-case name.

    ``factory`` is called once per view that uses the aggregate, so
    stateful aggregate *objects* are never shared between views.
    """
    key = name.upper()
    if not key or not key.isidentifier():
        raise ViewError(f"invalid aggregate name {name!r}")
    _REGISTRY[key] = factory


for _cls in (CountAggregate, SumAggregate, AvgAggregate, MinAggregate, MaxAggregate):
    register_aggregate(_cls.name, _cls)


def aggregate_names() -> list:
    """The registered aggregate names (percentiles are dynamic: ``P1``-``P99``)."""
    return sorted(_REGISTRY) + ["P1..P99"]


def get_aggregate(name: str) -> Aggregate:
    """Resolve an aggregate name to a fresh :class:`Aggregate` instance.

    Registered names are matched case-insensitively; ``P<nn>`` percentile
    names are resolved dynamically so the whole ``P1`` … ``P99`` family is
    available without 99 registry entries.
    """
    key = str(name).upper()
    factory = _REGISTRY.get(key)
    if factory is not None:
        return factory()
    match = _PERCENTILE_RE.match(key)
    if match is not None:
        return PercentileAggregate(int(match.group(1)))
    raise ViewError(
        f"unknown aggregate {name!r}; known: {', '.join(aggregate_names())}"
    )
