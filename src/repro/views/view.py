"""Incremental maintenance of continuous views over live query sessions.

A :class:`ContinuousView` attaches to one query's delivery stream through
the session subscription path (:meth:`QueryHandle.subscribe
<repro.core.engine.QueryHandle.subscribe>`): once per engine batch it
receives the batch's deliveries as one columnar
:class:`~repro.streams.TupleBatch` and folds them into per-group partial
aggregates — one ``lexsort`` buckets the batch by (pane, group), segment
boundaries come from one vectorised ``diff``, per-group tuple counts are
the segment lengths (``np.bincount`` over panes gives the same numbers),
and each group's value slice is reduced with the aggregate's ufunc
(``np.add.reduce`` / ``np.minimum.reduce`` / a sketch extend).  History is
never rescanned: the cost of maintaining a view is O(tuples in the new
batch + groups touched), independent of how many frames it has emitted.

Windows decompose into *panes* of one slide each (tumbling views have one
pane per window).  The engine advances the view's clock at every batch end
(:meth:`ContinuousView.advance_to`); each pane whose end time passes closes,
and once the trailing ``window/slide`` panes of a window have all closed
their partials merge into one immutable :class:`~repro.views.frames.ViewFrame`.
Because frame boundaries are aligned to batch boundaries and a tuple's
timestamp is never earlier than its batch's window start, a closed frame can
never receive late data.

Lifecycle notes:

* **pause/resume** — a paused query delivers nothing, but sim time keeps
  moving: windows covering the paused span close as empty frames (zero
  groups), so the frame sequence stays gap-free and timestamps stay
  truthful.
* **ALTER SET REGION / SET RATE** — groups are data-driven: cells vacated
  by an ALTER simply stop appearing in later frames, newly covered cells
  appear as soon as they deliver; a frame straddling the ALTER contains
  both.
* **retention** — the view's frame buffer keeps the frames that closed
  within the engine's ``retention_batches`` window (at least one); lifetime
  totals survive eviction exactly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from ..errors import ViewError
from ..streams import TupleBatch
from .aggregates import Aggregate, get_aggregate
from .frames import FrameCursor, ViewFrame, ViewFrameBuffer
from .spec import ViewSpec

#: Relative tolerance for pane-close clock comparisons.
_REL_TOL = 1e-9


class SharedSortCache:
    """One (pane, group) lexsort shared by every view on a query.

    All views on one query receive the *same* :class:`TupleBatch` object
    per engine batch (the result buffer fires one concatenated batch to
    every subscriber), so views that agree on ``(slide, group_by)`` compute
    identical ``pane_ids`` / group codes / sort orders.  The compiled plan
    path installs one cache per query; the first view with a given
    signature computes and stores the sorted arrays, later views reuse them
    (a byte-identical skip of the grid lookups and the lexsort).

    Entries are keyed by signature and validated against the batch by
    identity, so the cache never needs explicit per-batch invalidation.
    Runtime wiring only — it is nulled out of view checkpoints and
    reinstalled by the engine after restore.
    """

    def __init__(self) -> None:
        self._entries: Dict[tuple, tuple] = {}
        #: lifetime reuse counters (asserted by the plan equivalence tests)
        self.hits = 0
        self.misses = 0

    def lookup(self, signature: tuple, batch: TupleBatch):
        """The cached ``(order, pane_sorted, code_sorted)`` for this exact batch."""
        entry = self._entries.get(signature)
        if entry is not None and entry[0] is batch:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def store(self, signature: tuple, batch: TupleBatch, arrays: tuple) -> None:
        """Remember one batch's sorted arrays under its signature."""
        self._entries[signature] = (batch, arrays)


@dataclass(frozen=True)
class ViewSessionInfo:
    """One row of :meth:`CraqrEngine.views` (the ``SHOW VIEWS`` output).

    ``active`` is ``False`` for a quarantined view — one whose fold raised
    and was detached by the engine — with ``error`` holding the message, so
    a dead view is visible in ``SHOW VIEWS`` rather than silently frozen.
    """

    name: str
    query_label: str
    query_id: int
    aggregate: str
    group_by: str
    window: float
    slide: float
    frames_emitted: int
    frames_retained: int
    tuples_total: int
    last_window_end: Optional[float]
    active: bool = True
    error: Optional[str] = None


class ContinuousView:
    """One continuously maintained windowed aggregate over a query stream."""

    #: Runtime wiring __getstate__ deliberately drops from checkpoints;
    #: craqr-lint (CRQ302) checks this declaration against the exclusions.
    _DERIVED_STATE = ("_subscription", "_shared_sort")

    def __init__(
        self,
        spec: ViewSpec,
        *,
        name: str,
        query_id: int,
        query_label: str,
        grid,
        batch_duration: float,
        retention_batches: Optional[int] = None,
        start_time: float = 0.0,
    ) -> None:
        slide_batches, _window_batches = spec.validate_alignment(batch_duration)
        self._spec = spec
        self._name = name
        self._query_id = query_id
        self._query_label = query_label
        self._grid = grid
        self._aggregate: Aggregate = get_aggregate(spec.aggregate)
        self._slide = spec.slide_duration
        self._panes_per_window = spec.panes_per_window
        retention_frames: Optional[int] = None
        if retention_batches is not None:
            # The frames that closed within the engine's retention window:
            # one frame closes per slide, so round up (never fewer than one).
            retention_frames = max(1, -(-retention_batches // slide_batches))
        self._buffer = ViewFrameBuffer(retention_frames=retention_frames)
        #: first pane fully covered since the view attached; earlier
        #: (partially observed) panes never contribute to a frame.
        self._first_pane = int(np.ceil(start_time / self._slide - _REL_TOL))
        self._next_pane = self._first_pane
        #: trailing closed panes of the window being assembled.
        self._recent_panes: Deque[Dict] = deque(maxlen=self._panes_per_window)
        #: open panes: pane index -> {group key: [partial state, count]}.
        self._open_panes: Dict[int, Dict] = {}
        #: tuples dropped because they fell before the view's origin pane.
        self._pre_origin_dropped = 0
        self._subscription = None
        #: optional per-query shared lexsort cache (installed by the engine
        #: when compiled plans are on; plain runtime wiring otherwise).
        self._shared_sort: Optional[SharedSortCache] = None
        self._active = True
        self._error: Optional[Exception] = None

    # ------------------------------------------------------------------
    @property
    def spec(self) -> ViewSpec:
        """The view's declarative specification."""
        return self._spec

    @property
    def name(self) -> str:
        """The view's unique name (the ``CREATE VIEW <name>`` identifier)."""
        return self._name

    @property
    def query_id(self) -> int:
        """Id of the query the view consumes."""
        return self._query_id

    @property
    def query_label(self) -> str:
        """Label of the query the view consumes."""
        return self._query_label

    @property
    def buffer(self) -> ViewFrameBuffer:
        """The view's frame buffer (outlives DROP VIEW)."""
        return self._buffer

    @property
    def is_active(self) -> bool:
        """Whether the view is still being maintained."""
        return self._active

    @property
    def pre_origin_dropped(self) -> int:
        """Tuples discarded because they preceded the view's first full pane."""
        return self._pre_origin_dropped

    # ------------------------------------------------------------------
    # Engine plumbing
    # ------------------------------------------------------------------
    def attach(self, subscription) -> None:
        """Remember the delivery subscription so DROP VIEW can cancel it."""
        self._subscription = subscription

    def accept(self, batch: TupleBatch) -> None:
        """The delivery-subscription callback: fold one batch, quarantined.

        Maintenance runs inside the engine's end-of-batch loop; a view
        whose fold raises (e.g. AVG over a non-numeric stream) is
        quarantined — detached with the error recorded — rather than
        aborting the batch for every other session.  A bound method so the
        engine re-attaches it identically after a checkpoint restore.
        """
        try:
            self.on_delivery(batch)
        except Exception as exc:  # noqa: BLE001 - quarantine any fold error
            self.fail(exc)

    def __getstate__(self):
        # The delivery subscription is runtime wiring into the query's
        # result buffer; checkpoint restore re-subscribes deterministically
        # (see CraqrEngine.restore), so it is never pickled.
        state = dict(self.__dict__)
        state["_subscription"] = None
        # The shared-sort cache is runtime wiring too (it holds live batch
        # references); the engine reinstalls it after restore.
        state["_shared_sort"] = None
        return state

    def detach(self) -> None:
        """Stop maintenance (frames stay readable); idempotent."""
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        self._active = False

    def fail(self, error: Exception) -> None:
        """Record a maintenance error and stop the view (frames stay readable).

        Maintenance runs inside the engine's batch loop; a view whose fold
        raises (e.g. a numeric aggregate over a stream with non-numeric
        values) must not abort the batch for every other query, so the
        engine quarantines it here instead of propagating.  The error is
        surfaced through :attr:`error` / :meth:`ViewHandle.error`.
        """
        self._error = error
        self.detach()

    @property
    def error(self) -> Optional[Exception]:
        """The maintenance error that stopped the view, if any."""
        return self._error

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def on_delivery(self, batch: TupleBatch) -> None:
        """Fold one batch of delivered tuples into the open pane partials.

        This is the subscription callback: it runs once per engine batch
        with that batch's deliveries (batches that delivered nothing do not
        fire — pane and frame lifecycle is driven separately by
        :meth:`advance_to`, so quiet batches still close windows).
        """
        n = len(batch)
        if n == 0:
            return
        cache = getattr(self, "_shared_sort", None)
        signature = (self._slide, self._spec.group_by)
        if cache is not None:
            cached = cache.lookup(signature, batch)
            # Reuse is only sound when this view would neither filter
            # pre-origin tuples nor clamp any pane id — both hold exactly
            # when the earliest cached pane is at or past our next open
            # pane (pane_sorted is pane-major, so [0] is the minimum).
            if cached is not None and int(cached[1][0]) >= self._next_pane:
                order, pane_sorted, code_sorted = cached
                values_sorted = self._value_column(batch, order)
                self._fold_sorted(
                    batch, pane_sorted, code_sorted, values_sorted, n
                )
                return
        t = np.asarray(batch.t, dtype=np.float64)
        pane_ids = np.floor(t / self._slide + _REL_TOL).astype(np.int64)
        filtered = False
        if self._next_pane == self._first_pane:
            before = pane_ids < self._first_pane
            if before.any():
                # Tuples of the partially observed pane before the view's
                # origin: excluded so every emitted frame covers a fully
                # observed window.
                self._pre_origin_dropped += int(before.sum())
                filtered = True
                keep = ~before
                batch = batch.select(keep)
                t = t[keep]
                pane_ids = pane_ids[keep]
                n = len(batch)
                if n == 0:
                    return
        # A tuple is never timestamped before its batch window, so panes
        # already closed cannot receive data; clamp defensively so a
        # malformed timestamp lands in the oldest open pane instead of
        # resurrecting a closed one.
        clamped = int(pane_ids.min()) < self._next_pane
        if clamped:
            np.maximum(pane_ids, self._next_pane, out=pane_ids)

        codes = self._group_codes(batch)
        order = np.lexsort((codes, pane_ids))
        pane_sorted = pane_ids[order]
        code_sorted = codes[order]
        values_sorted = self._value_column(batch, order)
        if cache is not None and not filtered and not clamped:
            cache.store(signature, batch, (order, pane_sorted, code_sorted))
        self._fold_sorted(batch, pane_sorted, code_sorted, values_sorted, n)

    def _fold_sorted(
        self,
        batch: TupleBatch,
        pane_sorted: np.ndarray,
        code_sorted: np.ndarray,
        values_sorted,
        n: int,
    ) -> None:
        """Fold one (pane, group)-sorted batch into the open pane partials."""
        if n == 1:
            boundaries = np.empty(0, dtype=np.int64)
        else:
            changed = (np.diff(pane_sorted) != 0) | (np.diff(code_sorted) != 0)
            boundaries = np.flatnonzero(changed) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))

        aggregate = self._aggregate
        for start, end in zip(starts, ends):  # craqr: ignore[CRQ402] - per (pane, group) run, rows folded vectorised
            pane = int(pane_sorted[start])
            key = self._key_for_code(int(code_sorted[start]), batch.attribute)
            states = self._open_panes.setdefault(pane, {})
            entry = states.get(key)
            if entry is None:
                entry = [aggregate.new_state(), 0]
                states[key] = entry
            count = int(end - start)
            values = (
                values_sorted[start:end]
                if values_sorted is not None
                else _EMPTY_VALUES
            )
            entry[0] = aggregate.fold(entry[0], values, count)
            entry[1] += count

    def advance_to(self, now: float) -> List[ViewFrame]:
        """Close every pane ending at or before ``now``; emit due frames.

        Called by the engine once per completed batch with the new sim
        time.  Returns the frames emitted by this call (usually zero or
        one; several after a long quiet stretch).
        """
        emitted: List[ViewFrame] = []
        tolerance = _REL_TOL * max(1.0, abs(now))
        while (self._next_pane + 1) * self._slide <= now + tolerance:
            pane_index = self._next_pane
            self._recent_panes.append(self._open_panes.pop(pane_index, {}))
            self._next_pane += 1
            window_start_pane = pane_index - self._panes_per_window + 1
            if window_start_pane >= self._first_pane:
                emitted.append(self._emit(pane_index))
        return emitted

    # ------------------------------------------------------------------
    def _emit(self, last_pane: int) -> ViewFrame:
        """Merge the trailing window's panes into one frame and retain it."""
        aggregate = self._aggregate
        merged: Dict = {}
        for pane in self._recent_panes:
            for key, (state, count) in pane.items():
                entry = merged.get(key)
                if entry is None:
                    # Merge into a fresh identity so shared pane partials
                    # (sliding windows reuse panes across frames) are never
                    # mutated.
                    merged[key] = [aggregate.merge(aggregate.new_state(), state), count]
                else:
                    entry[0] = aggregate.merge(entry[0], state)
                    entry[1] += count
        keys = sorted(merged)
        keys_column = np.empty(len(keys), dtype=object)
        keys_column[:] = keys
        window_end = (last_pane + 1) * self._slide
        frame = ViewFrame(
            frame_index=self._buffer.frames_emitted,
            window_start=window_end - self._spec.window,
            window_end=window_end,
            keys=keys_column,
            values=np.array(
                [aggregate.result(merged[key][0]) for key in keys], dtype=np.float64
            ),
            counts=np.array([merged[key][1] for key in keys], dtype=np.int64),
        )
        self._buffer.append(frame)
        return frame

    def _group_codes(self, batch: TupleBatch) -> np.ndarray:
        """Integer group code per tuple (cell code, or 0 for scalar groups)."""
        if self._spec.group_by == "cell":
            q, r = self._grid.cells_for_points(batch.x, batch.y)
            return (np.asarray(r, dtype=np.int64) * self._grid.side
                    + np.asarray(q, dtype=np.int64))
        return np.zeros(len(batch), dtype=np.int64)

    def _key_for_code(self, code: int, attribute: str):
        """Decode an integer group code back into the frame's group key."""
        if self._spec.group_by == "cell":
            side = self._grid.side
            return (code % side, code // side)
        if self._spec.group_by == "attribute":
            return attribute
        return "*"

    def _value_column(self, batch: TupleBatch, order: np.ndarray):
        """The sorted float64 value column (``None`` for COUNT-style aggregates)."""
        if not self._aggregate.needs_values:
            return None
        try:
            values = np.asarray(batch.value, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ViewError(
                f"view {self._name!r}: aggregate {self._spec.aggregate} needs "
                f"numeric values, but the {batch.attribute!r} stream's values "
                f"are not convertible to float ({exc})"
            ) from exc
        return values[order]

    # ------------------------------------------------------------------
    def info(self) -> ViewSessionInfo:
        """A :class:`ViewSessionInfo` snapshot (one SHOW VIEWS row)."""
        latest = self._buffer.latest()
        return ViewSessionInfo(
            name=self._name,
            query_label=self._query_label,
            query_id=self._query_id,
            aggregate=self._spec.aggregate.upper(),
            group_by=self._spec.group_by,
            window=self._spec.window,
            slide=self._spec.slide_duration,
            frames_emitted=self._buffer.frames_emitted,
            frames_retained=len(self._buffer),
            tuples_total=self._buffer.tuples_total,
            last_window_end=None if latest is None else latest.window_end,
            active=self._active,
            error=None if self._error is None else str(self._error),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContinuousView({self._name!r} ON {self._query_label!r}: "
            f"{self._spec.describe()})"
        )


#: Shared empty slice handed to value-less aggregates.
_EMPTY_VALUES = np.empty(0, dtype=np.float64)


class ViewHandle:
    """The user-facing handle to one continuous view.

    Obtained from :meth:`QueryHandle.view
    <repro.core.engine.QueryHandle.view>` or as the result of executing a
    ``CREATE VIEW`` statement.  The handle stays readable after ``DROP
    VIEW`` (the frame buffer outlives maintenance), mirroring how a stopped
    query's :class:`~repro.core.engine.QueryHandle` keeps its results.
    """

    def __init__(self, view: ContinuousView, engine) -> None:
        self._view = view
        self._engine = engine

    @property
    def name(self) -> str:
        """The view's unique name."""
        return self._view.name

    @property
    def spec(self) -> ViewSpec:
        """The view's declarative specification."""
        return self._view.spec

    @property
    def query_label(self) -> str:
        """Label of the query the view consumes."""
        return self._view.query_label

    @property
    def buffer(self) -> ViewFrameBuffer:
        """The view's frame buffer (outlives DROP VIEW)."""
        return self._view.buffer

    @property
    def view(self) -> ContinuousView:
        """The underlying continuous view."""
        return self._view

    # ------------------------------------------------------------------
    def frames(self) -> List[ViewFrame]:
        """The retained frames, oldest first."""
        return self._view.buffer.frames()

    def latest(self) -> Optional[ViewFrame]:
        """The most recent retained frame (``None`` before the first close)."""
        return self._view.buffer.latest()

    def frame_cursor(self, *, tail: bool = False) -> FrameCursor:
        """A resumable cursor over the frame sequence (O(new frames) reads)."""
        return self._view.buffer.cursor(tail=tail)

    def info(self) -> ViewSessionInfo:
        """A snapshot row describing the view (the SHOW VIEWS shape)."""
        return self._view.info()

    def is_active(self) -> bool:
        """Whether the view is still maintained by the engine."""
        return self._view.is_active

    @property
    def error(self) -> Optional[Exception]:
        """The maintenance error that stopped the view (``None`` while healthy)."""
        return self._view.error

    def drop(self) -> None:
        """Deregister the view; maintenance stops, frames stay readable.

        Idempotent, and works for quarantined (failed) views too: the
        guard checks the engine's registry rather than the maintenance
        flag, so a dead view is removed instead of lingering and blocking
        its name forever.
        """
        engine = self._engine
        name = self._view.name
        if engine.has_view(name) and engine.view(name).view is self._view:
            engine.drop_view(name)
