"""A deterministic streaming quantile sketch for continuous-view percentiles.

The percentile aggregates (``P50`` … ``P99``) of a continuous view must be
maintainable incrementally — a window's values are folded in batch by batch
and the frame is emitted without ever rescanning history — in bounded
memory even when one window spans millions of tuples.  :class:`QuantileSketch`
is a compact, *deterministic* bounded-size summary in the KLL/MRL family:

* values live in levels; level ``i`` holds items of weight ``2**i``
  (fresh values enter level 0 with weight 1);
* when the total retained size exceeds ``capacity`` the lowest
  compactable level is halved: its items are sorted, every other rank
  survives into the next level with doubled weight, an odd leftover stays
  put.  The surviving rank of each adjacent pair alternates per level
  across compactions, so the selection bias of one halving is cancelled by
  the next — fully deterministic (no RNG), which keeps independently
  maintained sketches byte-identical when fed the same batches (what the
  columnar-vs-object equivalence tests pin down);
* quantile queries answer the weighted nearest-rank quantile over the
  levelled summary.

While no compaction has happened (the common case: windows that hold fewer
than ``capacity`` values) the sketch is *exact*: :meth:`quantile` equals
the nearest-rank percentile of the raw values.  After compactions the
answer is approximate; high-weight items are compacted exponentially
rarely, so the rank error stays a small fraction of the total weight.

Sketches merge level-wise (:meth:`merge`), which is how a sliding window's
per-pane partials combine into one frame.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ViewError

#: Default maximum number of retained values.
DEFAULT_CAPACITY = 2048

#: Smallest allowed capacity (leaves room for the levelled layout).
MIN_CAPACITY = 8

_EMPTY = np.empty(0, dtype=np.float64)


class QuantileSketch:
    """Bounded, mergeable, deterministic quantile summary."""

    __slots__ = ("_capacity", "_levels", "_parity", "_count", "_compactions")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < MIN_CAPACITY:
            raise ViewError(f"sketch capacity must be at least {MIN_CAPACITY}")
        self._capacity = capacity
        #: level i holds an unsorted array of items of weight 2**i.
        self._levels: List[np.ndarray] = [_EMPTY]
        #: per-level compaction parity (which rank of each pair survives).
        self._parity: List[int] = [0]
        #: total weight (== number of values ever folded in)
        self._count = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Retained-size bound that triggers compactions."""
        return self._capacity

    @property
    def count(self) -> int:
        """Total number of values folded in (the summary's total weight)."""
        return self._count

    @property
    def is_exact(self) -> bool:
        """Whether no compaction has happened yet (quantiles are exact)."""
        return self._compactions == 0

    @property
    def retained(self) -> int:
        """Number of weighted items currently retained across all levels."""
        return sum(level.shape[0] for level in self._levels)

    # ------------------------------------------------------------------
    def extend(self, values: np.ndarray) -> None:
        """Fold a batch of values into the sketch."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ViewError("QuantileSketch.extend takes a 1-d value array")
        if values.shape[0] == 0:
            return
        self._levels[0] = (
            values.copy() if self._levels[0].shape[0] == 0
            else np.concatenate((self._levels[0], values))
        )
        self._count += values.shape[0]
        self._maybe_compact()

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch's summary into this one (returns ``self``)."""
        if other._count == 0:
            return self
        while len(self._levels) < len(other._levels):
            self._levels.append(_EMPTY)
            self._parity.append(0)
        for i, level in enumerate(other._levels):
            if level.shape[0]:
                self._levels[i] = (
                    level.copy() if self._levels[i].shape[0] == 0
                    else np.concatenate((self._levels[i], level))
                )
        self._count += other._count
        self._compactions += other._compactions
        self._maybe_compact()
        return self

    def copy(self) -> "QuantileSketch":
        """An independent copy (shares no mutable arrays)."""
        clone = QuantileSketch(self._capacity)
        clone._levels = [level.copy() for level in self._levels]
        clone._parity = list(self._parity)
        clone._count = self._count
        clone._compactions = self._compactions
        return clone

    def _maybe_compact(self) -> None:
        while self.retained > self._capacity:
            # Halve the lowest level with a pair to spare: its items carry
            # the smallest weight, so the rank error introduced is minimal.
            level = next(
                (i for i, arr in enumerate(self._levels) if arr.shape[0] >= 2),
                None,
            )
            if level is None:  # only log2(count) singletons left
                break
            self._compact_level(level)

    def _compact_level(self, i: int) -> None:
        arr = np.sort(self._levels[i], kind="stable")
        pairs = arr.shape[0] // 2
        survivors = arr[self._parity[i] : 2 * pairs : 2].copy()
        self._parity[i] ^= 1
        self._levels[i] = arr[2 * pairs :]  # the odd leftover stays put
        if i + 1 == len(self._levels):
            self._levels.append(_EMPTY)
            self._parity.append(0)
        self._levels[i + 1] = (
            survivors if self._levels[i + 1].shape[0] == 0
            else np.concatenate((self._levels[i + 1], survivors))
        )
        self._compactions += 1

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The weighted nearest-rank ``q``-quantile of the folded values."""
        if not 0.0 <= q <= 1.0:
            raise ViewError(f"quantile fraction must be in [0, 1], got {q}")
        if self._count == 0:
            raise ViewError("cannot take the quantile of an empty sketch")
        parts = [level for level in self._levels if level.shape[0]]
        values = np.concatenate(parts)
        weights = np.concatenate(
            [
                np.full(level.shape[0], 1 << i, dtype=np.int64)
                for i, level in enumerate(self._levels)
                if level.shape[0]
            ]
        )
        order = np.argsort(values, kind="stable")
        values = values[order]
        cumulative = np.cumsum(weights[order])
        # Weighted nearest-rank: the first value whose cumulative weight
        # reaches ceil(q * total), with rank at least 1.
        rank = max(1, int(np.ceil(q * cumulative[-1])))
        index = int(np.searchsorted(cumulative, rank, side="left"))
        return float(values[index])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(count={self._count}, retained={self.retained}, "
            f"exact={self.is_exact})"
        )
