"""Continuous views: declarative windowed aggregates as the serving API.

An acquisitional engine exists to answer questions about *regions*, not to
hand every consumer raw sensor tuples.  This package turns consumption
around: a :class:`ViewSpec` declares a windowed aggregate (``COUNT`` /
``SUM`` / ``AVG`` / ``MIN`` / ``MAX`` / ``P1``-``P99`` percentiles, grouped
per grid cell, per attribute or whole-region, over tumbling or sliding
sim-time windows), a :class:`ContinuousView` maintains it incrementally off
the query-session subscription path (folding each delivered
:class:`~repro.streams.TupleBatch` into per-group partials — history is
never rescanned), and a :class:`ViewFrameBuffer` retains the emitted
:class:`ViewFrame`\\ s behind resumable :class:`FrameCursor`\\ s whose reads
cost O(new frames).

The query language surface is ``CREATE VIEW <name> ON <query> AS
AGG(value) [GROUP BY CELL|ATTRIBUTE] WINDOW <dur> [SLIDE <dur>]``,
``DROP VIEW <name>`` and ``SHOW VIEWS``, executed through
:meth:`repro.core.engine.CraqrEngine.execute`; the programmatic surface is
:meth:`QueryHandle.view <repro.core.engine.QueryHandle.view>`.

New aggregates register through
:func:`~repro.views.aggregates.register_aggregate` and become usable from
``CREATE VIEW`` immediately.
"""

from .aggregates import Aggregate, aggregate_names, get_aggregate, register_aggregate
from .frames import FrameCursor, ViewFrame, ViewFrameBuffer
from .sketch import QuantileSketch
from .spec import ViewSpec
from .view import ContinuousView, SharedSortCache, ViewHandle, ViewSessionInfo

__all__ = [
    "SharedSortCache",
    "Aggregate",
    "aggregate_names",
    "get_aggregate",
    "register_aggregate",
    "FrameCursor",
    "ViewFrame",
    "ViewFrameBuffer",
    "QuantileSketch",
    "ViewSpec",
    "ContinuousView",
    "ViewHandle",
    "ViewSessionInfo",
]
