"""View frames and the bounded, cursor-readable buffer that retains them.

A :class:`ViewFrame` is one closed window of a continuous view in
structure-of-arrays form: one row per group that delivered tuples inside
the window, stored as parallel numpy columns (group keys, aggregate values,
per-group tuple counts).  Frames are immutable — frame boundaries are
aligned to engine batch boundaries, so by the time a frame is emitted no
later batch can contribute to it.

:class:`ViewFrameBuffer` retains the most recent frames (mirroring
:class:`~repro.storage.QueryResultBuffer`'s chunk list, one frame per
chunk) and serves two consumption surfaces:

* :meth:`ViewFrameBuffer.frames` — the retained frames, oldest first;
* :meth:`ViewFrameBuffer.cursor` — a resumable :class:`FrameCursor` whose
  reads return only the frames emitted since the previous read, at a cost
  of O(new frames) regardless of how much history the buffer retains.

With a retention bound set (derived from
:attr:`~repro.config.EngineConfig.retention_batches` when the view is
attached to an engine), old frames are evicted wholesale while the lifetime
accounting (:attr:`ViewFrameBuffer.frames_emitted`,
:attr:`ViewFrameBuffer.tuples_total`) stays exact through running totals; a
cursor that falls behind the retained window raises
:class:`~repro.errors.StorageError` on its next read, exactly like a lagging
:class:`~repro.storage.ResultCursor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import StorageError, ViewError


@dataclass(frozen=True)
class ViewFrame:
    """One closed window of a continuous view (SoA: one row per group).

    Attributes
    ----------
    frame_index:
        0-based position in the view's lifetime frame sequence (survives
        eviction: the first retained frame of a long-running view keeps its
        original index).
    window_start / window_end:
        The sim-time interval ``[start, end)`` the frame covers.
    keys:
        Object column of group keys, sorted: ``(q, r)`` grid-cell tuples
        for ``GROUP BY CELL``, attribute strings for ``GROUP BY
        ATTRIBUTE``, the single key ``"*"`` for whole-region views.
    values:
        Float64 column of the aggregate value per group.
    counts:
        Int64 column of tuples folded per group (every aggregate carries
        it, so COUNT-style accounting is available from any frame).
    """

    frame_index: int
    window_start: float
    window_end: float
    keys: np.ndarray
    values: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        n = self.keys.shape[0]
        if self.values.shape != (n,) or self.counts.shape != (n,):
            raise ViewError(
                f"frame columns disagree on length: keys {n}, "
                f"values {self.values.shape}, counts {self.counts.shape}"
            )

    # ------------------------------------------------------------------
    @property
    def groups(self) -> int:
        """Number of groups (rows) in the frame."""
        return int(self.keys.shape[0])

    @property
    def tuples(self) -> int:
        """Total tuples folded into the frame across all groups."""
        return int(self.counts.sum()) if self.counts.shape[0] else 0

    @property
    def is_empty(self) -> bool:
        """Whether the window closed without any delivered tuples."""
        return self.keys.shape[0] == 0

    def value_of(self, key) -> float:
        """The aggregate value of one group (raises on unknown keys)."""
        for i in range(self.keys.shape[0]):
            if self.keys[i] == key:
                return float(self.values[i])
        raise ViewError(f"frame {self.frame_index} has no group {key!r}")

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ViewFrame(#{self.frame_index}, [{self.window_start:g}, "
            f"{self.window_end:g}), {self.groups} groups, {self.tuples} tuples)"
        )


class FrameCursor:
    """A resumable read position over one view's frame sequence.

    Mirrors :class:`~repro.storage.ResultCursor`: the cursor remembers the
    lifetime index of the next unread frame; every :meth:`fetch` returns
    only the frames emitted since the previous read (O(new frames),
    independent of retained history) and advances.  When the buffer evicts
    frames the cursor has not read yet, the next read raises
    :class:`StorageError` naming how far behind the cursor fell.
    """

    __slots__ = ("_buffer", "_next")

    def __init__(self, buffer: "ViewFrameBuffer", next_index: int) -> None:
        self._buffer = buffer
        self._next = next_index

    @property
    def buffer(self) -> "ViewFrameBuffer":
        """The frame buffer this cursor reads from."""
        return self._buffer

    @property
    def position(self) -> int:
        """Lifetime index of the next unread frame."""
        return self._next

    @property
    def pending(self) -> int:
        """Frames emitted but not yet read through this cursor."""
        return self._buffer.frames_emitted - self._next

    def fetch(self) -> List[ViewFrame]:
        """The frames emitted since the last read (advances the cursor)."""
        frames = self._buffer._frames_from(self._next)
        self._next += len(frames)
        return frames

    def __iter__(self):
        """Drain the currently pending frames."""
        return iter(self.fetch())


class ViewFrameBuffer:
    """Retains the most recent frames of one continuous view.

    Parameters
    ----------
    retention_frames:
        Optional cap on retained frames; the oldest frames are evicted
        wholesale when a new frame is appended past the cap.  Lifetime
        accounting survives eviction exactly.  ``None`` retains every
        frame.
    """

    def __init__(self, *, retention_frames: Optional[int] = None) -> None:
        if retention_frames is not None and retention_frames <= 0:
            raise StorageError("retention_frames must be positive or None")
        self._retention = retention_frames
        self._frames: List[ViewFrame] = []
        #: lifetime index of ``_frames[0]`` (frames evicted before it).
        self._frame_base = 0
        self._tuples_total = 0
        self._tuples_evicted = 0

    # ------------------------------------------------------------------
    @property
    def retention_frames(self) -> Optional[int]:
        """The retention cap (``None`` keeps everything)."""
        return self._retention

    @property
    def frames_emitted(self) -> int:
        """Frames ever appended (survives eviction)."""
        return self._frame_base + len(self._frames)

    @property
    def frames_evicted(self) -> int:
        """Frames evicted by the retention cap."""
        return self._frame_base

    @property
    def tuples_total(self) -> int:
        """Tuples folded into all frames ever emitted (survives eviction)."""
        return self._tuples_total

    def __len__(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------
    def append(self, frame: ViewFrame) -> None:
        """Retain one newly emitted frame (evicting past the cap)."""
        expected = self.frames_emitted
        if frame.frame_index != expected:
            raise StorageError(
                f"frames must be appended in lifetime order: expected index "
                f"{expected}, got {frame.frame_index}"
            )
        self._frames.append(frame)
        self._tuples_total += frame.tuples
        if self._retention is not None:
            while len(self._frames) > self._retention:
                evicted = self._frames.pop(0)
                self._frame_base += 1
                self._tuples_evicted += evicted.tuples

    # ------------------------------------------------------------------
    def frames(self) -> List[ViewFrame]:
        """The retained frames, oldest first."""
        return list(self._frames)

    def latest(self) -> Optional[ViewFrame]:
        """The most recently emitted retained frame (``None`` before any)."""
        return self._frames[-1] if self._frames else None

    def frame(self, frame_index: int) -> ViewFrame:
        """The retained frame with the given lifetime index."""
        local = frame_index - self._frame_base
        if local < 0:
            raise StorageError(
                f"frame {frame_index} has been evicted: the buffer retains "
                f"frames {self._frame_base}..{self.frames_emitted - 1} of "
                f"{self.frames_emitted} emitted — the request is "
                f"{self._frame_base - frame_index} frames behind the oldest "
                f"retained one (retention_frames={self._retention})"
            )
        if local >= len(self._frames):
            raise StorageError(
                f"frame {frame_index} has not been emitted yet: the buffer "
                f"retains frames {self._frame_base}..{self.frames_emitted - 1} "
                f"(next to be emitted is {self.frames_emitted})"
            )
        return self._frames[local]

    def cursor(self, *, tail: bool = False) -> FrameCursor:
        """A resumable cursor over the frame sequence.

        ``tail=False`` (default) starts at the oldest *retained* frame so
        the first read catches the consumer up; ``tail=True`` skips
        everything already emitted.
        """
        if tail:
            return FrameCursor(self, self.frames_emitted)
        return FrameCursor(self, self._frame_base)

    def _frames_from(self, next_index: int) -> List[ViewFrame]:
        """Retained frames at or past a lifetime index (used by cursors)."""
        local = next_index - self._frame_base
        if local < 0:
            raise StorageError(
                f"cursor position has been evicted: the cursor was at frame "
                f"{next_index}, but the buffer retains frames "
                f"{self._frame_base}..{self.frames_emitted - 1} of "
                f"{self.frames_emitted} emitted — the cursor fell "
                f"{self._frame_base - next_index} frames behind the oldest "
                f"retained one (retention_frames={self._retention}); open a "
                f"fresh frame_cursor() to resume from the retained history"
            )
        if local >= len(self._frames):
            return []
        return self._frames[local:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ViewFrameBuffer({len(self._frames)} retained, "
            f"{self.frames_emitted} emitted)"
        )
