"""Pre-packaged simulation scenarios.

A :class:`Scenario` bundles a sensing world, an engine configuration and a
textual description, so examples and benchmarks can say "the rain +
temperature city" or "the hotspot-skewed city" in one line and get an
identical, reproducible setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import BudgetConfig, EngineConfig
from ..geometry import Rectangle
from ..sensing import (
    BernoulliParticipation,
    HotspotMobility,
    RainField,
    RandomWaypointMobility,
    SensingWorld,
    TemperatureField,
    WorldConfig,
)

#: The default deployment region: a 4 km x 4 km city, one unit = 1 km.
DEFAULT_REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


@dataclass(frozen=True)
class Scenario:
    """A named, fully configured simulation setup."""

    name: str
    description: str
    world: SensingWorld
    config: EngineConfig


def default_engine_config(
    *,
    grid_cells: int = 16,
    seed: Optional[int] = 7,
    initial_budget: int = 60,
    budget_limit: int = 600,
    budget_delta: int = 5,
    budget_floor: int = 20,
    violation_threshold: float = 5.0,
    retention_batches: Optional[int] = None,
) -> EngineConfig:
    """The engine configuration shared by the stock scenarios.

    The budget floor is kept well above one request so that the +/- delta
    feedback loop of Section V oscillates around the sufficient budget
    instead of periodically starving a cell.  ``retention_batches`` turns
    on the service-mode memory bound (see
    :attr:`repro.config.EngineConfig.retention_batches`); the stock
    experiment scenarios keep the whole history.
    """
    return EngineConfig(
        grid_cells=grid_cells,
        batch_duration=1.0,
        budget=BudgetConfig(
            initial=initial_budget,
            delta=budget_delta,
            limit=budget_limit,
            floor=min(budget_floor, initial_budget),
            violation_threshold=violation_threshold,
        ),
        seed=seed,
        retention_batches=retention_batches,
    )


def build_rain_temperature_world(
    *,
    sensor_count: int = 300,
    seed: Optional[int] = 11,
    region: Rectangle = DEFAULT_REGION,
    response_probability: float = 0.6,
) -> SensingWorld:
    """The paper's running example: rain (human-sensed) and temp (sensor-sensed).

    Sensors follow random-waypoint mobility; humans answer rain questions with
    the given probability and some latency, while the temperature attribute
    is read from an ambient field with heat islands.
    """
    world = SensingWorld(
        WorldConfig(region=region, sensor_count=sensor_count, seed=seed),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.25, pause=0.5),
        participation_factory=lambda sensor_id: BernoulliParticipation(
            response_probability, mean_latency=0.1
        ),
    )
    world.register_field(RainField(region, band_width=region.width * 0.3, period=60.0))
    world.register_field(
        TemperatureField(
            region,
            base=18.0,
            diurnal_amplitude=6.0,
            period=1440.0,
            heat_islands=(
                (region.width * 0.3, region.height * 0.3, 4.0, region.width * 0.15),
                (region.width * 0.75, region.height * 0.6, 2.5, region.width * 0.1),
            ),
        )
    )
    return world


def build_uniform_world(
    *,
    sensor_count: int = 300,
    seed: Optional[int] = 13,
    region: Rectangle = DEFAULT_REGION,
    response_probability: float = 0.8,
) -> SensingWorld:
    """A world with mild, roughly uniform sensor coverage (low skew baseline)."""
    world = SensingWorld(
        WorldConfig(region=region, sensor_count=sensor_count, seed=seed),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.3, pause=0.2),
        participation_factory=lambda sensor_id: BernoulliParticipation(
            response_probability, mean_latency=0.05
        ),
    )
    world.register_field(RainField(region, band_width=region.width * 0.4, period=80.0))
    world.register_field(TemperatureField(region))
    return world


def build_hotspot_world(
    *,
    sensor_count: int = 300,
    seed: Optional[int] = 17,
    region: Rectangle = DEFAULT_REGION,
    response_probability: float = 0.6,
    roamer_fraction: float = 0.25,
    jitter: float = 0.3,
) -> SensingWorld:
    """A world with strongly skewed sensor density (two popular hotspots).

    This is the stress case the paper motivates: most of the crowd clusters
    around a couple of hotspots (a dense "downtown"), while a minority of
    roaming sensors keeps thin coverage in the rest of the city — so raw
    arrivals are far from homogeneous but fixed-rate acquisition remains
    physically possible everywhere.
    """
    hotspots = (
        (region.width * 0.25, region.height * 0.3, 3.0),
        (region.width * 0.75, region.height * 0.7, 1.0),
    )

    def mobility_factory(r: Rectangle):
        return HotspotMobility(
            r, hotspots, speed=0.35, jitter=jitter, switch_probability=0.05
        )

    # A fixed share of sensors roam the whole city so no cell is ever empty;
    # the factory receives only the region, so the split is done by counting
    # how many models have been created so far.
    created = {"count": 0}

    def mixed_mobility_factory(r: Rectangle):
        created["count"] += 1
        if created["count"] % max(int(round(1.0 / max(roamer_fraction, 1e-9))), 1) == 0:
            return RandomWaypointMobility(r, speed=0.3, pause=0.2)
        return mobility_factory(r)

    factory = mixed_mobility_factory if roamer_fraction > 0 else mobility_factory
    world = SensingWorld(
        WorldConfig(region=region, sensor_count=sensor_count, seed=seed),
        mobility_factory=factory,
        participation_factory=lambda sensor_id: BernoulliParticipation(
            response_probability, mean_latency=0.1
        ),
    )
    world.register_field(RainField(region, band_width=region.width * 0.3, period=60.0))
    world.register_field(TemperatureField(region))
    return world


def rain_temperature_scenario(**kwargs) -> Scenario:
    """The stock rain + temperature scenario."""
    return Scenario(
        name="rain-temperature-city",
        description=(
            "A 4x4 km city with 300 random-waypoint sensors, a moving rain "
            "front (human-sensed) and a temperature field with heat islands "
            "(sensor-sensed)."
        ),
        world=build_rain_temperature_world(**kwargs),
        config=default_engine_config(),
    )


def hotspot_scenario(**kwargs) -> Scenario:
    """The stock skew-stress scenario."""
    return Scenario(
        name="hotspot-city",
        description=(
            "A 4x4 km city where sensors cluster around two hotspots, so raw "
            "crowdsensed arrivals are strongly skewed in space."
        ),
        world=build_hotspot_world(**kwargs),
        config=default_engine_config(),
    )
