"""Pre-packaged simulation scenarios.

A :class:`Scenario` bundles a sensing world, an engine configuration and a
textual description, so examples and benchmarks can say "the rain +
temperature city" or "the hotspot-skewed city" in one line and get an
identical, reproducible setup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..config import BudgetConfig, CheckpointConfig, EngineConfig
from ..faults import (
    BurstDropModel,
    CellOutage,
    FaultPlan,
    HealthConfig,
    ResilienceConfig,
    RetryPolicy,
)
from ..geometry import Rectangle
from ..sensing import (
    BernoulliParticipation,
    HotspotMobility,
    RainField,
    RandomWaypointMobility,
    SensingWorld,
    StationaryMobility,
    TemperatureField,
    WorldConfig,
)

#: The default deployment region: a 4 km x 4 km city, one unit = 1 km.
DEFAULT_REGION = Rectangle(0.0, 0.0, 4.0, 4.0)


@dataclass(frozen=True)
class Scenario:
    """A named, fully configured simulation setup."""

    name: str
    description: str
    world: SensingWorld
    config: EngineConfig


def default_engine_config(
    *,
    grid_cells: int = 16,
    seed: Optional[int] = 7,
    initial_budget: int = 60,
    budget_limit: int = 600,
    budget_delta: int = 5,
    budget_floor: int = 20,
    violation_threshold: float = 5.0,
    retention_batches: Optional[int] = None,
) -> EngineConfig:
    """The engine configuration shared by the stock scenarios.

    The budget floor is kept well above one request so that the +/- delta
    feedback loop of Section V oscillates around the sufficient budget
    instead of periodically starving a cell.  ``retention_batches`` turns
    on the service-mode memory bound (see
    :attr:`repro.config.EngineConfig.retention_batches`); the stock
    experiment scenarios keep the whole history.
    """
    return EngineConfig(
        grid_cells=grid_cells,
        batch_duration=1.0,
        budget=BudgetConfig(
            initial=initial_budget,
            delta=budget_delta,
            limit=budget_limit,
            floor=min(budget_floor, initial_budget),
            violation_threshold=violation_threshold,
        ),
        seed=seed,
        retention_batches=retention_batches,
    )


def build_rain_temperature_world(
    *,
    sensor_count: int = 300,
    seed: Optional[int] = 11,
    region: Rectangle = DEFAULT_REGION,
    response_probability: float = 0.6,
) -> SensingWorld:
    """The paper's running example: rain (human-sensed) and temp (sensor-sensed).

    Sensors follow random-waypoint mobility; humans answer rain questions with
    the given probability and some latency, while the temperature attribute
    is read from an ambient field with heat islands.
    """
    world = SensingWorld(
        WorldConfig(region=region, sensor_count=sensor_count, seed=seed),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.25, pause=0.5),
        participation_factory=lambda sensor_id: BernoulliParticipation(
            response_probability, mean_latency=0.1
        ),
    )
    world.register_field(RainField(region, band_width=region.width * 0.3, period=60.0))
    world.register_field(
        TemperatureField(
            region,
            base=18.0,
            diurnal_amplitude=6.0,
            period=1440.0,
            heat_islands=(
                (region.width * 0.3, region.height * 0.3, 4.0, region.width * 0.15),
                (region.width * 0.75, region.height * 0.6, 2.5, region.width * 0.1),
            ),
        )
    )
    return world


def build_uniform_world(
    *,
    sensor_count: int = 300,
    seed: Optional[int] = 13,
    region: Rectangle = DEFAULT_REGION,
    response_probability: float = 0.8,
) -> SensingWorld:
    """A world with mild, roughly uniform sensor coverage (low skew baseline)."""
    world = SensingWorld(
        WorldConfig(region=region, sensor_count=sensor_count, seed=seed),
        mobility_factory=lambda r: RandomWaypointMobility(r, speed=0.3, pause=0.2),
        participation_factory=lambda sensor_id: BernoulliParticipation(
            response_probability, mean_latency=0.05
        ),
    )
    world.register_field(RainField(region, band_width=region.width * 0.4, period=80.0))
    world.register_field(TemperatureField(region))
    return world


def build_hotspot_world(
    *,
    sensor_count: int = 300,
    seed: Optional[int] = 17,
    region: Rectangle = DEFAULT_REGION,
    response_probability: float = 0.6,
    roamer_fraction: float = 0.25,
    jitter: float = 0.3,
) -> SensingWorld:
    """A world with strongly skewed sensor density (two popular hotspots).

    This is the stress case the paper motivates: most of the crowd clusters
    around a couple of hotspots (a dense "downtown"), while a minority of
    roaming sensors keeps thin coverage in the rest of the city — so raw
    arrivals are far from homogeneous but fixed-rate acquisition remains
    physically possible everywhere.
    """
    hotspots = (
        (region.width * 0.25, region.height * 0.3, 3.0),
        (region.width * 0.75, region.height * 0.7, 1.0),
    )

    def mobility_factory(r: Rectangle):
        return HotspotMobility(
            r, hotspots, speed=0.35, jitter=jitter, switch_probability=0.05
        )

    # A fixed share of sensors roam the whole city so no cell is ever empty;
    # the factory receives only the region, so the split is done by counting
    # how many models have been created so far.
    created = {"count": 0}

    def mixed_mobility_factory(r: Rectangle):
        created["count"] += 1
        if created["count"] % max(int(round(1.0 / max(roamer_fraction, 1e-9))), 1) == 0:
            return RandomWaypointMobility(r, speed=0.3, pause=0.2)
        return mobility_factory(r)

    factory = mixed_mobility_factory if roamer_fraction > 0 else mobility_factory
    world = SensingWorld(
        WorldConfig(region=region, sensor_count=sensor_count, seed=seed),
        mobility_factory=factory,
        participation_factory=lambda sensor_id: BernoulliParticipation(
            response_probability, mean_latency=0.1
        ),
    )
    world.register_field(RainField(region, band_width=region.width * 0.3, period=60.0))
    world.register_field(TemperatureField(region))
    return world


def rain_temperature_scenario(**kwargs) -> Scenario:
    """The stock rain + temperature scenario."""
    return Scenario(
        name="rain-temperature-city",
        description=(
            "A 4x4 km city with 300 random-waypoint sensors, a moving rain "
            "front (human-sensed) and a temperature field with heat islands "
            "(sensor-sensed)."
        ),
        world=build_rain_temperature_world(**kwargs),
        config=default_engine_config(),
    )


def hotspot_scenario(**kwargs) -> Scenario:
    """The stock skew-stress scenario."""
    return Scenario(
        name="hotspot-city",
        description=(
            "A 4x4 km city where sensors cluster around two hotspots, so raw "
            "crowdsensed arrivals are strongly skewed in space."
        ),
        world=build_hotspot_world(**kwargs),
        config=default_engine_config(),
    )


# ----------------------------------------------------------------------
# Fault-injection scenarios (robustness experiments)
# ----------------------------------------------------------------------

def default_resilience_config(
    *,
    deadline: float = 0.6,
    max_attempts: int = 3,
    reserve_fraction: float = 0.25,
    probation: bool = True,
    quarantine_batches: int = 3,
    degraded_response_rate: float = 0.25,
) -> ResilienceConfig:
    """The mitigation bundle the fault scenarios switch on.

    ``probation=False`` makes sensor quarantine permanent — the
    mitigation-disabled baseline of the outage recovery regression, whose
    delivered rate must *not* recover after the outage ends.
    """
    return ResilienceConfig(
        deadline=deadline,
        retry=RetryPolicy(
            max_attempts=max_attempts, reserve_fraction=reserve_fraction
        ),
        health=HealthConfig(
            probation=probation, quarantine_batches=quarantine_batches
        ),
        degraded_response_rate=degraded_response_rate,
    )


def flaky_crowd_plan(*, seed: int = 23) -> FaultPlan:
    """A little of everything going wrong: the general-robustness stress mix.

    i.i.d. and bursty transit drops, a few stuck-at sensors, occasional
    gross outliers on numeric attributes, latency spikes past the default
    response deadline, and bounded clock skew.
    """
    return FaultPlan(
        seed=seed,
        drop_probability=0.12,
        burst=BurstDropModel(enter_probability=0.04, exit_probability=0.3),
        stuck_fraction=0.04,
        outlier_probability=0.05,
        outlier_scale=30.0,
        latency_inflation_probability=0.12,
        latency_inflation_factor=10.0,
        clock_skew_max=0.02,
    )


def flaky_crowd_scenario(
    *,
    sensor_count: int = 300,
    seed: int = 11,
    fault_seed: int = 23,
    mitigation: bool = True,
) -> Scenario:
    """The rain + temperature city served by an unreliable crowd.

    Every fault class of the :class:`~repro.faults.FaultPlan` fires at a
    moderate rate; with ``mitigation`` (the default) the engine answers
    with deadlines, retries, quarantine and degradation-aware budget
    tuning.
    """
    config = replace(
        default_engine_config(),
        faults=flaky_crowd_plan(seed=fault_seed),
        resilience=default_resilience_config() if mitigation else None,
    )
    return Scenario(
        name="flaky-crowd",
        description=(
            "The rain + temperature city with an unreliable crowd: transit "
            "drops (i.i.d. + bursty), stuck-at sensors, outlier spikes, "
            "latency inflation and clock skew, answered by deadlines, "
            "retries and sensor-health quarantine."
        ),
        world=build_rain_temperature_world(sensor_count=sensor_count, seed=seed),
        config=config,
    )


def crash_recovery_scenario(
    *,
    checkpoint_dir: str,
    checkpoint_every: int = 2,
    retain: int = 3,
    sensor_count: int = 300,
    seed: int = 11,
    fault_seed: int = 23,
) -> Scenario:
    """The flaky crowd with periodic checkpoints: the recovery stress case.

    Everything the :func:`flaky_crowd_scenario` throws at the engine —
    drops, bursts, stuck sensors, outliers, latency spikes, plus the full
    mitigation bundle — now runs under a
    :class:`~repro.config.CheckpointConfig`: every ``checkpoint_every``
    batches the complete engine state is written atomically to
    ``checkpoint_dir`` (last ``retain`` kept).  The crash-recovery
    regression kills this scenario at every :class:`~repro.faults.CrashPoint`,
    restores from the last good checkpoint, replays, and requires the
    replayed run to be byte-identical to an uninterrupted one.
    """
    config = replace(
        default_engine_config(),
        faults=flaky_crowd_plan(seed=fault_seed),
        resilience=default_resilience_config(),
        checkpoints=CheckpointConfig(
            directory=checkpoint_dir, every=checkpoint_every, retain=retain
        ),
    )
    return Scenario(
        name="crash-recovery",
        description=(
            "The flaky-crowd city with periodic crash-consistent checkpoints: "
            "the engine survives a process kill at any point of the batch "
            "loop (or mid-checkpoint-write) and replays to the exact stream "
            "an uninterrupted run delivers."
        ),
        world=build_rain_temperature_world(sensor_count=sensor_count, seed=seed),
        config=config,
    )


def build_stationary_world(
    *,
    sensor_count: int = 240,
    seed: Optional[int] = 19,
    region: Rectangle = DEFAULT_REGION,
    response_probability: float = 0.8,
) -> SensingWorld:
    """A traditional-WSN world: sensors never move.

    The outage regression pins recovery on the *same* population that
    suffered the outage — mobile sensors wandering into a dead cell would
    mask a failed re-admission, so the outage scenarios hold every sensor
    still.
    """
    world = SensingWorld(
        WorldConfig(region=region, sensor_count=sensor_count, seed=seed),
        mobility_factory=lambda r: StationaryMobility(r),
        participation_factory=lambda sensor_id: BernoulliParticipation(
            response_probability, mean_latency=0.05
        ),
    )
    world.register_field(TemperatureField(region))
    return world


def cell_outage_plan(
    *,
    seed: int = 29,
    start: float = 4.0,
    end: float = 10.0,
    cells: Optional[Tuple[Tuple[int, int], ...]] = ((0, 0), (1, 0), (0, 1), (1, 1)),
    moving: bool = False,
    grid_side: int = 4,
    column_batches: float = 3.0,
) -> FaultPlan:
    """A total cell outage window — static, or sweeping across the grid.

    The static form blacks out ``cells`` for ``[start, end)``.  With
    ``moving`` the outage instead sweeps one grid *column* at a time from
    left to right, ``column_batches`` time units per column starting at
    ``start`` (``cells`` is ignored) — the moving-window stress for
    quarantine/probation churn.
    """
    if moving:
        outages = tuple(
            CellOutage(
                start=start + q * column_batches,
                end=start + (q + 1) * column_batches,
                cells=tuple((q, r) for r in range(grid_side)),
            )
            for q in range(grid_side)
        )
    else:
        outages = (CellOutage(start=start, end=end, cells=cells),)
    return FaultPlan(seed=seed, outages=outages)


def cell_outage_scenario(
    *,
    sensor_count: int = 240,
    seed: int = 19,
    fault_seed: int = 29,
    outage_start: float = 4.0,
    outage_end: float = 10.0,
    moving: bool = False,
    mitigation: bool = True,
) -> Scenario:
    """A stationary-crowd world whose lower-left quadrant goes dark.

    From ``outage_start`` to ``outage_end`` (sim time; one batch = one
    unit) every response from the affected cells is lost.  The health
    monitor quarantines the silent sensors; with ``mitigation`` they are
    re-admitted on probation after the window and the delivered rate
    recovers, while the ``mitigation=False`` baseline (permanent
    quarantine, no degradation-aware tuning) stays dark — the recovery
    regression of the robustness suite.  ``moving=True`` sweeps the outage
    across grid columns instead.
    """
    config = replace(
        default_engine_config(),
        faults=cell_outage_plan(
            seed=fault_seed, start=outage_start, end=outage_end, moving=moving
        ),
        resilience=default_resilience_config(probation=mitigation),
    )
    return Scenario(
        name="cell-outage" + ("-moving" if moving else ""),
        description=(
            "A stationary crowd with a total outage window over "
            + ("a sweep of grid columns" if moving else "the lower-left cells")
            + "; quarantine + probation re-admission drive post-outage recovery."
        ),
        world=build_stationary_world(sensor_count=sensor_count, seed=seed),
        config=config,
    )
