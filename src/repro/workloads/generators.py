"""Synthetic event-batch generators for operator-level experiments.

These produce ground-truth MDPP samples directly (bypassing the sensing
simulator) so operator benchmarks can control the exact intensity that
generated the data.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from ..geometry import Rectangle
from ..pointprocess import (
    EventBatch,
    GaussianHotspotIntensity,
    HomogeneousMDPP,
    InhomogeneousMDPP,
    LinearIntensity,
)


def synthetic_homogeneous_batch(
    rate: float,
    region: Rectangle,
    duration: float,
    *,
    seed: Optional[int] = None,
) -> EventBatch:
    """Sample a homogeneous MDPP of the given rate over the region."""
    if rate <= 0 or duration <= 0:
        raise WorkloadError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    return HomogeneousMDPP(rate, region).sample(duration, rng=rng)


def synthetic_inhomogeneous_batch(
    region: Rectangle,
    duration: float,
    *,
    theta: Tuple[float, float, float, float] = (20.0, 0.0, 30.0, 15.0),
    seed: Optional[int] = None,
) -> Tuple[EventBatch, LinearIntensity]:
    """Sample an inhomogeneous MDPP with the paper's linear intensity (Eq. 1).

    Returns the sampled batch together with the ground-truth intensity so
    experiments can compare estimated and true parameters.
    """
    if duration <= 0:
        raise WorkloadError("duration must be positive")
    intensity = LinearIntensity.from_theta(theta).validated_on(region, 0.0, duration)
    process = InhomogeneousMDPP(intensity, region)
    rng = np.random.default_rng(seed)
    return process.sample(duration, rng=rng), intensity


def synthetic_hotspot_batch(
    region: Rectangle,
    duration: float,
    *,
    baseline: float = 5.0,
    hotspots: Tuple[Tuple[float, float, float, float], ...] = (
        (0.25, 0.25, 80.0, 0.12),
        (0.7, 0.6, 50.0, 0.15),
    ),
    seed: Optional[int] = None,
) -> Tuple[EventBatch, GaussianHotspotIntensity]:
    """Sample a strongly skewed (hotspot) MDPP; used by skew experiments."""
    if duration <= 0:
        raise WorkloadError("duration must be positive")
    intensity = GaussianHotspotIntensity(baseline, hotspots)
    process = InhomogeneousMDPP(intensity, region)
    rng = np.random.default_rng(seed)
    return process.sample(duration, rng=rng), intensity
