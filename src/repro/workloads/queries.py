"""Query-workload generators.

Benchmarks need controlled populations of acquisitional queries: random
workloads of configurable size, overlapping workloads with a tunable sharing
factor, and the exact three-query layout of the paper's Fig. 2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.query import AcquisitionalQuery
from ..errors import WorkloadError
from ..geometry import Grid, Rectangle, RectRegion


def random_query_workload(
    grid: Grid,
    count: int,
    *,
    attributes: Sequence[str] = ("rain", "temp"),
    rate_range: Tuple[float, float] = (5.0, 50.0),
    max_cells_per_side: int = 2,
    seed: Optional[int] = None,
) -> List[AcquisitionalQuery]:
    """Random queries whose regions are blocks of whole grid cells.

    Each query covers an axis-aligned block of ``1..max_cells_per_side``
    cells per side (so every query satisfies the minimum-area rule) and asks
    for a rate drawn uniformly from ``rate_range``.
    """
    if count <= 0:
        raise WorkloadError("count must be positive")
    if not attributes:
        raise WorkloadError("at least one attribute is required")
    if rate_range[0] <= 0 or rate_range[1] < rate_range[0]:
        raise WorkloadError("rate_range must be positive and increasing")
    if max_cells_per_side <= 0 or max_cells_per_side > grid.side:
        raise WorkloadError("max_cells_per_side must be in [1, grid.side]")
    rng = np.random.default_rng(seed)
    region = grid.region
    cell_w = region.width / grid.side
    cell_h = region.height / grid.side
    queries: List[AcquisitionalQuery] = []
    for i in range(count):
        span_q = int(rng.integers(1, max_cells_per_side + 1))
        span_r = int(rng.integers(1, max_cells_per_side + 1))
        q0 = int(rng.integers(0, grid.side - span_q + 1))
        r0 = int(rng.integers(0, grid.side - span_r + 1))
        rect = Rectangle(
            region.x_min + q0 * cell_w,
            region.y_min + r0 * cell_h,
            region.x_min + (q0 + span_q) * cell_w,
            region.y_min + (r0 + span_r) * cell_h,
        )
        rate = float(rng.uniform(rate_range[0], rate_range[1]))
        attribute = str(attributes[int(rng.integers(0, len(attributes)))])
        queries.append(
            AcquisitionalQuery(attribute, RectRegion(rect), rate, name=f"W{i}")
        )
    return queries


def overlapping_query_workload(
    grid: Grid,
    count: int,
    *,
    attribute: str = "rain",
    base_rate: float = 20.0,
    overlap_cells: int = 2,
    seed: Optional[int] = None,
) -> List[AcquisitionalQuery]:
    """Queries that all cover the same block of cells (maximum sharing).

    All ``count`` queries acquire the same attribute from the same
    ``overlap_cells x overlap_cells`` block with rates spread around
    ``base_rate``, so a shared topology re-uses one acquisition stream for
    every query — the best case for multi-query optimisation.
    """
    if count <= 0:
        raise WorkloadError("count must be positive")
    if overlap_cells <= 0 or overlap_cells > grid.side:
        raise WorkloadError("overlap_cells must be in [1, grid.side]")
    if base_rate <= 0:
        raise WorkloadError("base_rate must be positive")
    rng = np.random.default_rng(seed)
    region = grid.region
    cell_w = region.width / grid.side
    cell_h = region.height / grid.side
    rect = Rectangle(
        region.x_min,
        region.y_min,
        region.x_min + overlap_cells * cell_w,
        region.y_min + overlap_cells * cell_h,
    )
    queries = []
    for i in range(count):
        rate = float(base_rate * rng.uniform(0.5, 1.5))
        queries.append(
            AcquisitionalQuery(attribute, RectRegion(rect), rate, name=f"O{i}")
        )
    return queries


def fig2_queries(grid: Grid) -> List[AcquisitionalQuery]:
    """The three queries of the paper's Fig. 2 on a 3x3 (or larger) grid.

    * ``Q1`` acquires ``rain`` from a 2x2 block of cells at the highest rate.
    * ``Q2`` acquires ``temp`` from a single cell at a middle rate.
    * ``Q3`` acquires ``temp`` from a region that only partially overlaps its
      cells (so P-operators are required), at the lowest rate.

    The rates satisfy ``lambda1 > lambda2 > lambda3`` as in the paper.
    """
    if grid.side < 3:
        raise WorkloadError("the Fig. 2 layout needs a grid with side >= 3")
    region = grid.region
    cell_w = region.width / grid.side
    cell_h = region.height / grid.side

    # Q1: rain over the 2x2 block of cells (1,1)-(2,2) (0-indexed), full cells.
    q1_rect = Rectangle(
        region.x_min + 1 * cell_w,
        region.y_min + 1 * cell_h,
        region.x_min + 3 * cell_w,
        region.y_min + 3 * cell_h,
    )
    # Q2: temp over the single cell (0, 1), a full cell.
    q2_rect = Rectangle(
        region.x_min + 0 * cell_w,
        region.y_min + 1 * cell_h,
        region.x_min + 1 * cell_w,
        region.y_min + 2 * cell_h,
    )
    # Q3: temp over a region straddling cells (0,0) and (1,0) but covering
    # only part of each, so the planner must add P-operators.  Its area still
    # exceeds one cell's area, as the paper requires.
    q3_rect = Rectangle(
        region.x_min + 0.25 * cell_w,
        region.y_min + 0.1 * cell_h,
        region.x_min + 1.75 * cell_w,
        region.y_min + 0.9 * cell_h,
    )
    q1 = AcquisitionalQuery("rain", RectRegion(q1_rect), 30.0, name="Q1")
    q2 = AcquisitionalQuery("temp", RectRegion(q2_rect), 20.0, name="Q2")
    q3 = AcquisitionalQuery("temp", RectRegion(q3_rect), 10.0, name="Q3")
    return [q1, q2, q3]
