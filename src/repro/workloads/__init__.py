"""Workload and scenario generators used by examples, tests and benchmarks."""

from .queries import random_query_workload, overlapping_query_workload, fig2_queries
from .scenarios import (
    Scenario,
    build_rain_temperature_world,
    build_stationary_world,
    build_uniform_world,
    build_hotspot_world,
    cell_outage_plan,
    cell_outage_scenario,
    crash_recovery_scenario,
    default_engine_config,
    default_resilience_config,
    flaky_crowd_plan,
    flaky_crowd_scenario,
)
from .generators import synthetic_inhomogeneous_batch, synthetic_homogeneous_batch

__all__ = [
    "random_query_workload",
    "overlapping_query_workload",
    "fig2_queries",
    "Scenario",
    "build_rain_temperature_world",
    "build_stationary_world",
    "build_uniform_world",
    "build_hotspot_world",
    "cell_outage_plan",
    "cell_outage_scenario",
    "crash_recovery_scenario",
    "default_engine_config",
    "default_resilience_config",
    "flaky_crowd_plan",
    "flaky_crowd_scenario",
    "synthetic_inhomogeneous_batch",
    "synthetic_homogeneous_batch",
]
