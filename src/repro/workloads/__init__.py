"""Workload and scenario generators used by examples, tests and benchmarks."""

from .queries import random_query_workload, overlapping_query_workload, fig2_queries
from .scenarios import (
    Scenario,
    build_rain_temperature_world,
    build_uniform_world,
    build_hotspot_world,
    default_engine_config,
)
from .generators import synthetic_inhomogeneous_batch, synthetic_homogeneous_batch

__all__ = [
    "random_query_workload",
    "overlapping_query_workload",
    "fig2_queries",
    "Scenario",
    "build_rain_temperature_world",
    "build_uniform_world",
    "build_hotspot_world",
    "default_engine_config",
    "synthetic_inhomogeneous_batch",
    "synthetic_homogeneous_batch",
]
