"""Per-sensor reliability tracking, quarantine and probation.

The :class:`SensorHealthMonitor` is the server-side health view of the
crowd.  During an acquisition round the handler reports every wave's
``(rows, accepted)`` outcome (and the accepted numeric values, for stuck
detection); at round commit the monitor folds the round's per-sensor
accepted/requested ratio into the SoA's ``reliability`` EWMA column and
updates the ``quarantined`` mask:

* a sensor whose reliability falls below the failure threshold (after
  enough lifetime requests) is quarantined — it disappears from candidate
  populations via the mask the handler ANDs into its bucketing pass;
* a sensor whose numeric readings repeat ``stuck_repeats`` times in a row
  is quarantined as stuck (server-side detection — the monitor never peeks
  at the injector's designations);
* after ``quarantine_batches`` rounds a quarantined sensor is re-admitted
  on probation with a reset reliability, unless probation is disabled
  (the permanent-quarantine baseline of the outage regression test).

All bookkeeping is dense numpy over SoA-aligned arrays; nothing here is
per-sensor Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .plan import HealthConfig


@dataclass(frozen=True)
class HealthSummary:
    """Snapshot of the crowd's health (the repl ``health`` command's data)."""

    quarantined: int
    on_probation: int
    quarantine_events: int
    stuck_quarantines: int
    released: int
    quarantined_sensor_ids: List[int]


class SensorHealthMonitor:
    """Maintains reliability EWMAs and the quarantine mask over the SoA."""

    def __init__(self, config: HealthConfig, state) -> None:
        self._config = config
        self._state = state
        count = len(state)
        # The columns the handler reads live in the SoA itself (reliability
        # also rides along for inspection); the monitor's private arrays
        # hold the per-round scratch and quarantine bookkeeping.
        state.reliability[:] = 1.0
        state.quarantined[:] = False
        self._round_requests = np.zeros(count, dtype=np.int64)
        self._round_accepted = np.zeros(count, dtype=np.int64)
        self._lifetime_requests = np.zeros(count, dtype=np.int64)
        self._release_round = np.zeros(count, dtype=np.int64)
        self._probation = np.zeros(count, dtype=bool)
        self._stuck_last: Dict[str, np.ndarray] = {}
        self._stuck_repeats: Dict[str, np.ndarray] = {}
        self._round = 0
        self.quarantine_events = 0
        self.stuck_quarantines = 0
        self.released = 0

    @property
    def config(self) -> HealthConfig:
        """The health configuration."""
        return self._config

    @property
    def rounds_committed(self) -> int:
        """Acquisition rounds folded into the EWMA so far."""
        return self._round

    # ------------------------------------------------------------------
    # Per-wave observation (called by the handler)
    # ------------------------------------------------------------------
    def observe(self, rows: np.ndarray, accepted: np.ndarray) -> None:
        """Record one wave's outcome: ``accepted`` aligns with ``rows``."""
        if rows.size == 0:
            return
        np.add.at(self._round_requests, rows, 1)
        np.add.at(self._round_accepted, rows, accepted.astype(np.int64))

    def observe_values(
        self, attribute: str, rows: np.ndarray, values: np.ndarray
    ) -> None:
        """Track accepted numeric readings for stuck-at detection.

        A repeat is an exact float match with the sensor's previous accepted
        reading for the attribute — replayed values are bit-identical, real
        continuous phenomena essentially never are.
        """
        if rows.size == 0:
            return
        values = np.asarray(values)
        if values.dtype.kind != "f":
            return
        last = self._stuck_last.get(attribute)
        if last is None:
            last = np.full(len(self._state), np.nan)
            self._stuck_last[attribute] = last
            self._stuck_repeats[attribute] = np.zeros(
                len(self._state), dtype=np.int64
            )
        repeats = self._stuck_repeats[attribute]
        same = values == last[rows]
        # Duplicate rows within a wave are rare (tiny-cell replacement
        # draws); last-write-wins is fine for a detector.
        repeats[rows] = np.where(same, repeats[rows] + 1, 0)
        last[rows] = values

    # ------------------------------------------------------------------
    # Round commit
    # ------------------------------------------------------------------
    def commit_round(self) -> None:
        """Fold the round into the EWMA and update the quarantine mask."""
        config = self._config
        state = self._state
        requests = self._round_requests
        contacted = requests > 0
        if contacted.any():
            ratio = self._round_accepted[contacted] / requests[contacted]
            reliability = state.reliability
            reliability[contacted] = (
                (1.0 - config.ewma_alpha) * reliability[contacted]
                + config.ewma_alpha * ratio
            )
            self._lifetime_requests += requests
        self._round += 1

        quarantined = state.quarantined
        # Release before sentencing: a sensor whose term just ended gets a
        # probationary round before its (reset) reliability is judged again.
        if config.probation and quarantined.any():
            due = quarantined & (self._release_round <= self._round)
            if due.any():
                quarantined[due] = False
                self._probation[due] = True
                state.reliability[due] = config.probation_reliability
                for repeats in self._stuck_repeats.values():
                    repeats[due] = 0
                self.released += int(due.sum())

        failing = (
            contacted
            & ~quarantined
            & (state.reliability < config.failure_threshold)
            & (self._lifetime_requests >= config.min_requests)
        )
        if failing.any():
            self._quarantine(failing)
            self.quarantine_events += int(failing.sum())

        for repeats in self._stuck_repeats.values():
            stuck = ~state.quarantined & (repeats >= config.stuck_repeats)
            if stuck.any():
                self._quarantine(stuck)
                repeats[stuck] = 0
                count = int(stuck.sum())
                self.quarantine_events += count
                self.stuck_quarantines += count

        # A probation sensor that rebuilt its reliability is fully cleared.
        recovered = self._probation & (
            state.reliability >= config.recovery_threshold
        )
        if recovered.any():
            self._probation[recovered] = False

        self._round_requests[:] = 0
        self._round_accepted[:] = 0

    def _quarantine(self, mask: np.ndarray) -> None:
        self._state.quarantined[mask] = True
        self._probation[mask] = False
        self._release_round[mask] = self._round + self._config.quarantine_batches

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def summary(self) -> HealthSummary:
        """The current health snapshot."""
        quarantined = self._state.quarantined
        return HealthSummary(
            quarantined=int(quarantined.sum()),
            on_probation=int(self._probation.sum()),
            quarantine_events=self.quarantine_events,
            stuck_quarantines=self.stuck_quarantines,
            released=self.released,
            quarantined_sensor_ids=self._state.sensor_ids[quarantined].tolist(),
        )
