"""Vectorised execution of a :class:`~repro.faults.FaultPlan`.

The :class:`FaultInjector` sits inside the request/response handler and is
invoked once per acquisition wave with the wave's *request* columns (SoA
rows, request times, target-cell segments) and *response* columns
(latencies, values).  It returns a :class:`FaultOutcome` describing which
responses were lost in transit and how the surviving ones were corrupted.

Two contracts matter:

* **Stream isolation.**  The injector owns a private generator seeded from
  ``FaultPlan.seed``.  No fault draw ever touches the world stream, so a
  run with no plan configured is byte-identical to one where the fault code
  does not exist, and the fault history for a given plan seed is
  reproducible across crowd seeds.
* **Path agnosticism.**  Every acquisition path — exact object, exact
  columnar, fused fast-sim — assembles its wave into the same column layout
  and calls :meth:`apply_round` once, so for identical inputs the injector
  consumes its stream identically and the strict object and columnar paths
  stay byte-identical *under* faults, not just without them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .plan import FaultPlan

CellKey = Tuple[int, int]


@dataclass
class FaultOutcome:
    """What one wave's faults did, aligned with the wave's responses."""

    #: response was lost in transit (drop sources only; deadline timeouts
    #: are the handler's, not the injector's).
    dropped: np.ndarray
    #: response latencies after inflation.
    latencies: np.ndarray
    #: response values after stuck-at replay and outlier spikes.
    values: np.ndarray
    #: per-response clock skew to add to the tuple timestamp (zeros when
    #: the plan has no skew).
    skew: Optional[np.ndarray]


class FaultInjector:
    """Applies a :class:`FaultPlan` to acquisition waves.

    Parameters
    ----------
    plan:
        The declarative fault plan.
    state:
        The world's :class:`~repro.sensing.SensorStateArrays`; only its
        length is needed up front (per-sensor burst state and stuck-at
        designation are row-aligned with it).
    """

    def __init__(self, plan: FaultPlan, state) -> None:
        self._plan = plan
        self._rng = np.random.default_rng(plan.seed)
        count = len(state)
        self._in_burst = (
            np.zeros(count, dtype=bool) if plan.burst is not None else None
        )
        if plan.stuck_fraction > 0.0:
            self._stuck = self._rng.random(count) < plan.stuck_fraction
        else:
            self._stuck = None
        #: per-attribute stuck-at replay state: the first value each stuck
        #: sensor reported (object dtype so boolean attributes replay too).
        self._stuck_values: Dict[str, np.ndarray] = {}
        self._stuck_seeded: Dict[str, np.ndarray] = {}
        self._count = count
        # Lifetime counters (surfaced by the repl's health command and the
        # fault benchmarks).
        self.requests_seen = 0
        self.drops_injected = 0
        self.outliers_injected = 0
        self.stuck_replays = 0
        self.latencies_inflated = 0

    @property
    def plan(self) -> FaultPlan:
        """The plan being executed."""
        return self._plan

    @property
    def stuck_rows(self) -> np.ndarray:
        """SoA rows designated stuck-at (empty when none)."""
        if self._stuck is None:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(self._stuck)[0]

    # ------------------------------------------------------------------
    def _outage_probabilities(
        self,
        request_times: np.ndarray,
        segments: np.ndarray,
        cell_keys: Tuple[CellKey, ...],
    ) -> Optional[np.ndarray]:
        """Per-request outage drop probability, or ``None`` when inactive.

        Each request keeps the strongest outage covering its target cell at
        its request time; overlapping outages do not compound.
        """
        outages = self._plan.outages
        if not outages:
            return None
        p = np.zeros(request_times.shape[0])
        for outage in outages:
            covered = np.fromiter(
                (outage.covers(key) for key in cell_keys),
                dtype=bool,
                count=len(cell_keys),
            )
            if not covered.any():
                continue
            active = (
                covered[segments]
                & (request_times >= outage.start)
                & (request_times < outage.end)
            )
            if active.any():
                np.maximum(p, np.where(active, outage.drop_probability, 0.0), out=p)
        return p if p.any() else None

    def apply_round(
        self,
        attribute: str,
        *,
        rows: np.ndarray,
        request_times: np.ndarray,
        segments: np.ndarray,
        cell_keys: Tuple[CellKey, ...],
        responded: np.ndarray,
        latencies: np.ndarray,
        values: np.ndarray,
    ) -> FaultOutcome:
        """Apply the plan to one acquisition wave.

        ``rows`` / ``request_times`` / ``segments`` cover every request of
        the wave (``segments`` indexes into ``cell_keys``); ``responded``
        marks the requests whose sensor produced a response, and
        ``latencies`` / ``values`` are aligned with those responses.  The
        fault draws are a fixed function of these inputs and the injector's
        private stream, independent of which acquisition path produced
        them.
        """
        plan = self._plan
        rng = self._rng
        n_requests = rows.shape[0]
        self.requests_seen += n_requests

        # 1. Burst state transitions: one step of the Gilbert-Elliott chain
        # per request.  Duplicate rows within a wave (with-replacement
        # sampling in tiny cells) take one combined step, which is
        # statistically indistinguishable at that scale.
        in_burst_request = None
        if self._in_burst is not None:
            burst = plan.burst
            u = rng.random(n_requests)
            was_bursting = self._in_burst[rows]
            in_burst_request = np.where(
                was_bursting, u >= burst.exit_probability, u < burst.enter_probability
            )
            self._in_burst[rows] = in_burst_request

        resp_index = np.nonzero(responded)[0]
        n_responses = resp_index.shape[0]
        resp_rows = rows[resp_index]
        dropped = np.zeros(n_responses, dtype=bool)

        # 2. Transit drops: combine the independent i.i.d., burst and
        # outage sources into one per-response loss probability and decide
        # with a single uniform draw.
        if plan.drops_responses and n_responses:
            keep = np.full(n_responses, 1.0 - plan.drop_probability)
            if in_burst_request is not None:
                keep *= np.where(
                    in_burst_request[resp_index],
                    1.0 - plan.burst.drop_probability,
                    1.0,
                )
            outage_p = self._outage_probabilities(request_times, segments, cell_keys)
            if outage_p is not None:
                keep *= 1.0 - outage_p[resp_index]
            dropped = rng.random(n_responses) >= keep
            self.drops_injected += int(dropped.sum())

        # 3. Latency inflation (applied to every response — a late response
        # is late whether or not transit also lost it).
        if plan.latency_inflation_probability > 0.0 and n_responses:
            inflate = rng.random(n_responses) < plan.latency_inflation_probability
            if inflate.any():
                latencies = np.where(
                    inflate, latencies * plan.latency_inflation_factor, latencies
                )
                self.latencies_inflated += int(inflate.sum())

        # 4. Stuck-at replay: a stuck sensor's first reported value per
        # attribute seeds its replay; every later response repeats it.
        if self._stuck is not None and n_responses:
            stuck_resp = self._stuck[resp_rows]
            if stuck_resp.any():
                seeded = self._stuck_seeded.get(attribute)
                if seeded is None:
                    seeded = np.zeros(self._count, dtype=bool)
                    self._stuck_seeded[attribute] = seeded
                    self._stuck_values[attribute] = np.empty(
                        self._count, dtype=object
                    )
                stored = self._stuck_values[attribute]
                values = np.array(values, copy=True)
                replay = stuck_resp & seeded[resp_rows]
                if replay.any():
                    values[replay] = stored[resp_rows[replay]]
                    self.stuck_replays += int(replay.sum())
                seed_now = stuck_resp & ~seeded[resp_rows]
                if seed_now.any():
                    seed_rows = resp_rows[seed_now]
                    stored[seed_rows] = values[seed_now]
                    seeded[seed_rows] = True

        # 5. Additive outlier spikes (numeric attributes only).
        if plan.outlier_probability > 0.0 and n_responses:
            values = np.asarray(values)
            if values.dtype.kind == "f":
                spike = rng.random(n_responses) < plan.outlier_probability
                if spike.any():
                    signs = np.where(rng.random(n_responses) < 0.5, -1.0, 1.0)
                    values = np.where(
                        spike, values + signs * plan.outlier_scale, values
                    )
                    self.outliers_injected += int(spike.sum())

        # 6. Bounded clock skew on the tuple timestamp.  The handler clamps
        # the skewed time to the batch-window start, preserving the views
        # layer's "no tuple predates its window" contract.
        skew = None
        if plan.clock_skew_max > 0.0 and n_responses:
            skew = rng.uniform(-plan.clock_skew_max, plan.clock_skew_max, n_responses)

        return FaultOutcome(
            dropped=dropped, latencies=latencies, values=values, skew=skew
        )
