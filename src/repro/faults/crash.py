"""Process-level crash injection for the recovery subsystem.

PR 6's :class:`~repro.faults.FaultInjector` breaks the *data plane* (drops,
outages, stuck sensors); this module breaks the *process*.  Named
:class:`CrashPoint` barriers are threaded through the engine's batch loop
and the checkpoint writer; an armed :class:`CrashInjector` kills the run at
one of them — either by raising :class:`SimulatedCrash` (in-process tests)
or by ``os._exit`` (subprocess tests, modelling a real SIGKILL: no cleanup,
no atexit, no flushing).

The recovery harness then restores the last good checkpoint, replays, and
asserts the replayed run is byte-identical to an uninterrupted one — the
headline guarantee of ``repro.recovery``.
"""

from __future__ import annotations

import enum
import os
from typing import List

from ..errors import CraqrError


class CrashPoint(enum.Enum):
    """Named barriers inside one engine batch where a crash can be injected.

    The four points bracket every state mutation a batch performs:

    * ``POST_ACQUISITION`` — after the handler collected the batch's
      responses and the world advanced, before fabrication: handler
      counters, budgets, health/fault state and world RNG streams have
      already moved.
    * ``POST_MERGE`` — after fabrication delivered tuples into result
      buffers, before budget tuning and end-of-batch dispatch.
    * ``PRE_VIEW_FOLD`` — after budget tuning, immediately before
      ``end_batch`` fires subscriber callbacks and views fold/advance.
    * ``MID_CHECKPOINT_WRITE`` — inside the checkpoint writer, after the
      temporary snapshot file is durable but before it is renamed over the
      target: the previous checkpoint must survive intact.
    """

    POST_ACQUISITION = "post-acquisition"
    POST_MERGE = "post-merge"
    PRE_VIEW_FOLD = "pre-view-fold"
    MID_CHECKPOINT_WRITE = "mid-checkpoint-write"


class SimulatedCrash(BaseException):
    """An injected process crash.

    Deliberately a :class:`BaseException` (like ``KeyboardInterrupt``): a
    real crash is not handleable application control flow, so no
    ``except Exception`` recovery path in the engine may swallow it.
    """

    def __init__(self, point: CrashPoint, batch_index: int) -> None:
        super().__init__(
            f"injected crash at {point.value} of batch {batch_index}"
        )
        self.point = point
        self.batch_index = batch_index


class CrashInjector:
    """Arms one :class:`CrashPoint` to fire at a given batch.

    Parameters
    ----------
    point:
        The barrier to crash at.
    at_batch:
        The 0-based batch index whose barrier fires (for
        ``MID_CHECKPOINT_WRITE`` this is the batch whose checkpoint write
        is interrupted).
    process_exit:
        ``False`` (default) raises :class:`SimulatedCrash`; ``True`` calls
        ``os._exit(exit_code)`` — the process dies on the spot with no
        cleanup, modelling a SIGKILL for subprocess-based tests.
    exit_code:
        The exit status used with ``process_exit``.
    """

    def __init__(
        self,
        point: CrashPoint,
        *,
        at_batch: int,
        process_exit: bool = False,
        exit_code: int = 17,
    ) -> None:
        if not isinstance(point, CrashPoint):
            raise CraqrError(f"point must be a CrashPoint, got {point!r}")
        if at_batch < 0:
            raise CraqrError("at_batch must be non-negative")
        self.point = point
        self.at_batch = at_batch
        self.process_exit = process_exit
        self.exit_code = exit_code
        self.fired = False

    def barrier(self, point: CrashPoint, batch_index: int) -> None:
        """Crash if this barrier is the armed one (otherwise a no-op)."""
        if self.fired or point is not self.point or batch_index != self.at_batch:
            return
        self.fired = True
        if self.process_exit:
            os._exit(self.exit_code)
        raise SimulatedCrash(point, batch_index)


def parse_crash_point(name: str) -> CrashPoint:
    """Resolve a crash point by its CLI/scenario name (e.g. ``post-merge``)."""
    for point in CrashPoint:
        if point.value == name:
            return point
    known = ", ".join(p.value for p in CrashPoint)
    raise CraqrError(f"unknown crash point {name!r}; known: {known}")


def crash_points() -> List[CrashPoint]:
    """All named crash points, in batch-loop order."""
    return list(CrashPoint)
