"""Fault injection and resilience for the acquisition stack.

This package answers ROADMAP open item 5: a declarative fault model
(:class:`FaultPlan`) executed inside the request/response handler by a
seeded :class:`FaultInjector`, plus the server-side mitigation bundle
(:class:`ResilienceConfig`): response deadlines, budget-aware retries,
per-sensor health quarantine (:class:`SensorHealthMonitor`) and
per-(attribute, cell) degradation tracking (:class:`DegradationTracker`).

Faults and mitigation are configured on :class:`repro.config.EngineConfig`
(``faults`` / ``resilience``) and are strictly opt-in: with neither set,
every acquisition path executes its pre-fault code byte-for-byte.

PR 7 extends the framework from injected *data* faults to injected
*process* crashes: :class:`CrashInjector` kills a run at a named
:class:`CrashPoint` barrier of the batch loop (or mid-checkpoint-write),
and the recovery harness proves the engine converges back to the
uninterrupted run from its last checkpoint (see :mod:`repro.recovery`).
"""

from .plan import (
    BurstDropModel,
    CellOutage,
    FaultPlan,
    HealthConfig,
    ResilienceConfig,
    RetryPolicy,
)
from .injector import FaultInjector, FaultOutcome
from .health import HealthSummary, SensorHealthMonitor
from .degradation import DegradationTracker
from .crash import (
    CrashInjector,
    CrashPoint,
    SimulatedCrash,
    crash_points,
    parse_crash_point,
)

__all__ = [
    "BurstDropModel",
    "CellOutage",
    "FaultPlan",
    "HealthConfig",
    "ResilienceConfig",
    "RetryPolicy",
    "FaultInjector",
    "FaultOutcome",
    "HealthSummary",
    "SensorHealthMonitor",
    "DegradationTracker",
    "CrashInjector",
    "CrashPoint",
    "SimulatedCrash",
    "crash_points",
    "parse_crash_point",
]
