"""Declarative fault and resilience configuration.

A :class:`FaultPlan` describes *what goes wrong* in the crowd — response
drops (i.i.d. and bursty), cell-outage windows in simulation time, stuck-at
sensors replaying their first value, additive outlier spikes, latency
inflation and bounded clock skew.  A :class:`ResilienceConfig` describes
*what the server does about it* — response deadlines, budget-aware retries,
sensor-health quarantine and degraded-pair tracking.

Both are plain frozen dataclasses so an entire stress experiment is one
declarative object (mirroring :class:`repro.config.EngineConfig`), and both
are deliberately independent: faults can be injected against a fault-blind
engine (the "mitigation disabled" baseline of the outage regression test)
and resilience can run against a healthy crowd (deadlines still drop
naturally late responses).

This module imports nothing from :mod:`repro.sensing` so that
:mod:`repro.config` can embed the plan without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import CraqrError

CellKey = Tuple[int, int]


@dataclass(frozen=True)
class BurstDropModel:
    """A two-state Gilbert-Elliott response-drop process per sensor.

    Every sensor carries a hidden good/burst state advanced once per
    acquisition request addressed to it: a good sensor enters a burst with
    ``enter_probability``, a bursting sensor leaves it with
    ``exit_probability``, and responses produced while bursting are dropped
    with ``drop_probability`` (on top of any i.i.d. drop rate).
    """

    enter_probability: float
    exit_probability: float
    drop_probability: float = 1.0

    def __post_init__(self) -> None:
        for name in ("enter_probability", "exit_probability", "drop_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CraqrError(f"{name} must be in [0, 1]")
        if self.exit_probability == 0.0 and self.enter_probability > 0.0:
            raise CraqrError(
                "a burst with exit_probability 0 never ends; model a permanent "
                "outage with CellOutage or a plain drop_probability instead"
            )


@dataclass(frozen=True)
class CellOutage:
    """A window of simulation time during which some cells drop responses.

    ``cells`` lists the affected grid-cell keys; ``None`` means the whole
    region.  A response is dropped with ``drop_probability`` when its
    *request* falls inside ``[start, end)`` and targets an affected cell.
    """

    start: float
    end: float
    cells: Optional[Tuple[CellKey, ...]] = None
    drop_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise CraqrError("a CellOutage needs end > start")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise CraqrError("drop_probability must be in [0, 1]")
        if self.cells is not None:
            object.__setattr__(self, "cells", tuple((int(q), int(r)) for q, r in self.cells))

    def covers(self, cell: CellKey) -> bool:
        """Whether the outage affects the given cell."""
        return self.cells is None or cell in self.cells


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong, in one declarative object.

    The plan is executed by :class:`repro.faults.FaultInjector`, which owns
    its **own** random generator seeded from ``seed`` — fault draws never
    touch the world stream, so configuring an all-zero plan leaves strict
    runs byte-identical and a given fault history is reproducible
    independently of the crowd seed.

    Attributes
    ----------
    seed:
        Seed of the injector's private generator.
    drop_probability:
        i.i.d. probability that any response is lost in transit.
    burst:
        Optional Gilbert-Elliott bursty drop process (per sensor).
    outages:
        Cell-outage windows in simulation time.
    stuck_fraction:
        Fraction of sensors designated stuck-at: after their first accepted
        response per attribute they replay that value forever.
    outlier_probability / outlier_scale:
        Per-response probability of an additive gross outlier of the given
        magnitude (random sign); applied to numeric attributes only.
    latency_inflation_probability / latency_inflation_factor:
        Per-response probability that the response latency is multiplied by
        the factor — the knob that pushes responses past a configured
        response deadline.
    clock_skew_max:
        Bound of the uniform per-response clock skew added to tuple
        timestamps (clamped so a tuple never predates its batch window,
        which the views layer requires).
    """

    seed: int = 0
    drop_probability: float = 0.0
    burst: Optional[BurstDropModel] = None
    outages: Tuple[CellOutage, ...] = ()
    stuck_fraction: float = 0.0
    outlier_probability: float = 0.0
    outlier_scale: float = 25.0
    latency_inflation_probability: float = 0.0
    latency_inflation_factor: float = 5.0
    clock_skew_max: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "drop_probability",
            "stuck_fraction",
            "outlier_probability",
            "latency_inflation_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CraqrError(f"{name} must be in [0, 1]")
        if self.outlier_scale < 0:
            raise CraqrError("outlier_scale cannot be negative")
        if self.latency_inflation_factor < 1.0:
            raise CraqrError("latency_inflation_factor must be >= 1")
        if self.clock_skew_max < 0:
            raise CraqrError("clock_skew_max cannot be negative")
        object.__setattr__(self, "outages", tuple(self.outages))

    @property
    def drops_responses(self) -> bool:
        """Whether any drop source (i.i.d., burst, outage) is configured."""
        return (
            self.drop_probability > 0.0
            or self.burst is not None
            or len(self.outages) > 0
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Budget-aware retry of failed requests within a round.

    A per-cell *reserve* of ``floor(budget * reserve_fraction)`` requests is
    withheld from the first wave; requests whose response was dropped or
    timed out are retried (up to ``max_attempts`` waves in total) with
    replacement draws from the not-yet-contacted cell population.  The
    per-cell budget is never exceeded, and with a retry policy configured
    incentives are paid only for accepted responses.
    """

    max_attempts: int = 2
    reserve_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 2:
            raise CraqrError("max_attempts must be >= 2 (1 would mean no retry)")
        if not 0.0 < self.reserve_fraction < 1.0:
            raise CraqrError("reserve_fraction must be in (0, 1)")


@dataclass(frozen=True)
class HealthConfig:
    """Per-sensor reliability tracking, quarantine and probation.

    Every acquisition round commits an accepted/requested ratio per
    contacted sensor into a reliability EWMA column of the SoA
    (:attr:`repro.sensing.SensorStateArrays.reliability`).  Sensors whose
    reliability falls below ``failure_threshold`` (after at least
    ``min_requests`` lifetime requests), or whose numeric readings repeat
    ``stuck_repeats`` times in a row, are quarantined out of the candidate
    populations.  After ``quarantine_batches`` rounds a quarantined sensor
    is re-admitted *on probation* (reliability reset to
    ``probation_reliability``) — unless ``probation`` is off, in which case
    quarantine is permanent (the mitigation-disabled baseline).
    """

    ewma_alpha: float = 0.3
    failure_threshold: float = 0.2
    min_requests: int = 8
    quarantine_batches: int = 4
    probation: bool = True
    probation_reliability: float = 0.5
    recovery_threshold: float = 0.6
    stuck_repeats: int = 6

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise CraqrError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.failure_threshold < 1.0:
            raise CraqrError("failure_threshold must be in (0, 1)")
        if self.min_requests < 1:
            raise CraqrError("min_requests must be positive")
        if self.quarantine_batches < 1:
            raise CraqrError("quarantine_batches must be positive")
        if not 0.0 < self.probation_reliability <= 1.0:
            raise CraqrError("probation_reliability must be in (0, 1]")
        if not self.failure_threshold < self.recovery_threshold <= 1.0:
            raise CraqrError(
                "recovery_threshold must be in (failure_threshold, 1]"
            )
        if self.stuck_repeats < 2:
            raise CraqrError("stuck_repeats must be >= 2")


@dataclass(frozen=True)
class ResilienceConfig:
    """The server-side mitigation bundle.

    Attributes
    ----------
    deadline:
        Response deadline in time units; responses arriving later than
        ``request_time + deadline`` are dropped and counted as timeouts.
        ``None`` accepts any latency (the pre-fault behaviour).
    retry:
        Optional :class:`RetryPolicy`; ``None`` keeps single-wave rounds.
    health:
        Optional :class:`HealthConfig` enabling reliability tracking and
        quarantine; ``None`` keeps every sensor a candidate forever.
    degraded_response_rate / degraded_alpha:
        A per-(attribute, cell) EWMA of the effective response rate is
        maintained from the handler reports; pairs whose EWMA falls below
        ``degraded_response_rate`` are marked *degraded* — their shortfall
        is fault-attributed (not planner error), the budget tuner freezes
        and redistributes their budget delta, and they surface in
        ``violations()`` / ``SHOW QUERIES``.
    """

    deadline: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    health: Optional[HealthConfig] = field(default_factory=HealthConfig)
    degraded_response_rate: float = 0.25
    degraded_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise CraqrError("deadline must be positive (or None)")
        if not 0.0 <= self.degraded_response_rate < 1.0:
            raise CraqrError("degraded_response_rate must be in [0, 1)")
        if not 0.0 < self.degraded_alpha <= 1.0:
            raise CraqrError("degraded_alpha must be in (0, 1]")
