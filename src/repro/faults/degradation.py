"""Per-(attribute, cell) degradation tracking.

The :class:`DegradationTracker` is the engine-level bridge between fault
symptoms and mitigation: it maintains an EWMA of each pair's *effective
response rate* from the handler reports and classifies pairs whose EWMA
collapses below a threshold as **degraded**.  Degraded pairs are the ones
whose rate shortfall is fault-attributed rather than planner error — the
budget tuner freezes their budgets (raising a dead cell's budget buys
nothing) and redistributes the withheld deltas to healthy violating pairs,
and the query surface (``violations()``, ``SHOW QUERIES``, ``health``)
renders them distinctly.

A pair that stops receiving requests altogether (for example because its
entire population is quarantined) keeps its last EWMA: silence is not
recovery.  Recovery requires observed responses pushing the EWMA back over
the threshold.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

CellKey = Tuple[int, int]
PairKey = Tuple[str, CellKey]


class DegradationTracker:
    """EWMA response-rate classifier over (attribute, cell) pairs."""

    def __init__(self, *, threshold: float, alpha: float) -> None:
        self._threshold = threshold
        self._alpha = alpha
        self._ewma: Dict[PairKey, float] = {}
        self._degraded: FrozenSet[PairKey] = frozenset()

    @property
    def threshold(self) -> float:
        """The response-rate EWMA below which a pair counts as degraded."""
        return self._threshold

    @property
    def degraded(self) -> FrozenSet[PairKey]:
        """The pairs currently classified as degraded."""
        return self._degraded

    def is_degraded(self, attribute: str, cell: CellKey) -> bool:
        """Whether one pair is currently degraded."""
        return (attribute, cell) in self._degraded

    def response_rate_for(self, attribute: str, cell: CellKey) -> Optional[float]:
        """The pair's smoothed response rate (``None`` before any requests)."""
        return self._ewma.get((attribute, cell))

    def update(self, report) -> FrozenSet[PairKey]:
        """Fold one batch's :class:`~repro.sensing.HandlerReport` in.

        Returns the post-update degraded set.  Pairs absent from the report
        (or with zero requests) keep their previous EWMA and classification.
        """
        alpha = self._alpha
        for pair, requests in report.per_cell_requests.items():
            if requests <= 0:
                continue
            rate = report.per_cell_responses.get(pair, 0) / requests
            previous = self._ewma.get(pair)
            self._ewma[pair] = (
                rate if previous is None else alpha * rate + (1.0 - alpha) * previous
            )
        self._degraded = frozenset(
            pair for pair, ewma in self._ewma.items() if ewma < self._threshold
        )
        return self._degraded
