"""Acquisition cost accounting.

The paper motivates multi-query sharing by cost: "The naive strategy of
processing each query from scratch (i.e., individually), is not cost
effective especially for the human-sensed attributes."  The cost model here
prices an experiment run by the number of acquisition requests sent (each
request interrupts a participant), the responses collected (each consumes
bandwidth/energy) and any incentive paid, so shared and naive strategies can
be compared on one number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CraqrError


@dataclass(frozen=True)
class CostModel:
    """Unit prices of the three cost drivers."""

    cost_per_request: float = 1.0
    cost_per_response: float = 0.2
    cost_per_incentive_unit: float = 1.0

    def __post_init__(self) -> None:
        if min(self.cost_per_request, self.cost_per_response, self.cost_per_incentive_unit) < 0:
            raise CraqrError("cost components cannot be negative")


@dataclass(frozen=True)
class CostReport:
    """Total cost of one experiment run under a :class:`CostModel`."""

    requests: int
    responses: int
    incentive_spent: float
    model: CostModel = CostModel()

    def __post_init__(self) -> None:
        if self.requests < 0 or self.responses < 0 or self.incentive_spent < 0:
            raise CraqrError("cost inputs cannot be negative")

    @property
    def total(self) -> float:
        """Total monetised cost."""
        return (
            self.requests * self.model.cost_per_request
            + self.responses * self.model.cost_per_response
            + self.incentive_spent * self.model.cost_per_incentive_unit
        )

    def per_delivered_tuple(self, delivered: int) -> float:
        """Cost per tuple delivered to query streams (inf when nothing delivered)."""
        if delivered < 0:
            raise CraqrError("delivered count cannot be negative")
        if delivered == 0:
            return float("inf")
        return self.total / delivered
