"""Metrics: achieved rates, violations, cost accounting and report tables.

The benchmark harness reports its results through these helpers so every
experiment prints comparable, self-describing tables.
"""

from .rates import achieved_rate, rate_error, per_batch_rates
from .violations import ViolationTracker
from .cost import CostModel, CostReport
from .reporting import ResultTable, format_table

__all__ = [
    "achieved_rate",
    "rate_error",
    "per_batch_rates",
    "ViolationTracker",
    "CostModel",
    "CostReport",
    "ResultTable",
    "format_table",
]
