"""Plain-text result tables for the benchmark harness.

Every benchmark prints its reproduced table or figure series through
:class:`ResultTable` so the output is uniform, diffable and easy to copy into
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import CraqrError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as a fixed-width text table."""
    if not headers:
        raise CraqrError("a table needs at least one column")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise CraqrError("every row must have one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


@dataclass
class ResultTable:
    """A named table accumulated row by row."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (must match the header count)."""
        if len(cells) != len(self.headers):
            raise CraqrError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """The table as fixed-width text, preceded by its title."""
        return f"== {self.title} ==\n" + format_table(self.headers, self.rows)

    def print(self) -> None:
        """Print the rendered table (used by benches)."""
        print("\n" + self.render())

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        try:
            index = self.headers.index(name)
        except ValueError:
            raise CraqrError(f"no column named '{name}'") from None
        return [row[index] for row in self.rows]
