"""Rate metrics: how close a fabricated stream is to its requested rate."""

from __future__ import annotations

from typing import List, Sequence

from ..errors import CraqrError
from ..streams import SensorTuple


def achieved_rate(tuples: Sequence[SensorTuple], area: float, duration: float) -> float:
    """Observed rate (tuples per unit area per unit time)."""
    if area <= 0 or duration <= 0:
        raise CraqrError("area and duration must be positive")
    return len(tuples) / (area * duration)


def rate_error(achieved: float, requested: float) -> float:
    """Relative error ``|achieved - requested| / requested``."""
    if requested <= 0:
        raise CraqrError("the requested rate must be positive")
    return abs(achieved - requested) / requested


def per_batch_rates(
    batch_counts: Sequence[int], area: float, batch_duration: float
) -> List[float]:
    """Per-batch achieved rates from per-batch tuple counts."""
    if area <= 0 or batch_duration <= 0:
        raise CraqrError("area and batch_duration must be positive")
    return [count / (area * batch_duration) for count in batch_counts]
