"""Tracking of percent rate violations over time.

The Flatten operators report ``N_v`` per batch; the tracker accumulates those
series per (attribute, cell) pair so experiments can plot convergence of the
budget-tuning loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import CraqrError

PairKey = Tuple[str, Tuple[int, int]]


@dataclass
class ViolationTracker:
    """Accumulates per-batch violation percentages per (attribute, cell)."""

    series: Dict[PairKey, List[float]] = field(default_factory=dict)

    def record(self, violations: Dict[PairKey, float]) -> None:
        """Append one batch's violations."""
        for pair, value in violations.items():
            if value < 0:
                raise CraqrError("violation percentages cannot be negative")
            self.series.setdefault(pair, []).append(value)

    def latest(self, pair: PairKey) -> float:
        """Most recent violation for a pair (0 when never recorded)."""
        values = self.series.get(pair)
        return values[-1] if values else 0.0

    def mean(self, pair: PairKey) -> float:
        """Mean violation for a pair over its recorded history."""
        values = self.series.get(pair)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def overall_mean(self) -> float:
        """Mean violation over every recorded value."""
        values = [v for series in self.series.values() for v in series]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def batches_below(self, pair: PairKey, threshold: float) -> int:
        """Number of recorded batches with violation at or below ``threshold``."""
        return sum(1 for v in self.series.get(pair, []) if v <= threshold)

    def converged(self, pair: PairKey, threshold: float, *, window: int = 5) -> bool:
        """Whether the last ``window`` batches all stayed at or below the threshold."""
        values = self.series.get(pair, [])
        if len(values) < window:
            return False
        return all(v <= threshold for v in values[-window:])
