"""The one sanctioned entropy entry point.

Seeded byte-identity (the recovery/fault/plan golden-hash suites) holds
because every random draw in the engine flows through an *owned*
``np.random.Generator``: the world stream seeded from ``WorldConfig``,
children spawned from it, operator streams reseeded by the topology,
and the fault injector's private plan-seeded stream.  Library-style
constructors still accept ``rng=None`` for standalone use — and that
fallback is the only place a fresh OS-entropy stream may be created.

Centralising the fallback here keeps it auditable: craqr-lint
(``CRQ103``/``CRQ104``, see ``docs/craqr_lint.md``) forbids unseeded
``np.random.default_rng()`` everywhere else in ``src/repro``, so a
seeded engine can be shown — statically — to never touch OS entropy or
a global stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ensure_rng"]


def ensure_rng(
    rng: Optional[np.random.Generator] = None,
) -> np.random.Generator:
    """The caller's stream, or a fresh OS-entropy stream if none given.

    Engine-owned code always passes a stream; the fallback exists for
    standalone/interactive use of the library pieces, where
    reproducibility is opted into by passing a seeded generator.
    """
    if rng is not None:
        return rng
    return np.random.default_rng()
