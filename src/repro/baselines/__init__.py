"""Baseline acquisition strategies the paper argues against (or implies).

* :class:`NaivePerQueryEngine` — processes every query "from scratch
  (i.e., individually)": no data re-use across queries, one acquisition
  round per query per batch.  The multi-query sharing benchmark (E7)
  compares its cost against CrAQR's shared topologies.
* :class:`UniformSamplingAcquirer` — acquires raw tuples and keeps a uniform
  random subset of the *tuples* (no intensity weighting).  It hits the right
  count but inherits the spatial skew of the raw arrivals, which is what the
  Flatten operator fixes (E8).
* :class:`OracleBudgetController` — sets the acquisition budget in one step
  using ground-truth knowledge of the response process; the upper bound the
  feedback budget tuner is compared against (E6 ablation).
"""

from .naive import NaivePerQueryEngine, NaiveQueryResult
from .uniform import UniformSamplingAcquirer
from .oracle import OracleBudgetController

__all__ = [
    "NaivePerQueryEngine",
    "NaiveQueryResult",
    "UniformSamplingAcquirer",
    "OracleBudgetController",
]
