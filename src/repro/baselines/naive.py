"""Naive per-query acquisition: no sharing across queries.

Section III: "The naive strategy of processing each query from scratch
(i.e., individually), is not cost effective especially for the human-sensed
attributes.  This is because the data acquired for a particular attribute
will not be re-used across queries."

This baseline does exactly that: every registered query runs its own
acquisition round against the sensing world each batch — its own requests,
its own responses, its own flattening — even when another query wants the
same attribute from the same cells.  Request counts therefore scale linearly
with the number of queries, which is the comparison the multi-query sharing
benchmark draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import EngineConfig
from ..core.query import AcquisitionalQuery
from ..errors import QueryError
from ..geometry import Grid
from ..pointprocess import EventBatch, flatten_events, ConstantIntensity
from ..pointprocess import fit_linear_intensity_mle
from ..pointprocess.estimation import EstimationError
from ..sensing import RequestResponseHandler, SensingWorld
from ..streams import SensorTuple

CellKey = Tuple[int, int]


@dataclass
class NaiveQueryResult:
    """Accumulated results and cost for one query under the naive strategy."""

    query: AcquisitionalQuery
    delivered: List[SensorTuple] = field(default_factory=list)
    requests_sent: int = 0
    responses_received: int = 0
    per_batch_counts: List[int] = field(default_factory=list)

    def achieved_rate(self, batch_duration: float) -> float:
        """Achieved rate over all completed batches."""
        if not self.per_batch_counts:
            return 0.0
        duration = batch_duration * len(self.per_batch_counts)
        return len(self.delivered) / (self.query.region.area * duration)


class NaivePerQueryEngine:
    """Processes every acquisitional query independently, with no re-use."""

    def __init__(self, config: EngineConfig, world: SensingWorld) -> None:
        self._config = config
        self._world = world
        self._grid = Grid(world.region, config.grid_side)
        self._rng = np.random.default_rng(config.seed)
        self._results: Dict[int, NaiveQueryResult] = {}
        # One handler per query: completely separate acquisition pipelines.
        self._handlers: Dict[int, RequestResponseHandler] = {}
        self._batches = 0

    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        """The logical grid (same geometry as the shared engine uses)."""
        return self._grid

    @property
    def batches_run(self) -> int:
        """Number of batches executed."""
        return self._batches

    def register_query(self, query: AcquisitionalQuery) -> NaiveQueryResult:
        """Register a query; returns its (mutable) result record."""
        if query.query_id in self._results:
            raise QueryError(f"query {query.label} is already registered")
        query.validate_against(self._grid.region, self._grid.cell_area)
        result = NaiveQueryResult(query=query)
        self._results[query.query_id] = result
        self._handlers[query.query_id] = RequestResponseHandler(
            self._world,
            self._grid,
            default_budget=self._config.budget.initial,
        )
        return result

    def results(self) -> List[NaiveQueryResult]:
        """Result records of every registered query."""
        return list(self._results.values())

    # ------------------------------------------------------------------
    def _flatten_to_rate(
        self,
        items: List[SensorTuple],
        query: AcquisitionalQuery,
        duration: float,
    ) -> List[SensorTuple]:
        """Per-query flattening of one batch of raw tuples to the query rate."""
        in_region = [
            item for item in items if query.region.contains(item.x, item.y, closed=True)
        ]
        if not in_region:
            return []
        batch = EventBatch.from_rows([(it.t, it.x, it.y) for it in in_region])
        t_min, t_max = batch.time_span()
        span = max(t_max - t_min, duration)
        if len(batch) >= 20:
            try:
                intensity = fit_linear_intensity_mle(
                    batch, query.region, t_min, t_min + span
                ).intensity
            except EstimationError:
                intensity = ConstantIntensity(
                    max(len(batch) / (query.region.area * span), 1e-9)
                )
        else:
            intensity = ConstantIntensity(
                max(len(batch) / (query.region.area * span), 1e-9)
            )
        target_expected = query.rate * query.region.area * span
        outcome = flatten_events(batch, intensity, target_expected, rng=self._rng)
        return [item for item, keep in zip(in_region, outcome.keep_mask) if keep]

    def run_batch(self) -> Dict[int, int]:
        """Run one batch for every query independently.

        Returns the number of tuples delivered to each query this batch.
        """
        duration = self._config.batch_duration
        delivered_counts: Dict[int, int] = {}
        for query_id, result in self._results.items():
            handler = self._handlers[query_id]
            cells = self._grid.overlapping_cells(result.query.region)
            tuples_by_cell, report = handler.acquire(
                {result.query.attribute: cells}, duration=duration
            )
            raw = [item for items in tuples_by_cell.values() for item in items]
            result.requests_sent += report.requests_sent
            result.responses_received += report.responses_received
            delivered = self._flatten_to_rate(raw, result.query, duration)
            result.delivered.extend(delivered)
            result.per_batch_counts.append(len(delivered))
            delivered_counts[query_id] = len(delivered)
        # A single advance per batch: all queries observe the same world window.
        self._world.advance(duration)
        self._batches += 1
        return delivered_counts

    def run(self, batches: int) -> None:
        """Run several consecutive batches."""
        if batches <= 0:
            raise QueryError("the number of batches must be positive")
        for _ in range(batches):
            self.run_batch()

    # ------------------------------------------------------------------
    def total_requests_sent(self) -> int:
        """Requests sent across all per-query handlers."""
        return sum(result.requests_sent for result in self._results.values())

    def total_responses_received(self) -> int:
        """Responses collected across all per-query handlers."""
        return sum(result.responses_received for result in self._results.values())

    def total_tuples_delivered(self) -> int:
        """Tuples delivered to queries across the run."""
        return sum(len(result.delivered) for result in self._results.values())
