"""Uniform tuple sampling: the "ignore the skew" baseline.

Given a batch of raw crowdsensed tuples, keep a uniform random subset of the
desired size.  The count comes out right, but because every tuple is equally
likely to survive, the spatial distribution of the survivors is exactly as
skewed as the raw arrivals — dense downtown, sparse suburbs.  The Flatten
operator's location-aware retention (Eq. 3) is what removes that skew; the
skew-mitigation benchmark (E8) quantifies the difference.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import CraqrError
from ..rng import ensure_rng
from ..streams import SensorTuple


class UniformSamplingAcquirer:
    """Keeps a uniformly random subset of a raw batch."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = ensure_rng(rng)
        self._batches = 0
        self._kept = 0
        self._seen = 0

    @property
    def batches_processed(self) -> int:
        """Number of batches sampled."""
        return self._batches

    @property
    def kept_total(self) -> int:
        """Tuples kept across all batches."""
        return self._kept

    @property
    def seen_total(self) -> int:
        """Tuples seen across all batches."""
        return self._seen

    def sample(self, items: List[SensorTuple], target_count: int) -> List[SensorTuple]:
        """Keep ``target_count`` tuples uniformly at random (all when fewer)."""
        if target_count < 0:
            raise CraqrError("target_count cannot be negative")
        self._batches += 1
        self._seen += len(items)
        if target_count >= len(items):
            self._kept += len(items)
            return list(items)
        indices = self._rng.choice(len(items), size=target_count, replace=False)
        chosen = [items[int(i)] for i in sorted(indices)]
        self._kept += len(chosen)
        return chosen

    def sample_to_rate(
        self,
        items: List[SensorTuple],
        rate: float,
        area: float,
        duration: float,
    ) -> List[SensorTuple]:
        """Keep roughly ``rate * area * duration`` tuples uniformly at random."""
        if rate <= 0 or area <= 0 or duration <= 0:
            raise CraqrError("rate, area and duration must be positive")
        target = int(round(rate * area * duration))
        return self.sample(items, target)
