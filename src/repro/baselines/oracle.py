"""Oracle budget controller.

The feedback budget tuner of Section V discovers the right budget by
trial and error (±delta-beta per batch).  The oracle controller instead
computes the budget in one step from ground truth it should not normally
have: the expected response probability and the number of sensors available
per cell.  It serves as the upper bound in the budget-tuning ablation — how
quickly could budgets converge if the server knew everything?
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import BudgetError
from ..geometry import GridCell
from ..sensing import RequestResponseHandler, SensingWorld


class OracleBudgetController:
    """Sets per-cell budgets directly from ground-truth response behaviour."""

    def __init__(
        self,
        world: SensingWorld,
        handler: RequestResponseHandler,
        *,
        response_probability: float,
        headroom: float = 1.25,
        max_budget: Optional[int] = None,
    ) -> None:
        if not 0 < response_probability <= 1:
            raise BudgetError("response_probability must be in (0, 1]")
        if headroom < 1:
            raise BudgetError("headroom must be at least 1")
        if max_budget is not None and max_budget <= 0:
            raise BudgetError("max_budget must be positive or None")
        self._world = world
        self._handler = handler
        self._response_probability = response_probability
        self._headroom = headroom
        self._max_budget = max_budget

    def required_budget(self, target_rate: float, cell: GridCell, duration: float) -> int:
        """Requests needed so the *expected* responses cover the target rate.

        ``target_rate * cell_area * duration`` tuples are needed; each request
        yields a response with probability ``p``; the headroom covers the
        Flatten operator's need for strictly more than the target.
        """
        if target_rate <= 0 or duration <= 0:
            raise BudgetError("target_rate and duration must be positive")
        needed_tuples = self._headroom * target_rate * cell.area * duration
        budget = int(math.ceil(needed_tuples / self._response_probability))
        budget = max(budget, 1)
        if self._max_budget is not None:
            budget = min(budget, self._max_budget)
        return budget

    def apply(self, attribute: str, cell: GridCell, target_rate: float, duration: float) -> int:
        """Compute and install the oracle budget for one (attribute, cell) pair."""
        budget = self.required_budget(target_rate, cell, duration)
        self._handler.set_budget(attribute, cell.key, budget)
        return budget
