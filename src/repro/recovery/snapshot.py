"""Versioned, checksummed snapshots of the complete engine state.

An :class:`EngineSnapshot` captures *everything* a
:class:`~repro.core.engine.CraqrEngine` needs to continue a run as if it
had never stopped:

* the sensing world — :class:`~repro.sensing.SensorStateArrays` columns
  (positions, velocities, counters, reliability/quarantine, participation
  vector-state extras), the simulation clock, every strict-mode per-sensor
  ``np.random.Generator`` and the world's own stream;
* the request/response handler — per-(attribute, cell) budgets, lifetime
  counters, incentive ledgers, the tuple-id allocator, the
  :class:`~repro.faults.FaultInjector`'s private stream and burst/stuck
  state, and the :class:`~repro.faults.SensorHealthMonitor`'s quarantine
  bookkeeping;
* the query pipeline — planner/topology/operator state including every
  operator RNG, Flatten reports and online estimators, Thin/Partition drop
  counters, Union merge state, and the planner's paused set;
* serving state — :class:`~repro.storage.QueryResultBuffer` chunk lists
  with exact lifetime totals, :class:`~repro.views.ViewFrameBuffer` frames,
  open pane partials and :class:`~repro.views.QuantileSketch` state;
* control state — budget-tuner decision history and saturation flags,
  degradation EWMAs, engine reports, batch index and the engine RNG.

The capture mechanism is deliberately *whole-object*: the engine's object
graph is serialized in one pickle payload, so shared references (the
handler's world IS the engine's world; the health monitor's state IS the
world's SoA) and every ``bit_generator.state`` are preserved exactly, and
new state added to any subsystem is captured by default instead of by
remembering to list it.  The only excluded pieces are push-subscription
wiring (buffers drop their subscriber lists; restore re-attaches the
engine-managed view callbacks deterministically, user callbacks must
re-subscribe) and an armed :class:`~repro.faults.CrashInjector` (a
restored engine never inherits a crash plan).

The recovery contract — asserted batch-for-batch in ``tests/recovery/`` —
is that a restored engine's subsequent batches are **seeded
byte-identical** to the uninterrupted run, across strict/fast-sim,
columnar on/off, and active fault plans with mitigation.
"""

from __future__ import annotations

import copyreg
import io
import pathlib
import pickle
from typing import Optional

import numpy as np

from ..errors import RecoveryError
from ..sensing.sensor import MobileSensor
from ..streams import TupleBatch
from ..streams.codec import (
    pack_column,
    reduce_tuple_batch,
    rebuild_tuple_batch,
    unpack_column,
)
from .io import (
    FORMAT_VERSION,
    PathLike,
    SNAPSHOT_SUFFIX,
    frame_payload,
    list_snapshots,
    load_latest,
    read_snapshot_file,
    unframe_payload,
    write_snapshot_file,
)

#: Identifies the pickled payload as an engine snapshot (a second guard
#: behind the file-level magic, useful for in-memory payloads).
_PAYLOAD_KIND = "craqr-engine-snapshot"


# The raw-column packing is shared with the wire protocol through
# repro.streams.codec; the module-level aliases keep old snapshot payloads
# (which reference ``repro.recovery.snapshot._rebuild_tuple_batch``) loading.
_pack_column = pack_column
_unpack_column = unpack_column
_rebuild_tuple_batch = rebuild_tuple_batch
_reduce_tuple_batch = reduce_tuple_batch


def _pack_memory(entries):
    """A sensor's sensed-history list in columnar form.

    Each entry is a ``(t, attribute, value)`` triple; at serving rates a
    full crowd holds tens of thousands of them, and pickling that many
    small tuples dominates the capture.  Uniformly typed histories pack
    into three columns (times, attribute vocabulary indices, values);
    anything unusual falls back to the list itself.
    """
    if not entries:
        return None
    ts, attrs, vals = zip(*entries)
    if not all(type(t) is float for t in ts):
        return list(entries)
    value_types = set(map(type, vals))
    if value_types == {float}:
        kind = "f8"
    elif value_types == {bool}:
        kind = "b1"
    else:
        return list(entries)
    vocab = tuple(dict.fromkeys(attrs))
    index = np.fromiter(
        (vocab.index(a) for a in attrs), dtype=np.uint16, count=len(attrs)
    )
    times = np.fromiter(ts, dtype=np.float64, count=len(ts))
    values = np.fromiter(vals, dtype=np.dtype(kind), count=len(vals))
    return (times.tobytes(), vocab, index.tobytes(), kind, values.tobytes())


def _unpack_memory(packed):
    if packed is None:
        return []
    if isinstance(packed, list):
        return packed
    times_raw, vocab, index_raw, kind, values_raw = packed
    times = np.frombuffer(times_raw, dtype=np.float64).tolist()
    attrs = [vocab[i] for i in np.frombuffer(index_raw, dtype=np.uint16)]
    values = np.frombuffer(values_raw, dtype=np.dtype(kind)).tolist()
    return list(zip(times, attrs, values))


def _rebuild_sensor(cls, state, packed_memory):
    sensor = cls.__new__(cls)
    sensor.__dict__.update(state)
    sensor._memory = _unpack_memory(packed_memory)
    return sensor


def _reduce_sensor(sensor):
    state = dict(sensor.__dict__)
    memory = state.pop("_memory", None)
    return _rebuild_sensor, (type(sensor), state, _pack_memory(memory))


def _rebuild_generator(state: dict) -> np.random.Generator:
    """Rebuild an ``np.random.Generator`` from its bit-generator state."""
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def _reduce_generator(generator: np.random.Generator):
    return _rebuild_generator, (generator.bit_generator.state,)


class _SnapshotPickler(pickle.Pickler):
    """The engine pickler, with fast paths for the three hot object classes.

    A strict-mode world carries one ``np.random.Generator`` per sensor, and
    ``Generator.__reduce__`` is an order of magnitude slower (and ~4x
    larger) than the underlying ``bit_generator.state`` dict it wraps.
    Result buffers retain one columnar chunk per acquisition round, so a
    few dozen batches means hundreds of small ``TupleBatch`` objects whose
    per-ndarray pickle framing dominates the capture; packing each chunk's
    columns into raw bytes cuts that cost by ~3x.  And every sensor keeps
    a bounded sensed-history list of small tuples which, across a serving
    crowd, adds up to tens of thousands of pickle ops — ``_pack_memory``
    turns each into three byte columns.  The pickler's memo still
    deduplicates all three classes by object identity, so generators,
    chunks and sensors shared between subsystems come back shared.
    Nothing in the engine holds a bare ``BitGenerator`` reference, so
    wrapping a fresh one on rebuild cannot split a shared stream; restored
    chunk columns and history entries are exact-typed copies.
    """

    dispatch_table = copyreg.dispatch_table.copy()
    dispatch_table[np.random.Generator] = _reduce_generator
    dispatch_table[TupleBatch] = _reduce_tuple_batch
    dispatch_table[MobileSensor] = _reduce_sensor


def _dumps(obj) -> bytes:
    buffer = io.BytesIO()
    _SnapshotPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


class EngineSnapshot:
    """One captured engine state, restorable into a live engine.

    Instances are immutable captures: :meth:`capture` serializes the
    engine's object graph *at call time*, so later engine mutations never
    leak into the snapshot.  A snapshot round-trips through
    :meth:`to_bytes` / :meth:`from_bytes` (the versioned, checksummed file
    format) and :meth:`restore` builds a fully independent engine from it —
    also usable purely in memory as a deep fork of a running engine.
    """

    __slots__ = ("_payload", "_meta")

    def __init__(self, payload: bytes, meta: dict) -> None:
        self._payload = payload
        self._meta = meta

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, engine) -> "EngineSnapshot":
        """Serialize the complete state of a live engine.

        Must be called at a batch boundary (the engine does this for you
        from ``run_batch``/``checkpoint``): buffers have closed their
        current batch and operator scratch buffers are empty, which is
        what makes the snapshot crash-consistent.
        """
        from ..core.query import query_id_allocator

        state = {
            "kind": _PAYLOAD_KIND,
            "batch_index": engine.batches_run,
            "next_query_id": query_id_allocator().peek(),
            "engine": engine,
        }
        try:
            payload = _dumps(state)
        except Exception as exc:
            raise RecoveryError(
                f"engine state is not serializable: {exc}; user-attached "
                f"callbacks must be picklable or detached before checkpointing"
            ) from exc
        meta = {
            "batch_index": state["batch_index"],
            "next_query_id": state["next_query_id"],
            "queries": len(engine.query_handles()),
            "views": len(engine.view_handles()),
            "size_bytes": len(payload),
        }
        return cls(payload, meta)

    # ------------------------------------------------------------------
    @property
    def batch_index(self) -> int:
        """Number of batches the captured engine had completed."""
        return self._meta["batch_index"]

    @property
    def size_bytes(self) -> int:
        """Size of the serialized payload (before file framing)."""
        return self._meta["size_bytes"]

    @property
    def queries(self) -> int:
        """Registered queries at capture time."""
        return self._meta["queries"]

    @property
    def views(self) -> int:
        """Maintained views at capture time."""
        return self._meta["views"]

    @property
    def version(self) -> int:
        """The snapshot format version this build writes."""
        return FORMAT_VERSION

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The snapshot in its versioned, checksummed wire format."""
        return frame_payload(self._payload)

    def write(self, path: PathLike, *, pre_replace_hook=None) -> pathlib.Path:
        """Atomically write this snapshot to a file (framed + checksummed)."""
        target = pathlib.Path(path)
        write_snapshot_file(target, self._payload, pre_replace_hook=pre_replace_hook)
        return target

    @classmethod
    def from_bytes(cls, data: bytes, *, source: str = "snapshot") -> "EngineSnapshot":
        """Parse (and checksum-verify) a framed snapshot."""
        return cls._from_payload(unframe_payload(data, source=source), source=source)

    @classmethod
    def _from_payload(cls, payload: bytes, *, source: str = "snapshot") -> "EngineSnapshot":
        state = cls._load_state(payload, source=source)
        meta = {
            "batch_index": state["batch_index"],
            "next_query_id": state["next_query_id"],
            "queries": len(state["engine"].query_handles()),
            "views": len(state["engine"].view_handles()),
            "size_bytes": len(payload),
        }
        return cls(payload, meta)

    @staticmethod
    def _load_state(payload: bytes, *, source: str = "snapshot") -> dict:
        try:
            state = pickle.loads(payload)
        except Exception as exc:
            raise RecoveryError(f"{source} does not deserialize: {exc}") from exc
        if not isinstance(state, dict) or state.get("kind") != _PAYLOAD_KIND:
            raise RecoveryError(f"{source} is not an engine snapshot payload")
        return state

    # ------------------------------------------------------------------
    def restore(self):
        """Build a live engine from this snapshot.

        The returned engine is fully independent of the captured one (the
        payload is deserialized fresh on every call) and resumes exactly
        where the capture left off: its next batch is seeded byte-identical
        to the batch the uninterrupted engine ran next.  Engine-managed
        view subscriptions are re-attached; user push subscriptions are
        not (re-subscribe after restore).  The process-wide query-id
        allocator is advanced past the snapshot's high-water mark so new
        registrations never collide with restored ids.
        """
        from ..core.query import query_id_allocator

        state = self._load_state(self._payload)
        engine = state["engine"]
        engine._reattach_after_restore()
        query_id_allocator().advance_to(state["next_query_id"])
        return engine


class CheckpointStore:
    """Writes, retains and locates checkpoint files in one directory.

    Filenames embed the batch index (``checkpoint-00000010.ckpt``) so
    lexicographic order is batch order; after each successful write the
    oldest files beyond ``retain`` are pruned.  Keeping several files is
    what gives :meth:`latest_path` its fallback: a torn or corrupt newest
    file (crash mid-write) is skipped in favour of the previous one.
    """

    def __init__(self, directory: PathLike, *, retain: int = 3) -> None:
        if retain <= 0:
            raise RecoveryError("retain must be positive")
        self._directory = pathlib.Path(directory)
        self._retain = retain

    @property
    def directory(self) -> pathlib.Path:
        """The checkpoint directory."""
        return self._directory

    def path_for(self, batch_index: int) -> pathlib.Path:
        """The checkpoint filename for a batch index."""
        return self._directory / f"checkpoint-{batch_index:08d}{SNAPSHOT_SUFFIX}"

    def write(self, snapshot: EngineSnapshot, *, pre_replace_hook=None) -> pathlib.Path:
        """Atomically write a snapshot and prune past the retention cap."""
        path = snapshot.write(
            self.path_for(snapshot.batch_index), pre_replace_hook=pre_replace_hook
        )
        self.prune()
        return path

    def prune(self) -> None:
        """Delete the oldest checkpoints beyond the retention cap."""
        paths = list_snapshots(self._directory)
        for stale in paths[: max(0, len(paths) - self._retain)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass

    def latest_path(self) -> Optional[pathlib.Path]:
        """The newest checkpoint file that passes verification."""
        return load_latest(self._directory)

    def load_latest(self) -> Optional[EngineSnapshot]:
        """The newest verifiable checkpoint, parsed (``None`` when empty)."""
        path = self.latest_path()
        if path is None:
            return None
        return load_snapshot(path)


def load_snapshot(path: PathLike) -> EngineSnapshot:
    """Read, verify and parse one snapshot file."""
    payload = read_snapshot_file(path)
    return EngineSnapshot._from_payload(payload, source=str(path))


def restore_engine(path: PathLike):
    """Restore a live engine from one snapshot file."""
    return load_snapshot(path).restore()


def restore_latest(directory: PathLike):
    """Restore from the newest good checkpoint in a directory.

    Falls back over torn/corrupt files; raises :class:`RecoveryError` when
    the directory holds no readable checkpoint at all.
    """
    store = CheckpointStore(directory)
    snapshot = store.load_latest()
    if snapshot is None:
        raise RecoveryError(
            f"no readable checkpoint in {pathlib.Path(directory)} "
            f"(files may be missing, torn or corrupt)"
        )
    return snapshot.restore()
