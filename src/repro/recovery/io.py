"""Crash-consistent file I/O for the checkpoint subsystem.

Two guarantees matter here:

* **Atomicity** — a snapshot file either exists with its complete contents
  or does not exist at all.  :func:`atomic_write_bytes` writes to a
  temporary file in the *same directory*, flushes and fsyncs it, then
  ``os.replace``\\ s it over the target (atomic on POSIX within one
  filesystem) and fsyncs the directory so the rename itself survives a
  power loss.  A process crash at any point leaves either the old file,
  no file, or a stray ``*.tmp`` that readers ignore — never a torn target.
* **Integrity** — every snapshot file carries a small header (magic bytes,
  format version, payload length, SHA-256 of the payload).
  :func:`read_snapshot_file` verifies all of it and raises
  :class:`~repro.errors.RecoveryError` on any mismatch, so a truncated or
  bit-flipped file is *detected* rather than deserialised into garbage;
  :func:`load_latest` then falls back to the previous retained checkpoint.

The benchmark harness reuses :func:`atomic_write_text` for the tracked
``BENCH_*.json`` trajectory files, so an interrupted session can never
truncate them either.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import struct
from typing import List, Optional, Union

from ..errors import RecoveryError

PathLike = Union[str, os.PathLike]

#: Snapshot file magic: "CrAQR ChecKpoint".
MAGIC = b"CRQRCKPT"

#: Current snapshot format version.  Bumped on any incompatible change to
#: the header layout or the pickled payload structure.
FORMAT_VERSION = 1

#: Header layout after the magic: version (u32), payload length (u64),
#: SHA-256 digest (32 bytes), all little-endian.
_HEADER = struct.Struct("<IQ32s")

#: Filename suffix of checkpoint files written by :class:`CheckpointStore`.
SNAPSHOT_SUFFIX = ".ckpt"


def _fsync_directory(directory: pathlib.Path) -> None:
    """fsync a directory so a just-performed rename is durable."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on the fs
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes, *, pre_replace_hook=None) -> None:
    """Write ``data`` to ``path`` atomically (temp file + fsync + replace).

    The temporary file lives next to the target so the final
    ``os.replace`` stays within one filesystem and is atomic; concurrent
    writers are disambiguated by pid.  Readers never observe a partial
    target file.  ``pre_replace_hook`` runs after the temp file is durable
    but before the rename — the crash-injection harness uses it to model a
    process dying mid-checkpoint, which must leave the previous target
    intact.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.parent / f".{target.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if pre_replace_hook is not None:
            pre_replace_hook()
        os.replace(tmp, target)
    finally:
        if tmp.exists():  # a crash simulation or error left the temp behind
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
    _fsync_directory(target.parent)


def atomic_write_text(path: PathLike, text: str, *, encoding: str = "utf-8") -> None:
    """Atomic counterpart of ``Path.write_text`` (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))


def frame_payload(payload: bytes, *, version: int = FORMAT_VERSION) -> bytes:
    """Wrap a serialized snapshot payload in the versioned, checksummed frame."""
    digest = hashlib.sha256(payload).digest()
    return MAGIC + _HEADER.pack(version, len(payload), digest) + payload


def unframe_payload(data: bytes, *, source: str = "snapshot") -> bytes:
    """Verify a framed snapshot and return the raw payload.

    Raises :class:`RecoveryError` with a caller-actionable message on a
    short file, wrong magic, unknown version, truncated payload or
    checksum mismatch.
    """
    header_size = len(MAGIC) + _HEADER.size
    if len(data) < header_size:
        raise RecoveryError(
            f"{source} is not a CrAQR snapshot: {len(data)} bytes is shorter "
            f"than the {header_size}-byte header"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise RecoveryError(
            f"{source} is not a CrAQR snapshot (bad magic bytes)"
        )
    version, length, digest = _HEADER.unpack_from(data, len(MAGIC))
    if version != FORMAT_VERSION:
        raise RecoveryError(
            f"{source} uses snapshot format version {version}; this build "
            f"reads version {FORMAT_VERSION} only"
        )
    payload = data[header_size:]
    if len(payload) != length:
        raise RecoveryError(
            f"{source} is torn: header promises {length} payload bytes, "
            f"file holds {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise RecoveryError(f"{source} is corrupt: payload checksum mismatch")
    return payload


def write_snapshot_file(path: PathLike, payload: bytes, *, pre_replace_hook=None) -> None:
    """Atomically write a framed snapshot file."""
    atomic_write_bytes(path, frame_payload(payload), pre_replace_hook=pre_replace_hook)


def read_snapshot_file(path: PathLike) -> bytes:
    """Read and verify a snapshot file, returning the raw payload."""
    target = pathlib.Path(path)
    try:
        data = target.read_bytes()
    except OSError as exc:
        raise RecoveryError(f"cannot read snapshot {target}: {exc}") from exc
    return unframe_payload(data, source=str(target))


def list_snapshots(directory: PathLike) -> List[pathlib.Path]:
    """The checkpoint files in a directory, oldest first (by batch index).

    Checkpoint filenames embed the batch index zero-padded
    (``checkpoint-00000010.ckpt``), so lexicographic order is batch order.
    Temporary files and foreign names are ignored.
    """
    root = pathlib.Path(directory)
    if not root.is_dir():
        return []
    return sorted(
        p for p in root.iterdir()
        if p.name.startswith("checkpoint-") and p.name.endswith(SNAPSHOT_SUFFIX)
    )


def load_latest(directory: PathLike) -> Optional[pathlib.Path]:
    """The newest checkpoint in ``directory`` that passes verification.

    Tries newest-first and falls back over torn or corrupt files (the
    crash-mid-write case: the latest file may be damaged, the one before
    it is good).  Returns ``None`` when the directory holds no readable
    checkpoint at all.
    """
    for path in reversed(list_snapshots(directory)):
        try:
            read_snapshot_file(path)
        except RecoveryError:
            continue
        return path
    return None
