"""Crash-consistent checkpoints and deterministic recovery.

This package makes the engine process itself fault-tolerant, completing
the robustness story PR 6 started on the data plane:

* :class:`EngineSnapshot` — a versioned, checksummed capture of the
  *complete* engine state (world SoA + every RNG stream, handler budgets
  and ledgers, buffer chunks, view panes and sketches, tuner history,
  health/degradation monitors, the session/view catalog);
* :class:`CheckpointStore` + :class:`~repro.config.CheckpointConfig` —
  atomic temp-file+rename+fsync writes of retained checkpoint files, with
  checksum-verified loads that fall back over torn files;
* :func:`restore_engine` / :func:`restore_latest` — rebuild a live engine
  whose subsequent batches are seeded byte-identical to an uninterrupted
  run (the contract pinned by ``tests/recovery/``).

Crash *injection* lives in :mod:`repro.faults` (:class:`CrashPoint`,
:class:`CrashInjector`); the CLI surfaces recovery through the ``recover``
sub-command and the repl's ``checkpoint``/``restore`` commands.
"""

from .io import (
    FORMAT_VERSION,
    atomic_write_bytes,
    atomic_write_text,
    list_snapshots,
    load_latest,
    read_snapshot_file,
    write_snapshot_file,
)
from .snapshot import (
    CheckpointStore,
    EngineSnapshot,
    load_snapshot,
    restore_engine,
    restore_latest,
)

__all__ = [
    "FORMAT_VERSION",
    "atomic_write_bytes",
    "atomic_write_text",
    "list_snapshots",
    "load_latest",
    "read_snapshot_file",
    "write_snapshot_file",
    "CheckpointStore",
    "EngineSnapshot",
    "load_snapshot",
    "restore_engine",
    "restore_latest",
]
